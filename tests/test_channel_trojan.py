"""Unit tests for the trojan's control plane (Algorithm 1 pieces)."""

from repro.channel.config import (
    LEXCL,
    LSHARED,
    REXCL,
    RSHARED,
    Location,
    ProtocolParams,
    scenario_by_name,
)
from repro.channel.trojan import TrojanControl, WorkerRole, worker_roles


def test_worker_roles_match_scenarios():
    roles = worker_roles(scenario_by_name("RExclc-LSharedb"))
    locations = [r.location for r in roles]
    assert locations.count(Location.LOCAL) == 2
    assert locations.count(Location.REMOTE) == 1


def test_worker_roles_indices_start_at_zero():
    roles = worker_roles(scenario_by_name("RSharedc-LSharedb"))
    local_idx = sorted(r.index for r in roles if r.location is Location.LOCAL)
    remote_idx = sorted(r.index for r in roles if r.location is Location.REMOTE)
    assert local_idx == [0, 1]
    assert remote_idx == [0, 1]


def test_control_activation_exclusive():
    control = TrojanControl()
    control.set_pair(LEXCL)
    assert control.is_active(WorkerRole(Location.LOCAL, 0))
    assert not control.is_active(WorkerRole(Location.LOCAL, 1))
    assert not control.is_active(WorkerRole(Location.REMOTE, 0))


def test_control_activation_shared():
    control = TrojanControl()
    control.set_pair(RSHARED)
    assert control.is_active(WorkerRole(Location.REMOTE, 0))
    assert control.is_active(WorkerRole(Location.REMOTE, 1))
    assert not control.is_active(WorkerRole(Location.LOCAL, 0))


def test_control_idle_deactivates_everyone():
    control = TrojanControl()
    control.set_pair(LSHARED)
    control.set_pair(None)
    for location in Location:
        for index in range(2):
            assert not control.is_active(WorkerRole(location, index))


def test_control_stop():
    control = TrojanControl()
    control.set_pair(REXCL)
    control.stop()
    assert not control.running
    assert control.active_pair is None


def test_control_counts_transitions():
    control = TrojanControl()
    control.set_pair(LEXCL)
    control.set_pair(LEXCL)   # no-op
    control.set_pair(LSHARED)
    assert control.transitions == 2


def test_generation_bumps_on_every_set():
    control = TrojanControl()
    g0 = control.generation
    control.set_pair(LEXCL)
    control.set_pair(LEXCL)
    assert control.generation == g0 + 2


def test_params_reload_faster_than_slot():
    params = ProtocolParams()
    assert params.reload_period < params.spy_wait_cycles

"""Golden end-to-end determinism digests.

These lock the simulator's observable behavior bit-for-bit: every RNG
draw, every latency sample, every decoded bit.  A digest here changes
iff a code change alters *what* the simulator computes — hot-path
rewrites (engine inlining, interconnect indexing, latency inlining) must
keep all three constant.  If a digest moves for an *intended* semantic
change, regenerate the constants with :func:`transmission_digest` and
say so in the commit message; an unintended move is a regression.

The configurations cover the distinct protocol paths: the default
MESI machine, the E-state LLC direct-response variant (collapses the
local/remote E bands onto S), the two-socket home-agent directory
hop (extends the remote bands), the full home-node directory backend
(``coherence="directory"``) and the MOESI O-state channel.
"""

import hashlib
import struct

import pytest

from repro.channel.config import scenario_by_name
from repro.channel.session import ChannelSession, SessionConfig, resolve_spec
from repro.mem.hierarchy import MachineConfig

PAYLOAD = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0, 0, 1, 0, 1]

GOLDEN = {
    "mesi_default":
        "302b5d219fc4eba6bd4d452267391585159920683a25069faa503f63c1fcade5",
    "llc_direct_e_response":
        "8b29a4846b8db422c11a3975b3b245194ac07fce5132dced484da1b6aa591e23",
    "home_agent":
        "abbc2d1884d46ed9a1d2ddf472917ef06f1522de7391e22423e0d1fec2040ccd",
    "directory_backend":
        "d880e5521f27a2ff0f80efd0989574b70de23409229f0444bbf96d3b4bebff7a",
    "moesi_ostate":
        "b934a6ca3dd5a540fa09f225a6138b08c42fb9af3ccce1479cdad77a502ba9e5",
}

#: config name -> (MachineConfig kwargs, scenario) — scenarios are chosen
#: so the variant's distinctive path is actually exercised (remote-S for
#: the direct-response machine, remote-E for the home agent).  Registered
#: ScenarioSpec cells (a string entry) carry their own machine config.
CONFIGS = {
    "mesi_default": ({}, "LExclc-LSharedb"),
    "llc_direct_e_response": (
        {"llc_direct_e_response": True}, "RSharedc-LSharedb"
    ),
    "home_agent": ({"home_agent": True}, "RExclc-LSharedb"),
    "directory_backend": "dir-es",
    "moesi_ostate": "moesi-ostate",
}


def transmission_digest(result) -> str:
    """A digest over everything observable about one transmission."""
    h = hashlib.sha256()
    h.update(",".join(map(str, result.sent)).encode())
    h.update(b"|")
    h.update(",".join(map(str, result.received)).encode())
    h.update(b"|")
    for sample in result.samples:
        h.update(struct.pack("<dd", sample.timestamp, sample.latency))
    h.update(struct.pack("<d", result.cycles))
    return h.hexdigest()


def run_config(name: str) -> str:
    config = CONFIGS[name]
    if isinstance(config, str):
        session = ChannelSession(SessionConfig(
            spec=config, seed=7, calibration_samples=150,
        ))
    else:
        machine_kwargs, scenario = config
        session = ChannelSession(SessionConfig(
            spec=resolve_spec(scenario_by_name(scenario)),
            seed=7,
            calibration_samples=150,
            machine=MachineConfig(**machine_kwargs),
        ))
    return transmission_digest(session.transmit(list(PAYLOAD)))


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_golden_digest(name):
    assert run_config(name) == GOLDEN[name], (
        f"{name} transmission changed bit-for-bit; if this is an intended "
        "semantic change, regenerate the GOLDEN constants"
    )


def test_digest_is_repeatable():
    # The digest machinery itself must be deterministic run-to-run.
    assert run_config("mesi_default") == run_config("mesi_default")

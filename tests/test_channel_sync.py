"""Tests for the pre-transmission synchronization (Section VII-A)."""

import pytest

from repro.channel.config import TABLE_I
from repro.channel.session import ChannelSession, SessionConfig
from repro.channel.sync import SyncParams, run_synchronization


def make_session(seed=2):
    return ChannelSession(SessionConfig(
        spec=TABLE_I[0].name, seed=seed, calibration_samples=200,
    ))


def fast_params():
    """Scaled-down handshake so tests run quickly."""
    return SyncParams(
        trojan_rounds=10,
        trojan_round_cycles=40_000.0,
        spy_poll_cycles=120_000.0,
        spy_stable_run=4,
        trojan_long_run=3,
        max_spy_polls=200,
    )


def run_sync(session, params):
    return run_synchronization(
        session.kernel,
        session.bands,
        session.trojan_proc,
        session.spy_proc,
        session.trojan_va,
        session.spy_va,
        trojan_core=session.local_cores[0],
        spy_core=session.config.spy_core,
        params=params,
    )


def test_handshake_succeeds():
    session = make_session()
    result = run_sync(session, fast_params())
    assert result.synced
    assert result.duration_cycles > 0


def test_spy_sees_stable_coherence_band():
    session = make_session()
    result = run_sync(session, fast_params())
    in_band = [
        lat for lat in result.spy_latencies
        if session.bands.classify(lat) not in (None, "dram")
    ]
    assert len(in_band) >= 4


def test_trojan_observes_spy_flushes():
    session = make_session()
    result = run_sync(session, fast_params())
    dram_floor = session.bands.dram.lo
    longs = [lat for lat in result.trojan_latencies if lat >= dram_floor]
    assert len(longs) >= 3


def test_paper_scale_defaults_land_near_90ms():
    """Default knobs reproduce the paper's ~90 ms handshake."""
    params = SyncParams()
    expected_ms = (params.trojan_rounds * params.trojan_round_cycles) / 2.67e6
    assert expected_ms == pytest.approx(90, rel=0.05)


def test_duration_is_max_of_both_sides():
    session = make_session()
    result = run_sync(session, fast_params())
    assert result.duration_cycles == max(
        result.trojan_cycles, result.spy_cycles
    )


def test_sync_then_transmission_works():
    session = make_session()
    result = run_sync(session, fast_params())
    assert result.synced
    transmission = session.transmit([1, 0, 1, 1])
    assert transmission.accuracy == 1.0

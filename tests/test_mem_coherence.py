"""Behavioral tests for the coherence protocol (Section VI semantics)."""

import pytest

from repro.mem.cacheline import CoherenceState, LINE_SIZE
from repro.mem.hierarchy import Machine, MachineConfig
from repro.mem.invariants import check_machine
from repro.mem.latency import NoiseModel
from repro.sim.events import AccessPath

ADDR = 0x80_0000


@pytest.fixture
def m(rng):
    config = MachineConfig(noise=NoiseModel(enabled=False))
    return Machine(config, rng)


def test_first_load_fills_exclusive_from_dram(m):
    _v, _lat, path = m.load(1, ADDR)
    assert path is AccessPath.DRAM
    assert m.private_state(1, ADDR) is CoherenceState.EXCLUSIVE
    entry = m.llc_entry(0, ADDR)
    assert entry.core_valid == {1}
    assert entry.owner == 1
    check_machine(m)


def test_second_core_load_downgrades_owner_to_shared(m):
    m.load(1, ADDR)
    _v, _lat, path = m.load(0, ADDR)
    assert path is AccessPath.LOCAL_EXCL
    assert m.private_state(0, ADDR) is CoherenceState.SHARED
    assert m.private_state(1, ADDR) is CoherenceState.SHARED
    assert m.llc_entry(0, ADDR).owner is None
    assert m.llc_entry(0, ADDR).core_valid == {0, 1}
    check_machine(m)


def test_third_core_served_by_llc(m):
    m.load(1, ADDR)
    m.load(2, ADDR)
    _v, _lat, path = m.load(0, ADDR)
    assert path is AccessPath.LOCAL_SHARED
    check_machine(m)


def test_own_cache_hits(m):
    m.load(1, ADDR)
    _v, _lat, path = m.load(1, ADDR)
    assert path is AccessPath.L1_HIT


def test_llc_hit_after_private_eviction_grants_exclusive(m):
    """popcount==0 with a clean LLC copy: LLC serves, grants E."""
    m.load(1, ADDR)
    domain = m.socket_of(1)
    domain.private_invalidate(domain.core(1), ADDR)  # silent-drop the copy
    _v, _lat, path = m.load(2, ADDR)
    assert path is AccessPath.LOCAL_SHARED  # same latency band as S
    assert m.private_state(2, ADDR) is CoherenceState.EXCLUSIVE
    check_machine(m)


def test_remote_exclusive_path(m):
    m.load(6, ADDR)  # socket 1
    _v, _lat, path = m.load(0, ADDR)  # socket 0
    assert path is AccessPath.REMOTE_EXCL
    # remote owner downgraded; line now shared across sockets
    assert m.private_state(6, ADDR) is CoherenceState.SHARED
    assert m.private_state(0, ADDR) is CoherenceState.SHARED
    check_machine(m)


def test_remote_shared_path(m):
    m.load(6, ADDR)
    m.load(7, ADDR)
    _v, _lat, path = m.load(0, ADDR)
    assert path is AccessPath.REMOTE_SHARED
    check_machine(m)


def test_flush_removes_everywhere(m):
    m.load(0, ADDR)
    m.load(6, ADDR)
    m.flush(3, ADDR)
    for core in (0, 6):
        assert m.private_state(core, ADDR) is CoherenceState.INVALID
    assert m.llc_entry(0, ADDR) is None
    assert m.llc_entry(1, ADDR) is None
    _v, _lat, path = m.load(0, ADDR)
    assert path is AccessPath.DRAM
    check_machine(m)


def test_store_acquires_modified(m):
    m.load(0, ADDR)
    m.store(0, ADDR, 42)
    assert m.private_state(0, ADDR) is CoherenceState.MODIFIED
    check_machine(m)


def test_store_invalidates_other_sharers(m):
    m.load(0, ADDR)
    m.load(1, ADDR)
    m.load(6, ADDR)
    m.store(2, ADDR, 7)
    for core in (0, 1, 6):
        assert m.private_state(core, ADDR) is CoherenceState.INVALID
    assert m.private_state(2, ADDR) is CoherenceState.MODIFIED
    check_machine(m)


def test_store_value_visible_to_readers(m):
    m.store(0, ADDR, 99)
    value, _lat, _path = m.load(6, ADDR)
    assert value == 99
    check_machine(m)


def test_dirty_value_survives_flush(m):
    m.store(0, ADDR, 123)
    m.flush(0, ADDR)
    value, _lat, path = m.load(1, ADDR)
    assert value == 123
    assert path is AccessPath.DRAM


def test_write_hit_in_modified_is_cheap(m):
    m.store(0, ADDR, 1)
    latency, path = m.store(0, ADDR, 2)
    assert path is AccessPath.L1_HIT
    value, _lat, _p = m.load(0, ADDR)
    assert value == 2


def test_modified_owner_services_reads(m):
    m.store(1, ADDR, 5)
    value, _lat, path = m.load(0, ADDR)
    assert value == 5
    assert path is AccessPath.LOCAL_EXCL  # forwarded from the M owner
    check_machine(m)


def test_core_valid_bits_track_private_evictions(m):
    """Filling many lines of the same L2 set evicts and clears cvb."""
    m.load(1, ADDR)
    cfg = m.config
    way_stride = cfg.l2_sets * LINE_SIZE
    # Overfill the L2 set that ADDR maps to.
    for way in range(cfg.l2_assoc + 2):
        m.load(1, ADDR + (way + 1) * way_stride)
    entry = m.llc_entry(0, ADDR)
    if entry is not None:
        assert 1 not in entry.core_valid or \
            m.private_state(1, ADDR) is not CoherenceState.INVALID
    check_machine(m)


def test_llc_eviction_back_invalidates(m):
    """Inclusive LLC: evicting the LLC line drops private copies too."""
    m.load(1, ADDR)
    cfg = m.config
    way_stride = cfg.llc_sets * LINE_SIZE
    for way in range(cfg.llc_assoc + 4):
        m.load(2, ADDR + (way + 1) * way_stride)
    # ADDR's set received llc_assoc+4 new lines; ADDR must be gone and
    # core 1's private copy back-invalidated with it.
    assert m.llc_entry(0, ADDR) is None
    assert m.private_state(1, ADDR) is CoherenceState.INVALID
    check_machine(m)


def test_latency_bands_are_ordered(m):
    lat = {}
    m.flush(0, ADDR)
    m.load(1, ADDR)
    _v, lat["local_excl"], _p = m.load(0, ADDR)
    m.flush(0, ADDR)
    m.load(1, ADDR)
    m.load(2, ADDR)
    _v, lat["local_shared"], _p = m.load(0, ADDR)
    m.flush(0, ADDR)
    m.load(6, ADDR)
    _v, lat["remote_excl"], _p = m.load(0, ADDR)
    m.flush(0, ADDR)
    m.load(6, ADDR)
    m.load(7, ADDR)
    _v, lat["remote_shared"], _p = m.load(0, ADDR)
    m.flush(0, ADDR)
    _v, lat["dram"], _p = m.load(0, ADDR)
    assert (lat["local_shared"] < lat["local_excl"]
            < lat["remote_shared"] < lat["remote_excl"] < lat["dram"])


def test_global_coherence_state(m):
    assert m.global_coherence_state(ADDR) is CoherenceState.INVALID
    m.load(0, ADDR)
    assert m.global_coherence_state(ADDR) is CoherenceState.EXCLUSIVE
    m.load(1, ADDR)
    assert m.global_coherence_state(ADDR) is CoherenceState.SHARED
    m.store(0, ADDR, 1)
    assert m.global_coherence_state(ADDR) is CoherenceState.MODIFIED


def test_llc_direct_e_response_merges_bands(rng):
    config = MachineConfig(
        noise=NoiseModel(enabled=False), llc_direct_e_response=True
    )
    m = Machine(config, rng)
    m.load(1, ADDR)
    _v, lat_e, path = m.load(0, ADDR)
    assert path is AccessPath.LOCAL_EXCL
    assert lat_e == pytest.approx(m.config.latency.local_shared, abs=1.0)

"""Robustness scenarios beyond the happy path."""

import pytest

from repro.channel.config import (
    LEXCL,
    RSHARED,
    TABLE_I,
    ProtocolParams,
    Scenario,
    scenario_by_name,
)
from repro.channel.session import ChannelSession, SessionConfig, resolve_spec
from repro.channel.symbols import MultiBitSession, SymbolParams
from repro.experiments.common import payload_bits

PAYLOAD = payload_bits(40)


def test_multibit_under_noise_degrades_gracefully():
    clean = MultiBitSession(seed=9, calibration_samples=200)
    noisy = MultiBitSession(seed=9, calibration_samples=200, noise_threads=6)
    bits = payload_bits(60)
    clean_acc = clean.transmit(bits).accuracy
    noisy.transmit(bits[:20])  # steady-state warm-up
    noisy_acc = noisy.transmit(bits).accuracy
    assert clean_acc == 1.0
    assert 0.6 <= noisy_acc <= clean_acc


def test_every_unordered_scenario_pair_works():
    """Scenarios beyond Table I (e.g. swapped roles) also function."""
    scenario = Scenario(csc=RSHARED, csb=LEXCL)  # Table I row 5
    swapped = Scenario(csc=LEXCL, csb=RSHARED)   # its role-swapped twin
    for sc in (scenario, swapped):
        session = ChannelSession(SessionConfig(
            spec=resolve_spec(sc), seed=3, calibration_samples=200,
        ))
        assert session.transmit(PAYLOAD[:16]).accuracy == 1.0


@pytest.mark.parametrize("c1,c0,cb", [(4, 2, 2), (6, 3, 3), (7, 2, 4)])
def test_alternate_symbol_structures(c1, c0, cb):
    params = ProtocolParams(c1=c1, c0=c0, cb=cb)
    session = ChannelSession(SessionConfig(
        spec=TABLE_I[0].name, seed=3, params=params,
        calibration_samples=200,
    ))
    assert session.transmit(PAYLOAD[:16]).accuracy == 1.0


def test_spy_sharing_core_with_heavy_thread():
    """Oversubscribing the spy's core injects outliers, not hangs."""
    session = ChannelSession(SessionConfig(
        spec=TABLE_I[0].name, seed=3, calibration_samples=200,
        params=ProtocolParams(max_reception_slots=3_000),
    ))
    squatter_proc = session.kernel.create_process("squatter")

    def squatter(cpu):
        while True:
            yield from cpu.delay(5_000)

    session.kernel.spawn(squatter_proc, "squatter", squatter,
                         core_id=session.config.spy_core, daemon=True)
    result = session.transmit(PAYLOAD)
    # fair-share slowdown halves the spy's pace; decode may degrade but
    # the transmission terminates with a sane outcome
    assert 0.0 <= result.accuracy <= 1.0
    assert len(result.samples) > 0


def test_shared_page_survives_many_transmissions():
    session = ChannelSession(SessionConfig(
        spec="RExclc-LExclb", seed=3,
        calibration_samples=200,
    ))
    for i in range(5):
        assert session.transmit(PAYLOAD[:10]).accuracy == 1.0
    # still the same merged frame
    assert (session.trojan_proc.translate(session.trojan_va)
            == session.spy_proc.translate(session.spy_va))


def test_multi_page_explicit_sharing(kernel_env):
    machine, sim, kernel = kernel_env
    a = kernel.create_process("a")
    b = kernel.create_process("b")
    bases = kernel.map_shared_readonly([a, b], n_pages=3)
    for page in range(3):
        assert (a.translate(bases[0] + page * 4096)
                == b.translate(bases[1] + page * 4096))


def test_symbol_channel_with_low_rate():
    session = MultiBitSession(
        symbol_params=SymbolParams().at_rate(300), seed=4,
        calibration_samples=200,
    )
    bits = payload_bits(40)
    result = session.transmit(bits)
    assert result.accuracy == 1.0
    assert result.achieved_rate_kbps == pytest.approx(300, rel=0.3)

"""Grid-throughput optimizations stay bit-identical and compact.

PR 4 makes the grid the unit of optimization: memoized calibration,
warm-worker machine reuse, chunked pool dispatch, and compact sample
transport.  Every one of those is a pure speedup — these tests pin the
contract that none of them may change a single observable bit, under
clean runs, injected faults, and mid-grid worker kills alike, and that
the transport layer actually shrinks what travels and what lands on
disk.
"""

from __future__ import annotations

import hashlib
import os
import pickle

import pytest

from repro.channel.calibration import (
    DEFAULT_CALIBRATION_SAMPLES,
    PAPER_CALIBRATION_SAMPLES,
    clear_calibration_memo,
)
from repro.channel.decoder import Sample, pack_samples, unpack_samples
from repro.channel.session import (
    SessionConfig,
    clear_warm_state,
    execute_point,
)
from repro.faults import FaultInjector, FaultPlan
from repro.runner import (
    ExperimentSpec,
    FailurePolicy,
    Point,
    ResultCache,
    Runner,
    auto_chunk_size,
    chunk_pending,
)
from repro.runner.cache import (
    COMPRESS_THRESHOLD,
    ENTRY_MAGIC,
    decode_entry,
    encode_entry,
)
from repro.sim.events import AccessPath

PAYLOAD = [1, 0, 1, 1, 0, 0, 1, 0]


def result_digest(result) -> str:
    """Everything observable about one transmission, hashed."""
    return hashlib.sha256(pickle.dumps((
        result.sent,
        result.received,
        [(s.timestamp, s.latency, s.label, str(s.path))
         for s in result.samples],
        result.cycles,
    ))).hexdigest()


def values_digest(values) -> str:
    return hashlib.sha256(
        "".join(result_digest(v) for v in values).encode()
    ).hexdigest()


@pytest.fixture
def cold_process(monkeypatch):
    """Fresh warm-pool/memo state, optimizations enabled."""
    monkeypatch.delenv("REPRO_WARM_WORKERS", raising=False)
    monkeypatch.delenv("REPRO_CALIBRATION_MEMO", raising=False)
    monkeypatch.delenv("REPRO_CHUNK_SIZE", raising=False)
    clear_warm_state()
    yield
    clear_warm_state()


def channel_spec(n: int = 4, bits: int = 6) -> ExperimentSpec:
    points = tuple(
        Point(
            fn="repro.bench.harness:grid_point",
            params={"scenario": "LExclc-LSharedb",
                    "rate": 300.0 + 100.0 * i, "seed": 0, "bits": bits},
        )
        for i in range(n)
    )
    return ExperimentSpec(experiment="grid-test", points=points)


# -- chunk planning ----------------------------------------------------


def test_auto_chunk_size_scales_with_grid():
    assert auto_chunk_size(64, 4) == 4
    assert auto_chunk_size(640, 4) == 8  # capped
    assert auto_chunk_size(4, 2) == 1  # small grids stay per-point
    assert auto_chunk_size(0, 4) == 1


def test_chunk_pending_covers_groups_and_preserves_singletons():
    points = tuple(
        Point(fn="tests.runner_points:square", params={"x": i, "seed": i % 2})
        for i in range(10)
    )
    chunks = chunk_pending(points, list(range(10)), 3)
    flat = sorted(i for chunk in chunks for i in chunk)
    assert flat == list(range(10))
    assert all(len(chunk) <= 3 for chunk in chunks)
    # seed-grouped: the first chunks hold only seed-0 points
    assert {points[i].params["seed"] for i in chunks[0]} == {0}
    # chunk_size=1 keeps the caller's order exactly
    assert chunk_pending(points, [7, 2, 5], 1) == [[7], [2], [5]]


def test_runner_chunk_size_env_default(monkeypatch):
    monkeypatch.setenv("REPRO_CHUNK_SIZE", "3")
    assert Runner(jobs=2).chunk_size == 3
    assert Runner(jobs=2, chunk_size=5).chunk_size == 5
    monkeypatch.delenv("REPRO_CHUNK_SIZE")
    assert Runner(jobs=2).chunk_size is None
    with pytest.raises(ValueError):
        Runner(jobs=2, chunk_size=0)


def test_chunked_pool_matches_serial_cheap():
    points = tuple(
        Point(fn="tests.runner_points:square", params={"x": i})
        for i in range(13)
    )
    spec = ExperimentSpec(experiment="chunk-cheap", points=points)
    serial = Runner(jobs=1).run(spec).values
    for chunk_size in (1, 3, 13):
        assert Runner(jobs=3, chunk_size=chunk_size).run(spec).values == serial


# -- bit-identity across execution modes -------------------------------


def test_grid_bit_identical_serial_pool_chunked(cold_process, monkeypatch):
    """The tentpole property: every mode reproduces the PR 3 path."""
    spec = channel_spec()
    # reference: optimizations off, serial — the pre-PR4 execution path
    monkeypatch.setenv("REPRO_WARM_WORKERS", "0")
    monkeypatch.setenv("REPRO_CALIBRATION_MEMO", "0")
    reference = values_digest(Runner(jobs=1).run(spec).values)
    monkeypatch.delenv("REPRO_WARM_WORKERS")
    monkeypatch.delenv("REPRO_CALIBRATION_MEMO")

    clear_warm_state()
    warm_serial = values_digest(Runner(jobs=1).run(spec).values)
    clear_warm_state()
    pooled = values_digest(Runner(jobs=2, chunk_size=1).run(spec).values)
    clear_warm_state()
    chunked = values_digest(Runner(jobs=2, chunk_size=2).run(spec).values)

    assert warm_serial == reference
    assert pooled == reference
    assert chunked == reference


def test_grid_bit_identical_under_injected_faults(cold_process):
    """Transient harness faults + retries never change the values."""
    spec = channel_spec(n=3)
    clean = values_digest(Runner(jobs=1).run(spec).values)

    plan = FaultPlan.build_harness(
        seed=7, n_points=len(spec.points), rate=0.9, kinds=("transient",)
    )
    assert plan.harness_events, "plan must actually inject something"
    clear_warm_state()
    report = Runner(
        jobs=2,
        chunk_size=2,
        policy=FailurePolicy(retries=2, keep_going=False),
        injector=FaultInjector(plan),
    ).run(spec)
    assert values_digest(report.values) == clean
    assert any(o.attempts > 1 for o in report.outcomes)


def test_grid_bit_identical_after_mid_grid_worker_kill(
    cold_process, tmp_path
):
    """A killed worker mid-chunk: respawn, retry, same bits."""
    spec = channel_spec(n=4)
    clean = values_digest(Runner(jobs=1).run(spec).values)

    plan = FaultPlan(events=(
        FaultPlan.from_json({
            "seed": 0,
            "events": [{"plane": "harness", "kind": "worker_kill",
                        "point": 2, "attempts": 1}],
        }).events[0],
    ))
    clear_warm_state()
    report = Runner(
        jobs=2,
        chunk_size=2,
        policy=FailurePolicy(retries=1),
        injector=FaultInjector(plan),
    ).run(spec)
    assert report.pool_respawns >= 1
    assert values_digest(report.values) == clean


# -- calibration memo --------------------------------------------------


def test_calibration_memo_transparent(cold_process):
    first = execute_point(
        scenario="LExclc-LSharedb", payload=PAYLOAD, seed=3
    )
    # second run hits both the machine pool and the calibration memo
    second = execute_point(
        scenario="LExclc-LSharedb", payload=PAYLOAD, seed=3
    )
    assert result_digest(first) == result_digest(second)
    assert clear_calibration_memo() >= 1


def test_calibration_memo_keyed_by_seed(cold_process):
    a = execute_point(scenario="LExclc-LSharedb", payload=PAYLOAD, seed=1)
    b = execute_point(scenario="LExclc-LSharedb", payload=PAYLOAD, seed=2)
    assert result_digest(a) != result_digest(b)


def test_calibration_memo_bypassed_for_simulation_faults(cold_process):
    faults = FaultPlan.build_simulation(
        seed=1, rate_per_mcycle=5.0, window_cycles=2_000_000.0,
        kinds=("latency_spike",),
    ).to_json()
    execute_point(
        scenario="LExclc-LSharedb", payload=PAYLOAD, seed=9, faults=faults
    )
    # a fault-injected session must not have populated the memo
    assert clear_calibration_memo() == 0


def test_session_config_defaults_documented_constants():
    assert PAPER_CALIBRATION_SAMPLES == 1000
    assert SessionConfig.__dataclass_fields__[
        "calibration_samples"
    ].default == DEFAULT_CALIBRATION_SAMPLES


# -- compact sample transport ------------------------------------------


def test_pack_samples_roundtrip():
    samples = [
        Sample(timestamp=float(i), latency=40.0 + i, label="cbx"[i % 3],
               path=AccessPath.LOCAL_SHARED if i % 2 else None)
        for i in range(50)
    ]
    packed = pack_samples(samples)
    assert isinstance(packed, tuple)
    assert unpack_samples(packed) == samples
    # plain lists pass through (legacy pickles)
    assert unpack_samples(list(samples)) == samples


def test_pack_samples_falls_back_on_exotic_payloads():
    odd = [Sample(timestamp=0.0, latency=1.0, label="long", path=None)]
    assert pack_samples(odd) == odd  # unpackable label -> raw list
    alien = [Sample(timestamp=0.0, latency=1.0, label="c", path="strange")]
    assert pack_samples(alien) == alien


def test_transmission_result_pickles_compact(cold_process):
    result = execute_point(
        scenario="LExclc-LSharedb", payload=PAYLOAD * 4, seed=0
    )
    blob = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
    legacy = pickle.dumps(
        dict(result.__dict__), protocol=pickle.HIGHEST_PROTOCOL
    )
    assert pickle.loads(blob).samples == result.samples
    # the acceptance bar: at least 30% smaller than object-sample form
    assert len(blob) <= 0.7 * len(legacy)


# -- cache schema v2 ---------------------------------------------------


def test_entry_encoding_roundtrip_and_compression():
    small = {"accuracy": 0.25}
    blob = encode_entry(small)
    assert blob.startswith(ENTRY_MAGIC)
    assert decode_entry(blob) == small
    big = list(range(COMPRESS_THRESHOLD))
    compressed = encode_entry(big)
    assert compressed[len(ENTRY_MAGIC)] & 0x01  # zlib flag
    assert decode_entry(compressed) == big
    assert len(compressed) < len(pickle.dumps(big))
    # legacy (v1) entries are bare pickles and still decode
    assert decode_entry(pickle.dumps(big)) == big


def test_cache_reads_legacy_bare_pickle_entry(tmp_path):
    cache = ResultCache(tmp_path)
    point = Point(fn="tests.runner_points:square", params={"x": 2})
    path = cache.path_for(point)
    path.parent.mkdir(parents=True)
    path.write_bytes(pickle.dumps(4))  # schema v1 bytes, v2 location
    assert cache.lookup(point) == (True, 4)


def test_cache_stats_and_gc(tmp_path):
    # a legacy flat-layout entry and a stale-salt generation
    legacy = tmp_path / "ab" / "ab00.pkl"
    legacy.parent.mkdir(parents=True)
    legacy.write_bytes(pickle.dumps(1.0))
    stale = tmp_path / "repro-0.9.0" / "cd" / "cd00.pkl"
    stale.parent.mkdir(parents=True)
    stale.write_bytes(encode_entry(2.0))

    cache = ResultCache(tmp_path)
    point = Point(fn="tests.runner_points:square", params={"x": 3})
    cache.store(point, 9)

    stats = cache.stats()
    assert stats["entries"] == 3
    generations = stats["generations"]
    assert generations["legacy"]["schemas"] == {"v1": 1}
    assert generations["repro-0.9.0"]["schemas"] == {"v2": 1}
    current = [g for g in generations.values() if g["current"]]
    assert len(current) == 1 and current[0]["entries"] == 1

    removed, freed = cache.gc()
    assert removed == 2 and freed > 0
    assert cache.lookup(point) == (True, 9)  # current generation survives
    assert not legacy.exists() and not stale.exists()
    after = cache.stats()
    assert set(after["generations"]) == {
        name for name, info in after["generations"].items() if info["current"]
    }


def test_cache_cli_stats_and_gc(tmp_path, capsys, monkeypatch):
    from repro.cli import main

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    stale = tmp_path / "repro-0.9.0" / "aa" / "aa00.pkl"
    stale.parent.mkdir(parents=True)
    stale.write_bytes(encode_entry(1.0))

    assert main(["cache", "stats"]) == 0
    out = capsys.readouterr().out
    assert "repro-0.9.0" in out and "(stale)" in out

    assert main(["cache", "gc"]) == 0
    out = capsys.readouterr().out
    assert "pruned 1" in out
    assert not stale.exists()


def test_grid_cache_entries_shrink_at_least_30_percent(
    cold_process, tmp_path
):
    """The acceptance criterion on disk: schema v2 ≥30% smaller."""
    spec = channel_spec(n=2)
    cache = ResultCache(tmp_path)
    values = Runner(jobs=1, cache=cache).run(spec).values
    v2_bytes = sum(
        cache.path_for(p).stat().st_size for p in spec.points
    )
    legacy_bytes = sum(
        len(pickle.dumps(dict(v.__dict__),
                         protocol=pickle.HIGHEST_PROTOCOL))
        for v in values
    )
    assert v2_bytes <= 0.7 * legacy_bytes
    # and the cached entries decode back bit-identically
    rerun = Runner(jobs=1, cache=cache).run(spec)
    assert rerun.cache_hits == len(spec.points)
    assert values_digest(rerun.values) == values_digest(values)

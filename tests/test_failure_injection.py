"""Failure injection: the channel and stack degrade gracefully.

Covert channels run in hostile conditions — workers get killed,
transmissions are cut short, third parties touch the shared line, memory
runs out.  These tests verify that every such failure produces a clean,
observable outcome (degraded accuracy, a typed error) rather than a hang
or a corrupted simulation.
"""

import pytest

from repro.channel.config import TABLE_I, ProtocolParams
from repro.channel.decoder import BitDecoder
from repro.channel.session import ChannelSession, SessionConfig
from repro.channel.spy import SpyResult, spy_program
from repro.channel.trojan import TrojanControl, controller_program, worker_roles
from repro.errors import OutOfMemoryError, SyncTimeoutError
from repro.mem.invariants import check_machine

PAYLOAD = [1, 0, 1, 1, 0, 0, 1, 0] * 3


def make_session(seed=31, **kwargs):
    params = kwargs.pop("params", ProtocolParams(max_poll_slots=300,
                                                 max_reception_slots=2_000))
    return ChannelSession(SessionConfig(
        spec=kwargs.pop("scenario", TABLE_I[0]).name,
        seed=seed, calibration_samples=200, params=params, **kwargs,
    ))


def test_spy_alone_times_out_cleanly():
    """No trojan at all: the spy's polling gives up with a typed error."""
    session = make_session()
    decoder = BitDecoder(session.bands, session.config.scenario,
                         session.config.params)
    result = SpyResult()
    session.kernel.spawn(
        session.spy_proc, "spy-alone",
        spy_program(result, decoder, session.config.params, session.spy_va),
        core_id=0,
    )
    with pytest.raises(SyncTimeoutError):
        session.sim.run()
    assert result.timed_out
    check_machine(session.machine)


def test_trojan_workers_killed_mid_transmission():
    """Killing the reader threads cuts the channel but nothing hangs."""
    session = make_session()
    cfg = session.config
    control = TrojanControl()
    decoder = BitDecoder(session.bands, cfg.scenario, cfg.params)
    spy_result = SpyResult()
    session.spawn_workers(worker_roles(cfg.scenario), control, 0)
    session.spawn_controller(
        controller_program(control, cfg.scenario, cfg.params,
                           session.trojan_va, list(PAYLOAD)), 0)
    session.kernel.spawn(
        session.spy_proc, "spy-0",
        spy_program(spy_result, decoder, cfg.params, session.spy_va),
        core_id=0,
    )
    kill_after = 30_000.0

    def assassin(simulator):
        if simulator.global_clock > kill_after:
            for thread in simulator.threads:
                if thread.name.startswith("trojan-L") or \
                        thread.name.startswith("trojan-R"):
                    thread.kill()
            return False
        return False

    session.sim.run(stop_when=assassin)
    report = decoder.decode(spy_result.samples)
    # the spy got a prefix at best; the stack stayed coherent
    assert len(report.bits) < len(PAYLOAD)
    check_machine(session.machine)


def test_controller_stops_early_spy_gets_prefix():
    session = make_session()
    cfg = session.config
    control = TrojanControl()
    decoder = BitDecoder(session.bands, cfg.scenario, cfg.params)
    spy_result = SpyResult()
    session.spawn_workers(worker_roles(cfg.scenario), control, 0)
    # only the first 6 bits are ever sent
    session.spawn_controller(
        controller_program(control, cfg.scenario, cfg.params,
                           session.trojan_va, list(PAYLOAD[:6])), 0)
    session.kernel.spawn(
        session.spy_proc, "spy-0",
        spy_program(spy_result, decoder, cfg.params, session.spy_va),
        core_id=0,
    )
    session.sim.run()
    report = decoder.decode(spy_result.samples)
    assert report.bits == PAYLOAD[:6]


def test_resync_exhaustion_is_typed_with_doubling_backoff(monkeypatch):
    """Every re-synchronization retry is consumed: the typed
    SyncTimeoutError propagates, and the inter-attempt idle doubled
    per attempt (Section VII-A exponential backoff)."""
    session = make_session()
    cfg = session.config
    assert cfg.resync_attempts == 2

    idles = []
    monkeypatch.setattr(session, "idle", lambda cycles: idles.append(cycles))

    def always_desynced(self, *args, **kwargs):
        raise SyncTimeoutError("handshake never converged (forced)")

    monkeypatch.setattr(ChannelSession, "_transmit_once", always_desynced)
    with pytest.raises(SyncTimeoutError):
        session.transmit(list(PAYLOAD[:4]))
    # every retry was spent...
    assert session.resyncs == cfg.resync_attempts
    # ...and each backoff doubled the previous one
    base = cfg.resync_backoff_cycles
    assert idles == [base, 2 * base]


def test_third_party_flusher_disrupts_but_terminates():
    """An unrelated process flushing the same line injects chaos only."""
    session = make_session()
    other = session.kernel.create_process("interloper")
    va = other.map_frame(
        session.kernel.phys.pfn_of(session.spy_proc.translate(session.spy_va))
    )

    def flusher(cpu):
        while True:
            yield from cpu.flush(va)
            yield from cpu.delay(777.0)

    session.kernel.spawn(other, "flusher", flusher, core_id=5, daemon=True)
    result = session.transmit(PAYLOAD)
    # outcome may be poor, but it terminates and stays coherent
    assert 0.0 <= result.accuracy <= 1.0
    check_machine(session.machine)


def test_out_of_memory_is_typed():
    from repro.kernel.process import Process
    from repro.mem.physical import PhysicalMemory

    phys = PhysicalMemory(n_frames=4)
    process = Process(1, "p", phys)
    with pytest.raises(OutOfMemoryError):
        process.mmap(10)


def test_payload_of_one_bit():
    session = make_session()
    result = session.transmit([1])
    assert result.received == [1]


def test_empty_payload():
    session = make_session()
    result = session.transmit([])
    # nothing sent: the spy sees the lead-in then quiet; decode is empty
    assert result.received in ([], [0], [1])
    assert result.alignment.sent == 0


def test_long_payload_terminates():
    session = make_session(params=ProtocolParams())
    payload = PAYLOAD * 20  # 480 bits
    result = session.transmit(payload)
    assert result.accuracy >= 0.99
    check_machine(session.machine)


def test_all_scenarios_survive_machine_invariants(session_factory):
    for scenario in TABLE_I:
        session = session_factory(scenario=scenario)
        session.transmit([1, 0, 1])
        check_machine(session.machine)

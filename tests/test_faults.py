"""The fault-injection subsystem and the self-healing runner.

Covers, per plane:

* **plans** — bit-for-bit replay identity of generated fault plans and
  their JSON round-trip;
* **harness** — deterministic retry backoff, per-point timeouts, killed
  pool workers (real ``BrokenProcessPool`` recovery), keep-going partial
  reports, torn cache entries, resume-from-cache after an aborted sweep;
* **simulation** — a severed shared page recovered by bounded
  re-synchronization, and graceful degradation under third-party
  touches, forced preemption and latency spikes.
"""

import pickle
import threading
import time

import pytest

from repro.channel.config import TABLE_I, ProtocolParams
from repro.channel.session import ChannelSession, SessionConfig
from repro.errors import (
    FaultError,
    IncompleteRunError,
    InjectedFaultError,
    PointExecutionError,
    PointTimeoutError,
    SyncTimeoutError,
    WorkerCrashError,
)
from repro.faults import FaultEvent, FaultInjector, FaultPlan
from repro.mem.invariants import check_machine
from repro.runner import (
    ExperimentSpec,
    FailurePolicy,
    Point,
    ResultCache,
    Runner,
    RunReport,
)

SQUARE = "tests.runner_points:square"
RECORD = "tests.runner_points:record"
BOOM = "tests.runner_points:boom"
FLAKY = "tests.runner_points:flaky"
KILL = "tests.runner_points:kill_worker"
SLOW = "tests.runner_points:slow_point"

PAYLOAD = [1, 0, 1, 1, 0, 0, 1, 0] * 4


def square_spec(n=4):
    return ExperimentSpec(
        experiment="toy",
        points=tuple(
            Point(fn=SQUARE, params={"x": i}, label=f"x={i}")
            for i in range(n)
        ),
    )


# -- fault plans ----------------------------------------------------------


def test_harness_plan_replays_bit_identically():
    a = FaultPlan.build_harness(seed=5, n_points=50, rate=0.3)
    b = FaultPlan.build_harness(seed=5, n_points=50, rate=0.3)
    assert a.events == b.events
    assert a.key() == b.key()
    assert len(a) > 0
    # A different seed yields a different plan.
    c = FaultPlan.build_harness(seed=6, n_points=50, rate=0.3)
    assert a.key() != c.key()


def test_simulation_plan_replays_bit_identically():
    a = FaultPlan.build_simulation(seed=9, rate_per_mcycle=8.0,
                                   window_cycles=500_000.0)
    b = FaultPlan.build_simulation(seed=9, rate_per_mcycle=8.0,
                                   window_cycles=500_000.0)
    assert a.events == b.events and a.key() == b.key()
    assert len(a) == 4  # round(8 * 0.5)
    # Events come back sorted by start time.
    starts = [e.at_cycles for e in a.events]
    assert starts == sorted(starts)


def test_plan_json_round_trip():
    plan = FaultPlan.build_harness(seed=3, n_points=20, rate=0.5)
    restored = FaultPlan.from_json(plan.to_json())
    assert restored == plan and restored.key() == plan.key()
    assert FaultPlan.from_json(None) == FaultPlan()
    assert FaultPlan.from_json(plan) is plan


def test_plan_validation():
    with pytest.raises(FaultError):
        FaultEvent(plane="nope", kind="transient")
    with pytest.raises(FaultError):
        FaultEvent(plane="harness", kind="third_party_touch")
    with pytest.raises(FaultError):
        FaultEvent(plane="harness", kind="transient", attempts=0)
    with pytest.raises(FaultError):
        FaultPlan.build_harness(seed=0, n_points=5, rate=1.5)
    with pytest.raises(FaultError):
        FaultPlan.build_simulation(seed=0, rate_per_mcycle=1.0,
                                   window_cycles=1e6, kinds=("transient",))


def test_injector_rejects_duplicate_point_events():
    events = (
        FaultEvent(plane="harness", kind="transient", point=1),
        FaultEvent(plane="harness", kind="slow", point=1),
    )
    with pytest.raises(FaultError):
        FaultInjector(FaultPlan(seed=0, events=events))


def test_injector_fires_per_attempt_and_logs():
    plan = FaultPlan(seed=0, events=(
        FaultEvent(plane="harness", kind="transient", point=2, attempts=2),
    ))
    injector = FaultInjector(plan)
    assert injector.event_for(0, 0) is None          # other point
    assert injector.event_for(2, 0).kind == "transient"
    assert injector.event_for(2, 1).kind == "transient"
    assert injector.event_for(2, 2) is None          # budget spent
    assert injector.fired == [(2, 0, "transient"), (2, 1, "transient")]


# -- deterministic backoff ------------------------------------------------


def test_backoff_deterministic_per_seed():
    a = FailurePolicy(retries=3, seed=11)
    b = FailurePolicy(retries=3, seed=11)
    schedule_a = [a.backoff_seconds("p", k) for k in (1, 2, 3)]
    schedule_b = [b.backoff_seconds("p", k) for k in (1, 2, 3)]
    assert schedule_a == schedule_b
    assert FailurePolicy(seed=12).backoff_seconds("p", 1) != schedule_a[0]
    # Jitter keeps the sleep within +/- jitter of the exponential base.
    plain = FailurePolicy(seed=11, jitter=0.0)
    for k, jittered in enumerate(schedule_a, start=1):
        base = plain.backoff_seconds("p", k)
        assert base * 0.5 <= jittered <= base * 1.5


def test_backoff_grows_and_caps():
    policy = FailurePolicy(jitter=0.0, backoff_base=1.0, backoff_factor=2.0,
                           backoff_max=3.0)
    assert policy.backoff_seconds("p", 1) == 1.0
    assert policy.backoff_seconds("p", 2) == 2.0
    assert policy.backoff_seconds("p", 3) == 3.0  # capped
    assert policy.backoff_seconds("p", 9) == 3.0


# -- serial retries and faults --------------------------------------------


def fast_policy(**kwargs):
    kwargs.setdefault("backoff_base", 0.001)
    kwargs.setdefault("backoff_max", 0.01)
    return FailurePolicy(**kwargs)


def test_serial_retry_recovers_flaky_point(tmp_path):
    spec = ExperimentSpec(experiment="toy", points=(
        Point(fn=FLAKY, params={"x": 3, "counter": str(tmp_path / "c"),
                                "fail_times": 2}),
    ))
    report = Runner(jobs=1, policy=fast_policy(retries=2)).run(spec)
    assert report.values == [300]
    assert report.outcomes[0].attempts == 3


def test_serial_retry_budget_exhausted_raises(tmp_path):
    spec = ExperimentSpec(experiment="toy", points=(
        Point(fn=FLAKY, params={"x": 3, "counter": str(tmp_path / "c"),
                                "fail_times": 5}, label="stubborn"),
    ))
    with pytest.raises(PointExecutionError, match="stubborn"):
        Runner(jobs=1, policy=fast_policy(retries=1)).run(spec)


def test_injected_transient_fault_consumed_by_retries():
    plan = FaultPlan(seed=0, events=(
        FaultEvent(plane="harness", kind="transient", point=1, attempts=1),
    ))
    report = Runner(jobs=1, policy=fast_policy(retries=1),
                    injector=FaultInjector(plan)).run(square_spec(3))
    assert report.values == [0, 1, 4]
    assert report.outcomes[1].attempts == 2
    assert FaultInjector(plan).event_for(1, 0) is not None  # replays


def test_injected_fault_replay_identical_fired_log():
    plan = FaultPlan.build_harness(seed=4, n_points=6, rate=0.6,
                                   kinds=("transient",))
    logs = []
    for _ in range(2):
        injector = FaultInjector(plan)
        Runner(jobs=1, policy=fast_policy(retries=3),
               injector=injector).run(square_spec(6))
        logs.append(list(injector.fired))
    assert logs[0] == logs[1] and logs[0]


def test_serial_worker_kill_degrades_without_killing_parent():
    plan = FaultPlan(seed=0, events=(
        FaultEvent(plane="harness", kind="worker_kill", point=0, attempts=1),
    ))
    # retries=1: the injected kill (degraded to a transient error in
    # serial mode) consumes the first attempt, the retry succeeds.
    report = Runner(jobs=1, policy=fast_policy(retries=1),
                    injector=FaultInjector(plan)).run(square_spec(2))
    assert report.values == [0, 1]
    # With no retry budget the degraded kill surfaces as a typed error.
    with pytest.raises(PointExecutionError) as excinfo:
        Runner(jobs=1, injector=FaultInjector(plan)).run(square_spec(2))
    assert isinstance(excinfo.value.cause, InjectedFaultError)


def test_per_point_timeout_serial():
    spec = ExperimentSpec(experiment="toy", points=(
        Point(fn=SLOW, params={"x": 1, "seconds": 30.0}, label="wedged"),
    ))
    with pytest.raises(PointExecutionError, match="wedged") as excinfo:
        Runner(jobs=1, policy=FailurePolicy(timeout=0.2)).run(spec)
    assert isinstance(excinfo.value.cause, PointTimeoutError)


def test_per_point_timeout_parallel_keep_going():
    spec = ExperimentSpec(experiment="toy", points=(
        Point(fn=SQUARE, params={"x": 5}),
        Point(fn=SLOW, params={"x": 1, "seconds": 30.0}, label="wedged"),
    ))
    report = Runner(
        jobs=2, policy=FailurePolicy(timeout=0.2, keep_going=True)
    ).run(spec)
    assert report.padded_values() == [25, None]
    (error,) = report.errors
    assert "PointTimeoutError" in str(error.error)


# -- the portable deadline guard -------------------------------------------


def test_deadline_watchdog_fires_from_helper_thread():
    """SIGALRM only works on the main thread; elsewhere the watchdog
    injects PointTimeoutError at the next bytecode boundary."""
    from repro.runner import executor

    outcome = []

    def body():
        try:
            with executor._deadline(0.2):
                stop = time.time() + 10.0
                while time.time() < stop:
                    pass
            outcome.append("finished")
        except PointTimeoutError:
            outcome.append("timed-out")

    worker = threading.Thread(target=body)
    worker.start()
    worker.join(timeout=10.0)
    assert outcome == ["timed-out"]


def test_deadline_watchdog_cancelled_when_body_finishes():
    from repro.runner import executor

    outcome = []

    def body():
        with executor._deadline(0.1):
            outcome.append("ran")
        time.sleep(0.3)  # a leaked timer would misfire in this window
        outcome.append("alive")

    worker = threading.Thread(target=body)
    worker.start()
    worker.join(timeout=10.0)
    assert outcome == ["ran", "alive"]


def test_deadline_warns_when_no_mechanism_available(monkeypatch):
    from repro.runner import executor

    monkeypatch.delattr(executor.signal, "SIGALRM")
    monkeypatch.setattr(executor, "_async_exc_injector", lambda: None)
    ran = []
    with pytest.warns(RuntimeWarning, match="wall-clock limit"):
        with executor._deadline(0.05):
            ran.append(1)
    assert ran == [1]


# -- keep_going and report alignment --------------------------------------


def test_keep_going_reports_typed_errors_in_order():
    spec = ExperimentSpec(experiment="toy", points=(
        Point(fn=SQUARE, params={"x": 1}),
        Point(fn=BOOM, params={"x": 7}, label="seven"),
        Point(fn=SQUARE, params={"x": 3}),
    ))
    report = Runner(jobs=1,
                    policy=FailurePolicy(keep_going=True)).run(spec)
    assert len(report.outcomes) == 3
    (error,) = report.errors
    assert error.index == 1 and "seven" in str(error.error)
    assert report.padded_values(fill="gap") == [1, "gap", 9]
    with pytest.raises(IncompleteRunError, match="seven"):
        report.values


def test_values_raise_on_missing_slot_instead_of_misaligning():
    spec = square_spec(3)
    complete = Runner(jobs=1).run(spec)
    partial = RunReport(spec=spec, outcomes=complete.outcomes[:2])
    with pytest.raises(IncompleteRunError, match="x=2"):
        partial.values
    assert partial.padded_values() == [0, 1, None]


def test_spec_subset():
    spec = square_spec(5)
    sub = spec.subset([0, 3])
    assert [p.params["x"] for p in sub.points] == [0, 3]
    assert sub.experiment == spec.experiment


# -- killed workers (real BrokenProcessPool) ------------------------------


def test_pool_recovers_from_killed_worker(tmp_path):
    """A hard-killed worker breaks the pool; the runner respawns it."""
    points = [Point(fn=SQUARE, params={"x": i}, label=f"x={i}")
              for i in range(3)]
    points.append(Point(
        fn=KILL,
        params={"x": 4, "tripwire": str(tmp_path / "trip")},
        label="victim",
    ))
    spec = ExperimentSpec(experiment="toy", points=tuple(points))
    report = Runner(jobs=2, policy=fast_policy(retries=2)).run(spec)
    assert report.values == [0, 1, 4, 4000]
    assert report.pool_respawns >= 1


def test_killed_worker_keep_going_survivors_byte_identical(tmp_path):
    """Acceptance: injected worker-kill under retries + keep_going.

    The grid completes, the unkillable point surfaces as a typed
    WorkerCrashError outcome, and every surviving value is byte-identical
    to a clean serial run.
    """
    spec = square_spec(4)
    clean = Runner(jobs=1).run(spec).values

    # The kill fires on three consecutive attempts; retries=2 allows
    # exactly three, so the point's budget dies with the third worker.
    plan = FaultPlan(seed=0, events=(
        FaultEvent(plane="harness", kind="worker_kill", point=2, attempts=3),
    ))
    cache = ResultCache(tmp_path, salt="s")
    report = Runner(
        jobs=2, cache=cache,
        policy=fast_policy(retries=2, keep_going=True),
        injector=FaultInjector(plan),
    ).run(spec)

    (error,) = report.errors
    assert error.index == 2 and error.attempts == 3
    assert isinstance(error.error.cause, WorkerCrashError)
    assert report.pool_respawns >= 3
    survivors = report.padded_values()
    for index in (0, 1, 3):
        assert pickle.dumps(survivors[index]) == pickle.dumps(clean[index])
    assert survivors[2] is None


# -- crash-resume from the cache ------------------------------------------


def test_aborted_sweep_resumes_from_cache(tmp_path):
    """Acceptance: completed values survive an aborting failure.

    Run 1 fails fast on a flaky point; every point that completed was
    flushed to the cache first.  Run 2 re-executes only the points run 1
    never finished — each RECORD point executes exactly once across both
    runs.
    """
    log = tmp_path / "log.txt"
    points = [
        Point(fn=RECORD, params={"x": i, "log": str(log)}, label=f"r{i}")
        for i in range(3)
    ]
    points.append(Point(
        fn=FLAKY,
        params={"x": 9, "counter": str(tmp_path / "c"), "fail_times": 1},
        label="flaky",
    ))
    spec = ExperimentSpec(experiment="toy", points=tuple(points))

    with pytest.raises(PointExecutionError, match="flaky"):
        Runner(jobs=2, cache=ResultCache(tmp_path / "cache", salt="s")).run(spec)

    report = Runner(jobs=2,
                    cache=ResultCache(tmp_path / "cache", salt="s")).run(spec)
    assert report.values == [0, 10, 20, 900]
    executed = sorted(log.read_text().split())
    assert executed == ["0", "1", "2"], "a completed point was re-executed"


# -- cache robustness ------------------------------------------------------


def test_cache_sweeps_stale_tmp_files(tmp_path):
    import os
    import time as time_mod

    sub = tmp_path / "ab"
    sub.mkdir()
    stale = sub / "deadbeef.pkl.xyz.tmp"
    stale.write_bytes(b"half-written")
    old = time_mod.time() - 3600
    os.utime(stale, (old, old))
    fresh = sub / "cafef00d.pkl.abc.tmp"
    fresh.write_bytes(b"in-flight")

    cache = ResultCache(tmp_path, salt="s")
    assert cache.swept_tmp == 1
    assert not stale.exists()
    assert fresh.exists(), "young temp files must survive the sweep"


def test_cache_transient_oserror_does_not_delete_entry(tmp_path, monkeypatch):
    cache = ResultCache(tmp_path, salt="s")
    point = Point(fn=SQUARE, params={"x": 2})
    cache.store(point, 4)

    def eio(*_args, **_kwargs):
        raise OSError("I/O error (transient)")

    monkeypatch.setattr("repro.runner.cache.decode_entry", eio)
    hit, _ = cache.lookup(point)
    assert not hit
    assert cache.path_for(point).exists(), "transient OSError deleted entry"
    monkeypatch.undo()
    hit, value = cache.lookup(point)
    assert hit and value == 4


def test_torn_cache_entry_recomputed_next_run(tmp_path):
    plan = FaultPlan(seed=0, events=(
        FaultEvent(plane="harness", kind="torn_cache", point=0),
    ))
    spec = square_spec(2)
    injector = FaultInjector(plan)
    cache = ResultCache(tmp_path, salt="s")
    first = Runner(jobs=1, cache=cache, injector=injector).run(spec)
    assert first.values == [0, 1]
    assert (0, 0, "torn_cache") in injector.fired
    torn_path = cache.path_for(spec.points[0])
    assert torn_path.read_bytes() == b"torn by fault injection"

    second = Runner(jobs=1, cache=ResultCache(tmp_path, salt="s")).run(spec)
    assert second.values == [0, 1]
    assert second.cache_hits == 1 and second.cache_misses == 1


# -- simulation-plane faults ----------------------------------------------


def make_session(seed=31, **kwargs):
    params = kwargs.pop("params", ProtocolParams(max_poll_slots=300,
                                                 max_reception_slots=2_000))
    return ChannelSession(SessionConfig(
        spec=kwargs.pop("scenario", TABLE_I[0]).name,
        seed=seed, calibration_samples=200, params=params, **kwargs,
    ))


def severed_page_plan():
    """Unmerge the shared page early and hold it severed long enough to
    starve the whole first handshake; the re-merge scan lands during the
    resync backoff."""
    return FaultPlan(seed=0, events=(
        FaultEvent(plane="simulation", kind="ksm_unmerge",
                   at_cycles=5_000.0, duration_cycles=900_000.0),
    ))


def test_severed_page_recovered_by_resync():
    """Acceptance: >= 1 injected mid-transmission fault recovered via
    resync with accuracy > 0.6."""
    session = make_session(faults=severed_page_plan(), resync_attempts=2)
    result = session.transmit(PAYLOAD)
    assert result.resyncs == 1
    assert session.resyncs == 1
    assert result.accuracy > 0.6
    check_machine(session.machine)


def test_severed_page_without_resync_times_out():
    session = make_session(faults=severed_page_plan(), resync_attempts=0)
    with pytest.raises(SyncTimeoutError):
        session.transmit(PAYLOAD)
    check_machine(session.machine)


def test_touch_preempt_and_spike_degrade_gracefully():
    plan = FaultPlan.build_simulation(
        seed=7, rate_per_mcycle=16.0, window_cycles=500_000.0,
        kinds=("third_party_touch", "preempt", "latency_spike"),
    )
    assert len(plan) == 8
    session = make_session(faults=plan)
    result = session.transmit(PAYLOAD)
    assert 0.0 <= result.accuracy <= 1.0
    assert len(result.received) > 0
    check_machine(session.machine)


def test_fault_plan_rides_in_execute_point_params():
    from repro.channel.session import execute_point

    plan = FaultPlan(seed=0, events=(
        FaultEvent(plane="simulation", kind="latency_spike",
                   at_cycles=10_000.0, duration_cycles=50_000.0,
                   magnitude=1_500.0),
    ))
    result = execute_point(
        scenario=TABLE_I[0].name,
        payload=[1, 0, 1, 1],
        seed=3,
        calibration_samples=200,
        faults=plan.to_json(),
    )
    assert 0.0 <= result.accuracy <= 1.0


def test_clean_session_unaffected_by_fault_machinery():
    """No plan configured: transmit() behaves exactly as before."""
    session = make_session()
    result = session.transmit(PAYLOAD)
    assert result.resyncs == 0 and session.resyncs == 0
    assert result.accuracy >= 0.99
    assert session.fault_threads == []

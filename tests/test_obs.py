"""Tests for the structured tracing subsystem (``repro.obs``)."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.channel.config import scenario_by_name
from repro.channel.decoder import Sample
from repro.channel.session import ChannelSession, SessionConfig
from repro.mem.cacheline import CoherenceState
from repro.mem.hierarchy import Machine, MachineConfig
from repro.mem.invariants import check_transition_events
from repro.obs import (
    MachineTap,
    RunManifest,
    TraceEvent,
    TraceRecorder,
    clear_runner_recorder,
    text_timeline,
    to_chrome_trace,
    trace_enabled,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.recorder import runner_recorder
from repro.runner import ExperimentSpec, Point, ResultCache, Runner
from repro.sim.rng import RngStreams


# ----------------------------------------------------------------------
# TraceRecorder
# ----------------------------------------------------------------------

def test_recorder_appends_in_order():
    rec = TraceRecorder(capacity=8)
    for i in range(5):
        rec.emit(float(i), "load", "l1_hit", {"core": i})
    assert len(rec) == 5
    assert rec.emitted == 5
    assert rec.dropped == 0
    assert [e.ts for e in rec.events()] == [0.0, 1.0, 2.0, 3.0, 4.0]


def test_recorder_ring_wraps_and_counts_dropped():
    rec = TraceRecorder(capacity=4)
    for i in range(10):
        rec.emit(float(i), "load", "l1_hit", {"i": i})
    assert len(rec) == 4
    assert rec.emitted == 10
    assert rec.dropped == 6
    # Oldest-first order of the retained tail.
    assert [e.data["i"] for e in rec.events()] == [6, 7, 8, 9]


def test_recorder_rejects_bad_capacity():
    with pytest.raises(ValueError):
        TraceRecorder(capacity=0)


def test_recorder_clear():
    rec = TraceRecorder(capacity=2)
    rec.emit(1.0, "a", "b")
    rec.emit(2.0, "a", "b")
    rec.emit(3.0, "a", "b")
    rec.clear()
    assert len(rec) == 0 and rec.emitted == 0 and rec.dropped == 0
    rec.emit(4.0, "a", "b")
    assert [e.ts for e in rec.events()] == [4.0]


def test_recorder_select_filters_categories():
    rec = TraceRecorder()
    rec.emit(0.0, "load", "l1_hit")
    rec.emit(1.0, "flush", "clflush")
    rec.emit(2.0, "load", "dram")
    assert [e.ts for e in rec.select("load")] == [0.0, 2.0]
    assert [e.ts for e in rec.select("load", "flush")] == [0.0, 1.0, 2.0]


def test_recorder_digest_stable_and_sensitive():
    def build(latency):
        rec = TraceRecorder()
        rec.emit(10.0, "load", "l1_hit", {"core": 0, "latency": latency})
        rec.emit(20.0, "flush", "clflush", {"core": 1})
        return rec

    assert build(4.0).digest() == build(4.0).digest()
    assert build(4.0).digest() != build(5.0).digest()
    # Dropping an event (smaller ring) moves the digest even when the
    # retained stream is identical.
    small = TraceRecorder(capacity=1)
    small.emit(10.0, "load", "l1_hit", {"core": 0, "latency": 4.0})
    small.emit(20.0, "flush", "clflush", {"core": 1})
    big = build(4.0)
    assert [e.name for e in small.events()] == ["clflush"]
    assert small.digest() != big.digest()


def test_trace_event_to_json():
    event = TraceEvent(1.5, "phase", "calibrate", {"mark": "B"})
    assert event.to_json() == {
        "ts": 1.5, "category": "phase", "name": "calibrate",
        "data": {"mark": "B"},
    }


def test_trace_enabled_reads_environment(monkeypatch):
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    assert trace_enabled() is False
    monkeypatch.setenv("REPRO_TRACE", "0")
    assert trace_enabled() is False
    monkeypatch.setenv("REPRO_TRACE", "1")
    assert trace_enabled() is True


# ----------------------------------------------------------------------
# MachineTap
# ----------------------------------------------------------------------

def quiet_config(**kwargs) -> MachineConfig:
    from repro.mem.latency import NoiseModel

    return MachineConfig(noise=NoiseModel(enabled=False), **kwargs)


def test_tap_records_ops_and_transitions():
    machine = Machine(quiet_config(), RngStreams(3))
    rec = TraceRecorder()
    tap = MachineTap(machine, rec)
    tap.attach()
    addr = 64 * 1024
    machine.load(0, addr, now=10.0)
    machine.load(1, addr, now=20.0)
    machine.flush(0, addr, now=30.0)
    tap.detach()

    loads = rec.select("load")
    assert len(loads) == 2
    assert loads[0].data["core"] == 0
    assert loads[0].data["latency"] > 0
    flushes = rec.select("flush")
    assert len(flushes) == 1 and flushes[0].name == "clflush"
    transitions = rec.select("coherence")
    assert transitions, "state changes must be recorded"
    # First load takes core 0 to EXCLUSIVE, second demotes to SHARED.
    first = transitions[0].data
    assert ["0"] == list(first["states"])
    assert first["states"]["0"] == CoherenceState.EXCLUSIVE.value
    shared_event = next(
        e for e in transitions if len(e.data["states"]) == 2
    )
    assert set(shared_event.data["states"].values()) <= {
        CoherenceState.SHARED.value, CoherenceState.FORWARD.value
    }
    assert rec.select("hop"), "interconnect hops must be recorded"


def test_tap_events_replay_through_invariants():
    machine = Machine(quiet_config(), RngStreams(3))
    rec = TraceRecorder()
    MachineTap(machine, rec).attach()
    for i, addr in enumerate([0, 64, 4096, 0, 64]):
        machine.load(i % 4, addr, now=float(10 * i))
        if i % 3 == 2:
            machine.flush(0, addr, now=float(10 * i + 5))
    check_transition_events(rec.select("coherence"))


def test_check_transition_events_rejects_swmr_violation():
    from repro.errors import CoherenceError

    bad = [TraceEvent(0.0, "coherence", "transition", {
        "line": 64,
        "changed": [[1, "I", "M"]],
        "states": {"0": "E", "1": "M"},
    })]
    with pytest.raises(CoherenceError, match="multiple M/E|coexists"):
        check_transition_events(bad)


def test_check_transition_events_rejects_inconsistent_changed():
    from repro.errors import CoherenceError

    bad = [TraceEvent(0.0, "coherence", "transition", {
        "line": 64,
        "changed": [[0, "I", "M"]],
        "states": {"0": "E"},
    })]
    with pytest.raises(CoherenceError, match="snapshot shows"):
        check_transition_events(bad)


def test_check_transition_events_accepts_plain_mappings():
    check_transition_events([{"data": {
        "line": 0,
        "changed": [[0, "I", "E"]],
        "states": {"0": "E"},
    }}])


def test_tap_is_inert_on_quiet_machine():
    """Identical access sequence, identical latencies, tap or no tap."""
    def run(with_tap):
        machine = Machine(quiet_config(), RngStreams(11))
        rec = TraceRecorder()
        if with_tap:
            MachineTap(machine, rec).attach()
        out = []
        for i in range(40):
            core = i % 4
            addr = (i % 7) * 64
            value, latency, path = machine.load(core, addr, now=float(i * 50))
            out.append((value, latency, path))
            if i % 5 == 4:
                out.append(machine.flush(core, addr, now=float(i * 50 + 25)))
        return out

    assert run(False) == run(True)


def test_tap_detach_restores_bindings():
    machine = Machine(MachineConfig(), RngStreams(0))
    orig_ring = machine._ring_register
    orig_qpi = machine._qpi_register
    tap = MachineTap(machine, TraceRecorder())
    tap.attach()
    assert "load" in machine.__dict__
    assert machine._qpi_register is not orig_qpi
    assert machine._trace_tap is tap
    tap.detach()
    assert "load" not in machine.__dict__
    assert machine._ring_register is orig_ring
    assert machine._qpi_register is orig_qpi
    assert machine._trace_tap is None
    # Idempotent both ways.
    tap.detach()
    tap.attach()
    assert tap.attached
    tap.detach()


def test_tap_records_directory_events():
    machine = Machine(quiet_config(coherence="directory"), RngStreams(0))
    rec = TraceRecorder()
    tap = MachineTap(machine, rec)
    tap.attach()
    addr = 64 * 1024
    machine.load(0, addr, now=10.0)    # memory fill, E grant
    machine.load(4, addr, now=20.0)    # home forwards to the live owner
    machine.load(5, addr, now=30.0)    # memory-side (home) service
    machine.store(0, addr, 9, now=40.0)
    machine.flush(0, addr, now=50.0)
    kinds = [e.name for e in rec.select("directory")]
    assert kinds == [
        "memory_fill", "owner_forward", "home_service", "rfo", "flush",
    ]
    fill = rec.select("directory")[0]
    assert fill.data["state"] == "E"
    assert fill.data["owner"] == 0
    tap.detach()
    assert machine._dir_trace is None


def test_tap_chains_preexisting_dir_trace():
    machine = Machine(quiet_config(coherence="directory"), RngStreams(0))
    seen = []
    machine._dir_trace = lambda now, kind, base, entry: seen.append(kind)
    tap = MachineTap(machine, TraceRecorder())
    tap.attach()
    machine.load(0, 64 * 1024, now=1.0)
    assert seen == ["memory_fill"]     # the original hook still fires
    tap.detach()
    assert machine._dir_trace is not None  # restored, not cleared


def test_machine_reset_detaches_tap():
    machine = Machine(MachineConfig(), RngStreams(0))
    orig_qpi = machine._qpi_register
    tap = MachineTap(machine, TraceRecorder())
    tap.attach()
    machine.reset(RngStreams(1))
    assert not tap.attached
    assert machine._qpi_register is orig_qpi
    assert "load" not in machine.__dict__


def test_tap_detach_respects_outer_interposition():
    """A monitor wrapped on top of the tap survives tap.detach()."""
    machine = Machine(MachineConfig(), RngStreams(0))
    tap = MachineTap(machine, TraceRecorder())
    tap.attach()
    tapped_load = machine.load

    def outer(core_id, paddr, now=0.0):
        return tapped_load(core_id, paddr, now)

    machine.load = outer
    tap.detach()
    # load is left alone (outer wrapper still installed); the other two
    # op wrappers were the tap's own and are gone.
    assert machine.__dict__.get("load") is outer
    assert "store" not in machine.__dict__
    machine.reset()  # unconditional pop clears the leftover wrapper
    assert "load" not in machine.__dict__


# ----------------------------------------------------------------------
# Chrome export / text timeline
# ----------------------------------------------------------------------

def sample_recorder() -> TraceRecorder:
    rec = TraceRecorder()
    rec.emit(0.0, "phase", "calibrate", {"mark": "B"})
    rec.emit(5.0, "load", "l1_hit", {"core": 0, "line": 64, "latency": 4.0})
    rec.emit(9.0, "phase", "calibrate", {"mark": "E"})
    rec.emit(10.0, "fault", "preempt", {"index": 0, "start": 10.0,
                                        "end": 20.0, "magnitude": 1.0})
    return rec


def test_chrome_trace_schema_is_valid():
    trace = to_chrome_trace(sample_recorder())
    validate_chrome_trace(trace)
    # JSON-serializable end to end.
    json.loads(json.dumps(trace))
    phs = [e["ph"] for e in trace["traceEvents"]]
    assert "B" in phs and "E" in phs and "i" in phs and "M" in phs


def test_chrome_trace_carries_manifest():
    manifest = {"seed": 7, "scenario": "LExclc-LSharedb"}
    trace = to_chrome_trace(sample_recorder(), manifest=manifest)
    assert trace["otherData"]["manifest"] == manifest


def test_write_chrome_trace_roundtrip(tmp_path):
    out = write_chrome_trace(tmp_path / "trace.json", sample_recorder())
    loaded = json.loads(out.read_text())
    validate_chrome_trace(loaded)
    names = [e["name"] for e in loaded["traceEvents"]]
    assert "l1_hit" in names and "preempt" in names


@pytest.mark.parametrize("broken, message", [
    ([], "JSON object"),
    ({"traceEvents": "nope"}, "traceEvents"),
    ({"traceEvents": [{"ph": "i", "ts": 0.0, "pid": 1, "tid": 0}]},
     "name"),
    ({"traceEvents": [{"name": "x", "ph": "q", "ts": 0.0,
                       "pid": 1, "tid": 0}]}, "unknown ph"),
    ({"traceEvents": [{"name": "x", "ph": "i", "pid": 1, "tid": 0}]},
     "ts"),
    ({"traceEvents": [{"name": "x", "ph": "i", "ts": 0.0, "tid": 0}]},
     "pid"),
    ({"traceEvents": [{"name": "x", "ph": "E", "ts": 0.0,
                       "pid": 1, "tid": 0}]}, "without matching"),
    ({"traceEvents": [{"name": "x", "ph": "B", "ts": 0.0,
                       "pid": 1, "tid": 0}]}, "unbalanced"),
])
def test_validate_chrome_trace_rejects(broken, message):
    with pytest.raises(ValueError, match=message):
        validate_chrome_trace(broken)


def test_text_timeline_merges_samples_chronologically():
    from repro.channel.config import AccessPath

    rec = TraceRecorder()
    rec.emit(100.0, "flush", "clflush", {"core": 0, "line": 0,
                                         "latency": 40.0})
    rec.emit(300.0, "load", "local_excl", {"core": 0, "line": 0,
                                           "latency": 120.0})
    samples = [Sample(timestamp=200.0, latency=118.5, label="c",
                      path=AccessPath.LOCAL_EXCL)]
    lines = text_timeline(rec, samples=samples).splitlines()
    assert lines[0].lstrip().startswith("cycles")
    assert "clflush" in lines[1]
    assert "sample" in lines[2] and "local_excl" in lines[2]
    assert "load" in lines[3]


def test_text_timeline_max_rows():
    rec = sample_recorder()
    assert len(text_timeline(rec, max_rows=2).splitlines()) == 3


# ----------------------------------------------------------------------
# RunManifest
# ----------------------------------------------------------------------

def make_session(**kwargs) -> ChannelSession:
    return ChannelSession(SessionConfig(
        spec="LExclc-LSharedb",
        seed=7,
        calibration_samples=150,
        **kwargs,
    ))


@pytest.fixture(scope="module")
def traced_result():
    session = make_session(trace=True, calibration_memo=False)
    result = session.transmit([1, 0, 1, 1, 0, 0, 1, 0])
    return session, result


def test_manifest_attached_to_every_result(traced_result):
    session, result = traced_result
    manifest = result.manifest
    assert isinstance(manifest, RunManifest)
    assert manifest.seed == 7
    assert manifest.scenario == "LExclc-LSharedb"
    assert manifest.sharing == "ksm"
    assert manifest.calibration_samples == 150
    assert manifest.fault_plan is None
    assert manifest.traced_events > 0
    assert manifest.stats.get("engine.events", 0) > 0
    import repro

    assert manifest.repro_version == repro.__version__
    assert len(manifest.machine_fingerprint) == 64


def test_manifest_attached_without_tracing():
    session = make_session(trace=False)
    result = session.transmit([1, 0, 1, 0])
    assert isinstance(result.manifest, RunManifest)
    assert result.manifest.traced_events == 0
    assert result.manifest.dropped_events == 0


def test_manifest_json_roundtrip(traced_result):
    _session, result = traced_result
    data = result.manifest.to_json()
    json.loads(json.dumps(data))  # JSON-plain
    assert RunManifest.from_json(data) == result.manifest


def test_manifest_records_fault_plan():
    from repro.faults import FaultPlan

    plan = FaultPlan.build_simulation(
        seed=3, rate_per_mcycle=8.0, window_cycles=200_000.0,
        kinds=("latency_spike",),
    )
    session = make_session(faults=plan.to_json(), calibration_memo=False)
    result = session.transmit([1, 0, 1, 0])
    assert result.manifest.fault_plan == plan.to_json()


def test_fault_installation_emits_trace_events():
    from repro.faults import FaultPlan

    plan = FaultPlan.build_simulation(
        seed=3, rate_per_mcycle=8.0, window_cycles=200_000.0,
        kinds=("latency_spike", "third_party_touch"),
    )
    assert plan.events, "plan must schedule at least one event"
    session = make_session(
        faults=plan.to_json(), trace=True, calibration_memo=False
    )
    session.transmit([1, 0])
    faults = session.recorder.select("fault")
    assert len(faults) == len(plan.simulation_events)
    assert {e.name for e in faults} <= {"latency_spike",
                                        "third_party_touch"}
    assert all(e.data["end"] > e.data["start"] for e in faults)


def test_result_pickle_preserves_manifest(traced_result):
    _session, result = traced_result
    clone = pickle.loads(pickle.dumps(result))
    assert clone.manifest == result.manifest
    assert clone.sent == result.sent
    assert clone.samples == result.samples


def test_legacy_pickle_state_defaults_manifest():
    from repro.channel.session import TransmissionResult

    session = make_session(trace=False)
    result = session.transmit([1, 0])
    state = result.__getstate__()
    del state["manifest"]  # a pre-1.3 pickle has no manifest key
    legacy = TransmissionResult.__new__(TransmissionResult)
    legacy.__setstate__(state)
    assert legacy.manifest is None
    assert legacy.sent == result.sent


def test_manifest_excluded_from_equality(traced_result):
    _session, result = traced_result
    import dataclasses

    twin = dataclasses.replace(result, manifest=None)
    assert twin == result


def test_phase_events_bracket_the_transmission(traced_result):
    session, _result = traced_result
    marks = [(e.name, e.data["mark"]) for e in session.recorder.select("phase")]
    assert ("setup", "B") in marks and ("setup", "E") in marks
    assert ("calibrate", "B") in marks and ("calibrate", "E") in marks
    assert ("transmit", "B") in marks and ("transmit", "E") in marks
    assert ("attempt", "B") in marks and ("attempt", "E") in marks
    assert ("decode", "B") in marks and ("decode", "E") in marks
    # Balanced: chrome export must validate.
    validate_chrome_trace(to_chrome_trace(session.recorder))


def test_multibit_result_carries_manifest():
    from repro.channel.symbols import MultiBitSession

    session = MultiBitSession(seed=5, calibration_samples=150)
    result = session.transmit([1, 0, 1, 1])
    assert isinstance(result.manifest, RunManifest)
    assert result.manifest.seed == 5
    clone = pickle.loads(pickle.dumps(result))
    assert clone.manifest == result.manifest


# ----------------------------------------------------------------------
# Runner lifecycle events
# ----------------------------------------------------------------------

SQUARE = "tests.runner_points:square"


def square_spec(n=4):
    return ExperimentSpec(
        experiment="obs-test",
        points=tuple(Point(fn=SQUARE, params={"x": i}) for i in range(n)),
    )


def test_runner_emits_lifecycle_events(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TRACE", "1")
    clear_runner_recorder()
    try:
        cache = ResultCache(tmp_path)
        report = Runner(jobs=1, cache=cache).run(square_spec())
        assert report.values == [0, 1, 4, 9]
        rec = runner_recorder()
        names = [e.name for e in rec.select("runner")]
        assert names.count("dispatch") == 4
        assert names.count("point-complete") == 4
        assert "run-start" in names and "run-end" in names
        assert "cache-hit" not in names

        # Second run: everything comes from the cache.
        Runner(jobs=1, cache=cache).run(square_spec())
        names = [e.name for e in rec.select("runner")]
        assert names.count("cache-hit") == 4
    finally:
        clear_runner_recorder()


def test_runner_emits_retry_events(monkeypatch, tmp_path):
    from repro.runner import FailurePolicy

    monkeypatch.setenv("REPRO_TRACE", "1")
    clear_runner_recorder()
    try:
        counter = tmp_path / "counter"
        spec = ExperimentSpec(
            experiment="obs-retry",
            points=(Point(fn="tests.runner_points:flaky",
                          params={"x": 1, "counter": str(counter),
                                  "fail_times": 1}),),
        )
        policy = FailurePolicy(retries=2, backoff_base=0.0, jitter=0.0)
        report = Runner(jobs=1, cache=None, policy=policy).run(spec)
        assert report.values == [100]
        names = [e.name for e in runner_recorder().select("runner")]
        assert "retry" in names
        assert names.count("dispatch") == 2
    finally:
        clear_runner_recorder()


def test_runner_untraced_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    clear_runner_recorder()
    runner = Runner(jobs=1, cache=None)
    assert runner._recorder is None
    assert runner.run(square_spec(2)).values == [0, 1]
    assert runner_recorder() is None

"""Cheap top-level point functions for the runner tests.

They live in their own importable module (not inside a test function)
because :func:`repro.runner.resolve_callable` loads points by qualified
name — exactly what a worker process does.
"""


def square(*, x):
    return x * x


def record(*, x, log):
    """Append *x* to the file at *log* so tests can count executions."""
    with open(log, "a") as fh:
        fh.write(f"{x}\n")
    return x * 10


def boom(*, x):
    raise ValueError(f"boom {x}")


def flaky(*, x, counter, fail_times):
    """Fail the first *fail_times* calls (counted via the *counter* file).

    The counter file persists across pool workers and retries, so the
    point deterministically recovers on attempt ``fail_times + 1``.
    """
    import os

    count = 0
    if os.path.exists(counter):
        with open(counter) as fh:
            count = int(fh.read().strip() or 0)
    with open(counter, "w") as fh:
        fh.write(str(count + 1))
    if count < fail_times:
        raise ValueError(f"flaky {x} (attempt {count + 1})")
    return x * 100


def kill_worker(*, x, tripwire):
    """Hard-exit the worker once (the *tripwire* file marks the kill)."""
    import os

    if not os.path.exists(tripwire):
        with open(tripwire, "w") as fh:
            fh.write("killed")
        os._exit(17)
    return x * 1000


def slow_point(*, x, seconds):
    """Sleep long enough to trip a per-point timeout."""
    import time

    time.sleep(seconds)
    return x


def square_marked(*, x, fault_rate=None):
    """Like :func:`square`, accepting a lane-ineligibility marker."""
    return x * x


def transmit_point(*, cell, seed, bits, fault_rate=None):
    """One real transmission on a registered scenario cell.

    Returns the full :class:`TransmissionResult` so the lane tests can
    compare pickles byte-for-byte.  *fault_rate* is accepted purely as
    a lane-ineligibility marker (see
    :func:`repro.sim.lanes.point_bypass_reason`); it does not change the
    computation, so lane and reference dispatch of the same params must
    produce identical bytes.
    """
    from repro.channel.session import ChannelSession, SessionConfig
    from repro.experiments.common import payload_bits

    session = ChannelSession(SessionConfig(
        spec=cell, seed=seed, calibration_samples=120,
    ))
    return session.transmit(payload_bits(bits, seed=seed + 77))


def transmit_opts(*, cell, seed, bits, trace=None):
    """Like :func:`transmit_point` with an explicit trace override.

    ``trace=False`` keeps a session lane-eligible under ``REPRO_TRACE``
    (the bypass-event tests need the runner recorder on while the
    session itself stays untraced); ``trace=True`` forces a recorder
    session regardless of the environment.
    """
    from repro.channel.session import ChannelSession, SessionConfig
    from repro.experiments.common import payload_bits

    session = ChannelSession(SessionConfig(
        spec=cell, seed=seed, calibration_samples=120, trace=trace,
    ))
    return session.transmit(payload_bits(bits, seed=seed + 77))


def transmit_obfuscated(*, cell, seed, bits):
    """A transmission whose machine is obfuscated *after* session build.

    The session is lane-eligible at construction; the obfuscation policy
    appears before the first run, forcing the lane simulator's dynamic
    stand-down — the mid-flight divergence path, not the static one.
    """
    from repro.channel.session import ChannelSession, SessionConfig
    from repro.experiments.common import payload_bits
    from repro.mitigation.hardware import attach_obfuscator

    session = ChannelSession(SessionConfig(
        spec=cell, seed=seed, calibration_samples=120, trace=False,
    ))
    attach_obfuscator(session.machine, suspicious_cores=range(16))
    return session.transmit(payload_bits(bits, seed=seed + 77))

"""Cheap top-level point functions for the runner tests.

They live in their own importable module (not inside a test function)
because :func:`repro.runner.resolve_callable` loads points by qualified
name — exactly what a worker process does.
"""


def square(*, x):
    return x * x


def record(*, x, log):
    """Append *x* to the file at *log* so tests can count executions."""
    with open(log, "a") as fh:
        fh.write(f"{x}\n")
    return x * 10


def boom(*, x):
    raise ValueError(f"boom {x}")

"""Tests for timing-based eviction-set discovery."""

import pytest

from repro.channel.eviction import (
    EVICTION_LATENCY_THRESHOLD,
    EvictionSetDiscovery,
)
from repro.errors import ChannelError
from repro.kernel.syscalls import Kernel
from repro.mem.hierarchy import Machine, MachineConfig
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams


@pytest.fixture
def small_env():
    """A machine with a small LLC so discovery runs fast."""
    rng = RngStreams(3)
    config = MachineConfig(llc_sets=256, llc_assoc=8)
    machine = Machine(config, rng)
    kernel = Kernel(machine, Simulator(machine.stats), rng, n_frames=4096)
    process = kernel.create_process("attacker")
    return machine, kernel, process


def test_discovery_finds_minimal_set(small_env):
    machine, kernel, process = small_env
    target = process.mmap(1)
    discovery = EvictionSetDiscovery(kernel, process, core_id=0)
    eviction_set = discovery.discover(target, pool_pages=96)
    cfg = machine.config
    # minimal: associativity-many lines (grouping may leave a few extra)
    assert cfg.llc_assoc <= len(eviction_set) <= cfg.llc_assoc + 4
    # every survivor maps to the target's LLC set
    target_set = (process.translate(target) >> 6) & (cfg.llc_sets - 1)
    for va in eviction_set:
        pa = process.translate(va)
        assert (pa >> 6) & (cfg.llc_sets - 1) == target_set


def test_discovered_set_actually_evicts(small_env):
    machine, kernel, process = small_env
    target = process.mmap(1)
    discovery = EvictionSetDiscovery(kernel, process, core_id=0)
    eviction_set = discovery.discover(target, pool_pages=96)
    assert discovery.evicts(target, eviction_set)


def test_subset_does_not_evict(small_env):
    machine, kernel, process = small_env
    target = process.mmap(1)
    discovery = EvictionSetDiscovery(kernel, process, core_id=0)
    eviction_set = discovery.discover(target, pool_pages=96)
    too_small = eviction_set[: machine.config.llc_assoc // 2]
    assert not discovery.evicts(target, too_small)


def test_insufficient_pool_raises(small_env):
    machine, kernel, process = small_env
    target = process.mmap(1)
    discovery = EvictionSetDiscovery(kernel, process, core_id=0)
    # 8 pages can hold at most ~2 conflicting lines for an 8-way set
    with pytest.raises(ChannelError):
        discovery.discover(target, pool_pages=8)


def test_eviction_test_is_timing_only(small_env):
    """The test decision uses only the measured reload latency."""
    machine, kernel, process = small_env
    target = process.mmap(1)
    discovery = EvictionSetDiscovery(kernel, process, core_id=0)
    # a non-conflicting candidate set: target stays cached -> fast reload
    other = process.mmap(1)
    assert not discovery.evicts(target, [other])
    assert discovery.stats.eviction_tests == 1
    assert EVICTION_LATENCY_THRESHOLD > 250  # between bands and DRAM


def test_discovery_stats_populated(small_env):
    machine, kernel, process = small_env
    target = process.mmap(1)
    discovery = EvictionSetDiscovery(kernel, process, core_id=0)
    discovery.discover(target, pool_pages=96)
    assert discovery.stats.candidates_allocated == 96
    assert discovery.stats.eviction_tests > 1
    assert discovery.stats.accesses > 100

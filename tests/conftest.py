"""Shared fixtures: machines, kernels and channel sessions."""

from __future__ import annotations

import pytest

from repro.channel.config import TABLE_I, ProtocolParams
from repro.channel.session import ChannelSession, SessionConfig, resolve_spec
from repro.kernel.syscalls import Kernel
from repro.mem.hierarchy import Machine, MachineConfig
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams


@pytest.fixture
def rng() -> RngStreams:
    return RngStreams(seed=1234)


@pytest.fixture
def machine(rng) -> Machine:
    """A default two-socket machine with deterministic jitter."""
    return Machine(MachineConfig(), rng)


@pytest.fixture
def quiet_machine(rng) -> Machine:
    """A machine with jitter disabled (exact latency assertions)."""
    from repro.mem.latency import NoiseModel

    config = MachineConfig(noise=NoiseModel(enabled=False))
    return Machine(config, rng)


@pytest.fixture
def kernel_env(rng):
    """(machine, simulator, kernel) wired together."""
    machine = Machine(MachineConfig(), rng)
    sim = Simulator(machine.stats)
    kernel = Kernel(machine, sim, rng)
    return machine, sim, kernel


@pytest.fixture
def session_factory():
    """Build a ChannelSession quickly (small calibration)."""

    def build(scenario=TABLE_I[0], seed=7, **kwargs):
        params = kwargs.pop("params", ProtocolParams())
        spec = kwargs.pop("spec", None)
        if spec is None:
            spec = resolve_spec(scenario)
        config = SessionConfig(
            spec=spec,
            params=params,
            seed=seed,
            calibration_samples=kwargs.pop("calibration_samples", 200),
            **kwargs,
        )
        return ChannelSession(config)

    return build

"""Equivalence and property locks for streaming detection + the arena.

The streaming path (:mod:`repro.detection.streaming`) must be a
behavior-preserving refactor of the offline one, with bounded state:

* **Live equivalence** — a :class:`StreamingDetector` subscribed to a
  traced session's recorder produces exactly the detections and raw
  scores an offline :class:`ChannelDetector` over an attached
  :class:`EventMonitor` produces on the same run, across the MESI,
  MOESI O-state and directory-backend scenarios.
* **Replay equivalence** — feeding the recorded event stream back one
  event at a time (or in arbitrary chunks) reproduces the live
  detector's scans, scores and alarm log bit-for-bit.
* **ROC equivalence** — :class:`OnlineRoc` is invariant to sample order,
  chunking and merging, and matches the offline ``detection_roc``
  computation on the same scores.
* **Bounded memory** — property tests assert every retained per-line
  series stays inside the sliding window, and a feed 10x the window
  long keeps the monitor's footprint at the window scale (the
  regression the prune-on-append + idle-eviction rework fixes).
* **Arena determinism** — the detection-vs-evasion tournament is
  bit-deterministic for a fixed seed, with lanes and segmented
  checkpointing toggled on or off.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel.session import ChannelSession, SessionConfig
from repro.detection import (
    ChannelDetector,
    EventMonitor,
    OnlineRoc,
    StreamingDetector,
)
from repro.detection.events import _SWEEP_INTERVAL
from repro.detection.streaming import ROC_BINS, ROC_MAX_SCORE
from repro.experiments import REGISTRY, arena, detection_roc
from repro.mem.cacheline import LINE_SIZE
from repro.obs import TraceRecorder
from repro.obs.recorder import TraceEvent
from repro.runner import ExperimentSpec, Point, Runner

#: One scenario per distinct protocol path: flush-based MESI, the MOESI
#: O-state channel, and the home-node directory backend.
SCENARIOS = ("mesi-es", "moesi-ostate", "dir-es")

SCAN_INTERVAL = 100_000.0

PAYLOAD = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 0, 1, 0, 0, 1, 1]


def _monitor_state(monitor):
    """Comparable snapshot of every retained per-line series."""
    return {
        line: (
            list(activity.flushes),
            list(activity.downgrades),
            list(activity.loads),
            dict(activity.core_counts),
            activity.last_event,
        )
        for line, activity in monitor.lines.items()
    }


@pytest.fixture(scope="module", params=SCENARIOS)
def live_run(request):
    """One traced transmission observed three ways at once.

    The recorder is cleared right after construction so the retained
    stream is exactly what the subscribed sink saw (calibration runs
    inside ``__init__``, before anyone observes).
    """
    session = ChannelSession(SessionConfig(
        spec=request.param, seed=11, trace=True,
    ))
    session.recorder.clear()
    streaming = StreamingDetector(scan_interval=SCAN_INTERVAL)
    session.recorder.subscribe(streaming)
    offline = EventMonitor(session.machine)
    offline.attach()
    session.transmit(list(PAYLOAD))
    session.recorder.unsubscribe(streaming)
    offline.detach()
    return session, streaming, offline


def test_live_stream_matches_offline_detections(live_run):
    session, streaming, offline = live_run
    now = session.sim.global_clock
    offline_scan = ChannelDetector(offline).scan(now)
    assert streaming.scan(now) == offline_scan
    # The covert line is among the detections on every scenario.
    covert_line = (
        session.spy_proc.translate(session.spy_va) & ~(LINE_SIZE - 1)
    )
    assert covert_line in {d.line for d in offline_scan}


def test_live_stream_matches_offline_scores(live_run):
    session, streaming, offline = live_run
    now = session.sim.global_clock
    assert streaming.score_all(now) == ChannelDetector(offline).score_all(now)


def test_live_monitor_state_matches_offline(live_run):
    _session, streaming, offline = live_run
    assert _monitor_state(streaming.monitor) == _monitor_state(offline)


def test_interim_scans_raise_the_alarm_early(live_run):
    session, streaming, _offline = live_run
    covert_line = (
        session.spy_proc.translate(session.spy_va) & ~(LINE_SIZE - 1)
    )
    first = streaming.first_alarm(covert_line)
    assert first is not None
    assert first <= session.sim.global_clock
    assert streaming.peak_tracked > 0


@pytest.mark.parametrize("chunk", [1, 7, 1000])
def test_replaying_the_recorded_trace_reproduces_the_live_run(
    live_run, chunk
):
    session, streaming, _offline = live_run
    assert session.recorder.dropped == 0
    events = session.recorder.events()
    replayed = StreamingDetector(scan_interval=SCAN_INTERVAL)
    for start in range(0, len(events), chunk):
        replayed.consume_many(events[start:start + chunk])
    assert replayed.events == streaming.events
    assert replayed.clock == streaming.clock
    assert replayed.alarms == streaming.alarms
    now = session.sim.global_clock
    assert replayed.scan(now) == streaming.scan(now)
    assert replayed.score_all(now) == streaming.score_all(now)
    assert _monitor_state(replayed.monitor) == _monitor_state(
        streaming.monitor
    )


# -- OnlineRoc ---------------------------------------------------------


def _labeled_scores():
    rng = random.Random(42)
    samples = [(rng.uniform(0.0, 3.5), True) for _ in range(40)]
    samples += [(rng.uniform(0.0, 1.2), False) for _ in range(40)]
    # Out-of-range scores must clamp to the edge bins, not crash.
    samples += [(-0.5, False), (9.0, True)]
    return samples


def test_online_roc_is_order_and_chunk_invariant():
    samples = _labeled_scores()
    batch = OnlineRoc.from_samples(samples)

    shuffled = list(samples)
    random.Random(7).shuffle(shuffled)
    one_at_a_time = OnlineRoc()
    for score, positive in shuffled:
        one_at_a_time.add(score, positive)

    merged = OnlineRoc.from_samples(shuffled[:13])
    merged.merge(OnlineRoc.from_samples(shuffled[13:]))

    assert one_at_a_time.to_json() == batch.to_json() == merged.to_json()
    assert one_at_a_time.points() == batch.points()
    assert one_at_a_time.auc() == batch.auc() == merged.auc()


def test_online_roc_perfect_separation_and_degenerate_cases():
    perfect = OnlineRoc.from_samples(
        [(3.0, True)] * 5 + [(0.1, False)] * 5
    )
    assert perfect.auc() == 1.0
    assert perfect.points()[0] == (0.0, 0.0)
    assert perfect.points()[-1] == (1.0, 1.0)

    empty = OnlineRoc()
    assert empty.auc() == 0.0
    assert empty.positives == empty.negatives == 0

    only_pos = OnlineRoc.from_samples([(2.0, True)])
    assert all(fpr == 0.0 for fpr, _tpr in only_pos.points())

    with pytest.raises(ValueError):
        OnlineRoc(bins=0)
    with pytest.raises(ValueError):
        OnlineRoc().merge(OnlineRoc(bins=ROC_BINS * 2))


def test_online_roc_matches_offline_detection_roc():
    """The detect driver's offline ROC is the same computation."""
    rows = [
        {"workload": "attack:a", "detected": True, "score": 2.4,
         "reasons": ["flush-storm"]},
        {"workload": "attack:b", "detected": True, "score": 1.7,
         "reasons": ["ping-pong"]},
        {"workload": "attack:c", "detected": False, "score": 0.6,
         "reasons": []},
        {"workload": "benign:kb", "detected": False, "score": 0.0,
         "reasons": []},
        {"workload": "benign:pc", "detected": False, "score": 0.3,
         "reasons": []},
    ]
    spec = ExperimentSpec(
        experiment="detect",
        points=tuple(
            Point(fn=detection_roc.POINT_FN,
                  params={"workload": row["workload"], "seed": 0},
                  label=row["workload"])
            for row in rows
        ),
        meta={"attacks": 3, "benign": 2},
    )
    result = detection_roc.collect(spec, rows)

    online = OnlineRoc(bins=ROC_BINS, max_score=ROC_MAX_SCORE)
    shuffled = list(rows)
    random.Random(3).shuffle(shuffled)
    for row in shuffled:
        online.add(row["score"], row["workload"].startswith("attack"))
    assert result["roc_points"] == [list(p) for p in online.points()]
    assert result["auc"] == online.auc()


# -- property tests over synthetic event streams -----------------------


@st.composite
def trace_streams(draw):
    """Timestamp-ordered flush/load event streams over a few lines."""
    n = draw(st.integers(min_value=1, max_value=120))
    events = []
    ts = 0.0
    for _ in range(n):
        ts += draw(st.floats(
            min_value=1.0, max_value=4_000.0,
            allow_nan=False, allow_infinity=False,
        ))
        line = draw(st.integers(min_value=0, max_value=3)) * LINE_SIZE
        core = draw(st.integers(min_value=0, max_value=3))
        if draw(st.booleans()):
            events.append(TraceEvent(ts, "flush", "clflush", {
                "core": core, "line": line, "latency": 60.0,
            }))
        else:
            name = draw(st.sampled_from(
                ["local_excl", "remote_excl", "l1_hit", "local_shared"]
            ))
            events.append(TraceEvent(ts, "load", name, {
                "core": core, "line": line, "latency": 100.0,
            }))
    return events


@settings(max_examples=40, deadline=None)
@given(events=trace_streams(), chunk=st.integers(min_value=1, max_value=13))
def test_streaming_is_chunking_invariant(events, chunk):
    kwargs = dict(window=6_000.0, scan_interval=2_500.0)
    single = StreamingDetector(**kwargs)
    for event in events:
        single(event)
    chunked = StreamingDetector(**kwargs)
    for start in range(0, len(events), chunk):
        chunked.consume_many(events[start:start + chunk])
    now = single.clock
    assert chunked.clock == now
    assert chunked.events == single.events == len(events)
    assert chunked.alarms == single.alarms
    assert single.scan(now) == chunked.scan(now)
    assert single.score_all(now) == chunked.score_all(now)
    assert _monitor_state(single.monitor) == _monitor_state(chunked.monitor)


@settings(max_examples=40, deadline=None)
@given(events=trace_streams())
def test_retained_state_never_exceeds_the_window(events):
    window = 3_000.0
    detector = StreamingDetector(window=window, idle_windows=2.0)
    for event in events:
        detector(event)
        for activity in detector.monitor.lines.values():
            cutoff = activity.last_event - window
            assert all(t >= cutoff for t in activity.flushes)
            assert all(t >= cutoff for t in activity.downgrades)
            assert all(t >= cutoff for t, _core in activity.loads)
            # Incremental core counts stay consistent with the deque.
            assert (sum(activity.core_counts.values())
                    == len(activity.loads))


# -- EventMonitor memory regression ------------------------------------


def test_monitor_memory_stays_bounded_on_a_long_feed(machine):
    """A feed 15x the window long must not grow the monitor's state.

    Before prune-on-append, every per-line deque grew with total feed
    length until someone queried a rate; this pins the fix.
    """
    window = 1_000.0
    monitor = EventMonitor(machine, window=window, idle_windows=2.0)
    monitor.attach()
    hot, cold = 0x10000, 0x20000
    # One early touch on the cold line, then it goes idle forever.
    machine.flush(1, cold, 0.0)
    machine.load(1, cold, 1.0)

    now = 0.0
    total = 0
    peak = 0
    while now < 15 * window:
        now += 5.0
        machine.flush(0, hot, now)
        now += 5.0
        machine.load(0, hot, now)
        total += 2
        peak = max(peak, monitor.tracked_events())

    assert total > _SWEEP_INTERVAL  # at least one idle sweep ran
    # The window holds ~2 events per 10 cycles -> ~200; allow slack but
    # stay an order of magnitude under the total fed.
    assert peak <= 1_000
    assert peak < total / 3
    # The idle line was evicted outright — including from the flushed
    # filter, so a later lone load does not resurrect it.
    assert cold not in monitor.lines
    machine.load(1, cold, now + 1.0)
    assert cold not in monitor.lines
    monitor.detach()


def test_evict_idle_is_verdict_neutral(machine):
    monitor = EventMonitor(machine, window=1_000.0, idle_windows=2.0)
    monitor.attach()
    machine.flush(0, 0x30000, 10.0)
    machine.load(0, 0x30000, 20.0)
    now = 10_000.0
    before = ChannelDetector(monitor).scan(now)
    evicted = monitor.evict_idle(now)
    assert evicted == 1
    assert ChannelDetector(monitor).scan(now) == before == []
    monitor.detach()


# -- TraceSink hook ----------------------------------------------------


def test_sink_subscription_is_idempotent_and_inert():
    recorder = TraceRecorder()
    seen = []

    def sink(event):
        seen.append(event)

    recorder.subscribe(sink)
    recorder.subscribe(sink)  # idempotent
    recorder.emit(1.0, "load", "l1_hit", {
        "core": 0, "line": 0, "latency": 1.0,
    })
    assert len(seen) == 1

    plain = TraceRecorder()
    plain.emit(1.0, "load", "l1_hit", {
        "core": 0, "line": 0, "latency": 1.0,
    })
    assert recorder.digest() == plain.digest(), (
        "sinks must never affect the recorded stream"
    )

    recorder.unsubscribe(sink)
    recorder.emit(2.0, "load", "l1_hit", {
        "core": 0, "line": 0, "latency": 1.0,
    })
    assert len(seen) == 1  # detached
    recorder.unsubscribe(sink)  # absent: no-op


# -- arena -------------------------------------------------------------


def test_arena_is_registered_with_the_driver_contract():
    assert "arena" in REGISTRY
    module = REGISTRY["arena"].load()
    for attr in ("build_spec", "spec_from_args", "run", "collect",
                 "render", "main"):
        assert callable(getattr(module, attr))


def test_live_cells_excludes_dead_and_undefined_cells():
    cells = arena.live_cells()
    assert len(cells) == 9
    assert "mesi-ostate" not in cells
    assert "mesif-ostate" not in cells
    assert "dir-lru" not in cells
    assert {"mesi-es", "moesi-ostate", "dir-es"} <= set(cells)


def _tiny_arena_spec():
    return arena.build_spec(
        seed=3, bits=8, cells=["mesi-es"],
        attack_seeds=1, benign_seeds=1, generations=4,
    )


def _run_arena(lanes):
    spec = _tiny_arena_spec()
    values = Runner(jobs=1, cache=None, lanes=lanes).run(spec).values
    return arena.collect(spec, values)


def test_arena_is_deterministic_across_backends(monkeypatch):
    """Same seed -> identical frontier/tournament, lanes and segmented
    checkpointing on or off."""
    # Trim the evasion ladder: two settings are enough to exercise the
    # grouping/tournament arithmetic, and the obfuscation leg is slow.
    monkeypatch.setattr(arena, "EVASIONS", arena.EVASIONS[:2])
    monkeypatch.delenv("REPRO_LANES", raising=False)
    monkeypatch.delenv("REPRO_SEGMENT_CYCLES", raising=False)
    monkeypatch.setenv("REPRO_SEGMENTS", "0")

    baseline = _run_arena(lanes=0)
    assert _run_arena(lanes=4) == baseline

    monkeypatch.setenv("REPRO_SEGMENTS", "1")
    monkeypatch.setenv("REPRO_SEGMENT_CYCLES", "200000")
    assert _run_arena(lanes=0) == baseline

    cell = baseline["cells"]["mesi-es"]
    assert cell["frontier"][0]["evasion"] == "none"
    assert cell["frontier"][0]["auc"] == 1.0
    assert cell["tournament"], "tournament history must not be empty"
    assert cell["equilibrium"]["threshold"] in baseline["thresholds"]


def test_arena_smoke_spec_shape():
    spec = _tiny_arena_spec()
    # 1 cell x len(EVASIONS) x 1 seed attacks + 2 benign workloads.
    assert len(spec.points) == len(arena.EVASIONS) + 2
    labels = [p.label for p in spec.points]
    assert labels[0] == "mesi-es/none/s0"
    assert labels[-1] == "benign:producer-consumer/s0"

"""End-to-end tests for the binary covert channel (Algorithms 1+2)."""

import pytest

from repro.channel.config import TABLE_I, ProtocolParams, scenario_by_name
from repro.channel.session import ChannelSession, SessionConfig, run_transmission
from repro.errors import ConfigError
from repro.mem.hierarchy import MachineConfig

PAYLOAD = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0, 0, 0, 1, 0]


@pytest.mark.parametrize("scenario", TABLE_I, ids=lambda s: s.name)
def test_all_six_scenarios_transmit_perfectly(scenario, session_factory):
    session = session_factory(scenario=scenario)
    result = session.transmit(PAYLOAD)
    assert result.received == PAYLOAD
    assert result.accuracy == 1.0


def test_transmission_uses_ksm_page_by_default(session_factory):
    session = session_factory()
    assert session.config.sharing == "ksm"
    assert (session.trojan_proc.translate(session.trojan_va)
            == session.spy_proc.translate(session.spy_va))
    assert session.kernel.ksm.stats.pages_merged == 1


def test_explicit_sharing_works(session_factory):
    session = session_factory(sharing="explicit")
    result = session.transmit(PAYLOAD[:8])
    assert result.received == PAYLOAD[:8]


def test_repeated_transmissions_on_one_session(session_factory):
    session = session_factory()
    for _ in range(3):
        result = session.transmit(PAYLOAD[:8])
        assert result.accuracy == 1.0


def test_achieved_rate_close_to_nominal(session_factory):
    session = session_factory(params=ProtocolParams().at_rate(400))
    result = session.transmit([1, 0] * 20)
    assert result.achieved_rate_kbps == pytest.approx(400, rel=0.25)


def test_sample_labels_cover_both_bands(session_factory):
    session = session_factory()
    result = session.transmit(PAYLOAD[:8])
    labels = {s.label for s in result.samples}
    assert "c" in labels and "b" in labels


def test_payload_validation(session_factory):
    session = session_factory()
    with pytest.raises(ConfigError):
        session.transmit([0, 2, 1])


def test_remote_scenario_requires_two_sockets():
    with pytest.raises(ConfigError):
        SessionConfig(
            spec="RExclc-RSharedb",
            machine=MachineConfig(n_sockets=1),
        )


def test_local_scenario_on_single_socket(session_factory):
    session = session_factory(
        scenario=scenario_by_name("LExclc-LSharedb"),
        machine=MachineConfig(n_sockets=1),
    )
    result = session.transmit(PAYLOAD[:8])
    assert result.accuracy == 1.0


def test_invalid_sharing_mode():
    with pytest.raises(ConfigError):
        SessionConfig(spec=TABLE_I[0].name, sharing="telepathy")


def test_run_transmission_oneshot():
    result = run_transmission(TABLE_I[0].name, [1, 0, 1])
    assert result.received == [1, 0, 1]
    assert result.scenario_name == "LExclc-LSharedb"


def test_determinism_same_seed(session_factory):
    first = session_factory(seed=11).transmit(PAYLOAD)
    second = session_factory(seed=11).transmit(PAYLOAD)
    assert first.received == second.received
    assert first.cycles == second.cycles


def test_different_seeds_differ_in_timing(session_factory):
    first = session_factory(seed=11).transmit(PAYLOAD)
    second = session_factory(seed=12).transmit(PAYLOAD)
    assert first.cycles != second.cycles


def test_worker_threads_match_table_one(session_factory):
    scenario = scenario_by_name("RSharedc-LSharedb")
    session = session_factory(scenario=scenario)
    session.transmit([1, 0])
    worker_names = [
        t.name for t in session.sim.threads if t.name.startswith("trojan-")
        and "ctl" not in t.name
    ]
    assert len(worker_names) == scenario.total_threads


def test_spy_observed_paths_match_scenario(session_factory):
    scenario = scenario_by_name("RExclc-LSharedb")
    session = session_factory(scenario=scenario)
    result = session.transmit([1, 1, 0, 1])
    tc = session.bands.band_for(scenario.csc)
    tb = session.bands.band_for(scenario.csb)
    for sample in result.samples:
        if sample.label == "c":
            assert tc.contains(sample.latency)
        elif sample.label == "b":
            assert tb.contains(sample.latency)


def test_noise_threads_spawned(session_factory):
    session = session_factory(noise_threads=2)
    assert len(session.noise_threads) == 2
    result = session.transmit(PAYLOAD[:8])
    assert result.accuracy >= 0.7


def test_eviction_based_flush_channel():
    """Section VI-B: the channel works without clflush, via LLC eviction."""
    from repro.channel.config import ProtocolParams

    session = ChannelSession(SessionConfig(
        scenario=TABLE_I[0],
        params=ProtocolParams.for_eviction_flush(),
        seed=13,
        flush_method="evict",
        calibration_samples=200,
    ))
    assert len(session.eviction_set) >= session.config.machine.llc_assoc
    result = session.transmit(PAYLOAD)
    assert result.accuracy == 1.0
    # eviction sweeps are expensive: the rate is far below clflush rates
    assert result.achieved_rate_kbps < 100


def test_eviction_set_maps_to_target_llc_set():
    session = ChannelSession(SessionConfig(
        scenario=TABLE_I[0],
        seed=13,
        flush_method="evict",
        calibration_samples=200,
    ))
    cfg = session.config.machine
    target_pa = session.spy_proc.translate(session.spy_va)
    target_set = (target_pa >> 6) & (cfg.llc_sets - 1)
    for va in session.eviction_set:
        pa = session.spy_proc.translate(va)
        assert (pa >> 6) & (cfg.llc_sets - 1) == target_set
        assert pa != target_pa


def test_invalid_flush_method_rejected():
    with pytest.raises(ConfigError):
        SessionConfig(scenario=TABLE_I[0], flush_method="magnets")

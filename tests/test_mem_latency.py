"""Tests for the latency profile, noise model and obfuscation policy."""

import dataclasses

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.mem.latency import (
    CLOCK_HZ,
    LatencyProfile,
    NoiseModel,
    ObfuscationPolicy,
    cycles_to_seconds,
    kbps,
)
from repro.sim.events import AccessPath


def test_default_profile_matches_paper_reference_points():
    profile = LatencyProfile()
    assert profile.local_shared == pytest.approx(98.0)
    assert profile.local_excl == pytest.approx(124.0)
    assert profile.local_excl - profile.local_shared == pytest.approx(26.0)


def test_profile_ordering_enforced():
    with pytest.raises(ConfigError):
        LatencyProfile(local_shared=200.0, local_excl=100.0)


def test_profile_positive_enforced():
    with pytest.raises(ConfigError):
        LatencyProfile(l1_hit=-1.0)


def test_for_path_covers_all_load_paths():
    profile = LatencyProfile()
    for path in (AccessPath.L1_HIT, AccessPath.L2_HIT,
                 AccessPath.LOCAL_SHARED, AccessPath.LOCAL_EXCL,
                 AccessPath.REMOTE_SHARED, AccessPath.REMOTE_EXCL,
                 AccessPath.DRAM):
        assert profile.for_path(path) > 0


def test_for_path_rejects_uncached():
    with pytest.raises(ConfigError):
        LatencyProfile().for_path(AccessPath.UNCACHED)


def test_noise_disabled_returns_base():
    model = NoiseModel(enabled=False)
    rng = np.random.default_rng(0)
    assert model.sample(100.0, rng) == 100.0


def test_noise_never_below_one_cycle():
    model = NoiseModel(sigma=1000.0)
    rng = np.random.default_rng(0)
    assert all(model.sample(2.0, rng) >= 1.0 for _ in range(100))


def test_noise_centered_on_base():
    model = NoiseModel(sigma=2.5, tail_probability=0.0)
    rng = np.random.default_rng(0)
    samples = [model.sample(100.0, rng) for _ in range(2000)]
    assert abs(np.mean(samples) - 100.0) < 0.5
    assert 1.5 < np.std(samples) < 3.5


def test_noise_tail_creates_outliers():
    model = NoiseModel(sigma=0.1, tail_probability=0.5, tail_scale=100.0)
    rng = np.random.default_rng(0)
    samples = [model.sample(100.0, rng) for _ in range(500)]
    assert max(samples) > 150.0


def test_obfuscation_policy_scope():
    policy = ObfuscationPolicy(suspicious_cores={3})
    assert policy.applies_to(3)
    assert not policy.applies_to(0)


def test_obfuscation_range():
    policy = ObfuscationPolicy(suspicious_cores={0}, lo=90.0, hi=250.0)
    rng = np.random.default_rng(1)
    draws = [policy.obfuscate(rng) for _ in range(200)]
    assert min(draws) >= 90.0
    assert max(draws) <= 250.0


def test_cycles_to_seconds():
    assert cycles_to_seconds(CLOCK_HZ) == pytest.approx(1.0)


def test_kbps():
    # 1000 bits in one second = 1 Kbps
    assert kbps(1000, CLOCK_HZ) == pytest.approx(1.0)
    assert kbps(10, 0.0) == 0.0


def test_profile_is_frozen():
    with pytest.raises(dataclasses.FrozenInstanceError):
        LatencyProfile().l1_hit = 1.0

"""Crash-resume acceptance: a killed worker resumes from its segments.

The scenario the checkpoint subsystem exists for: a pool worker is
SIGKILLed *mid-transmission* (after durably storing some segments), the
parent survives the broken pool, and the retry attempt resumes the
point from its last good segment — finishing with a result bit-identical
to an uninterrupted run instead of recomputing from cycle zero.
"""

import hashlib
import struct

import pytest

from repro.channel.session import clear_warm_state
from repro.faults import FaultEvent, FaultInjector, FaultPlan
from repro.runner import ExperimentSpec, FailurePolicy, Point, Runner

EXECUTE = "repro.channel.session:execute_point"
PAYLOAD = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0, 0, 1, 0, 1]


def digest(result) -> str:
    h = hashlib.sha256()
    h.update(",".join(map(str, result.sent)).encode())
    h.update(b"|")
    h.update(",".join(map(str, result.received)).encode())
    h.update(b"|")
    for sample in result.samples:
        h.update(struct.pack("<dd", sample.timestamp, sample.latency))
    h.update(struct.pack("<d", result.cycles))
    return h.hexdigest()


def channel_spec():
    return ExperimentSpec(experiment="crash-resume", points=tuple(
        Point(
            fn=EXECUTE,
            params={"spec": "mesi-es", "payload": list(PAYLOAD),
                    "seed": seed, "calibration_samples": 120},
            label=label,
        )
        for seed, label in ((7, "victim"), (8, "bystander"))
    ))


@pytest.fixture
def seg_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    for var in ("REPRO_SEGMENT_CYCLES", "REPRO_SEGMENTS",
                "REPRO_KILL_AT_SEGMENT", "REPRO_CHECKPOINT_EXPORT",
                "REPRO_TRACE"):
        monkeypatch.delenv(var, raising=False)
    clear_warm_state()
    yield monkeypatch
    clear_warm_state()


def test_killed_worker_resumes_bit_identical(seg_env):
    spec = channel_spec()
    golden = Runner(jobs=1).run(spec).values

    # worker_kill with a positive magnitude defers the SIGKILL until the
    # worker has stored that many checkpoint segments, so the death is
    # genuinely mid-run; attempts=1 leaves the retry attempt clean.
    seg_env.setenv("REPRO_SEGMENT_CYCLES", "25000")
    clear_warm_state()
    plan = FaultPlan(seed=0, events=(
        FaultEvent(plane="harness", kind="worker_kill", point=0,
                   attempts=1, magnitude=2.0),
    ))
    report = Runner(
        jobs=2,
        policy=FailurePolicy(retries=1, backoff_base=0.001,
                             backoff_max=0.01),
        injector=FaultInjector(plan),
    ).run(spec)

    # the pool actually broke and was respawned
    assert report.pool_respawns >= 1
    assert report.outcomes[0].attempts >= 2

    # every value — the resumed victim included — is bit-identical to
    # the uninterrupted golden run
    for value, reference in zip(report.values, golden):
        assert digest(value) == digest(reference)

    # the victim's manifest records that it resumed from a segment
    assert report.values[0].manifest.resumed_from is not None
    assert report.values[0].manifest.segment_cycles == 25000.0

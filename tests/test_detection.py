"""Tests for the covert-channel detection subsystem."""

import numpy as np
import pytest

from repro.channel.config import TABLE_I
from repro.channel.session import ChannelSession, SessionConfig
from repro.detection import (
    ChannelDetector,
    EventMonitor,
    FlushStormDetector,
    ModulationDetector,
    PingPongDetector,
)
from repro.kernel.workloads import spawn_kernel_build
from repro.mem.cacheline import LINE_SIZE


def session_with_monitor(seed=21, **kwargs):
    session = ChannelSession(SessionConfig(
        spec=TABLE_I[0].name, seed=seed, calibration_samples=200, **kwargs
    ))
    monitor = EventMonitor(session.machine)
    monitor.attach()
    return session, monitor


def test_monitor_attach_detach(machine):
    monitor = EventMonitor(machine)
    monitor.attach()
    monitor.attach()  # idempotent
    machine.flush(0, 0x1000, 10.0)
    machine.load(0, 0x1000, 20.0)
    assert monitor.lines[0x1000].flush_rate(20.0) > 0
    monitor.detach()
    machine.flush(0, 0x1000, 30.0)
    assert len(monitor.lines[0x1000].flushes) == 1  # no longer recording


def test_monitor_only_tracks_flushed_lines(machine):
    monitor = EventMonitor(machine)
    monitor.attach()
    machine.load(0, 0x2000, 10.0)   # never flushed: not tracked
    machine.flush(0, 0x3000, 10.0)
    machine.load(0, 0x3000, 20.0)
    assert not monitor.lines[0x2000].loads
    assert monitor.lines[0x3000].loads


def test_monitor_records_downgrades(machine):
    monitor = EventMonitor(machine)
    monitor.attach()
    addr = 0x4000
    machine.flush(0, addr, 0.0)
    machine.load(1, addr, 10.0)       # E on core 1
    machine.load(0, addr, 20.0)       # forwarded: downgrade
    activity = monitor.lines[addr]
    assert len(activity.downgrades) == 1
    assert activity.touching_cores(20.0) == {0, 1}


def test_window_pruning(machine):
    monitor = EventMonitor(machine, window=1_000.0)
    monitor.attach()
    machine.flush(0, 0x5000, 0.0)
    assert monitor.lines[0x5000].flush_rate(10_000.0) == 0.0


def test_channel_is_detected_during_transmission():
    session, monitor = session_with_monitor()
    session.transmit([1, 0, 1, 1, 0, 0, 1, 0] * 4)
    now = session.sim.global_clock
    detector = ChannelDetector(monitor)
    detections = detector.scan(now)
    assert detections, "covert channel escaped detection"
    covert_line = session.spy_proc.translate(session.spy_va) & ~(LINE_SIZE - 1)
    flagged_lines = {d.line for d in detections}
    assert covert_line in flagged_lines
    top = detections[0]
    assert top.score >= 1.0
    assert top.reasons


def test_detection_identifies_involved_cores():
    session, monitor = session_with_monitor()
    session.transmit([1, 0, 1, 1] * 4)
    detector = ChannelDetector(monitor)
    detections = detector.scan(session.sim.global_clock)
    top = detections[0]
    # spy core and at least one trojan worker core appear
    assert session.config.spy_core in top.cores
    assert any(core in top.cores for core in session.local_cores)


def test_benign_noise_workload_not_flagged(kernel_env):
    machine, sim, kernel = kernel_env
    monitor = EventMonitor(machine)
    monitor.attach()
    spawn_kernel_build(kernel, 4, avoid_cores={0})

    def waiter(cpu):
        yield from cpu.delay(600_000)

    process = kernel.create_process("w")
    kernel.spawn(process, "w", waiter, core_id=0)
    sim.run()
    detector = ChannelDetector(monitor)
    assert detector.scan(sim.global_clock) == []


def test_benign_producer_consumer_not_flagged(kernel_env):
    """Ordinary shared-memory communication must not trip the detector."""
    machine, sim, kernel = kernel_env
    monitor = EventMonitor(machine)
    monitor.attach()
    process = kernel.create_process("app")
    buf = process.mmap(1)

    def producer(cpu):
        for i in range(200):
            yield from cpu.store(buf, i)
            yield from cpu.delay(500)

    def consumer(cpu):
        for _ in range(200):
            yield from cpu.load(buf)
            yield from cpu.delay(500)

    kernel.spawn(process, "prod", producer, core_id=1)
    kernel.spawn(process, "cons", consumer, core_id=2)
    sim.run()
    detector = ChannelDetector(monitor)
    assert detector.scan(sim.global_clock) == []


def test_flush_storm_detector_thresholds(machine):
    monitor = EventMonitor(machine, window=1_000_000.0)
    monitor.attach()
    addr = 0x9000
    for i in range(10):
        machine.flush(0, addr, float(i * 1000))
    detector = FlushStormDetector(threshold_per_mcycle=50.0)
    score, reason = detector.score(monitor, addr, 10_000.0)
    assert score == 0.0 and reason is None
    for i in range(200):
        machine.flush(0, addr, 10_000.0 + i * 500)
    score, reason = detector.score(monitor, addr, 110_000.0)
    assert score > 0 and "flush storm" in reason


def test_modulation_detector_accepts_lattice():
    # synthesize a monitor with slot-quantized downgrades
    class FakeMonitor:
        def __init__(self):
            from repro.detection.events import LineActivity

            self.lines = {0: LineActivity(window=1e9)}

    monitor = FakeMonitor()
    rng = np.random.default_rng(0)
    t = 0.0
    for _ in range(60):
        slots = int(rng.choice([1, 1, 1, 2, 3]))
        t += slots * 1200.0 + rng.normal(0, 20)
        monitor.lines[0].downgrades.append(t)
    detector = ModulationDetector()
    score, reason = detector.score(monitor, 0, t)
    assert score >= 0.7
    assert "modulation" in reason


def test_modulation_detector_rejects_poisson():
    class FakeMonitor:
        def __init__(self):
            from repro.detection.events import LineActivity

            self.lines = {0: LineActivity(window=1e9)}

    monitor = FakeMonitor()
    rng = np.random.default_rng(0)
    t = 0.0
    for _ in range(80):
        t += rng.exponential(1500.0)
        monitor.lines[0].downgrades.append(t)
    detector = ModulationDetector()
    score, _reason = detector.score(monitor, 0, t)
    assert score == 0.0


class StubMonitor:
    """A monitor with one line whose activity is written directly.

    ``window=1e6`` makes rates trivially readable: N events in the
    window is N per Mcycle.
    """

    LINE = 0x9000

    def __init__(self):
        from repro.detection.events import LineActivity

        self.lines = {self.LINE: LineActivity(window=1e6)}

    def fill(self, *, flushes=0, downgrades=0, cores=1, now=1e6):
        activity = self.lines[self.LINE]
        for i in range(flushes):
            activity.flushes.append(now - 1 - i % 1000)
        for i in range(downgrades):
            activity.downgrades.append(now - 1 - i % 1000)
        for i in range(max(cores, 1) * 3):
            activity.loads.append((now - 1 - i, i % cores))
        return self


def test_flush_storm_score_at_exact_threshold():
    detector = FlushStormDetector(threshold_per_mcycle=50.0)
    below = StubMonitor().fill(flushes=49)
    score, reason = detector.score(below, StubMonitor.LINE, 1e6)
    assert score == 0.0 and reason is None
    at = StubMonitor().fill(flushes=50)
    score, reason = detector.score(at, StubMonitor.LINE, 1e6)
    assert score == pytest.approx(0.25)
    assert "flush storm" in reason


def test_flush_storm_score_saturates_at_one():
    detector = FlushStormDetector(threshold_per_mcycle=50.0)
    at_cap = StubMonitor().fill(flushes=200)
    score, _ = detector.score(at_cap, StubMonitor.LINE, 1e6)
    assert score == 1.0
    past_cap = StubMonitor().fill(flushes=500)
    score, _ = detector.score(past_cap, StubMonitor.LINE, 1e6)
    assert score == 1.0


def test_ping_pong_boundaries():
    detector = PingPongDetector(downgrade_threshold=25.0, max_core_set=5)
    line = StubMonitor.LINE
    # One downgrade short of the threshold: silent.
    score, _ = detector.score(
        StubMonitor().fill(downgrades=24, cores=2), line, 1e6)
    assert score == 0.0
    # Exactly at the rate threshold with the max core set: flagged.
    score, reason = detector.score(
        StubMonitor().fill(downgrades=25, cores=5), line, 1e6)
    assert score == pytest.approx(0.25)
    assert "ping-pong among 5 cores" in reason
    # One core too many: wide benign sharing, silent.
    score, _ = detector.score(
        StubMonitor().fill(downgrades=25, cores=6), line, 1e6)
    assert score == 0.0
    # Saturation.
    score, _ = detector.score(
        StubMonitor().fill(downgrades=400, cores=3), line, 1e6)
    assert score == 1.0


def lattice_monitor(n_events, off_lattice=0, slot=1200.0):
    """Downgrades with ``n_events - 1`` gaps, *off_lattice* of them at
    1.5 slots (half-way between lattice points, always rejected)."""
    monitor = StubMonitor()
    gaps = ([slot * 1.5] * off_lattice
            + [slot] * (n_events - 1 - off_lattice))
    t = slot
    downgrades = monitor.lines[StubMonitor.LINE].downgrades
    downgrades.append(t)
    for gap in gaps:
        t += gap
        downgrades.append(t)
    return monitor, t


def test_modulation_needs_min_events():
    detector = ModulationDetector(min_events=24)
    # 23 perfectly quantized events: one short, silent.
    monitor, now = lattice_monitor(23)
    score, _ = detector.score(monitor, StubMonitor.LINE, now)
    assert score == 0.0
    # 24: scored, and a perfect lattice scores 1.0.
    monitor, now = lattice_monitor(24)
    score, reason = detector.score(monitor, StubMonitor.LINE, now)
    assert score == 1.0
    assert "modulation" in reason


def test_modulation_lattice_fraction_boundary():
    detector = ModulationDetector(min_events=24, lattice_fraction=0.7)
    # 23 gaps, 7 off-lattice -> 16/23 ~= 0.696 < 0.7: silent.
    monitor, now = lattice_monitor(24, off_lattice=7)
    score, _ = detector.score(monitor, StubMonitor.LINE, now)
    assert score == 0.0
    # 6 off-lattice -> 17/23 ~= 0.739 >= 0.7: flagged with the fraction.
    monitor, now = lattice_monitor(24, off_lattice=6)
    score, _ = detector.score(monitor, StubMonitor.LINE, now)
    assert score == pytest.approx(17 / 23)


def test_channel_detector_flag_threshold_boundary():
    # Flush storm alone at saturation contributes exactly 1.0 — equal to
    # the default flag_threshold, so the line is flagged (>= comparison).
    monitor = StubMonitor().fill(flushes=200, cores=2)
    detections = ChannelDetector(monitor).scan(1e6)
    assert [d.line for d in detections] == [StubMonitor.LINE]
    assert detections[0].score == pytest.approx(1.0)
    assert detections[0].flush_rate == pytest.approx(200.0)
    # A sub-threshold score with a reason attached stays unflagged...
    weak = StubMonitor().fill(flushes=50, cores=2)
    assert ChannelDetector(weak).scan(1e6) == []
    # ...unless the operator lowers the threshold.
    sensitive = ChannelDetector(weak, flag_threshold=0.25)
    assert [d.line for d in sensitive.scan(1e6)] == [StubMonitor.LINE]


def test_ping_pong_detector_needs_small_core_set(machine):
    monitor = EventMonitor(machine, window=1e6)
    monitor.attach()
    addr = 0xA000
    machine.flush(0, addr, 0.0)
    now = 0.0
    # many cores touching: looks like ordinary wide sharing
    for i in range(120):
        core = i % 10
        machine.flush(0, addr, now)
        machine.load(core, addr, now + 10)
        machine.load((core + 1) % 10, addr, now + 20)
        now += 1_000.0
    detector = PingPongDetector()
    score, _reason = detector.score(monitor, addr, now)
    assert score == 0.0

"""The experiment service: sharded single-flight index, cache server
socket protocol, job scheduling, and the HTTP job API.

The load-bearing properties under test:

* **single-flight** — concurrent requests for one key coalesce onto a
  single execution, fleet-wide (HTTP jobs and socket runners share one
  index);
* **liveness** — a failed or vanished owner promotes its first waiter;
  dedupe is an optimization, never a deadlock;
* **bit-identity** — a blob published by the service decodes to exactly
  the value a local :class:`~repro.runner.Runner` computes.
"""

import asyncio
import json
import threading
import urllib.request

import pytest

from repro.errors import ServiceError
from repro.runner import ExperimentSpec, FailurePolicy, Point, Runner
from repro.runner.cache import ResultCache, decode_entry, encode_entry
from repro.service import (
    ExperimentService,
    RemoteCache,
    ServiceClient,
    ShardedIndex,
)
from repro.service.shards import shard_of

SQUARE = "tests.runner_points:square"
RECORD = "tests.runner_points:record"
BOOM = "tests.runner_points:boom"

KEY_A = "ab" * 32
KEY_B = "cd" * 32


def grid(fn, xs, experiment="svc", **extra):
    return ExperimentSpec(
        experiment=experiment,
        points=tuple(
            Point(fn=fn, params={"x": x, **extra}) for x in xs
        ),
    )


# -- ShardedIndex: the single-flight state machine ----------------------


def test_shard_of_matches_disk_fanout():
    assert shard_of(KEY_A) == int("ab", 16)
    assert shard_of("") == 0
    assert shard_of("zz-not-hex") == 0


def test_index_single_flight_lifecycle(tmp_path):
    async def scenario():
        index = ShardedIndex(ResultCache(tmp_path, salt="s"))
        # First caller owns; a second concurrent caller must wait.
        assert index.reserve(KEY_A, "one") == ("own", None)
        assert index.reserve(KEY_A, "one") == ("own", None)  # idempotent
        assert index.reserve(KEY_A, "two") == ("wait", None)
        waiter = asyncio.ensure_future(index.wait(KEY_A, "two", timeout=5))
        await asyncio.sleep(0)  # park the waiter
        blob = encode_entry(42)
        index.publish(KEY_A, blob, "one")
        assert await waiter == ("hit", blob)
        # Published blobs hit from then on — for everyone.
        assert index.reserve(KEY_A, "three") == ("hit", blob)
        assert index.in_flight() == 0
        c = index.counters
        assert c["reserved"] == 1 and c["coalesced"] == 1
        assert c["published"] == 1 and c["hits"] == 1

    asyncio.run(scenario())


def test_index_release_promotes_first_waiter(tmp_path):
    async def scenario():
        index = ShardedIndex(ResultCache(tmp_path, salt="s"))
        assert index.reserve(KEY_A, "owner") == ("own", None)
        assert index.reserve(KEY_A, "heir") == ("wait", None)
        waiter = asyncio.ensure_future(index.wait(KEY_A, "heir", timeout=5))
        await asyncio.sleep(0)
        index.release(KEY_A, "owner")  # owner failed without publishing
        assert await waiter == ("own", None)
        assert index.counters["failed"] == 1
        assert index.counters["promoted"] == 1
        # The promoted waiter now owns the reservation.
        assert index.reserve(KEY_A, "heir") == ("own", None)

    asyncio.run(scenario())


def test_index_wait_timeout_keeps_reservation(tmp_path):
    async def scenario():
        index = ShardedIndex(ResultCache(tmp_path, salt="s"))
        index.reserve(KEY_A, "owner")
        index.reserve(KEY_A, "waiter")
        status, blob = await index.wait(KEY_A, "waiter", timeout=0.01)
        assert (status, blob) == ("pending", None)
        # The owner's claim survives a waiter's timeout.
        assert index.reserve(KEY_A, "third") == ("wait", None)

    asyncio.run(scenario())


def test_index_wait_self_promotes_when_owner_vanished(tmp_path):
    async def scenario():
        index = ShardedIndex(ResultCache(tmp_path, salt="s"))
        # No reservation, no blob: promote the caller rather than hang.
        assert await index.wait(KEY_A, "me", timeout=5) == ("own", None)
        assert index.counters["promoted"] == 1

    asyncio.run(scenario())


def test_index_release_owner_sweeps_disconnected_client(tmp_path):
    async def scenario():
        index = ShardedIndex(ResultCache(tmp_path, salt="s"))
        index.reserve(KEY_A, "conn-1")
        index.reserve(KEY_B, "conn-1")
        index.reserve(KEY_A, "conn-2")
        waiter = asyncio.ensure_future(
            index.wait(KEY_A, "conn-2", timeout=5)
        )
        await asyncio.sleep(0)
        assert index.release_owner("conn-1") == 2
        # The survivor inherits KEY_A; KEY_B's reservation disappears.
        assert await waiter == ("own", None)
        assert index.in_flight() == 1

    asyncio.run(scenario())


# -- the composed service ------------------------------------------------


@pytest.fixture
def service(tmp_path):
    svc = ExperimentService(
        cache=ResultCache(tmp_path / "cache", salt="svc"),
        workers=2,
        policy=FailurePolicy(keep_going=True),
    )
    handle = svc.run_in_thread()
    yield handle
    handle.stop()


def remote(handle, **kwargs):
    host, port = handle.cache_address
    kwargs.setdefault("salt", "svc")
    return RemoteCache(host, port, **kwargs)


# -- the socket protocol -------------------------------------------------


def test_remote_cache_round_trip(service):
    cache = remote(service)
    point = Point(fn=SQUARE, params={"x": 7})
    assert cache.lookup(point) == (False, None)
    cache.store(point, 49)
    assert cache.lookup(point) == (True, 49)
    # A second connection sees the same blob (shared on-disk store).
    other = remote(service)
    assert other.lookup(point) == (True, 49)
    stats = other.server_stats()
    assert stats["published"] == 1
    cache.close()
    other.close()


def test_remote_cache_single_flight_across_clients(service):
    first = remote(service)
    second = remote(service)
    point = Point(fn=SQUARE, params={"x": 3})
    assert first.reserve(point) == ("own", None)
    assert second.reserve(point) == ("wait", None)

    results = []
    parked = threading.Thread(
        target=lambda: results.append(second.wait_for(point, timeout=10))
    )
    parked.start()
    first.store(point, 9)  # publish wakes the parked waiter
    parked.join(timeout=10)
    assert results == [("hit", 9)]
    assert first.server_stats()["coalesced"] == 1
    first.close()
    second.close()


def test_disconnect_promotes_waiter(service):
    doomed = remote(service)
    survivor = remote(service)
    point = Point(fn=SQUARE, params={"x": 5})
    assert doomed.reserve(point) == ("own", None)
    assert survivor.reserve(point) == ("wait", None)
    doomed.close()  # dead client: server sweeps its reservations
    status, value = survivor.wait_for(point, timeout=10)
    assert (status, value) == ("own", None)
    survivor.close()


# -- Runner over RemoteCache --------------------------------------------


def test_serial_runner_over_remote_cache(service, tmp_path):
    log = tmp_path / "log"
    spec = grid(RECORD, range(4), log=str(log))
    cache = remote(service)
    first = Runner(jobs=1, cache=cache).run(spec)
    assert first.values == [0, 10, 20, 30]
    assert first.cache_misses == 4 and first.cache_hits == 0

    second = Runner(jobs=1, cache=remote(service)).run(spec)
    assert second.values == first.values
    assert second.cache_hits == 4 and second.cache_misses == 0
    # Hits never re-execute: one log line per unique point.
    assert len(log.read_text().splitlines()) == 4
    cache.close()


def test_concurrent_runners_pay_once_per_unique_point(service, tmp_path):
    """Two overlapping sweeps, two processesworth of runners, one
    execution per unique key — the tentpole guarantee."""
    log = tmp_path / "log"
    spec_a = grid(RECORD, range(0, 6), log=str(log))
    spec_b = grid(RECORD, range(3, 9), log=str(log))
    reports = {}

    def sweep(name, spec):
        runner = Runner(
            jobs=2, cache=remote(service), wait_timeout=60.0
        )
        reports[name] = runner.run(spec)

    threads = [
        threading.Thread(target=sweep, args=("a", spec_a)),
        threading.Thread(target=sweep, args=("b", spec_b)),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert reports["a"].values == [x * 10 for x in range(0, 6)]
    assert reports["b"].values == [x * 10 for x in range(3, 9)]
    # 12 points submitted, 9 unique: exactly 9 executions fleet-wide.
    executed = sorted(int(line) for line in log.read_text().splitlines())
    assert executed == list(range(9))
    stats = service.stats()
    assert stats["published"] == 9
    assert stats["in_flight"] == 0  # all reservations settled
    # The 3 overlapping points came back cached (a deduped wait counts
    # as a cache hit too — deduped_hits is the subset that parked).
    overlap_savings = reports["a"].cache_hits + reports["b"].cache_hits
    assert overlap_savings == 3
    assert (
        reports["a"].deduped_hits + reports["b"].deduped_hits
        <= overlap_savings
    )


def test_wait_timeout_takeover_recomputes_locally(service, tmp_path):
    """An abandoned reservation cannot wedge a sweep: the waiter takes
    the point over after wait_timeout and publishes itself."""
    log = tmp_path / "log"
    point = Point(fn=RECORD, params={"x": 1, "log": str(log)})
    squatter = remote(service)
    assert squatter.reserve(point) == ("own", None)  # never publishes

    report = Runner(
        jobs=1, cache=remote(service), wait_timeout=0.2
    ).run(ExperimentSpec(experiment="svc", points=(point,)))
    assert report.values == [10]
    assert log.read_text().splitlines() == ["1"]
    squatter.close()


# -- the HTTP job API ----------------------------------------------------


def test_jobs_end_to_end_bit_identical_to_local(service, tmp_path):
    client = ServiceClient(service.base_url)
    spec_a = grid(SQUARE, range(0, 8))
    spec_b = grid(SQUARE, range(4, 12))
    job_a = client.submit_spec(spec_a)
    job_b = client.submit_spec(spec_b)
    manifest_a = client.wait(job_a, timeout=120)
    manifest_b = client.wait(job_b, timeout=120)
    assert manifest_a["status"] == "done"
    assert manifest_b["status"] == "done"
    assert manifest_a["completed"] == 8 and manifest_b["completed"] == 8
    # 16 points submitted, 12 unique: every unique point paid for once.
    assert manifest_a["executed"] + manifest_b["executed"] == 12
    savings = (
        manifest_a["cache_hits"] + manifest_a["deduped"]
        + manifest_b["cache_hits"] + manifest_b["deduped"]
    )
    assert savings == 4
    assert service.stats()["published"] == 12

    # Bit-identity: the service's blobs decode to the local values.
    local = Runner(
        jobs=1, cache=ResultCache(tmp_path / "local", salt="local")
    ).run(spec_a)
    assert client.values(job_a) == local.values == [
        x * x for x in range(8)
    ]

    listed = {job["id"]: job for job in client.jobs()}
    assert listed[job_a]["status"] == "done"
    assert listed[job_b]["total"] == 8


def test_events_stream_replays_full_lifecycle(service):
    client = ServiceClient(service.base_url)
    job_id = client.submit_spec(grid(SQUARE, range(3)))
    client.wait(job_id, timeout=120)
    events = list(client.events(job_id))
    kinds = [e["event"] for e in events]
    assert kinds[0] == "job-queued"
    assert kinds[-1] == "job-end"
    assert "job-start" in kinds
    completes = [e for e in events if e["event"] == "point-complete"]
    assert len(completes) == 3
    # The wire schema is the progress module's JSON-lines record.
    for record in completes:
        assert set(record) >= {
            "experiment", "index", "total", "label", "cached",
            "deduped", "attempts", "seconds",
        }
    end = events[-1]
    assert end["status"] == "done" and end["executed"] == 3


def test_live_events_stream_closes_after_job_end(service):
    # Follow the FIRST job on a fresh service while it runs.  Worker
    # processes must never hold a duplicate of the stream's socket
    # (plain fork at dispatch time would), or the client blocks waiting
    # for EOF after ``job-end`` until its read timeout instead of the
    # stream ending; a short client timeout turns that hang into a
    # TimeoutError failure here.
    client = ServiceClient(service.base_url, timeout=10.0)
    job_id = client.submit_spec(grid(SQUARE, range(3)))
    events = list(client.events(job_id))
    assert events[-1]["event"] == "job-end"
    assert events[-1]["status"] == "done"


def test_job_failure_path_keeps_going(service):
    client = ServiceClient(service.base_url)
    spec = ExperimentSpec(experiment="svc", points=(
        Point(fn=BOOM, params={"x": 1}),
        Point(fn=SQUARE, params={"x": 4}),
    ))
    job_id = client.submit_spec(spec)
    manifest = client.wait(job_id, timeout=120)
    assert manifest["status"] == "failed"
    assert manifest["failed"] == 1 and manifest["completed"] == 2
    rows = manifest["points"]
    assert rows[0]["status"] == "failed"
    assert "boom" in rows[0]["message"]
    assert rows[1]["status"] == "ok"
    assert client.point_value(job_id, 1) == 16
    with pytest.raises(ServiceError, match="no published result"):
        client.point_value(job_id, 0)
    # A failed owner releases its reservation — nothing left in flight.
    assert service.stats()["in_flight"] == 0


def test_driver_submission_and_api_errors(service):
    client = ServiceClient(service.base_url)
    with pytest.raises(ServiceError, match="unknown driver"):
        client.submit_driver("not-a-driver")
    with pytest.raises(ServiceError, match="HTTP 404"):
        client.job("job-999")
    with pytest.raises(ServiceError, match="'spec' or 'driver'"):
        client.submit_job({})

    status, body = client._request("POST", "/jobs", payload=None)
    # An empty body is "{}": missing spec/driver, not a parse error.
    assert status == 400

    raw = urllib.request.Request(
        service.base_url + "/jobs",
        data=b"not json",
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        urllib.request.urlopen(raw, timeout=10)
        raised = None
    except urllib.error.HTTPError as exc:
        raised = exc.code
        detail = json.loads(exc.read())
    assert raised == 400 and "malformed" in detail["error"]

    delete = urllib.request.Request(
        service.base_url + "/jobs", method="DELETE"
    )
    try:
        urllib.request.urlopen(delete, timeout=10)
        raised = None
    except urllib.error.HTTPError as exc:
        raised = exc.code
    assert raised == 405

    health = json.loads(
        urllib.request.urlopen(
            service.base_url + "/healthz", timeout=10
        ).read()
    )
    assert health == {"status": "ok"}


def test_decode_entry_round_trips_point_blob(service):
    """The /points/<i> blob is the cache's entry framing, verbatim."""
    client = ServiceClient(service.base_url)
    job_id = client.submit_spec(grid(SQUARE, [6]))
    client.wait(job_id, timeout=120)
    manifest = client.job(job_id)
    key = manifest["keys"][0]
    blob = urllib.request.urlopen(
        f"{service.base_url}/jobs/{job_id}/points/0", timeout=10
    ).read()
    assert decode_entry(blob) == 36
    # The on-disk entry is byte-identical to what the route served.
    on_disk = service.service.cache.lookup_blob(key)
    assert on_disk == blob

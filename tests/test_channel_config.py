"""Tests for channel configuration: state pairs, Table I, params."""

import pytest

from repro.channel.config import (
    ALL_PAIRS,
    LEXCL,
    LSHARED,
    REXCL,
    RSHARED,
    TABLE_I,
    LineState,
    Location,
    ProtocolParams,
    Scenario,
    scenario_by_name,
)
from repro.errors import ConfigError
from repro.mem.latency import CLOCK_HZ
from repro.sim.events import AccessPath


def test_pair_notation():
    assert LEXCL.notation == "LExcl"
    assert RSHARED.notation == "RShared"


def test_pair_threads_needed():
    assert LEXCL.threads_needed == 1
    assert LSHARED.threads_needed == 2


def test_pair_expected_paths():
    assert LSHARED.expected_path is AccessPath.LOCAL_SHARED
    assert REXCL.expected_path is AccessPath.REMOTE_EXCL


def test_all_pairs_unique():
    assert len(set(ALL_PAIRS)) == 4


def test_table_one_has_six_scenarios():
    assert len(TABLE_I) == 6
    assert len({s.name for s in TABLE_I}) == 6


@pytest.mark.parametrize("name,total,local,remote", [
    ("LExclc-LSharedb", 2, 2, 0),
    ("RExclc-RSharedb", 2, 0, 2),
    ("RExclc-LExclb", 2, 1, 1),
    ("RExclc-LSharedb", 3, 2, 1),
    ("RSharedc-LExclb", 3, 1, 2),
    ("RSharedc-LSharedb", 4, 2, 2),
])
def test_table_one_thread_counts_match_paper(name, total, local, remote):
    scenario = scenario_by_name(name)
    assert scenario.total_threads == total
    assert scenario.local_threads == local
    assert scenario.remote_threads == remote


def test_scenario_needs_remote_socket():
    assert not scenario_by_name("LExclc-LSharedb").needs_remote_socket
    assert scenario_by_name("RExclc-RSharedb").needs_remote_socket


def test_scenario_rejects_identical_pairs():
    with pytest.raises(ConfigError):
        Scenario(csc=LEXCL, csb=LEXCL)


def test_scenario_by_name_unknown():
    with pytest.raises(ConfigError):
        scenario_by_name("nope")


def test_params_validation():
    with pytest.raises(ConfigError):
        ProtocolParams(c1=2, c0=2)
    with pytest.raises(ConfigError):
        ProtocolParams(c0=0)
    with pytest.raises(ConfigError):
        ProtocolParams(slot_cycles=10.0, spy_overhead_cycles=20.0)


def test_params_derived_values():
    params = ProtocolParams(c1=5, c0=2, cb=3, slot_cycles=1000.0,
                            spy_overhead_cycles=200.0)
    assert params.spy_wait_cycles == 800.0
    assert params.threshold == 3.5
    assert params.avg_slots_per_bit == 6.5


def test_nominal_rate_math():
    params = ProtocolParams(slot_cycles=1000.0)
    expected = CLOCK_HZ / (params.avg_slots_per_bit * 1000.0) / 1e3
    assert params.nominal_rate_kbps == pytest.approx(expected)


def test_at_rate_hits_target():
    params = ProtocolParams().at_rate(700)
    assert params.nominal_rate_kbps == pytest.approx(700, rel=1e-6)
    # symbol structure preserved
    base = ProtocolParams()
    assert (params.c1, params.c0, params.cb) == (base.c1, base.c0, base.cb)


def test_at_rate_rejects_nonpositive():
    with pytest.raises(ConfigError):
        ProtocolParams().at_rate(0)


def test_at_rate_shrinks_overhead_for_fast_slots():
    params = ProtocolParams().at_rate(2000)
    assert params.spy_overhead_cycles < params.slot_cycles

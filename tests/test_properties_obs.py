"""Property-based tests for the tracing subsystem (``repro.obs``).

Two properties lock the tap's fidelity:

* Replay — the coherence-transition events a tap records from any
  random op sequence form a stream that satisfies the MESI invariants
  (:func:`check_transition_events`), and the machine itself stays
  invariant-clean: recording cannot invent impossible states.
* Band agreement — on a noiseless session, every latency sample the spy
  labels ``'c'``/``'b'`` has a ground-truth service path that matches
  the state pair whose band the latency fell in: what the tap records
  as the path is what the latency says it should be.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel.config import scenario_by_name
from repro.channel.session import ChannelSession, SessionConfig
from repro.mem.cacheline import LINE_SIZE
from repro.mem.hierarchy import Machine, MachineConfig
from repro.mem.invariants import check_machine, check_transition_events
from repro.mem.latency import NoiseModel
from repro.obs import MachineTap, TraceRecorder
from repro.sim.rng import RngStreams

N_LINES = 5
BASE = 0x200_0000


def tapped_machine():
    config = MachineConfig(
        cores_per_socket=3,
        l1_sets=4, l1_assoc=2,
        l2_sets=8, l2_assoc=2,
        llc_sets=16, llc_assoc=4,
        noise=NoiseModel(enabled=False),
    )
    machine = Machine(config, RngStreams(0))
    recorder = TraceRecorder()
    MachineTap(machine, recorder).attach()
    return machine, recorder


ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["load", "store", "flush"]),
        st.integers(min_value=0, max_value=5),     # core
        st.integers(min_value=0, max_value=N_LINES - 1),
        st.integers(min_value=1, max_value=1000),  # store value
    ),
    min_size=1,
    max_size=50,
)


@settings(max_examples=100, deadline=None)
@given(ops=ops_strategy)
def test_recorded_transitions_replay_clean(ops):
    machine, recorder = tapped_machine()
    now = 0.0
    for op, core, line, value in ops:
        addr = BASE + line * LINE_SIZE
        now += 100.0
        if op == "load":
            machine.load(core, addr, now=now)
        elif op == "store":
            machine.store(core, addr, value, now=now)
        else:
            machine.flush(core, addr, now=now)
    check_transition_events(recorder.select("coherence"))
    check_machine(machine)
    # Every op the machine served was recorded.
    assert len(recorder.select("load", "store", "flush")) == len(ops)


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    payload=st.lists(st.integers(min_value=0, max_value=1),
                     min_size=2, max_size=5),
)
def test_labeled_samples_match_their_band_path(seed, payload):
    scenario = scenario_by_name("LExclc-LSharedb")
    session = ChannelSession(SessionConfig(
        spec=scenario.name,
        seed=seed,
        calibration_samples=120,
        machine=MachineConfig(noise=NoiseModel(enabled=False)),
        calibration_memo=False,
        trace=True,
    ))
    result = session.transmit(list(payload))
    assert result.received == list(payload)

    expected = {
        "c": (session.bands.band_for(scenario.csc),
              scenario.csc.expected_path),
        "b": (session.bands.band_for(scenario.csb),
              scenario.csb.expected_path),
    }
    labeled = [s for s in result.samples if s.label in expected]
    assert labeled, "a decodable transmission must label some samples"
    for sample in labeled:
        band, path = expected[sample.label]
        assert band.contains(sample.latency), (
            f"label {sample.label!r} but latency {sample.latency} "
            f"outside {band}"
        )
        assert sample.path is path, (
            f"latency in {band} but ground-truth path was {sample.path}"
        )

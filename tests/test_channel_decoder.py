"""Tests for the spy-side decoder (Algorithm 2 translation)."""

import pytest

from repro.channel.calibration import Band, LatencyBands
from repro.channel.config import LEXCL, LSHARED, ProtocolParams, Scenario
from repro.channel.decoder import BitDecoder, Sample

SCENARIO = Scenario(csc=LEXCL, csb=LSHARED)
PARAMS = ProtocolParams(c1=5, c0=2, cb=3)


@pytest.fixture
def decoder():
    bands = LatencyBands(bands={
        LSHARED: Band("LShared", 90, 108),
        LEXCL: Band("LExcl", 115, 135),
    }, dram=Band("dram", 280, 400))
    return BitDecoder(bands, SCENARIO, PARAMS)


def samples_from(labels, latency_for=None):
    latency_for = latency_for or {"c": 124.0, "b": 98.0, "x": 320.0}
    return [
        Sample(timestamp=float(i * 1000), latency=latency_for[label],
               label=label)
        for i, label in enumerate(labels)
    ]


def test_label_classification(decoder):
    assert decoder.label(124.0) == "c"
    assert decoder.label(98.0) == "b"
    assert decoder.label(320.0) == "x"
    assert decoder.label(10.0) == "x"


def test_run_length():
    runs = BitDecoder.run_length(list("ccbbbc"))
    assert runs == [("c", 2), ("b", 3), ("c", 1)]


def test_smooth_repairs_isolated_dropout(decoder):
    assert decoder.smooth(list("ccxcc")) == list("ccccc")


def test_smooth_keeps_real_gaps(decoder):
    assert decoder.smooth(list("ccxxcc")) == list("ccxxcc")
    assert decoder.smooth(list("cbxbc")) == list("cbbbc")


def test_decode_single_one(decoder):
    labels = "bbb" + "ccccc" + "bbb"
    report = decoder.decode(samples_from(labels))
    assert report.bits == [1]


def test_decode_single_zero(decoder):
    labels = "bbb" + "cc" + "bbb"
    report = decoder.decode(samples_from(labels))
    assert report.bits == [0]


def test_decode_sequence(decoder):
    labels = "bbb" + "ccccc" + "bbb" + "cc" + "bbb" + "ccccc" + "bbb"
    report = decoder.decode(samples_from(labels))
    assert report.bits == [1, 0, 1]


def test_decode_tolerates_run_length_jitter(decoder):
    # +/-1 slot per phase must not flip bits
    labels = "bb" + "cccc" + "bbbb" + "ccc" + "bb" + "cccccc" + "bbb"
    report = decoder.decode(samples_from(labels))
    assert report.bits == [1, 0, 1]


def test_decode_ignores_leading_noise(decoder):
    labels = "cc" + "bbb" + "ccccc" + "bbb"
    report = decoder.decode(samples_from(labels))
    assert report.bits == [1]


def test_dropout_in_run_can_flip_bit(decoder):
    # a 2+ sample dropout inside a '1' run truncates the count: 5 -> 2
    labels = "bbb" + "cc" + "xx" + "ccc" + "bbb"
    report = decoder.decode(samples_from(labels))
    assert report.bits == [0]


def test_decode_empty():
    bands = LatencyBands(bands={
        LSHARED: Band("LShared", 90, 108),
        LEXCL: Band("LExcl", 115, 135),
    })
    decoder = BitDecoder(bands, SCENARIO, PARAMS)
    report = decoder.decode([])
    assert report.bits == []
    assert report.n_samples == 0


def test_decode_report_diagnostics(decoder):
    labels = "bbb" + "ccccc" + "xx" + "bbb"
    report = decoder.decode(samples_from(labels))
    assert report.n_samples == len(labels)
    assert report.n_boundary_runs == 2
    assert report.n_unclassified == 2


def test_decoder_rejects_overlapping_bands():
    from repro.errors import CalibrationError

    bands = LatencyBands(bands={
        LSHARED: Band("LShared", 90, 125),
        LEXCL: Band("LExcl", 115, 135),
    })
    with pytest.raises(CalibrationError):
        BitDecoder(bands, SCENARIO, PARAMS)


def test_ambiguous_latency_resolves_to_nearer_center():
    # force overlap via a custom band object after construction
    bands = LatencyBands(bands={
        LSHARED: Band("LShared", 90, 108),
        LEXCL: Band("LExcl", 115, 135),
    })
    decoder = BitDecoder(bands, SCENARIO, PARAMS)
    decoder._tb = Band("LShared", 90, 120)  # inject overlap
    assert decoder.label(118.0) == "c"   # nearer to 125 than to 105
    assert decoder.label(100.0) == "b"

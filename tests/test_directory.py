"""Home-node directory backend: entry semantics + machine request paths.

Covers the two satellite units the scenario matrix leans on:

* :meth:`DirectoryEntry.owner` extraction from the sharer bitmask,
  including the degenerate masks (empty, multi-bit) a conservative
  directory must tolerate;
* the true-LRU promote-on-probe encoding the LRU channel modulates —
  an MRU-promoted line survives a probe sweep that evicts everything
  else, which is exactly the one-bit signal the spy times.
"""

import pytest

from repro.channel.config import LCOLD, LMRU
from repro.mem.cache import SetAssocCache
from repro.mem.directory import DirectoryEntry, DirectoryState
from repro.mem.hierarchy import AccessPath, Machine, MachineConfig
from repro.mem.latency import NoiseModel
from repro.sim.rng import RngStreams

LINE = 64


# -- DirectoryEntry.owner() edge cases --------------------------------


def test_owner_none_for_ownerless_states():
    entry = DirectoryEntry(addr=0)
    assert entry.owner() is None                     # UNCACHED
    entry.state = DirectoryState.SHARED
    entry.add_sharer(3)
    entry.add_sharer(5)
    assert entry.owner() is None                     # home answers itself


@pytest.mark.parametrize(
    "state", [DirectoryState.EXCLUSIVE, DirectoryState.MODIFIED]
)
def test_owner_is_single_sharer_bit(state):
    entry = DirectoryEntry(addr=0, state=state)
    entry.add_sharer(6)
    assert entry.owner() == 6


@pytest.mark.parametrize(
    "state", [DirectoryState.EXCLUSIVE, DirectoryState.MODIFIED]
)
def test_owner_none_on_empty_mask(state):
    # Stale entry: the owner's copy was silently evicted and the bit
    # already healed away.  No core can service; fall back to home.
    entry = DirectoryEntry(addr=0, state=state)
    assert entry.owner() is None


@pytest.mark.parametrize(
    "state", [DirectoryState.EXCLUSIVE, DirectoryState.MODIFIED]
)
def test_owner_none_on_multibit_mask(state):
    # A multi-bit mask under E/M means the exclusivity invariant broke;
    # trusting either bit would forward to a core that may not serve.
    entry = DirectoryEntry(addr=0, state=state)
    entry.add_sharer(1)
    entry.add_sharer(4)
    assert entry.owner() is None


def test_owned_state_uses_explicit_owner_id():
    # O legitimately has several sharer bits; the mask cannot name the
    # dirty owner, so the explicit field must win.
    entry = DirectoryEntry(addr=0, state=DirectoryState.OWNED, owner_id=2)
    entry.add_sharer(2)
    entry.add_sharer(7)
    assert entry.owner() == 2
    entry.owner_id = None
    assert entry.owner() is None


def test_sharer_mask_bookkeeping():
    entry = DirectoryEntry(addr=0)
    for core in (9, 1, 4):
        entry.add_sharer(core)
    entry.add_sharer(4)  # idempotent
    assert entry.sharer_ids() == [1, 4, 9]
    assert entry.sharer_count == 3
    entry.drop_sharer(4)
    entry.drop_sharer(4)  # no-op on a cleared bit
    assert entry.sharer_ids() == [1, 9]


# -- machine request paths (coherence="directory") --------------------


def directory_machine():
    return Machine(
        MachineConfig(coherence="directory",
                      noise=NoiseModel(enabled=False)),
        RngStreams(0),
    )


def test_home_entry_lifecycle():
    machine = directory_machine()
    addr = 0x300_0000
    machine.load(0, addr, now=0.0)
    entry = machine.home_directory[addr]
    assert entry.state is DirectoryState.EXCLUSIVE
    assert entry.owner() == 0
    # A second reader demotes the clean owner; home takes over service.
    machine.load(4, addr, now=100.0)
    assert entry.state is DirectoryState.SHARED
    assert entry.owner() is None
    assert entry.sharer_count == 2


def test_stale_owner_heals_to_home_service():
    machine = directory_machine()
    addr = 0x300_0000
    machine.load(0, addr, now=0.0)
    entry = machine.home_directory[addr]
    assert entry.owner() == 0
    # Silently drop the owner's private copies (models eviction) while
    # leaving the home entry stale: the next consult must heal it
    # instead of forwarding nowhere.
    machine.sockets[0].private_invalidate(machine.cores[0], addr)
    value, _latency, path = machine.load(4, addr, now=100.0)
    # The stale bit is healed away; with no live copy left anywhere the
    # home falls through to a fresh memory fill and re-grants E.
    assert path is AccessPath.DRAM
    assert entry.state is DirectoryState.EXCLUSIVE
    assert entry.owner() == 4
    assert 0 not in entry.sharer_ids()


def test_flush_returns_line_to_memory_fill():
    machine = directory_machine()
    addr = 0x300_0000
    machine.store(0, addr, 42, now=0.0)
    machine.flush(0, addr, now=100.0)
    value, _latency, path = machine.load(4, addr, now=200.0)
    assert value == 42          # dirty data survived the flush
    assert path is AccessPath.DRAM


# -- LRU-order probe encoding -----------------------------------------


def probe_sweep(cache, set_index, start=0x900_0000, count=None):
    """Insert `count` fresh conflicting lines (the spy's eviction probe)."""
    count = cache.assoc if count is None else count
    for i in range(count):
        addr = start + (set_index * LINE) + i * (cache.n_sets * LINE)
        cache.insert(addr, object())


def test_probe_promotes_line_to_mru():
    cache = SetAssocCache("llc", n_sets=4, assoc=4, )
    base = 0x800_0000  # set 0
    conflicts = [base + i * 4 * LINE for i in range(1, 4)]
    cache.insert(base, "B")
    for addr in conflicts:
        cache.insert(addr, object())
    # B is now LRU; a probe (lookup) must move it to the MRU end, so the
    # next insertion evicts the oldest *conflict*, not B.
    assert cache.lookup(base) == "B"
    cache.insert(base + 16 * 4 * LINE, object())
    assert base in cache
    assert conflicts[0] not in cache


def test_mru_symbol_survives_partial_sweep_cold_does_not():
    """The LRU channel's two symbols, at the replacement-state level.

    MRU symbol: the trojan re-touches the block while the spy sweeps
    ``assoc - 1`` conflicting ways, so the block stays resident and the
    timed reload hits.  COLD symbol: the trojan idles, the same sweep
    reaches the block's slot and the reload misses (DRAM band).
    """
    for touched, survives in ((True, True), (False, False)):
        cache = SetAssocCache("llc", n_sets=4, assoc=4)
        base = 0x800_0000
        cache.insert(base, "B")
        # age B behind one conflicting line
        cache.insert(base + 4 * LINE * 4, object())
        if touched:
            cache.lookup(base)  # trojan holds B at the MRU end
        probe_sweep(cache, 0, count=3)
        assert (base in cache) is survives


def test_full_sweep_always_evicts():
    # The spy's *flush* sweep covers every way: even an MRU block goes.
    cache = SetAssocCache("llc", n_sets=4, assoc=4)
    base = 0x800_0000
    cache.insert(base, "B")
    cache.lookup(base)
    probe_sweep(cache, 0)
    assert base not in cache


def test_mru_cold_pairs_map_to_expected_bands():
    # The spy decodes by band: a held (MRU) block services from the
    # holder's cache (E band); a swept (COLD) block refills from DRAM.
    assert LMRU.expected_path is AccessPath.LOCAL_EXCL
    assert LCOLD.expected_path is AccessPath.DRAM

"""Property-based tests on the channel's codecs and metrics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel.calibration import Band, LatencyBands
from repro.channel.config import LEXCL, LSHARED, ProtocolParams, Scenario
from repro.channel.decoder import BitDecoder, Sample
from repro.channel.ecc import (
    bits_to_bytes,
    bytes_to_bits,
    check_packet,
    check_packet_crc16,
    encode_packet,
    encode_packet_crc16,
)
from repro.channel.metrics import align_bits
from repro.channel.symbols import bits_to_symbols, symbols_to_bits

bit_lists = st.lists(st.integers(min_value=0, max_value=1), min_size=0,
                     max_size=200)


# ---------------------------------------------------------------------------
# decoder round trip: an ideal label stream decodes back to the payload
# ---------------------------------------------------------------------------

def make_decoder(params: ProtocolParams) -> BitDecoder:
    bands = LatencyBands(bands={
        LSHARED: Band("LShared", 90, 108),
        LEXCL: Band("LExcl", 115, 135),
    }, dram=Band("dram", 280, 400))
    return BitDecoder(bands, Scenario(csc=LEXCL, csb=LSHARED), params)


def ideal_labels(payload, params: ProtocolParams) -> str:
    out = []
    for bit in payload:
        out.append("b" * params.cb)
        out.append("c" * (params.c1 if bit else params.c0))
    out.append("b" * params.cb)
    return "".join(out)


@settings(max_examples=150, deadline=None)
@given(
    payload=st.lists(st.integers(min_value=0, max_value=1), min_size=1,
                     max_size=40),
    c0=st.integers(min_value=2, max_value=3),
    extra=st.integers(min_value=2, max_value=4),
    cb=st.integers(min_value=3, max_value=5),
)
def test_ideal_stream_decodes_exactly(payload, c0, extra, cb):
    params = ProtocolParams(c1=c0 + extra, c0=c0, cb=cb)
    decoder = make_decoder(params)
    labels = ideal_labels(payload, params)
    samples = [
        Sample(timestamp=float(i), latency=124.0 if lab == "c" else 98.0,
               label=lab)
        for i, lab in enumerate(labels)
    ]
    report = decoder.decode(samples)
    assert report.bits == payload


@settings(max_examples=100, deadline=None)
@given(
    payload=st.lists(st.integers(min_value=0, max_value=1), min_size=1,
                     max_size=30),
    jitter=st.lists(st.integers(min_value=-1, max_value=1), min_size=1,
                    max_size=30),
)
def test_run_length_jitter_of_one_never_flips(payload, jitter):
    """±1-sample run-length noise must not change any decoded bit.

    Runs are clamped to two samples: the decoder's run repair treats
    1-sample runs as flipped boundary samples by design (slot-locked
    pacing guarantees >= 2 samples per legitimate state hold).
    """
    params = ProtocolParams(c1=5, c0=2, cb=3)
    decoder = make_decoder(params)
    out = []
    for i, bit in enumerate(payload):
        out.append("b" * params.cb)
        base = params.c1 if bit else params.c0
        delta = jitter[i % len(jitter)]
        out.append("c" * max(2, base + delta))
    out.append("b" * params.cb)
    samples = [
        Sample(timestamp=float(i), latency=124.0 if lab == "c" else 98.0,
               label=lab)
        for i, lab in enumerate("".join(out))
    ]
    report = decoder.decode(samples)
    assert report.bits == payload


# ---------------------------------------------------------------------------
# packet codecs
# ---------------------------------------------------------------------------

@settings(max_examples=100, deadline=None)
@given(data=st.binary(min_size=4, max_size=64).filter(lambda b: len(b) % 4 == 0))
def test_parity_roundtrip(data):
    ok, decoded = check_packet(encode_packet(data), data_bytes=len(data))
    assert ok and decoded == data


@settings(max_examples=100, deadline=None)
@given(
    data=st.binary(min_size=4, max_size=64).filter(lambda b: len(b) % 4 == 0),
    flip=st.integers(min_value=0, max_value=10_000),
)
def test_parity_detects_single_flip(data, flip):
    bits = encode_packet(data)
    bits[flip % len(bits)] ^= 1
    ok, _decoded = check_packet(bits, data_bytes=len(data))
    assert not ok


@settings(max_examples=100, deadline=None)
@given(data=st.binary(min_size=1, max_size=64))
def test_crc16_roundtrip(data):
    ok, decoded = check_packet_crc16(encode_packet_crc16(data),
                                     data_bytes=len(data))
    assert ok and decoded == data


@settings(max_examples=150, deadline=None)
@given(
    data=st.binary(min_size=1, max_size=32),
    flips=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1,
                   max_size=3, unique=True),
)
def test_crc16_detects_small_corruptions(data, flips):
    bits = encode_packet_crc16(data)
    positions = {f % len(bits) for f in flips}
    for pos in positions:
        bits[pos] ^= 1
    ok, _decoded = check_packet_crc16(bits, data_bytes=len(data))
    # CRC-16-CCITT has Hamming distance 4 at these block lengths: every
    # 1..3-bit corruption is detected (some 4-bit patterns are not —
    # they alias onto valid codewords, so they are out of scope here).
    assert not ok


@settings(max_examples=80, deadline=None)
@given(data=st.binary(min_size=0, max_size=48))
def test_bytes_bits_roundtrip(data):
    assert bits_to_bytes(bytes_to_bits(data)) == data


# ---------------------------------------------------------------------------
# symbol packing
# ---------------------------------------------------------------------------

@settings(max_examples=80, deadline=None)
@given(bits=st.lists(st.integers(min_value=0, max_value=1), min_size=0,
                     max_size=60).filter(lambda b: len(b) % 2 == 0))
def test_symbol_packing_roundtrip(bits):
    assert symbols_to_bits(bits_to_symbols(bits)) == bits


# ---------------------------------------------------------------------------
# alignment metric
# ---------------------------------------------------------------------------

@settings(max_examples=80, deadline=None)
@given(bits=bit_lists)
def test_alignment_identity(bits):
    result = align_bits(bits, bits)
    assert result.matches == len(bits)
    assert result.accuracy == 1.0 if bits else result.accuracy in (0.0, 1.0)


@settings(max_examples=80, deadline=None)
@given(sent=bit_lists, received=bit_lists)
def test_alignment_bounds(sent, received):
    result = align_bits(sent, received)
    assert 0.0 <= result.accuracy <= 1.0
    assert result.matches <= min(len(sent), len(received)) or not sent
    assert result.matches + result.flips + result.losses == len(sent)
    assert result.matches + result.flips + result.duplicates == len(received)


@settings(max_examples=60, deadline=None)
@given(sent=st.lists(st.integers(min_value=0, max_value=1), min_size=2,
                     max_size=80),
       drop=st.integers(min_value=0, max_value=79))
def test_alignment_single_deletion(sent, drop):
    received = list(sent)
    del received[drop % len(sent)]
    result = align_bits(sent, received)
    assert result.losses + result.flips * 2 <= 3  # one deletion dominates
    assert result.accuracy >= (len(sent) - 2) / len(sent)

"""Tests for latency-band calibration (Section V / Figure 2)."""

import numpy as np
import pytest

from repro.channel.calibration import (
    Band,
    LatencyBands,
    calibrate,
    measure_dram,
    measure_pair,
)
from repro.channel.config import ALL_PAIRS, LEXCL, LSHARED, REXCL, RSHARED
from repro.errors import CalibrationError
from repro.mem.hierarchy import Machine, MachineConfig
from repro.sim.rng import RngStreams


@pytest.fixture
def calibrated(rng):
    machine = Machine(MachineConfig(), rng)
    return calibrate(machine, samples=300)


def test_band_contains():
    band = Band("x", 10.0, 20.0)
    assert band.contains(10.0) and band.contains(20.0)
    assert not band.contains(9.9)
    assert band.center == 15.0


def test_all_four_bands_calibrated(calibrated):
    bands, raw = calibrated
    assert set(bands.bands) == set(ALL_PAIRS)
    assert bands.dram is not None
    assert set(raw) == {"LShared", "LExcl", "RShared", "RExcl", "dram"}


def test_band_medians_match_paper(calibrated):
    _bands, raw = calibrated
    assert np.median(raw["LShared"]) == pytest.approx(98, abs=4)
    assert np.median(raw["LExcl"]) == pytest.approx(124, abs=4)
    assert np.median(raw["RShared"]) == pytest.approx(170, abs=6)
    assert np.median(raw["RExcl"]) == pytest.approx(232, abs=6)


def test_bands_are_ordered_and_disjoint(calibrated):
    bands, _raw = calibrated
    ordered = [bands.band_for(p) for p in (LSHARED, LEXCL, RSHARED, REXCL)]
    for a, b in zip(ordered[:-1], ordered[1:]):
        assert a.hi < b.lo


def test_classification(calibrated):
    bands, _raw = calibrated
    assert bands.classify(98.0) == LSHARED
    assert bands.classify(124.0) == LEXCL
    assert bands.classify(170.0) == RSHARED
    assert bands.classify(232.0) == REXCL
    assert bands.classify(320.0) == "dram"
    assert bands.classify(1.0) is None


def test_check_separation_passes_for_disjoint(calibrated):
    bands, _raw = calibrated
    bands.check_separation(LSHARED, LEXCL)  # no raise


def test_check_separation_raises_on_overlap():
    bands = LatencyBands(bands={
        LSHARED: Band("LShared", 90, 130),
        LEXCL: Band("LExcl", 120, 140),
    })
    with pytest.raises(CalibrationError):
        bands.check_separation(LSHARED, LEXCL)


def test_overlapping_classify_prefers_narrower_band():
    bands = LatencyBands(bands={
        LSHARED: Band("LShared", 90, 200),
        LEXCL: Band("LExcl", 120, 130),
    })
    assert bands.classify(125.0) == LEXCL


def test_measure_pair_returns_requested_samples(rng):
    machine = Machine(MachineConfig(), rng)
    data = measure_pair(machine, LEXCL, 0x40_0000, samples=50)
    assert data.shape == (50,)
    assert np.all(data > 0)


def test_measure_dram_high_latency(rng):
    machine = Machine(MachineConfig(), rng)
    data = measure_dram(machine, 0x40_0000, samples=50)
    assert np.median(data) > 250


def test_single_socket_machine_skips_remote_pairs(rng):
    machine = Machine(MachineConfig(n_sockets=1), rng)
    bands, raw = calibrate(machine, samples=100)
    assert LSHARED in bands.bands and LEXCL in bands.bands
    assert RSHARED not in bands.bands and REXCL not in bands.bands


def test_calibration_is_deterministic():
    a = calibrate(Machine(MachineConfig(), RngStreams(5)), samples=100)
    b = calibrate(Machine(MachineConfig(), RngStreams(5)), samples=100)
    assert a[0].band_for(LEXCL).lo == b[0].band_for(LEXCL).lo
    assert np.array_equal(a[1]["LExcl"], b[1]["LExcl"])


def test_calibration_resets_interconnect(rng):
    machine = Machine(MachineConfig(), rng)
    calibrate(machine, samples=200)
    for ring in machine.interconnect.rings:
        assert ring.current_load(1e12) == 0.0

"""Tests for the performance harness (``repro.bench``)."""

import pytest

from repro.bench import (
    check_regression,
    default_report_name,
    load_report,
    run_all,
    write_report,
)
from repro.bench.harness import SCHEMA


@pytest.fixture(scope="module")
def quick_report():
    return run_all(repeats=1, quick=True)


def test_run_all_shape(quick_report):
    assert quick_report["schema"] == SCHEMA
    assert quick_report["quick"] is True
    bench = quick_report["benchmarks"]
    assert set(bench) == {
        "engine_micro", "fig8_point", "noise_point", "grid_sweep",
        "lane_sweep", "service_sweep", "trace_overhead",
        "streaming_overhead", "segment_overhead",
    }
    micro = bench["engine_micro"]
    assert micro["events"] > 0
    assert micro["wall_s"] > 0
    assert micro["events_per_sec"] == pytest.approx(
        micro["events"] / micro["wall_s"]
    )
    for name in ("fig8_point", "noise_point"):
        assert bench[name]["wall_s"] > 0
        assert 0.0 <= bench[name]["accuracy"] <= 1.0
    grid = bench["grid_sweep"]
    assert grid["bit_identical"] is True
    assert set(grid["modes"]) == {
        "reference", "serial", "jobs", "chunked", "lanes",
    }
    for mode, info in grid["modes"].items():
        assert info["points_per_sec"] > 0
        if mode != "reference":
            assert info["speedup"] > 0
    assert grid["best_speedup"] == pytest.approx(
        max(info["speedup"] for mode, info in grid["modes"].items()
            if mode != "reference")
    )
    assert 0 < grid["cache_bytes"] <= grid["cache_bytes_legacy"]
    lane = bench["lane_sweep"]
    assert lane["bit_identical"] is True
    assert set(lane["modes"]) == {"chunked", "lanes", "lanes_pool"}
    for mode, info in lane["modes"].items():
        assert info["points_per_sec"] > 0
        if mode != "chunked":
            assert info["speedup_vs_chunked"] > 0
    assert lane["speedup_vs_chunked"] == pytest.approx(
        max(info["speedup_vs_chunked"]
            for mode, info in lane["modes"].items() if mode != "chunked")
    )
    svc = bench["service_sweep"]
    assert svc["bit_identical"] is True
    # Single-flight makes the dedupe ratio deterministic: every unique
    # key executed exactly once, fleet-wide.
    assert svc["executed"] == svc["unique"]
    assert svc["dedupe_ratio"] == pytest.approx(
        svc["submitted"] / svc["unique"]
    )
    assert svc["local_wall_s"] > 0 and svc["service_wall_s"] > 0
    trace = bench["trace_overhead"]
    assert trace["baseline_wall_s"] > 0
    assert trace["disabled_wall_s"] > 0
    assert trace["enabled_wall_s"] > 0
    assert trace["traced_events"] > 0
    assert trace["disabled_overhead"] == pytest.approx(
        trace["disabled_wall_s"] / trace["baseline_wall_s"] - 1.0
    )
    streaming = bench["streaming_overhead"]
    for key in ("baseline_wall_s", "disabled_wall_s", "traced_wall_s",
                "streaming_wall_s"):
        assert streaming[key] > 0
    assert streaming["streamed_events"] > 0
    assert streaming["flagged"] is True
    assert streaming["disabled_overhead"] == pytest.approx(
        streaming["disabled_wall_s"] / streaming["baseline_wall_s"] - 1.0
    )
    assert streaming["sink_overhead"] == pytest.approx(
        streaming["streaming_wall_s"] / streaming["traced_wall_s"] - 1.0
    )
    segment = bench["segment_overhead"]
    assert segment["baseline_wall_s"] > 0
    assert segment["armed_wall_s"] > 0
    assert segment["overhead"] == pytest.approx(
        segment["armed_wall_s"] / segment["baseline_wall_s"] - 1.0
    )


def test_report_roundtrip(quick_report, tmp_path):
    path = write_report(quick_report, tmp_path / default_report_name())
    assert path.name.startswith("BENCH_") and path.name.endswith(".json")
    assert load_report(path) == quick_report


def _report(events_per_sec):
    return {
        "schema": SCHEMA,
        "benchmarks": {"engine_micro": {"events_per_sec": events_per_sec}},
    }


def test_check_regression_passes_within_budget():
    assert check_regression(_report(90_000.0), _report(100_000.0)) == []
    # Exactly at the floor is allowed.
    assert check_regression(_report(80_000.0), _report(100_000.0)) == []


def test_check_regression_fails_below_floor():
    problems = check_regression(_report(70_000.0), _report(100_000.0))
    assert len(problems) == 1
    assert "engine_micro regressed" in problems[0]


def test_check_regression_custom_threshold():
    assert check_regression(
        _report(95_000.0), _report(100_000.0), max_regression=0.02
    )


def test_check_regression_trace_overhead_gate():
    current = _report(100_000.0)
    current["benchmarks"]["trace_overhead"] = {"disabled_overhead": 0.05}
    problems = check_regression(current, _report(100_000.0))
    assert len(problems) == 1
    assert "trace_overhead" in problems[0]
    current["benchmarks"]["trace_overhead"] = {"disabled_overhead": 0.005}
    assert check_regression(current, _report(100_000.0)) == []
    # Negative overhead (disabled faster than baseline: pure noise) passes.
    current["benchmarks"]["trace_overhead"] = {"disabled_overhead": -0.01}
    assert check_regression(current, _report(100_000.0)) == []


def test_check_regression_streaming_overhead_gate():
    current = _report(100_000.0)
    current["benchmarks"]["streaming_overhead"] = {"disabled_overhead": 0.05}
    problems = check_regression(current, _report(100_000.0))
    assert len(problems) == 1
    assert "streaming_overhead" in problems[0]
    # Under the cap — or negative (host noise) — passes.
    for overhead in (0.005, -0.01):
        current["benchmarks"]["streaming_overhead"] = {
            "disabled_overhead": overhead,
        }
        assert check_regression(current, _report(100_000.0)) == []


def test_check_regression_segment_overhead_gate():
    current = _report(100_000.0)
    current["benchmarks"]["segment_overhead"] = {"overhead": 0.08}
    problems = check_regression(current, _report(100_000.0))
    assert len(problems) == 1
    assert "segment_overhead" in problems[0]
    # Under the cap — or negative (armed faster: host noise) — passes.
    for overhead in (0.02, -0.01):
        current["benchmarks"]["segment_overhead"] = {"overhead": overhead}
        assert check_regression(current, _report(100_000.0)) == []


def test_check_regression_lane_sweep_gates():
    from repro.bench import LANE_MIN_SPEEDUP

    baseline = _report(100_000.0)
    current = _report(100_000.0)
    # Bit-identity failure gates regardless of speed.
    current["benchmarks"]["lane_sweep"] = {
        "bit_identical": False, "speedup_vs_chunked": 3.0,
    }
    problems = check_regression(current, baseline)
    assert len(problems) == 1 and "bit-identical" in problems[0]
    # Below the absolute floor gates.
    current["benchmarks"]["lane_sweep"] = {
        "bit_identical": True,
        "speedup_vs_chunked": LANE_MIN_SPEEDUP - 0.1,
    }
    problems = check_regression(current, baseline)
    assert len(problems) == 1 and "floor" in problems[0]
    # Above the floor but regressed >20% vs the pinned baseline gates.
    current["benchmarks"]["lane_sweep"] = {
        "bit_identical": True, "speedup_vs_chunked": 1.5,
    }
    baseline["benchmarks"]["lane_sweep"] = {
        "bit_identical": True, "speedup_vs_chunked": 2.5,
    }
    problems = check_regression(current, baseline)
    assert len(problems) == 1 and "lane_sweep regressed" in problems[0]
    # Healthy report passes.
    current["benchmarks"]["lane_sweep"] = {
        "bit_identical": True, "speedup_vs_chunked": 2.4,
    }
    assert check_regression(current, baseline) == []


def test_check_regression_service_sweep_gates():
    from repro.bench import SERVICE_MIN_DEDUPE

    baseline = _report(100_000.0)
    current = _report(100_000.0)
    # Bit-identity failure gates regardless of the dedupe ratio.
    current["benchmarks"]["service_sweep"] = {
        "bit_identical": False, "dedupe_ratio": 2.0,
    }
    problems = check_regression(current, baseline)
    assert len(problems) == 1 and "bit-identical" in problems[0]
    # A dedupe ratio below the floor means shared points re-executed.
    current["benchmarks"]["service_sweep"] = {
        "bit_identical": True,
        "dedupe_ratio": SERVICE_MIN_DEDUPE - 0.1,
    }
    problems = check_regression(current, baseline)
    assert len(problems) == 1 and "dedupe ratio" in problems[0]
    # Healthy report passes.
    current["benchmarks"]["service_sweep"] = {
        "bit_identical": True, "dedupe_ratio": 1.88,
    }
    assert check_regression(current, baseline) == []


def test_check_regression_malformed_baseline():
    problems = check_regression(_report(100_000.0), {"benchmarks": {}})
    assert problems and "malformed report" in problems[0]


def test_cli_bench_quick(capsys):
    from repro.cli import main

    assert main(["bench", "--quick", "--repeats", "1", "--no-write"]) == 0
    out = capsys.readouterr().out
    assert "engine_micro" in out and "events/s" in out
    assert "wrote" not in out

"""The vectorized lane backend: bit-identity, bypasses, dispatch.

The lane backend (:mod:`repro.sim.lanes`) is a pure performance play —
its single correctness contract is *bit-identity with the reference
engine*.  These tests pin that contract from every direction:

* lane-vs-reference transmission digests across **every** live cell of
  the scenario registry (protocol x channel matrix, Table I names, and
  the directory-topology cells);
* the five golden determinism digests, unchanged with lanes forced on;
* a Hypothesis property: any random interleaving of lane-eligible and
  lane-ineligible grid points produces byte-identical
  ``TransmissionResult`` pickles (and cache keys) to a pure-reference
  run, across mesi-es, moesi-ostate and dir-es;
* every divergence path falls back to the reference engine — trace
  sessions, fault plans, obfuscation, machine interposition — and each
  fall-out is recorded (``lane_bypass`` runner events, session notes);
* the ``REPRO_LANES=0`` kill switch wins over every other opt-in.

The calibration memo is process-local (see
``repro.channel.calibration``), so in-process lane-vs-reference
comparisons clear it before *each* run — otherwise the second run
reuses the first run's calibration pass and the manifests (not the
transmissions) drift apart.
"""

import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.channel.calibration import clear_calibration_memo
from repro.channel.scenarios import SCENARIOS
from repro.channel.session import ChannelSession, SessionConfig
from repro.obs.recorder import clear_runner_recorder, runner_recorder
from repro.runner import ExperimentSpec, Point, ResultCache, Runner
from repro.runner.executor import lane_batches
from repro.sim.engine import Simulator
from repro.sim.lanes import (
    DEFAULT_LANE_WIDTH,
    LaneSimulator,
    LaneState,
    consume_bypass_notes,
    lane_fingerprint,
    lane_scope,
    lane_width,
    lanes_enabled,
    point_bypass_reason,
)

from tests.test_golden_determinism import GOLDEN, run_config, transmission_digest

TRANSMIT = "tests.runner_points:transmit_point"
PAYLOAD = [1, 0, 1, 1, 0, 1]


def one_transmission(cell, *, seed=11, lanes=False):
    """One cold-calibration transmission; returns (session, result)."""
    clear_calibration_memo()
    with lane_scope(lanes):
        session = ChannelSession(SessionConfig(
            spec=cell, seed=seed, calibration_samples=120,
        ))
        result = session.transmit(list(PAYLOAD))
    return session, result


# -- lane-vs-reference equivalence, every live registry cell --------------


@pytest.mark.parametrize("cell", sorted(SCENARIOS))
def test_lane_matches_reference_on_registry_cell(cell):
    """Every registry cell behaves identically on both backends.

    Dead cells (e.g. ``mesi-ostate``, whose O bands collapse) must fail
    with the *same* calibration error; live cells must transmit
    bit-identically.
    """
    from repro.errors import CalibrationError

    try:
        _, reference = one_transmission(cell, lanes=False)
    except CalibrationError as exc:
        with pytest.raises(CalibrationError) as laned_exc:
            one_transmission(cell, lanes=True)
        assert str(laned_exc.value) == str(exc)
        return
    session, laned = one_transmission(cell, lanes=True)
    assert isinstance(session.sim, LaneSimulator)
    assert session.sim.lane_bypasses == []
    assert transmission_digest(laned) == transmission_digest(reference)
    assert pickle.dumps(laned) == pickle.dumps(reference)


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_golden_digests_unchanged_with_lanes_on(name):
    clear_calibration_memo()
    with lane_scope(True):
        assert run_config(name) == GOLDEN[name], (
            f"{name} is not bit-identical on the lane backend"
        )


def test_lane_drivers_actually_engage(monkeypatch):
    """Equivalence must not pass vacuously: the drivers must run."""
    from repro.sim import lanes

    advances = {"worker": 0, "spy": 0, "controller": 0}
    for key, cls in (
        ("worker", lanes._WorkerDriver),
        ("spy", lanes._SpyDriver),
        ("controller", lanes._ControllerDriver),
    ):
        real = cls.advance

        def counted(self, bound, rt, _real=real, _key=key):
            advances[_key] += 1
            return _real(self, bound, rt)

        monkeypatch.setattr(cls, "advance", counted)
    one_transmission("mesi-es", lanes=True)
    assert advances["worker"] > 0
    assert advances["spy"] > 0
    assert advances["controller"] > 0


# -- gates and kill switch ------------------------------------------------


def test_lanes_off_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_LANES", raising=False)
    assert not lanes_enabled()
    session = ChannelSession(SessionConfig(
        spec="mesi-es", seed=1, calibration_samples=120,
    ))
    assert type(session.sim) is Simulator


def test_kill_switch_wins_everywhere(monkeypatch):
    monkeypatch.setenv("REPRO_LANES", "0")
    with lane_scope(True):
        assert not lanes_enabled()
        session = ChannelSession(SessionConfig(
            spec="mesi-es", seed=1, calibration_samples=120,
        ))
        assert type(session.sim) is Simulator
    assert Runner(lanes=8).lanes == 0


def test_env_width_enables_lanes(monkeypatch):
    monkeypatch.setenv("REPRO_LANES", "4")
    assert lanes_enabled()
    assert lane_width() == 4
    assert Runner().lanes == 4
    monkeypatch.setenv("REPRO_LANES", "1")
    assert lane_width() == 1
    monkeypatch.delenv("REPRO_LANES")
    assert lane_width() == DEFAULT_LANE_WIDTH


# -- divergence: sessions that must not (or cease to) use lanes -----------


def test_traced_session_bypasses_lanes():
    consume_bypass_notes()
    with lane_scope(True):
        session = ChannelSession(SessionConfig(
            spec="mesi-es", seed=1, calibration_samples=120, trace=True,
        ))
    assert type(session.sim) is Simulator
    notes = consume_bypass_notes()
    assert any(note["reason"] == "trace" for note in notes)


def test_obfuscation_stands_down_mid_session():
    from repro.mitigation.hardware import attach_obfuscator

    session, _ = one_transmission("mesi-es", lanes=True)
    assert session.sim.lane_bypasses == []
    attach_obfuscator(session.machine, suspicious_cores=range(16))
    consume_bypass_notes()
    session.transmit([1, 0, 1])
    assert session.sim.lane_bypasses == ["obfuscation"]
    notes = consume_bypass_notes()
    assert any(note["reason"] == "obfuscation" for note in notes)


def test_interposition_stands_down_mid_session():
    session, _ = one_transmission("mesi-es", lanes=True)
    # Detection monitors interpose by binding wrappers into the
    # machine's instance dict; the run-entry check must notice.
    session.machine.load = session.machine.load
    session.transmit([1, 0])
    assert session.sim.lane_bypasses == ["interposition"]


def test_stand_down_is_idempotent():
    session, _ = one_transmission("mesi-es", lanes=True)
    session.sim.lane_stand_down("resync")
    session.sim.lane_stand_down("resync")
    assert session.sim.lane_bypasses == ["resync"]
    # And the session still transmits correctly on the reference path.
    result = session.transmit([1, 0, 1, 1])
    assert result.accuracy == 1.0


def test_simulation_fault_plan_bypasses_lanes():
    from repro.faults import FaultPlan

    plan = FaultPlan.build_simulation(
        seed=3, rate_per_mcycle=10.0, window_cycles=500_000.0,
    )
    if not plan.simulation_events:  # pragma: no cover - seed-dependent
        pytest.skip("fault plan drew no simulation events")
    consume_bypass_notes()
    with lane_scope(True):
        session = ChannelSession(SessionConfig(
            spec="mesi-es", seed=1, calibration_samples=120,
            faults=plan.to_json(),
        ))
    assert type(session.sim) is Simulator
    assert any(
        note["reason"] == "faults" for note in consume_bypass_notes()
    )


# -- grouping: fingerprints and batches -----------------------------------


def test_fingerprint_groups_vectorizing_params_only():
    a = Point(fn=TRANSMIT, params={"cell": "mesi-es", "seed": 1, "bits": 4})
    b = Point(fn=TRANSMIT, params={"cell": "mesi-es", "seed": 9, "bits": 8})
    c = Point(fn=TRANSMIT, params={"cell": "dir-es", "seed": 1, "bits": 4})
    assert lane_fingerprint(a) == lane_fingerprint(b)
    assert lane_fingerprint(a) != lane_fingerprint(c)


def test_point_bypass_reason_flags_fault_params():
    clean = Point(fn=TRANSMIT, params={"cell": "mesi-es", "seed": 1,
                                       "bits": 4})
    faulted = Point(fn=TRANSMIT, params={"cell": "mesi-es", "seed": 1,
                                         "bits": 4, "fault_rate": 0.25})
    assert point_bypass_reason(clean) is None
    assert point_bypass_reason(faulted) == "faults"


class _OneFault:
    """Duck-typed injector: plans a fault for index 2, attempt 0."""

    def event_for(self, index, attempt):
        if index == 2 and attempt == 0:
            return object()
        return None


def test_lane_batches_group_cut_and_bypass():
    points = [
        Point(fn=TRANSMIT, params={"cell": "mesi-es", "seed": s, "bits": 4})
        for s in range(5)
    ] + [
        Point(fn=TRANSMIT, params={"cell": "dir-es", "seed": 0, "bits": 4}),
        Point(fn=TRANSMIT, params={"cell": "dir-es", "seed": 1, "bits": 4,
                                   "fault_rate": 0.5}),
    ]
    batches, bypassed = lane_batches(
        points, list(range(7)), width=3, injector=_OneFault()
    )
    # mesi-es group {0,1,3,4} (2 is injector-bypassed) cut at width 3,
    # then the dir-es singleton {5}; 6 carries declared fault params.
    assert batches == [[0, 1, 3], [4], [5]]
    assert bypassed == [(2, "injected-fault"), (6, "faults")]


def test_lane_state_bookkeeping():
    state = LaneState(3)
    state.record(0, 1000.0, 50)
    state.record(2, 3000.0, 70)
    state.drop(1)
    summary = state.summary()
    assert summary["width"] == 3
    assert summary["events"] == 120
    assert summary["max_clock"] == 3000.0
    assert summary["bypassed"] == 1


# -- runner dispatch ------------------------------------------------------


SQUARE_MARKED = "tests.runner_points:square_marked"


def test_serial_lane_dispatch_emits_bypass_events(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TRACE", "1")
    clear_runner_recorder()
    try:
        spec = ExperimentSpec(
            experiment="lane-obs",
            points=(
                Point(fn=SQUARE_MARKED, params={"x": 1}),
                Point(fn=SQUARE_MARKED, params={"x": 2, "fault_rate": 0.5}),
                Point(fn=SQUARE_MARKED, params={"x": 3}),
            ),
        )
        report = Runner(jobs=1, lanes=4).run(spec)
        assert report.values == [1, 4, 9]
        events = runner_recorder().select("runner")
        bypasses = [e for e in events if e.name == "lane_bypass"]
        assert [(e.data["index"], e.data["reason"]) for e in bypasses] == [
            (1, "faults"),
        ]
        modes = [e.data.get("mode") for e in events if e.name == "dispatch"]
        assert modes == ["lane", "serial", "lane"]
    finally:
        clear_runner_recorder()


def test_pool_lane_dispatch_matches_reference(tmp_path):
    points = tuple(
        Point(fn=TRANSMIT, params={"cell": cell, "seed": seed, "bits": 3})
        for cell in ("mesi-es", "moesi-ostate")
        for seed in (0, 1)
    )
    spec = ExperimentSpec(experiment="lane-pool", points=points)
    reference = Runner(jobs=2, cache=None).run(spec)
    laned = Runner(jobs=2, cache=None, lanes=2).run(spec)
    for ref, lane in zip(reference.values, laned.values):
        assert transmission_digest(lane) == transmission_digest(ref)


# -- the interleaving property (ISSUE 8 satellite) ------------------------


@settings(
    max_examples=3, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    choices=st.lists(
        st.tuples(
            st.sampled_from(["mesi-es", "moesi-ostate", "dir-es"]),
            st.integers(min_value=0, max_value=2),
            st.booleans(),
        ),
        min_size=2, max_size=4,
    ),
)
def test_interleaved_lane_grid_is_byte_identical(choices, tmp_path_factory):
    """Random eligible/ineligible interleavings reproduce the reference.

    Every grid point — whether it took a lane batch or fell through to
    the reference dispatch — must store the same cache key and pickle
    to the same bytes as a pure-reference run of the same spec.
    """
    points = []
    for cell, seed, eligible in choices:
        params = {"cell": cell, "seed": seed, "bits": 3}
        if not eligible:
            params["fault_rate"] = 0.25  # marker only; see transmit_point
        points.append(Point(fn=TRANSMIT, params=params))
    spec = ExperimentSpec(experiment="lane-mix", points=tuple(points))

    root = tmp_path_factory.mktemp("lane-mix-cache")
    clear_calibration_memo()
    ref_cache = ResultCache(root / "ref")
    reference = Runner(jobs=1, cache=ref_cache).run(spec)
    clear_calibration_memo()
    lane_cache = ResultCache(root / "lane")
    laned = Runner(jobs=1, cache=lane_cache, lanes=3).run(spec)

    for point, ref, lane in zip(points, reference.values, laned.values):
        assert lane_cache.key_for(point) == ref_cache.key_for(point)
        assert pickle.dumps(lane) == pickle.dumps(ref)


# -- lane_bypass runner events: one per structured reason (ISSUE 9) -------


TRANSMIT_OPTS = "tests.runner_points:transmit_opts"
TRANSMIT_OBFUSCATED = "tests.runner_points:transmit_obfuscated"


def _bypass_events(monkeypatch, point):
    """Run *point* under a traced, laned runner; return its bypass data.

    Returns ``(report, [event.data, ...])`` for every ``lane_bypass``
    runner event the sweep emitted.
    """
    monkeypatch.setenv("REPRO_TRACE", "1")
    clear_runner_recorder()
    try:
        clear_calibration_memo()
        spec = ExperimentSpec(experiment="bypass-obs", points=(point,))
        report = Runner(jobs=1, lanes=4).run(spec)
        events = runner_recorder().select("runner")
        return report, [
            e.data for e in events if e.name == "lane_bypass"
        ]
    finally:
        clear_runner_recorder()


def test_bypass_event_static_fault_plan(monkeypatch):
    """Declared fault params skip lane dispatch with reason='faults'."""
    point = Point(fn=TRANSMIT, params={"cell": "mesi-es", "seed": 5,
                                       "bits": 3, "fault_rate": 0.25})
    report, bypasses = _bypass_events(monkeypatch, point)
    assert report.values[0].accuracy == 1.0
    assert any(
        b.get("reason") == "faults" and b.get("index") == 0
        for b in bypasses
    )


def test_bypass_event_static_tracing(monkeypatch):
    """Environment tracing makes the session bypass with reason='trace'."""
    point = Point(fn=TRANSMIT, params={"cell": "mesi-es", "seed": 5,
                                       "bits": 3})
    report, bypasses = _bypass_events(monkeypatch, point)
    assert report.values[0].accuracy == 1.0
    assert any(b.get("reason") == "trace" for b in bypasses)


def test_bypass_event_static_segments(monkeypatch, tmp_path):
    """Segmented sessions bypass with reason='segments'.

    The session must stay untraced (``trace=False``) or the trace check
    would shadow the segments one; the runner recorder still observes —
    it binds off ``REPRO_TRACE`` independently of session tracing.
    """
    monkeypatch.setenv("REPRO_SEGMENT_CYCLES", "25000")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "segcache"))
    point = Point(fn=TRANSMIT_OPTS, params={"cell": "mesi-es", "seed": 5,
                                            "bits": 3, "trace": False})
    report, bypasses = _bypass_events(monkeypatch, point)
    assert report.values[0].accuracy == 1.0
    assert any(b.get("reason") == "segments" for b in bypasses)


def test_bypass_event_static_recorder(monkeypatch):
    """An explicit recorder session bypasses with reason='trace'."""
    point = Point(fn=TRANSMIT_OPTS, params={"cell": "mesi-es", "seed": 5,
                                            "bits": 3, "trace": True})
    report, bypasses = _bypass_events(monkeypatch, point)
    assert report.values[0].accuracy == 1.0
    assert any(b.get("reason") == "trace" for b in bypasses)


def test_bypass_event_dynamic_stand_down(monkeypatch):
    """A mid-flight stand-down surfaces as a structured runner event.

    The session builds lane-eligible; the obfuscation policy appears
    before the first run, so the lane simulator stands down dynamically
    — distinct from every static (build-time) reason above.
    """
    point = Point(fn=TRANSMIT_OBFUSCATED,
                  params={"cell": "mesi-es", "seed": 5, "bits": 3})
    report, bypasses = _bypass_events(monkeypatch, point)
    # The obfuscator is a defense: the transmission completes but the
    # channel is degraded, so we assert only on the structured reason.
    assert report.values[0].sent == [1, 1, 1]
    assert any(b.get("reason") == "obfuscation" for b in bypasses)

"""Tests for the 2-bit symbol channel (Section VIII-D / Figure 11)."""

import pytest

from repro.channel.symbols import (
    BITS_PER_SYMBOL,
    SYMBOL_PAIRS,
    MultiBitSession,
    SymbolParams,
    bits_to_symbols,
    symbols_to_bits,
)
from repro.errors import ConfigError

PAYLOAD = [1, 0, 0, 1, 0, 1, 0, 0, 0, 1, 1, 0, 0, 1, 1, 0, 1, 1]  # Fig 11


def test_symbol_alphabet_covers_all_pairs():
    assert len(SYMBOL_PAIRS) == 4
    assert BITS_PER_SYMBOL == 2


def test_bits_symbols_roundtrip():
    bits = [1, 0, 0, 1, 1, 1, 0, 0]
    assert symbols_to_bits(bits_to_symbols(bits)) == bits


def test_bits_to_symbols_values():
    assert bits_to_symbols([0, 0, 0, 1, 1, 0, 1, 1]) == [0, 1, 2, 3]


def test_odd_bit_count_rejected():
    with pytest.raises(ConfigError):
        bits_to_symbols([1, 0, 1])


def test_symbol_params_rates():
    params = SymbolParams().at_rate(1100)
    assert params.nominal_rate_kbps == pytest.approx(1100, rel=1e-6)


def test_symbol_params_end_run_guard():
    with pytest.raises(ConfigError):
        SymbolParams(gap_slots=8, end_run=9)


def test_multibit_transmission_roundtrip():
    session = MultiBitSession(seed=3, calibration_samples=200)
    result = session.transmit(PAYLOAD)
    assert result.received_bits == PAYLOAD
    assert result.accuracy == 1.0
    # the Figure 11 prefix exercises all four symbol values
    assert set(result.sent_symbols[:9]) == {0, 1, 2, 3}


def test_multibit_peak_rate_beats_binary():
    """The paper's headline: ~1.1 Mbps multi-bit vs ~700 Kbps binary."""
    session = MultiBitSession(
        symbol_params=SymbolParams().at_rate(1100), seed=4,
        calibration_samples=200,
    )
    result = session.transmit(PAYLOAD * 3)
    assert result.accuracy >= 0.95
    assert result.achieved_rate_kbps > 900


def test_multibit_symbols_observed_in_all_bands():
    session = MultiBitSession(seed=3, calibration_samples=200)
    result = session.transmit(PAYLOAD)
    labels = {s.label for s in result.samples if s.label != "x"}
    assert labels == {"0", "1", "2", "3"}


def test_multibit_repeated_transmissions():
    session = MultiBitSession(seed=5, calibration_samples=200)
    for _ in range(2):
        assert session.transmit(PAYLOAD).accuracy == 1.0


def test_multibit_uses_four_workers():
    session = MultiBitSession(seed=3, calibration_samples=200)
    session.transmit(PAYLOAD[:4])
    workers = [t for t in session.sim.threads
               if t.name.startswith("trojan-") and "ctl" not in t.name]
    assert len(workers) == 4

"""Golden digest for the traced event stream — and proof of inertness.

Two locks in one file:

* ``GOLDEN_TRACE`` pins the exact event stream (count, order, payloads)
  that one fixed-seed MESI transmission records.  A change here means the
  tracing subsystem observed something different — either the simulator's
  behavior moved (check ``test_golden_determinism`` first) or the tap
  changed what it records.  Regenerate with
  ``TraceRecorder.digest`` via :func:`run_traced` if the change is
  intended.
* ``test_tracing_is_inert`` proves the transmission digest (the
  bit-for-bit observable behavior) is identical with tracing on and off.
  Tracing must never perturb what it observes.

``calibration_memo`` is disabled so the calibration loads actually
execute (the memo would skip them, and with it most of the event
stream); that choice changes nothing about the simulated behavior.
"""

import pytest

from repro.channel.config import scenario_by_name
from repro.channel.session import ChannelSession, SessionConfig, resolve_spec
from repro.detection import StreamingDetector
from repro.mem.hierarchy import MachineConfig

from tests.test_golden_determinism import (
    CONFIGS,
    GOLDEN,
    PAYLOAD,
    transmission_digest,
)

GOLDEN_TRACE = (
    "f4916c5b557d3af2c5f327c976d99892f1f7f1030203e6cdede5d56e4a2b8df6"
)


def make_session(trace) -> ChannelSession:
    return ChannelSession(SessionConfig(
        spec="LExclc-LSharedb",
        seed=7,
        calibration_samples=150,
        calibration_memo=False,
        trace=trace,
    ))


@pytest.fixture(scope="module")
def traced_session():
    session = make_session(trace=True)
    result = session.transmit(list(PAYLOAD))
    return session, result


def test_golden_trace_digest(traced_session):
    session, _result = traced_session
    assert session.recorder.dropped == 0, (
        "the default ring must hold a full 16-bit transmission"
    )
    assert session.recorder.digest() == GOLDEN_TRACE, (
        "the recorded event stream changed; if the change is intended, "
        "regenerate GOLDEN_TRACE"
    )


def test_trace_covers_every_category(traced_session):
    session, _result = traced_session
    categories = {e.category for e in session.recorder.events()}
    assert categories == {"phase", "load", "flush", "hop", "coherence"}


def test_tracing_is_inert(traced_session):
    _session, traced = traced_session
    untraced = make_session(trace=False).transmit(list(PAYLOAD))
    assert transmission_digest(traced) == transmission_digest(untraced)


def test_streaming_sink_leaves_trace_digest_unchanged():
    """A subscribed live detector must not perturb the recorded stream."""
    session = make_session(trace=True)
    detector = StreamingDetector(scan_interval=100_000.0)
    session.recorder.subscribe(detector)
    session.transmit(list(PAYLOAD))
    assert detector.events > 0, "the sink must actually see the feed"
    assert session.recorder.digest() == GOLDEN_TRACE


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_golden_digests_hold_with_streaming_tap(name):
    """The five pinned configs, traced + live-monitored: bit-identical.

    Observation (tap, recorder, subscribed streaming detector) must
    never move the transmission digests — the strongest inertness
    statement the golden locks can make.
    """
    config = CONFIGS[name]
    if isinstance(config, str):
        session_config = SessionConfig(
            spec=config, seed=7, calibration_samples=150, trace=True,
        )
    else:
        machine_kwargs, scenario = config
        session_config = SessionConfig(
            spec=resolve_spec(scenario_by_name(scenario)),
            seed=7,
            calibration_samples=150,
            machine=MachineConfig(**machine_kwargs),
            trace=True,
        )
    session = ChannelSession(session_config)
    detector = StreamingDetector(scan_interval=100_000.0)
    session.recorder.subscribe(detector)
    digest = transmission_digest(session.transmit(list(PAYLOAD)))
    assert detector.events > 0, "the sink must actually see the feed"
    assert digest == GOLDEN[name], (
        f"{name} transmission changed with the streaming tap attached; "
        "observation must be inert"
    )

"""Tests for the Section VIII-E defenses."""

import pytest

from repro.channel.config import TABLE_I, scenario_by_name
from repro.channel.session import ChannelSession, SessionConfig
from repro.errors import CalibrationError, SyncTimeoutError
from repro.mem.cacheline import CoherenceState
from repro.mitigation.hardware import attach_obfuscator, hardened_machine_config
from repro.mitigation.ksm_policy import KsmTimeoutPolicy, deploy_ksm_timeout
from repro.mitigation.noise_injector import deploy_noise_injector

PAYLOAD = [1, 0, 1, 1, 0, 0, 1, 0] * 3


def make_session(scenario=TABLE_I[0], seed=9, **kwargs):
    from repro.channel.config import ProtocolParams

    params = kwargs.pop("params", ProtocolParams(max_reception_slots=2_000))
    return ChannelSession(SessionConfig(
        scenario=scenario, seed=seed, calibration_samples=200,
        params=params, **kwargs
    ))


def safe_accuracy(session, payload=PAYLOAD):
    try:
        return session.transmit(payload).accuracy
    except SyncTimeoutError:
        return 0.0


def test_noise_injector_converts_e_to_s(kernel_env):
    machine, sim, kernel = kernel_env
    paddr = 0x7_0000
    machine.load(1, paddr)  # E state on core 1
    deploy_noise_injector(kernel, paddr, core_id=3, period=200.0)

    def waiter(cpu):
        yield from cpu.delay(5_000)

    process = kernel.create_process("w")
    kernel.spawn(process, "w", waiter, core_id=0)
    sim.run()
    # the injector became a sharer: no core holds the line exclusively
    assert machine.global_coherence_state(paddr) is CoherenceState.SHARED


def test_noise_injector_degrades_channel():
    baseline = safe_accuracy(make_session())
    session = make_session()
    paddr = session.spy_proc.translate(session.spy_va)
    deploy_noise_injector(
        session.kernel, paddr, core_id=4,
        period=session.config.params.slot_cycles / 4,
    )
    defended = safe_accuracy(session)
    assert baseline == 1.0
    assert defended < 0.6


def test_ksm_timeout_policy_triggers_on_flush_storm():
    session = make_session()
    _thread, policy = deploy_ksm_timeout(session.kernel)
    accuracy = safe_accuracy(session, PAYLOAD * 4)
    assert policy.triggered
    assert policy.unmerged_pages >= 1
    # the shared frame was torn apart mid-transmission
    assert (session.trojan_proc.translate(session.trojan_va)
            != session.spy_proc.translate(session.spy_va))
    assert accuracy < 1.0


def test_ksm_timeout_policy_ignores_quiet_sharing():
    session = make_session()
    policy = KsmTimeoutPolicy()
    broken = policy.evaluate(session.kernel, flushes_delta=0)
    assert broken == 0
    assert not policy.triggered


def test_hardened_machine_closes_channel():
    config = hardened_machine_config()
    assert config.llc_direct_e_response
    with pytest.raises(CalibrationError):
        session = make_session(machine=config)
        # calibration may survive if bands merely touch; transmitting
        # must then fail the separation check in the decoder
        session.transmit(PAYLOAD)


def test_obfuscation_closes_channel():
    session = make_session()
    attach_obfuscator(session.machine, {session.config.spy_core})
    with pytest.raises(CalibrationError):
        session.bands = session._calibrate()
        session.transmit(PAYLOAD)


def test_obfuscation_leaves_other_cores_untouched():
    session = make_session(scenario=scenario_by_name("LExclc-LSharedb"))
    attach_obfuscator(session.machine, {11})  # some unrelated core
    assert safe_accuracy(session) == 1.0

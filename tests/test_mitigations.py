"""Tests for the Section VIII-E defenses."""

import pytest

from repro.channel.config import TABLE_I, scenario_by_name
from repro.channel.session import ChannelSession, SessionConfig
from repro.errors import CalibrationError, SyncTimeoutError
from repro.mem.cacheline import CoherenceState
from repro.mitigation.hardware import attach_obfuscator, hardened_machine_config
from repro.mitigation.ksm_policy import KsmTimeoutPolicy, deploy_ksm_timeout
from repro.mitigation.noise_injector import deploy_noise_injector

PAYLOAD = [1, 0, 1, 1, 0, 0, 1, 0] * 3


def make_session(scenario=TABLE_I[0], seed=9, **kwargs):
    from repro.channel.config import ProtocolParams

    params = kwargs.pop("params", ProtocolParams(max_reception_slots=2_000))
    return ChannelSession(SessionConfig(
        spec=scenario.name, seed=seed, calibration_samples=200,
        params=params, **kwargs
    ))


def safe_accuracy(session, payload=PAYLOAD):
    try:
        return session.transmit(payload).accuracy
    except SyncTimeoutError:
        return 0.0


def test_noise_injector_converts_e_to_s(kernel_env):
    machine, sim, kernel = kernel_env
    paddr = 0x7_0000
    machine.load(1, paddr)  # E state on core 1
    deploy_noise_injector(kernel, paddr, core_id=3, period=200.0)

    def waiter(cpu):
        yield from cpu.delay(5_000)

    process = kernel.create_process("w")
    kernel.spawn(process, "w", waiter, core_id=0)
    sim.run()
    # the injector became a sharer: no core holds the line exclusively
    assert machine.global_coherence_state(paddr) is CoherenceState.SHARED


def test_noise_injector_degrades_channel():
    baseline = safe_accuracy(make_session())
    session = make_session()
    paddr = session.spy_proc.translate(session.spy_va)
    deploy_noise_injector(
        session.kernel, paddr, core_id=4,
        period=session.config.params.slot_cycles / 4,
    )
    defended = safe_accuracy(session)
    assert baseline == 1.0
    assert defended < 0.6


def test_ksm_timeout_policy_triggers_on_flush_storm():
    session = make_session()
    _thread, policy = deploy_ksm_timeout(session.kernel)
    accuracy = safe_accuracy(session, PAYLOAD * 4)
    assert policy.triggered
    assert policy.unmerged_pages >= 1
    # the shared frame was torn apart mid-transmission
    assert (session.trojan_proc.translate(session.trojan_va)
            != session.spy_proc.translate(session.spy_va))
    assert accuracy < 1.0


def test_ksm_timeout_policy_ignores_quiet_sharing():
    session = make_session()
    policy = KsmTimeoutPolicy()
    broken = policy.evaluate(session.kernel, flushes_delta=0)
    assert broken == 0
    assert not policy.triggered


def test_hardened_machine_closes_channel():
    config = hardened_machine_config()
    assert config.llc_direct_e_response
    with pytest.raises(CalibrationError):
        session = make_session(machine=config)
        # calibration may survive if bands merely touch; transmitting
        # must then fail the separation check in the decoder
        session.transmit(PAYLOAD)


def test_obfuscation_closes_channel():
    session = make_session()
    attach_obfuscator(session.machine, {session.config.spy_core})
    with pytest.raises(CalibrationError):
        session.bands = session._calibrate()
        session.transmit(PAYLOAD)


def test_obfuscation_leaves_other_cores_untouched():
    session = make_session(scenario=scenario_by_name("LExclc-LSharedb"))
    attach_obfuscator(session.machine, {11})  # some unrelated core
    assert safe_accuracy(session) == 1.0


def test_ksm_policy_rate_boundary():
    """The un-merge fires exactly at the configured flush rate."""
    session = make_session()
    policy = KsmTimeoutPolicy()  # check_interval 200k, threshold 50/Mcycle
    # 9 flushes per 200k cycles -> 45/Mcycle: one flush short, no action.
    assert policy.evaluate(session.kernel, flushes_delta=9) == 0
    assert not policy.triggered
    assert (session.trojan_proc.translate(session.trojan_va)
            == session.spy_proc.translate(session.spy_va))
    # 10 -> exactly 50/Mcycle: at the threshold the policy fires.
    broken = policy.evaluate(session.kernel, flushes_delta=10)
    assert policy.triggered
    assert broken >= 1
    assert policy.unmerged_pages == broken
    assert (session.trojan_proc.translate(session.trojan_va)
            != session.spy_proc.translate(session.spy_va))


def test_ksm_policy_second_round_finds_nothing_to_unmerge():
    session = make_session()
    policy = KsmTimeoutPolicy()
    first = policy.evaluate(session.kernel, flushes_delta=1_000)
    assert first >= 1
    # Everything is already torn apart; a second storm breaks nothing new.
    assert policy.evaluate(session.kernel, flushes_delta=1_000) == 0
    assert policy.unmerged_pages == first


def test_ksm_policy_interval_scales_the_rate():
    """The same delta means a different rate under a longer interval."""
    session = make_session()
    relaxed = KsmTimeoutPolicy(check_interval=1_000_000.0)
    # 10 flushes over 1M cycles is only 10/Mcycle: benign.
    assert relaxed.evaluate(session.kernel, flushes_delta=10) == 0
    assert not relaxed.triggered
    # 50 over 1M cycles sits exactly at the threshold again.
    assert relaxed.evaluate(session.kernel, flushes_delta=50) >= 1
    assert relaxed.triggered


def test_hardened_config_preserves_base_and_does_not_mutate():
    from repro.mem.hierarchy import MachineConfig

    base = MachineConfig(home_agent=True)
    hardened = hardened_machine_config(base)
    assert hardened.llc_direct_e_response
    assert hardened.home_agent
    assert not base.llc_direct_e_response  # base untouched
    assert not MachineConfig().llc_direct_e_response


def test_obfuscator_default_bounds_cover_coherence_bands():
    session = make_session()
    profile = session.machine.config.latency
    policy = attach_obfuscator(session.machine, {0, 1})
    assert session.machine.obfuscation is policy
    assert policy.lo == profile.local_shared - 10.0
    assert policy.hi == profile.remote_excl + 20.0
    assert policy.lo < profile.local_excl < policy.hi
    assert policy.lo < profile.remote_shared < policy.hi


def test_obfuscator_explicit_bounds_and_core_set_copy():
    session = make_session()
    cores = {3}
    policy = attach_obfuscator(session.machine, cores, lo=100.0, hi=200.0)
    assert (policy.lo, policy.hi) == (100.0, 200.0)
    cores.add(7)  # caller's set is copied, not aliased
    assert policy.suspicious_cores == {3}

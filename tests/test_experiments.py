"""Smoke + shape tests for every experiment driver (small parameters)."""

import numpy as np

from repro.channel.config import TABLE_I, scenario_by_name
from repro.experiments import (
    ablations,
    capacity_analysis,
    detection_roc,
    fig2_latency_cdf,
    fig7_reception,
    fig8_bandwidth,
    fig9_noise,
    fig10_ecc,
    fig11_multibit,
    mitigations,
    sync_handshake,
    table1_scenarios,
)
from repro.experiments.common import payload_bits


def test_payload_bits_fixed_pattern():
    assert payload_bits(100) == payload_bits(100)
    assert len(payload_bits(64)) == 64
    assert set(payload_bits(64)) <= {0, 1}


def test_fig2_medians_and_separation():
    result = fig2_latency_cdf.run(samples=200, seed=1)
    medians = result["medians"]
    assert medians["LShared"] < medians["LExcl"] < medians["RShared"] \
        < medians["RExcl"] < medians["dram"]
    assert abs(medians["LShared"] - 98) < 5
    assert abs(medians["LExcl"] - 124) < 5
    assert all(sep > 1.0 for sep in result["separations"].values())


def test_table1_placement_matches_paper():
    result = table1_scenarios.run(seed=1, bits=12)
    for row in result["rows"]:
        paper = table1_scenarios.PAPER_TABLE_I[row["scenario"]]
        assert (row["total_threads"], row["local_threads"],
                row["remote_threads"]) == paper
        assert row["accuracy"] >= 0.9


def test_fig7_all_scenarios_decode_perfectly():
    result = fig7_reception.run(seed=1, bits=30)
    for name, outcome in result["results"].items():
        assert outcome.accuracy == 1.0, name


def test_fig8_low_rates_accurate_high_rates_degrade():
    result = fig8_bandwidth.run(
        seed=1, bits=60, rates=(200, 1000),
        scenarios=[scenario_by_name("RExclc-LSharedb")],
    )
    points = dict(result["curves"]["RExclc-LSharedb"])
    assert points[200.0] >= 0.97
    assert points[1000.0] <= points[200.0]


def test_fig9_noise_degrades_accuracy():
    result = fig9_noise.run(
        seed=1, bits=60, noise_levels=(0, 8),
        scenarios=[TABLE_I[0]], trials=1,
    )
    points = dict(result["curves"][TABLE_I[0].name])
    assert points[0] >= 0.97
    assert points[8] <= points[0]


def test_fig10_reliable_delivery():
    result = fig10_ecc.run(
        seed=1, payload_bytes=16, packet_bytes=8,
        scenarios=[TABLE_I[0]], noise={"no-noise": 0, "medium": 2},
    )
    table = result["table"][TABLE_I[0].name]
    assert table["no-noise"]["intact"]
    assert table["medium"]["intact"]
    assert (table["medium"]["effective_kbps"]
            <= table["no-noise"]["effective_kbps"] + 1e-9)


def test_fig11_multibit_beats_binary_peak():
    result = fig11_multibit.run(seed=1, bits=40, rates=(1100,))
    point = result["points"][0]
    assert point["accuracy"] >= 0.95
    assert point["achieved_kbps"] > 900
    # first nine symbols include all four values (Figure 11's view)
    assert set(result["trace"].sent_symbols[:9]) == {0, 1, 2, 3}


def test_sync_handshake_near_90ms():
    result = sync_handshake.run(seed=1)
    assert result["synced"]
    assert 45 <= result["duration_ms"] <= 180  # paper: ~90 ms


def test_mitigations_reduce_channel_quality():
    result = mitigations.run(seed=1, bits=30)
    outcomes = result["outcomes"]
    assert outcomes["undefended"] >= 0.95
    assert outcomes["noise injector"] <= 0.6
    assert outcomes["llc direct E response"] <= 0.6
    assert outcomes["timing obfuscation"] <= 0.6
    assert outcomes["ksm timeout triggered"]


def test_ablation_protocol_variants_all_work():
    outcomes = ablations.run_protocols(seed=1, bits=24)
    assert set(outcomes) == {"mesi", "mesif", "moesi"}
    for protocol, accuracy in outcomes.items():
        assert accuracy >= 0.9, protocol


def test_ablation_inclusion_property():
    outcomes = ablations.run_inclusion(seed=1, bits=24)
    assert outcomes["inclusive"] >= 0.9
    # non-inclusive keeps distinct latency profiles (paper Sec VIII-E)
    assert outcomes["non-inclusive"] >= 0.7


def test_ablation_band_gap_correlation():
    result = ablations.run_band_gap(seed=1, bits=60, rate=1000.0)
    rows = sorted(result["rows"], key=lambda r: r["gap_cycles"])
    # widest-gap scenario should not be the worst performer
    accuracies = [r["accuracy"] for r in rows]
    assert accuracies[-1] >= np.median(accuracies) - 0.1


def test_detection_flags_attacks_not_benign():
    result = detection_roc.run(seed=1, bits=24)
    assert result["true_positives"] == result["attacks"] == 6
    assert result["false_positives"] == 0


def test_capacity_analysis_shape():
    result = capacity_analysis.run(seed=1, bits=80)
    points = {p["label"]: p for p in result["points"]}
    clean = points["binary@400K noise=0"]
    assert clean["capacity_bits"] >= 0.95        # near-perfect binary
    multibit = points["2-bit symbols@1100K"]
    assert multibit["capacity_bits"] >= 1.8      # near 2 bits/symbol
    assert multibit["capacity_kbps"] > clean["capacity_kbps"]


def test_ablation_flush_methods():
    outcomes = ablations.run_flush_methods(seed=1, bits=16)
    assert outcomes["clflush"]["accuracy"] >= 0.95
    assert outcomes["evict"]["accuracy"] >= 0.9
    # eviction sweeps cost ~an order of magnitude in rate
    assert (outcomes["evict"]["rate_kbps"]
            < outcomes["clflush"]["rate_kbps"] / 3)


def test_ablation_home_agent_split():
    outcome = ablations.run_home_agent(seed=1)
    assert outcome["split_cycles"] > 20
    assert outcome["home-remote"] > outcome["home-local"]


def test_leaderboard_scores_the_whole_matrix():
    from repro.experiments import leaderboard

    result = leaderboard.run(seed=1, bits=16, noise=False)
    cells = result["cells"]
    live = {n for n, row in cells.items() if row["status"] == "ok"}
    dead = {n for n, row in cells.items() if row["status"] == "dead"}
    # 9 live cells, the two protocol-impossible cells dead, dir-lru absent
    assert len(live) == 9
    assert dead == {"mesi-ostate", "mesif-ostate"}
    assert "dir-lru" not in cells
    for name in live:
        assert cells[name]["accuracy"] >= 0.9, name
        assert cells[name]["capacity_kbps"] > 0, name
    # the LRU family pays the eviction-sweep slot cost
    assert (cells["mesi-lru"]["rate_kbps"]
            < cells["mesi-es"]["rate_kbps"] / 3)


def test_leaderboard_render_marks_every_cell_kind():
    from repro.experiments import leaderboard

    result = leaderboard.run(seed=1, bits=16, noise=False)
    text = leaderboard.render(result)
    assert "9 live cells" in text
    assert "dead" in text
    assert "n/a" in text        # the undefined directory x lru cell
    for row in ("mesi", "mesif", "moesi", "directory"):
        assert row in text

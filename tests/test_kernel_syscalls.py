"""Tests for the Kernel facade: executor, faults, COW unmerge, bursts."""

import pytest

from repro.errors import PageFaultError, ProtectionFaultError
from repro.kernel.syscalls import COW_FAULT_CYCLES
from repro.mem.physical import PAGE_SIZE
from repro.sim.events import AccessPath


def run_program(kernel, sim, process, program, core=0):
    thread = kernel.spawn(process, "t", program, core_id=core)
    sim.run()
    return thread


def test_load_through_page_table(kernel_env):
    machine, sim, kernel = kernel_env
    process = kernel.create_process("p")
    va = process.mmap(1)
    results = []

    def program(cpu):
        r = yield from cpu.load(va)
        results.append(r)

    run_program(kernel, sim, process, program)
    assert results[0].path is AccessPath.DRAM


def test_unmapped_load_faults(kernel_env):
    machine, sim, kernel = kernel_env
    process = kernel.create_process("p")

    def program(cpu):
        yield from cpu.load(0xBAD_0000)

    with pytest.raises(PageFaultError):
        run_program(kernel, sim, process, program)


def test_store_to_readonly_page_faults(kernel_env):
    machine, sim, kernel = kernel_env
    a = kernel.create_process("a")
    b = kernel.create_process("b")
    vas = kernel.map_shared_readonly([a, b])

    def program(cpu):
        yield from cpu.store(vas[0], 1)

    # Explicitly shared read-only library pages are COW-protected, so a
    # write must break the sharing instead of raising.
    run_program(kernel, sim, a, program)
    assert a.translate(vas[0]) != b.translate(vas[1])


def test_store_to_private_readonly_faults(kernel_env):
    machine, sim, kernel = kernel_env
    process = kernel.create_process("p")
    va = process.mmap(1, writable=False)

    def program(cpu):
        yield from cpu.store(va, 1)

    with pytest.raises(ProtectionFaultError):
        run_program(kernel, sim, process, program)


def test_cow_write_unmerges_ksm_page(kernel_env):
    machine, sim, kernel = kernel_env
    a = kernel.create_process("a")
    b = kernel.create_process("b")
    va_a, va_b = kernel.setup_ksm_shared_page(a, b)
    assert a.translate(va_a) == b.translate(va_b)
    latencies = []

    def program(cpu):
        r = yield from cpu.store(va_a, 42)
        latencies.append(r.latency)

    run_program(kernel, sim, a, program)
    assert a.translate(va_a) != b.translate(va_b)
    assert latencies[0] >= COW_FAULT_CYCLES
    assert kernel.stats.counter("kernel.cow_faults") == 1


def test_cow_write_updates_frame_content(kernel_env):
    machine, sim, kernel = kernel_env
    a = kernel.create_process("a")
    b = kernel.create_process("b")
    va_a, va_b = kernel.setup_ksm_shared_page(a, b)
    original = b.read_bytes(va_b, 16)

    def program(cpu):
        yield from cpu.store(va_a, 0xDEAD)

    run_program(kernel, sim, a, program)
    # b's view is unchanged; a's page diverged
    assert b.read_bytes(va_b, 16) == original
    assert a.read_bytes(va_a, PAGE_SIZE) != b.read_bytes(va_b, PAGE_SIZE)


def test_unmerge_purges_stale_cache_lines(kernel_env):
    machine, sim, kernel = kernel_env
    a = kernel.create_process("a")
    b = kernel.create_process("b")
    va_a, va_b = kernel.setup_ksm_shared_page(a, b)
    old_pa = a.translate(va_a)

    def program(cpu):
        yield from cpu.load(va_a)       # cache the shared line
        yield from cpu.store(va_a, 1)   # COW break

    run_program(kernel, sim, a, program)
    # no cache anywhere may still hold the old (freed) physical line
    for domain in machine.sockets:
        assert domain.directory.get(old_pa - old_pa % 64) is None


def test_delay_and_fence_latencies(kernel_env):
    machine, sim, kernel = kernel_env
    process = kernel.create_process("p")
    results = {}

    def program(cpu):
        r = yield from cpu.delay(123.0)
        results["delay"] = r.latency
        r = yield from cpu.fence()
        results["fence"] = r.latency

    run_program(kernel, sim, process, program)
    assert results["delay"] == pytest.approx(123.0)
    assert results["fence"] == pytest.approx(
        machine.config.latency.fence
    )


def test_rdtsc_costs_nothing(kernel_env):
    machine, sim, kernel = kernel_env
    process = kernel.create_process("p")
    stamps = []

    def program(cpu):
        stamps.append((yield from cpu.rdtsc()))
        stamps.append((yield from cpu.rdtsc()))

    run_program(kernel, sim, process, program)
    assert stamps[0] == stamps[1]


def test_burst_touches_many_lines(kernel_env):
    machine, sim, kernel = kernel_env
    process = kernel.create_process("p")
    va = process.mmap(2)

    def program(cpu):
        yield from cpu.burst(va, count=32, stride=64)

    run_program(kernel, sim, process, program)
    # lines now present in core 0's private caches
    hits = 0
    domain = machine.socket_of(0)
    for i in range(32):
        pa = process.translate(va + i * 64)
        if domain.private_line(domain.core(0), pa) is not None:
            hits += 1
    assert hits == 32


def test_burst_mlp_shortens_time(kernel_env):
    machine, sim, kernel = kernel_env
    process = kernel.create_process("p")
    va = process.mmap(4)
    latencies = {}

    def make(label, mlp, base):
        def program(cpu):
            r = yield from cpu.burst(base, count=16, stride=64, mlp=mlp)
            latencies[label] = r.latency
        return program

    run_program(kernel, sim, process, make("serial", 1.0, va))
    run_program(kernel, sim, process, make("mlp4", 4.0, va + 2 * PAGE_SIZE),
                core=1)
    assert latencies["mlp4"] < latencies["serial"] / 2


def test_kernel_thread_uses_physical_addresses(kernel_env):
    machine, sim, kernel = kernel_env
    results = []

    def program(cpu):
        r = yield from cpu.load(0x4000)
        results.append(r)

    kernel.spawn_kernel_thread("kt", program, daemon=False)
    sim.run()
    assert results[0].path is AccessPath.DRAM


def test_scheduler_slot_released_after_exit(kernel_env):
    machine, sim, kernel = kernel_env
    process = kernel.create_process("p")

    def program(cpu):
        yield from cpu.delay(10)

    thread = kernel.spawn(process, "t", program, core_id=3)
    assert kernel.scheduler.load(3) == 1
    sim.run()
    assert kernel.scheduler.load(3) == 0
    assert kernel.scheduler.core_of(thread.tid) is None

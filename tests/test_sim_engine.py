"""Tests for the discrete-event engine and thread machinery."""

import pytest

from repro.errors import SimulationError, ThreadProgramError
from repro.sim.engine import Simulator
from repro.sim.events import Delay, Load, OpResult, Rdtsc
from repro.sim.thread import ThreadState


def unit_executor(latency_by_op=None):
    """An executor charging fixed latencies, no real memory."""
    table = latency_by_op or {}

    def execute(thread, op):
        latency = table.get(type(op), 10.0)
        if isinstance(op, Delay):
            latency = op.cycles
        if isinstance(op, Rdtsc):
            latency = 0.0
        return OpResult(latency=latency, timestamp=thread.clock + latency)

    return execute


def test_single_thread_runs_to_completion():
    sim = Simulator()
    log = []

    def program(cpu):
        yield from cpu.delay(100)
        log.append((yield from cpu.rdtsc()))

    thread = sim.spawn("t", program, core_id=0, executor=unit_executor())
    sim.run()
    assert thread.state is ThreadState.DONE
    assert log == [100.0]


def test_threads_interleave_in_time_order():
    sim = Simulator()
    order = []

    def make(name, step):
        def program(cpu):
            for _ in range(3):
                yield from cpu.delay(step)
                order.append((name, (yield from cpu.rdtsc())))
        return program

    sim.spawn("fast", make("fast", 10), core_id=0, executor=unit_executor())
    sim.spawn("slow", make("slow", 25), core_id=1, executor=unit_executor())
    sim.run()
    times = [t for _n, t in order]
    assert times == sorted(times)
    assert order[0][0] == "fast"


def test_global_clock_advances():
    sim = Simulator()

    def program(cpu):
        yield from cpu.delay(500)

    sim.spawn("t", program, core_id=0, executor=unit_executor())
    sim.run()
    assert sim.global_clock >= 500


def test_daemon_does_not_block_run():
    sim = Simulator()

    def forever(cpu):
        while True:
            yield from cpu.delay(10)

    def short(cpu):
        yield from cpu.delay(50)

    daemon = sim.spawn("d", forever, core_id=0, executor=unit_executor(),
                       daemon=True)
    sim.spawn("s", short, core_id=1, executor=unit_executor())
    sim.run()
    assert not daemon.done  # still alive for a follow-up run


def test_kill_daemons_on_request():
    sim = Simulator()

    def forever(cpu):
        while True:
            yield from cpu.delay(10)

    def short(cpu):
        yield from cpu.delay(50)

    daemon = sim.spawn("d", forever, core_id=0, executor=unit_executor(),
                       daemon=True)
    sim.spawn("s", short, core_id=1, executor=unit_executor())
    sim.run(kill_daemons=True)
    assert daemon.state is ThreadState.KILLED


def test_max_events_guard():
    sim = Simulator()

    def forever(cpu):
        while True:
            yield from cpu.delay(1)

    sim.spawn("t", forever, core_id=0, executor=unit_executor())
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_max_cycles_guard():
    sim = Simulator()

    def forever(cpu):
        while True:
            yield from cpu.delay(1000)

    sim.spawn("t", forever, core_id=0, executor=unit_executor())
    with pytest.raises(SimulationError):
        sim.run(max_cycles=10_000)


def test_stop_when_predicate():
    sim = Simulator()

    def forever(cpu):
        while True:
            yield from cpu.delay(10)

    sim.spawn("t", forever, core_id=0, executor=unit_executor())
    sim.run(stop_when=lambda s: s.global_clock > 200)
    assert 200 < sim.global_clock < 400


def test_invalid_yield_raises():
    sim = Simulator()

    def bad(cpu):
        yield "not an op"

    thread = sim.spawn("bad", bad, core_id=0, executor=unit_executor())
    with pytest.raises(ThreadProgramError):
        sim.run()
    assert thread.state is ThreadState.FAILED


def test_thread_result_captured():
    sim = Simulator()

    def program(cpu):
        yield from cpu.delay(5)
        return "payload"

    thread = sim.spawn("t", program, core_id=0, executor=unit_executor())
    sim.run()
    assert thread.result == "payload"


def test_spawn_mid_run_starts_at_current_time():
    sim = Simulator()
    seen = []

    def parent(cpu):
        yield from cpu.delay(100)
        child = sim.spawn("child", child_prog, core_id=1,
                          executor=unit_executor())
        seen.append(child.clock)
        yield from cpu.delay(10)

    def child_prog(cpu):
        yield from cpu.delay(1)

    sim.spawn("parent", parent, core_id=0, executor=unit_executor())
    sim.run()
    assert seen and seen[0] >= 100


def test_thread_by_name():
    sim = Simulator()

    def program(cpu):
        yield from cpu.delay(1)

    sim.spawn("alpha", program, core_id=0, executor=unit_executor())
    assert sim.thread_by_name("alpha").name == "alpha"
    with pytest.raises(KeyError):
        sim.thread_by_name("missing")


def test_duplicate_live_name_rejected():
    sim = Simulator()

    def program(cpu):
        yield from cpu.delay(1)

    sim.spawn("t", program, core_id=0, executor=unit_executor())
    with pytest.raises(SimulationError, match="duplicate thread name"):
        sim.spawn("t", program, core_id=1, executor=unit_executor())


def test_name_reuse_after_exit_allowed():
    sim = Simulator()

    def program(cpu):
        yield from cpu.delay(1)

    first = sim.spawn("t", program, core_id=0, executor=unit_executor())
    sim.run()
    assert first.state is ThreadState.DONE
    # Dead threads release their name; the index resolves to the newest.
    second = sim.spawn("t", program, core_id=0, executor=unit_executor())
    assert sim.thread_by_name("t") is second
    sim.run()


def test_name_reuse_after_kill_allowed():
    sim = Simulator()

    def forever(cpu):
        while True:
            yield from cpu.delay(1)

    first = sim.spawn("t", forever, core_id=0, executor=unit_executor(),
                      daemon=True)
    first.kill()
    second = sim.spawn("t", forever, core_id=0, executor=unit_executor(),
                       daemon=True)
    assert sim.thread_by_name("t") is second
    second.kill()


def test_on_exit_fires_once():
    sim = Simulator()
    calls = []

    def program(cpu):
        yield from cpu.delay(1)

    thread = sim.spawn("t", program, core_id=0, executor=unit_executor())
    thread.on_exit = lambda t: calls.append(t.tid)
    sim.run()
    thread.kill()  # no double fire
    assert calls == [thread.tid]


def test_on_exit_fires_on_kill():
    sim = Simulator()
    calls = []

    def forever(cpu):
        while True:
            yield from cpu.delay(1)

    thread = sim.spawn("t", forever, core_id=0, executor=unit_executor(),
                       daemon=True)
    thread.on_exit = lambda t: calls.append("killed")
    thread.kill()
    assert calls == ["killed"]


def test_timed_load_measures_load_only():
    sim = Simulator()
    results = []

    def program(cpu):
        result = yield from cpu.timed_load(0x40)
        results.append(result)

    executor = unit_executor({Load: 123.0})
    sim.spawn("t", program, core_id=0, executor=executor)
    sim.run()
    assert results[0].latency == 123.0

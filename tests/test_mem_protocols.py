"""Tests for the MESI / MESIF / MOESI protocol variants."""

import pytest

from repro.errors import ConfigError
from repro.mem.cacheline import CoherenceState
from repro.mem.hierarchy import Machine, MachineConfig
from repro.mem.invariants import check_machine
from repro.mem.latency import NoiseModel
from repro.mem.protocols import MesifPolicy, MesiPolicy, MoesiPolicy, make_policy
from repro.sim.events import AccessPath

ADDR = 0x90_0000


def machine_for(protocol, rng):
    config = MachineConfig(protocol=protocol, noise=NoiseModel(enabled=False))
    return Machine(config, rng)


def test_make_policy_dispatch():
    assert isinstance(make_policy("mesi"), MesiPolicy)
    assert isinstance(make_policy("MESIF"), MesifPolicy)
    assert isinstance(make_policy("moesi"), MoesiPolicy)


def test_make_policy_unknown():
    with pytest.raises(ConfigError):
        make_policy("dragon")


def test_mesif_assigns_forward_state(rng):
    m = machine_for("mesif", rng)
    m.load(1, ADDR)
    m.load(2, ADDR)  # becomes the forwarder
    assert m.private_state(2, ADDR) is CoherenceState.FORWARD
    assert m.private_state(1, ADDR) is CoherenceState.SHARED
    check_machine(m)


def test_mesif_forwarder_moves_to_newest_sharer(rng):
    m = machine_for("mesif", rng)
    m.load(1, ADDR)
    m.load(2, ADDR)
    m.load(3, ADDR)
    assert m.private_state(3, ADDR) is CoherenceState.FORWARD
    assert m.private_state(2, ADDR) is CoherenceState.SHARED
    assert m.llc_entry(0, ADDR).forwarder == 3
    check_machine(m)


def test_mesif_timing_matches_mesi(rng):
    """F state must not change the E/S latency split (paper Sec II-B)."""
    lat = {}
    for protocol in ("mesi", "mesif"):
        m = machine_for(protocol, rng)
        m.load(1, ADDR)
        m.load(2, ADDR)
        _v, latency, path = m.load(0, ADDR)
        assert path is AccessPath.LOCAL_SHARED
        lat[protocol] = latency
    assert lat["mesi"] == pytest.approx(lat["mesif"], abs=1.0)


def test_moesi_dirty_owner_keeps_owned_state(rng):
    m = machine_for("moesi", rng)
    m.store(1, ADDR, 77)
    value, _lat, path = m.load(2, ADDR)
    assert value == 77
    assert path is AccessPath.LOCAL_EXCL
    assert m.private_state(1, ADDR) is CoherenceState.OWNED
    assert m.private_state(2, ADDR) is CoherenceState.SHARED
    check_machine(m)


def test_moesi_owner_keeps_servicing_reads(rng):
    m = machine_for("moesi", rng)
    m.store(1, ADDR, 5)
    m.load(2, ADDR)
    _v, _lat, path = m.load(3, ADDR)
    # Directory still forwards to the O owner (no LLC write-back).
    assert path is AccessPath.LOCAL_EXCL
    check_machine(m)


def test_moesi_clean_exclusive_downgrades_like_mesi(rng):
    """The covert channel's read-only lines behave identically (paper)."""
    m = machine_for("moesi", rng)
    m.load(1, ADDR)
    _v, _lat, path = m.load(2, ADDR)
    assert path is AccessPath.LOCAL_EXCL
    assert m.private_state(1, ADDR) is CoherenceState.SHARED
    _v, _lat, path = m.load(3, ADDR)
    assert path is AccessPath.LOCAL_SHARED
    check_machine(m)


def test_moesi_owned_value_survives_flush(rng):
    m = machine_for("moesi", rng)
    m.store(1, ADDR, 31)
    m.load(2, ADDR)  # owner -> O
    m.flush(0, ADDR)
    value, _lat, path = m.load(4, ADDR)
    assert value == 31
    assert path is AccessPath.DRAM


def test_moesi_store_after_owned(rng):
    m = machine_for("moesi", rng)
    m.store(1, ADDR, 1)
    m.load(2, ADDR)        # 1 holds O, 2 holds S
    m.store(2, ADDR, 2)    # RFO invalidates the owner
    assert m.private_state(1, ADDR) is CoherenceState.INVALID
    assert m.private_state(2, ADDR) is CoherenceState.MODIFIED
    value, _lat, _p = m.load(3, ADDR)
    assert value == 2
    check_machine(m)


def test_state_predicates():
    assert CoherenceState.MODIFIED.dirty
    assert CoherenceState.OWNED.dirty
    assert not CoherenceState.SHARED.dirty
    assert CoherenceState.EXCLUSIVE.sole_copy
    assert CoherenceState.MODIFIED.sole_copy
    assert not CoherenceState.FORWARD.sole_copy
    assert not CoherenceState.INVALID.readable
    assert CoherenceState.MODIFIED.writable
    assert not CoherenceState.EXCLUSIVE.writable

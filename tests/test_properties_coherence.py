"""Property-based coherence fuzzing.

Random op sequences (load/store/flush from random cores over a small
line pool) must (a) never violate a protocol invariant and (b) always
return the value of the most recent store per line — checked against a
flat reference memory.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.cacheline import LINE_SIZE
from repro.mem.hierarchy import Machine, MachineConfig
from repro.mem.invariants import check_machine
from repro.mem.latency import NoiseModel
from repro.sim.rng import RngStreams

N_LINES = 6
BASE = 0x100_0000


def tiny_machine(protocol="mesi"):
    config = MachineConfig(
        cores_per_socket=3,
        l1_sets=4, l1_assoc=2,
        l2_sets=8, l2_assoc=2,
        llc_sets=16, llc_assoc=4,
        protocol=protocol,
        noise=NoiseModel(enabled=False),
    )
    return Machine(config, RngStreams(0))


ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["load", "store", "flush"]),
        st.integers(min_value=0, max_value=5),   # core
        st.integers(min_value=0, max_value=N_LINES - 1),
        st.integers(min_value=1, max_value=1000),  # store value
    ),
    min_size=1,
    max_size=60,
)


def apply_ops(machine, ops):
    reference = {}
    for op, core, line, value in ops:
        addr = BASE + line * LINE_SIZE
        if op == "load":
            got, _lat, _path = machine.load(core, addr)
            assert got == reference.get(addr, 0), (
                f"load({core}, line {line}) returned {got}, "
                f"expected {reference.get(addr, 0)}"
            )
        elif op == "store":
            machine.store(core, addr, value)
            reference[addr] = value
        else:
            machine.flush(core, addr)
    return reference


@settings(max_examples=120, deadline=None)
@given(ops=ops_strategy)
def test_mesi_random_ops_hold_invariants(ops):
    machine = tiny_machine("mesi")
    apply_ops(machine, ops)
    check_machine(machine)


@settings(max_examples=60, deadline=None)
@given(ops=ops_strategy)
def test_mesif_random_ops_hold_invariants(ops):
    machine = tiny_machine("mesif")
    apply_ops(machine, ops)
    check_machine(machine)


@settings(max_examples=60, deadline=None)
@given(ops=ops_strategy)
def test_moesi_random_ops_hold_invariants(ops):
    machine = tiny_machine("moesi")
    apply_ops(machine, ops)
    check_machine(machine)


@settings(max_examples=60, deadline=None)
@given(ops=ops_strategy, data=st.data())
def test_final_values_readable_from_any_core(ops, data):
    machine = tiny_machine("mesi")
    reference = apply_ops(machine, ops)
    core = data.draw(st.integers(min_value=0, max_value=5))
    for addr, expected in reference.items():
        got, _lat, _path = machine.load(core, addr)
        assert got == expected
    check_machine(machine)

"""Tests for the parallel, cache-aware experiment runner.

Covers the ExperimentSpec/Point grid API, the content-addressed on-disk
result cache (hit / miss / invalidation), the serial-vs-parallel
determinism guarantee on a real fig8 grid, the experiment registry, and
the CLI validation fixes that shipped with the runner.
"""

import io
import os
import pickle
import time
from pathlib import Path

import pytest

from repro.errors import PointExecutionError, SpecError
from repro.runner import (
    ExperimentSpec,
    Point,
    ResultCache,
    Runner,
    StderrProgress,
    canonical_json,
    default_cache_dir,
    execute,
    resolve_callable,
    version_salt,
)

SQUARE = "tests.runner_points:square"
RECORD = "tests.runner_points:record"
BOOM = "tests.runner_points:boom"


def small_spec(n=3):
    return ExperimentSpec(
        experiment="toy",
        points=tuple(
            Point(fn=SQUARE, params={"x": i}, label=f"x={i}")
            for i in range(n)
        ),
    )


# -- spec / point identity ------------------------------------------------


def test_canonical_json_is_order_independent():
    assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'
    assert canonical_json({"a": 2, "b": 1}) == canonical_json({"b": 1, "a": 2})


def test_canonical_json_rejects_non_json_values():
    with pytest.raises(SpecError):
        canonical_json({"x": {1, 2}})
    with pytest.raises(SpecError):
        canonical_json(float("nan"))


def test_point_rejects_unpicklable_params_at_build_time():
    with pytest.raises(SpecError):
        Point(fn=SQUARE, params={"x": object()})


def test_point_rejects_malformed_fn_path():
    with pytest.raises(SpecError):
        Point(fn="no.colon.here", params={})


def test_point_identity_ignores_label():
    a = Point(fn=SQUARE, params={"x": 1}, label="one")
    b = Point(fn=SQUARE, params={"x": 1}, label="uno")
    c = Point(fn=SQUARE, params={"x": 2})
    assert a == b and hash(a) == hash(b)
    assert a.key() == b.key()
    assert a != c and a.key() != c.key()


def test_point_key_depends_on_salt():
    p = Point(fn=SQUARE, params={"x": 1})
    assert p.key("repro-1.0.0") != p.key("repro-1.0.1")


def test_empty_spec_rejected():
    with pytest.raises(SpecError):
        ExperimentSpec(experiment="empty", points=())


def test_resolve_callable_errors():
    assert resolve_callable(SQUARE)(x=3) == 9
    with pytest.raises(SpecError):
        resolve_callable("tests.runner_points")
    with pytest.raises(SpecError):
        resolve_callable("tests.runner_points:missing")
    with pytest.raises(SpecError):
        resolve_callable("tests.no_such_module:fn")


# -- cache ----------------------------------------------------------------


def test_cache_roundtrip_and_layout(tmp_path):
    cache = ResultCache(tmp_path, salt="s")
    p = Point(fn=SQUARE, params={"x": 2})
    hit, _ = cache.lookup(p)
    assert not hit and cache.misses == 1
    cache.store(p, {"answer": 4})
    hit, value = cache.lookup(p)
    assert hit and value == {"answer": 4} and cache.hits == 1
    path = cache.path_for(p)
    assert path.exists()
    assert path.parent.name == cache.key_for(p)[:2]


def test_cache_salt_invalidates(tmp_path):
    p = Point(fn=SQUARE, params={"x": 2})
    ResultCache(tmp_path, salt="repro-1.0.0").store(p, 4)
    hit, _ = ResultCache(tmp_path, salt="repro-1.0.1").lookup(p)
    assert not hit


@pytest.mark.parametrize("junk", [
    b"not a pickle",   # UnpicklingError
    b"garbage\n",      # ValueError (pickle GET opcode on a non-int line)
    b"",               # EOFError
])
def test_cache_corrupt_entry_is_miss_and_deleted(tmp_path, junk):
    cache = ResultCache(tmp_path, salt="s")
    p = Point(fn=SQUARE, params={"x": 2})
    cache.store(p, 4)
    cache.path_for(p).write_bytes(junk)
    hit, _ = cache.lookup(p)
    assert not hit
    assert not cache.path_for(p).exists()


def test_cache_evict(tmp_path):
    cache = ResultCache(tmp_path, salt="s")
    p = Point(fn=SQUARE, params={"x": 2})
    assert not cache.evict(p)
    cache.store(p, 4)
    assert cache.evict(p)
    assert not cache.lookup(p)[0]


def test_cache_stores_cached_none(tmp_path):
    cache = ResultCache(tmp_path, salt="s")
    p = Point(fn=SQUARE, params={"x": 2})
    cache.store(p, None)
    hit, value = cache.lookup(p)
    assert hit and value is None


def test_default_cache_dir_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
    assert default_cache_dir() == tmp_path / "c"
    monkeypatch.delenv("REPRO_CACHE_DIR")
    monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
    assert default_cache_dir() == tmp_path / "xdg" / "repro" / "results"


def test_version_salt_tracks_package_version():
    from repro import __version__

    assert __version__ in version_salt()


# -- runner ---------------------------------------------------------------


def test_serial_run_returns_values_in_grid_order():
    report = Runner(jobs=1).run(small_spec(4))
    assert report.values == [0, 1, 4, 9]
    assert report.cache_hits == 0 and report.cache_misses == 4


def test_execute_default_is_serial_cacheless():
    assert execute(small_spec(3)) == [0, 1, 4]


def test_cache_hit_skips_recompute(tmp_path):
    log = tmp_path / "log.txt"
    spec = ExperimentSpec(
        experiment="toy",
        points=tuple(
            Point(fn=RECORD, params={"x": i, "log": str(log)})
            for i in range(3)
        ),
    )
    first = Runner(jobs=1, cache=ResultCache(tmp_path / "c", salt="s")).run(spec)
    assert first.cache_misses == 3
    assert log.read_text().splitlines() == ["0", "1", "2"]

    second = Runner(jobs=1, cache=ResultCache(tmp_path / "c", salt="s")).run(spec)
    assert second.cache_hits == 3 and second.cache_misses == 0
    assert second.values == first.values == [0, 10, 20]
    # Hits must not have re-executed the point function.
    assert log.read_text().splitlines() == ["0", "1", "2"]

    # A new salt (version bump) invalidates everything.
    third = Runner(jobs=1, cache=ResultCache(tmp_path / "c", salt="t")).run(spec)
    assert third.cache_misses == 3
    assert log.read_text().splitlines() == ["0", "1", "2", "0", "1", "2"]


def test_gc_max_age_reaps_stale_current_entries(tmp_path):
    cache = ResultCache(tmp_path, salt="s")
    stale = Point(fn=SQUARE, params={"x": 1})
    fresh = Point(fn=SQUARE, params={"x": 2})
    cache.store(stale, 1)
    cache.store(fresh, 4)
    past = time.time() - 7200
    os.utime(cache.path_for(stale), (past, past))

    removed, freed = cache.gc(max_age_seconds=3600)
    assert removed == 1 and freed > 0
    assert cache.lookup(stale) == (False, None)
    assert cache.lookup(fresh) == (True, 4)


def test_gc_without_max_age_keeps_current_generation(tmp_path):
    cache = ResultCache(tmp_path, salt="s")
    point = Point(fn=SQUARE, params={"x": 1})
    cache.store(point, 1)
    past = time.time() - 7200
    os.utime(cache.path_for(point), (past, past))
    assert cache.gc() == (0, 0)
    assert cache.lookup(point) == (True, 1)


def test_gc_rejects_negative_max_age(tmp_path):
    with pytest.raises(ValueError, match=">= 0"):
        ResultCache(tmp_path, salt="s").gc(max_age_seconds=-1)


def test_orphaned_tmp_files_swept_on_construction(tmp_path):
    """Regression: temps leaked by killed writers are reaped, in-flight
    temps inside the grace window are left alone."""
    cache = ResultCache(tmp_path, salt="s")
    point = Point(fn=SQUARE, params={"x": 1})
    cache.store(point, 1)
    shard = cache.path_for(point).parent
    orphan = shard / "dead.pkl.tmp"
    orphan.write_bytes(b"partial write from a killed worker")
    past = time.time() - 120  # beyond STALE_TMP_SECONDS
    os.utime(orphan, (past, past))
    young = shard / "live.pkl.tmp"
    young.write_bytes(b"concurrent writer, still in flight")

    swept = ResultCache(tmp_path, salt="s")
    assert swept.swept_tmp == 1
    assert not orphan.exists()
    assert young.exists()
    assert swept.lookup(point) == (True, 1)


def _racing_stat(monkeypatch, target, on_first_stat):
    """Patch ``Path.stat`` so *on_first_stat* runs right after the first
    stat of *target* — modelling a concurrent writer acting inside the
    stat→unlink window of ``gc()`` / the tmp sweep."""
    real_stat = Path.stat
    fired = []

    def racy(self, *args, **kwargs):
        st = real_stat(self, *args, **kwargs)
        if self == target and not fired:
            fired.append(True)
            on_first_stat()
        return st

    monkeypatch.setattr(Path, "stat", racy)


def test_gc_survives_concurrent_store_refresh(tmp_path, monkeypatch):
    """Regression: a store() that refreshes an entry between gc's age
    check and its unlink must win — the now-fresh blob survives."""
    cache = ResultCache(tmp_path, salt="s")
    point = Point(fn=SQUARE, params={"x": 1})
    cache.store(point, 1)
    target = cache.path_for(point)
    past = time.time() - 7200
    os.utime(target, (past, past))

    # The first stat sees the stale mtime; the "writer" then refreshes
    # the entry, so gc's re-check sees a different mtime_ns and skips.
    _racing_stat(monkeypatch, target, lambda: os.utime(target))
    assert cache.gc(max_age_seconds=3600) == (0, 0)
    monkeypatch.undo()
    assert cache.lookup(point) == (True, 1)


def test_gc_survives_entry_vanishing_mid_sweep(tmp_path, monkeypatch):
    """Regression: an entry deleted by a concurrent gc between stat and
    unlink is skipped without crashing or inflating the freed count."""
    old = ResultCache(tmp_path, salt="old")
    point = Point(fn=SQUARE, params={"x": 1})
    old.store(point, 1)
    target = old.path_for(point)

    cache = ResultCache(tmp_path, salt="new")
    _racing_stat(monkeypatch, target, target.unlink)
    assert cache.gc() == (0, 0)


def test_tmp_sweep_survives_concurrent_rename(tmp_path, monkeypatch):
    """Regression: a writer's os.replace landing between the sweep's
    stat and unlink must not crash the sweep or lose the renamed blob."""
    cache = ResultCache(tmp_path, salt="s")
    point = Point(fn=SQUARE, params={"x": 1})
    cache.store(point, 1)
    final = cache.path_for(point)
    payload = final.read_bytes()
    final.unlink()
    tmp = final.with_suffix(".pkl.tmp")
    tmp.write_bytes(payload)
    past = time.time() - 120  # looks orphaned: past the grace window
    os.utime(tmp, (past, past))

    _racing_stat(monkeypatch, tmp, lambda: os.replace(tmp, final))
    swept = ResultCache(tmp_path, salt="s")
    monkeypatch.undo()
    assert swept.swept_tmp == 0
    assert final.exists()
    assert swept.lookup(point) == (True, 1)


def test_parallel_run_matches_serial(tmp_path):
    spec = small_spec(6)
    serial = Runner(jobs=1).run(spec)
    parallel = Runner(jobs=4, cache=ResultCache(tmp_path, salt="s")).run(spec)
    assert parallel.values == serial.values
    # The parallel run populated the cache; a rerun is all hits.
    rerun = Runner(jobs=4, cache=ResultCache(tmp_path, salt="s")).run(spec)
    assert rerun.cache_hits == 6
    assert rerun.values == serial.values


def test_point_failure_wrapped_serial():
    spec = ExperimentSpec(
        experiment="toy",
        points=(Point(fn=BOOM, params={"x": 7}, label="seven"),),
    )
    with pytest.raises(PointExecutionError, match="seven"):
        Runner(jobs=1).run(spec)


def test_point_failure_wrapped_parallel():
    spec = ExperimentSpec(
        experiment="toy",
        points=(
            Point(fn=SQUARE, params={"x": 1}),
            Point(fn=BOOM, params={"x": 7}, label="seven"),
        ),
    )
    with pytest.raises(PointExecutionError, match="seven"):
        Runner(jobs=2).run(spec)


def test_progress_lines_and_summary(tmp_path):
    stream = io.StringIO()
    progress = StderrProgress("toy", stream=stream)
    cache = ResultCache(tmp_path, salt="s")
    report = Runner(jobs=1, cache=cache, progress=progress).run(small_spec(2))
    progress.summarize(report)
    out = stream.getvalue()
    assert "[1/2] toy x=0" in out and "[2/2] toy x=1" in out
    assert "2 points" in out

    stream = io.StringIO()
    progress = StderrProgress("toy", stream=stream)
    Runner(jobs=1, cache=ResultCache(tmp_path, salt="s"),
           progress=progress).run(small_spec(2))
    assert "cached" in stream.getvalue()


# -- determinism on a real experiment grid --------------------------------


def fig8_small_spec():
    from repro.experiments import fig8_bandwidth

    return fig8_bandwidth.build_spec(
        seed=3, bits=20, rates=(400.0, 1000.0),
        scenarios=["RExclc-LSharedb", "RExclc-LExclb"],
    )


def test_fig8_parallel_byte_identical_to_serial(tmp_path):
    spec = fig8_small_spec()
    serial = Runner(jobs=1).run(spec).values
    parallel = Runner(jobs=4, cache=ResultCache(tmp_path, salt="s")).run(spec)
    assert pickle.dumps(parallel.values) == pickle.dumps(serial)
    # And the cached rerun reproduces the same bytes again.
    cached = Runner(jobs=1, cache=ResultCache(tmp_path, salt="s")).run(spec)
    assert cached.cache_hits == len(spec.points)
    assert pickle.dumps(cached.values) == pickle.dumps(serial)


def test_fig8_spec_path_matches_legacy_run():
    from repro.experiments import fig8_bandwidth

    spec = fig8_small_spec()
    via_spec = fig8_bandwidth.run(spec)
    with pytest.warns(DeprecationWarning):
        legacy = fig8_bandwidth.run(
            seed=3, bits=20, rates=(400.0, 1000.0),
            scenarios=["RExclc-LSharedb", "RExclc-LExclb"],
        )
    assert via_spec == legacy


# -- registry -------------------------------------------------------------


def test_registry_covers_every_driver():
    from repro.experiments import REGISTRY

    assert set(REGISTRY) == {
        "fig2", "table1", "fig7", "fig8", "fig9", "fig10", "fig11",
        "sync", "mitigations", "ablations", "detect", "capacity",
        "faults", "leaderboard", "arena",
    }
    for name, info in REGISTRY.items():
        assert info.name == name
        assert info.summary


def test_registry_drivers_expose_unified_api():
    from repro.experiments import REGISTRY

    for info in REGISTRY.values():
        module = info.load()
        for attr in ("NAME", "SUMMARY", "POINT_FN", "point", "build_spec",
                     "spec_from_args", "collect", "run", "render",
                     "add_arguments", "main"):
            assert hasattr(module, attr), f"{info.module} lacks {attr}"
        assert module.NAME == info.name


def test_registry_build_spec_points_are_hashable():
    from repro.experiments import REGISTRY

    spec = REGISTRY["table1"].build_spec(seed=1, bits=8)
    assert isinstance(spec, ExperimentSpec)
    assert len(spec.points) > 0
    for point in spec.points:
        point.key(version_salt())  # must not raise


# -- CLI integration ------------------------------------------------------


def test_cli_send_rejects_zero_rate(capsys):
    from repro.cli import main

    with pytest.raises(SystemExit):
        main(["send", "101", "--rate", "0"])
    assert "--rate must be a positive" in capsys.readouterr().err


def test_cli_send_rejects_negative_rate(capsys):
    from repro.cli import main

    with pytest.raises(SystemExit):
        main(["send", "101", "--rate", "-5"])
    assert "--rate must be a positive" in capsys.readouterr().err


def test_cli_experiment_uses_cache_dir(tmp_path, capsys):
    from repro.cli import main

    argv = ["table1", "--bits", "8", "--cache-dir", str(tmp_path),
            "--no-progress"]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert "Table I" in first
    assert any(tmp_path.iterdir()), "cache dir was not populated"
    # Second run is served from cache and renders identically.
    assert main(argv) == 0
    assert capsys.readouterr().out == first

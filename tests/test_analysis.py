"""Tests for the analysis utilities (CDF, bands, capacity, reporting)."""

import numpy as np
import pytest

from repro.analysis.bands import discover_bands
from repro.analysis.capacity import (
    blahut_arimoto,
    capacity_kbps,
    confusion_matrix,
    mutual_information,
)
from repro.analysis.cdf import band_separation, empirical_cdf, overlap_fraction
from repro.analysis.reporting import (
    ascii_cdf,
    ascii_histogram,
    ascii_table,
    bitstring,
    pct,
)


def test_empirical_cdf_basics():
    cdf = empirical_cdf(np.array([1.0, 2.0, 3.0, 4.0]))
    assert cdf.at(2.0) == pytest.approx(0.5)
    assert cdf.at(0.5) == 0.0
    assert cdf.at(10.0) == 1.0
    assert cdf.quantile(0.5) == 3.0


def test_empirical_cdf_rejects_empty():
    with pytest.raises(ValueError):
        empirical_cdf(np.array([]))
    with pytest.raises(ValueError):
        empirical_cdf(np.array([1.0])).quantile(2.0)


def test_band_separation_positive_for_distinct():
    rng = np.random.default_rng(0)
    a = rng.normal(100, 2, 500)
    b = rng.normal(130, 2, 500)
    assert band_separation(a, b) > 3.0


def test_band_separation_negative_for_overlapping():
    rng = np.random.default_rng(0)
    a = rng.normal(100, 10, 500)
    b = rng.normal(102, 10, 500)
    assert band_separation(a, b) < 0.5


def test_overlap_fraction():
    a = np.array([1.0, 2.0, 3.0])
    b = np.array([10.0, 11.0])
    assert overlap_fraction(a, b) == 0.0
    assert overlap_fraction(a, a) == 1.0


def test_discover_bands_finds_clusters():
    rng = np.random.default_rng(1)
    samples = np.concatenate([
        rng.normal(98, 1.5, 300),
        rng.normal(124, 1.5, 300),
        rng.normal(170, 1.5, 300),
        rng.normal(232, 1.5, 300),
    ])
    result = discover_bands(samples)
    assert result.count == 4
    assert result.classify(98.0) == 0
    assert result.classify(232.0) == 3
    assert result.classify(400.0) is None


def test_discover_bands_drops_outliers():
    rng = np.random.default_rng(1)
    samples = np.concatenate([
        rng.normal(100, 1, 200),
        np.array([500.0]),  # lone outlier
    ])
    result = discover_bands(samples)
    assert result.count == 1


def test_discover_bands_empty():
    assert discover_bands(np.array([])).count == 0


def test_confusion_matrix_rows_normalized():
    mat = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1], n_symbols=2)
    assert np.allclose(mat.sum(axis=1), 1.0)
    assert mat[1, 1] == 1.0
    assert mat[0, 0] == 0.5


def test_mutual_information_perfect_channel():
    eye = np.eye(4)
    assert mutual_information(eye) == pytest.approx(2.0)


def test_mutual_information_useless_channel():
    flat = np.full((2, 2), 0.5)
    assert mutual_information(flat) == pytest.approx(0.0, abs=1e-9)


def test_blahut_arimoto_bsc():
    # binary symmetric channel with p=0.1: C = 1 - H(0.1)
    p = 0.1
    channel = np.array([[1 - p, p], [p, 1 - p]])
    capacity, dist = blahut_arimoto(channel)
    h = -(p * np.log2(p) + (1 - p) * np.log2(1 - p))
    assert capacity == pytest.approx(1 - h, abs=1e-4)
    assert dist == pytest.approx([0.5, 0.5], abs=1e-3)


def test_blahut_arimoto_perfect_quaternary():
    capacity, _dist = blahut_arimoto(np.eye(4))
    assert capacity == pytest.approx(2.0, abs=1e-6)


def test_capacity_kbps():
    rate = capacity_kbps(np.eye(2), symbols_per_second=1e6)
    assert rate == pytest.approx(1000.0, abs=1.0)


def test_ascii_table_renders():
    text = ascii_table(("a", "bb"), [(1, 2), (33, 44)], title="T")
    assert "T" in text and "33" in text and "|" in text


def test_ascii_histogram_renders():
    text = ascii_histogram([1.0, 1.1, 5.0], bins=4)
    assert "#" in text
    assert ascii_histogram([]) == "(no samples)"


def test_ascii_cdf_renders():
    text = ascii_cdf({"x": [1.0, 2.0, 3.0]}, points=3)
    assert "quantile" in text and "x" in text


def test_bitstring_groups():
    assert bitstring([1, 0, 1, 1], group=2) == "10 11"


def test_pct():
    assert pct(0.123) == "12.3%"


def test_trace_csv_roundtrip(tmp_path):
    from repro.analysis.trace import (
        ascii_timeline,
        load_trace,
        samples_from_csv,
        samples_to_csv,
        save_trace,
    )
    from repro.channel.decoder import Sample
    from repro.sim.events import AccessPath

    samples = [
        Sample(timestamp=1000.0, latency=98.4, label="b",
               path=AccessPath.LOCAL_SHARED),
        Sample(timestamp=2200.0, latency=124.1, label="c",
               path=AccessPath.LOCAL_EXCL),
        Sample(timestamp=3400.0, latency=321.0, label="x", path=None),
    ]
    text = samples_to_csv(samples)
    parsed = samples_from_csv(text)
    assert [s.latency for s in parsed] == [98.4, 124.1, 321.0]
    assert [s.label for s in parsed] == ["b", "c", "x"]
    assert parsed[0].path == "local_shared"

    path = tmp_path / "trace.csv"
    save_trace(str(path), samples)
    assert [s.timestamp for s in load_trace(str(path))] == [1000.0, 2200.0,
                                                            3400.0]

    timeline = ascii_timeline(samples)
    assert timeline.count("\n") == 3
    assert "*" in timeline and "o" in timeline and "." in timeline


def test_trace_csv_preserves_plain_string_paths():
    """Regression: a round-tripped trace carries plain-string paths;
    re-serializing it used to collapse them to the empty string."""
    from repro.analysis.trace import samples_from_csv, samples_to_csv
    from repro.channel.decoder import Sample

    samples = [
        Sample(timestamp=1000.0, latency=98.4, label="b",
               path="local_shared"),
        Sample(timestamp=2200.0, latency=321.0, label="x", path=None),
    ]
    text = samples_to_csv(samples)
    assert ",local_shared" in text
    again = samples_from_csv(text)
    assert again[0].path == "local_shared"
    assert again[1].path is None
    # Fixed point: a second round trip is byte-identical.
    assert samples_to_csv(again) == text


def test_ascii_timeline_clamps_out_of_range():
    from repro.analysis.trace import ascii_timeline
    from repro.channel.decoder import Sample

    samples = [Sample(timestamp=0.0, latency=10_000.0, label="x")]
    text = ascii_timeline(samples, max_rows=1)
    assert "10000.0" in text

"""Tests for the statistics registry."""

import math

from repro.sim.stats import Histogram, StatsRegistry


def test_counter_starts_at_zero():
    stats = StatsRegistry()
    assert stats.counter("never") == 0


def test_counter_increments():
    stats = StatsRegistry()
    stats.incr("hits")
    stats.incr("hits", 4)
    assert stats.counter("hits") == 5


def test_histogram_identity():
    stats = StatsRegistry()
    assert stats.histogram("lat") is stats.histogram("lat")


def test_histogram_records_and_summarizes():
    hist = Histogram("x")
    for v in (1.0, 2.0, 3.0):
        hist.record(v)
    assert len(hist) == 3
    assert hist.mean() == 2.0
    assert hist.percentile(50) == 2.0


def test_empty_histogram_is_nan():
    hist = Histogram("empty")
    assert math.isnan(hist.mean())
    assert math.isnan(hist.percentile(50))
    assert hist.summary()["count"] == 0


def test_summary_keys():
    hist = Histogram("s")
    hist.record(10.0)
    summary = hist.summary()
    assert set(summary) == {"count", "mean", "p5", "p50", "p95"}
    assert summary["count"] == 1


def test_reset_clears_everything():
    stats = StatsRegistry()
    stats.incr("a")
    stats.histogram("h").record(1.0)
    stats.reset()
    assert stats.counter("a") == 0
    assert len(stats.histogram("h")) == 0


def test_counters_copy_is_detached():
    stats = StatsRegistry()
    stats.incr("a")
    copy = stats.counters()
    copy["a"] = 99
    assert stats.counter("a") == 1

"""Tests for parity encoding and the NACK retransmission protocol."""

import pytest

from repro.channel.config import TABLE_I
from repro.channel.ecc import (
    CHUNK_BYTES,
    PACKET_DATA_BYTES,
    ReliableChannel,
    bits_to_bytes,
    bytes_to_bits,
    check_packet,
    encode_packet,
)
from repro.errors import ConfigError


def test_bytes_bits_roundtrip():
    data = bytes(range(16))
    assert bits_to_bytes(bytes_to_bits(data)) == data


def test_bits_to_bytes_rejects_partial():
    with pytest.raises(ConfigError):
        bits_to_bytes([1, 0, 1])


def test_packet_geometry():
    data = bytes(64)
    bits = encode_packet(data)
    assert len(bits) == 64 * 8 + 16  # 16 parity bits per 64-byte packet


def test_encode_rejects_misaligned():
    with pytest.raises(ConfigError):
        encode_packet(bytes(3))


def test_check_accepts_clean_packet():
    data = bytes(range(16))
    ok, decoded = check_packet(encode_packet(data), data_bytes=16)
    assert ok and decoded == data


def test_check_detects_any_single_flip():
    data = bytes(range(8))
    bits = encode_packet(data)
    for i in range(len(bits)):
        corrupted = list(bits)
        corrupted[i] ^= 1
        ok, _decoded = check_packet(corrupted, data_bytes=8)
        assert not ok, f"flip at bit {i} went undetected"


def test_check_detects_length_mismatch():
    data = bytes(8)
    bits = encode_packet(data)
    assert check_packet(bits[:-1], data_bytes=8) == (False, None)
    assert check_packet(bits + [0], data_bytes=8) == (False, None)


def test_check_misses_even_flips_in_chunk():
    """Parity is 1-bit: double flips in one chunk escape (documented)."""
    data = bytes(8)
    bits = encode_packet(data)
    bits[0] ^= 1
    bits[1] ^= 1  # same 4-byte chunk
    ok, _decoded = check_packet(bits, data_bytes=8)
    assert ok


def test_default_packet_constants():
    assert PACKET_DATA_BYTES == 64
    assert CHUNK_BYTES == 4


def test_reliable_channel_delivers_intact():
    channel = ReliableChannel(TABLE_I[0], seed=3, packet_bytes=16)
    payload = bytes(range(32))
    result = channel.send(payload)
    assert result.intact
    assert result.delivered == payload
    assert result.packets == 2
    assert result.nacks >= result.packets


def test_reliable_channel_rejects_misaligned_payload():
    channel = ReliableChannel(TABLE_I[0], seed=3, packet_bytes=16)
    with pytest.raises(ConfigError):
        channel.send(bytes(17))


def test_reliable_channel_rejects_bad_packet_bytes():
    with pytest.raises(ConfigError):
        ReliableChannel(TABLE_I[0], packet_bytes=6)


def test_reliable_channel_counts_cycles():
    channel = ReliableChannel(TABLE_I[0], seed=3, packet_bytes=16)
    result = channel.send(bytes(16))
    assert result.forward_cycles > 0
    assert result.reverse_cycles > 0
    assert result.total_cycles == pytest.approx(
        result.forward_cycles + result.reverse_cycles
    )
    assert result.effective_rate_kbps > 0


def test_reliable_channel_under_noise_still_delivers():
    channel = ReliableChannel(
        TABLE_I[3], seed=3, packet_bytes=8, noise_threads=2,
        max_attempts=60, checksum="crc16",
    )
    payload = bytes(range(16))
    result = channel.send(payload)
    assert result.intact
    # retransmissions may or may not have occurred, but accounting holds
    assert result.transmissions >= result.packets
    assert result.packet_attempts and max(result.packet_attempts) >= 1


def test_crc16_roundtrip_and_detection():
    from repro.channel.ecc import (
        check_packet_crc16,
        crc16,
        encode_packet_crc16,
    )

    data = bytes(range(16))
    bits = encode_packet_crc16(data)
    assert len(bits) == 16 * 8 + 16
    ok, decoded = check_packet_crc16(bits, data_bytes=16)
    assert ok and decoded == data
    # double flips in one chunk escape parity but not CRC-16
    corrupted = list(bits)
    corrupted[0] ^= 1
    corrupted[1] ^= 1
    ok, _decoded = check_packet_crc16(corrupted, data_bytes=16)
    assert not ok
    assert crc16(b"123456789") == 0x29B1  # CRC-16/CCITT-FALSE check value


def test_reliable_channel_rejects_unknown_checksum():
    with pytest.raises(ConfigError):
        ReliableChannel(TABLE_I[0], checksum="md5")

"""Tests for the CPU scheduler (pinning, time-sharing, preemption)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.kernel.scheduler import Scheduler


@pytest.fixture
def sched():
    return Scheduler(n_cores=4)


def test_assign_and_core_of(sched):
    sched.assign(1, 2)
    assert sched.core_of(1) == 2
    assert sched.load(2) == 1


def test_reassign_moves_thread(sched):
    sched.assign(1, 0)
    sched.assign(1, 3)
    assert sched.load(0) == 0
    assert sched.load(3) == 1


def test_release(sched):
    sched.assign(1, 0)
    sched.release(1)
    assert sched.load(0) == 0
    assert sched.core_of(1) is None
    sched.release(1)  # idempotent


def test_assign_rejects_bad_core(sched):
    with pytest.raises(ConfigError):
        sched.assign(1, 99)


def test_invalid_core_count():
    with pytest.raises(ConfigError):
        Scheduler(0)


def test_exclusive_core_runs_full_speed(sched):
    sched.assign(1, 0)
    rng = np.random.default_rng(0)
    factor, penalty = sched.timeshare(1, rng)
    assert factor == 1.0
    assert penalty == 0.0


def test_unpinned_thread_runs_full_speed(sched):
    rng = np.random.default_rng(0)
    assert sched.timeshare(42, rng) == (1.0, 0.0)


def test_shared_core_fair_share(sched):
    sched.assign(1, 0)
    sched.assign(2, 0)
    sched.assign(3, 0)
    rng = np.random.default_rng(0)
    factor, _penalty = sched.timeshare(1, rng)
    assert factor == 3.0


def test_preemption_penalties_occur_when_shared(sched):
    sched.assign(1, 0)
    sched.assign(2, 0)
    rng = np.random.default_rng(0)
    penalties = [sched.timeshare(1, rng)[1] for _ in range(20_000)]
    hits = [p for p in penalties if p > 0]
    assert hits, "expected occasional context-switch penalties"
    # roughly preempt_probability * (k-1) of ops
    assert 0.0005 < len(hits) / len(penalties) < 0.01


def test_least_loaded_core(sched):
    sched.assign(1, 0)
    sched.assign(2, 1)
    assert sched.least_loaded_core([0, 1, 2]) == 2
    sched.assign(3, 2)
    assert sched.least_loaded_core([0, 1, 2]) in (0, 1)

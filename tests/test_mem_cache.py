"""Tests for the set-associative LRU cache container."""

import pytest

from repro.errors import ConfigError
from repro.mem.cache import SetAssocCache
from repro.mem.cacheline import LINE_SIZE, line_addr


def make_cache(n_sets=4, assoc=2):
    return SetAssocCache("test", n_sets, assoc)


def addr_for_set(cache, set_index, way):
    """An address mapping to *set_index*, distinct per *way*."""
    return (way * cache.n_sets + set_index) * LINE_SIZE


def test_geometry_validation():
    with pytest.raises(ConfigError):
        SetAssocCache("bad", 3, 2)  # not a power of two
    with pytest.raises(ConfigError):
        SetAssocCache("bad", 4, 0)


def test_capacity():
    assert make_cache(8, 4).capacity_lines == 32


def test_insert_and_lookup():
    cache = make_cache()
    cache.insert(0x100, "record")
    assert cache.lookup(0x100) == "record"
    assert cache.lookup(0x123) == "record"  # same line
    assert 0x100 in cache


def test_miss_returns_none():
    cache = make_cache()
    assert cache.lookup(0x100) is None


def test_line_alignment():
    assert line_addr(0x1234) == 0x1200
    assert line_addr(0x1240) == 0x1240


def test_lru_eviction_order():
    cache = make_cache(n_sets=1, assoc=2)
    cache.insert(0 * LINE_SIZE, "a")
    cache.insert(1 * LINE_SIZE, "b")
    victim = cache.insert(2 * LINE_SIZE, "c")
    assert victim == "a"


def test_lookup_refreshes_lru():
    cache = make_cache(n_sets=1, assoc=2)
    cache.insert(0 * LINE_SIZE, "a")
    cache.insert(1 * LINE_SIZE, "b")
    cache.lookup(0)  # refresh "a"
    victim = cache.insert(2 * LINE_SIZE, "c")
    assert victim == "b"


def test_no_touch_lookup_preserves_lru():
    cache = make_cache(n_sets=1, assoc=2)
    cache.insert(0 * LINE_SIZE, "a")
    cache.insert(1 * LINE_SIZE, "b")
    cache.lookup(0, touch=False)
    victim = cache.insert(2 * LINE_SIZE, "c")
    assert victim == "a"


def test_reinsert_same_line_no_eviction():
    cache = make_cache(n_sets=1, assoc=2)
    cache.insert(0, "a")
    cache.insert(LINE_SIZE, "b")
    victim = cache.insert(0, "a2")
    assert victim is None
    assert cache.lookup(0) == "a2"


def test_remove():
    cache = make_cache()
    cache.insert(0x200, "x")
    assert cache.remove(0x200) == "x"
    assert cache.remove(0x200) is None
    assert cache.lookup(0x200) is None


def test_set_isolation():
    cache = make_cache(n_sets=4, assoc=1)
    for s in range(4):
        cache.insert(addr_for_set(cache, s, 0), f"s{s}")
    for s in range(4):
        assert cache.lookup(addr_for_set(cache, s, 0)) == f"s{s}"


def test_occupancy_and_lines():
    cache = make_cache()
    cache.insert(0, "a")
    cache.insert(LINE_SIZE, "b")
    assert cache.occupancy() == 2
    assert set(cache.lines()) == {"a", "b"}


def test_clear():
    cache = make_cache()
    cache.insert(0, "a")
    cache.clear()
    assert cache.occupancy() == 0


def test_set_index_within_range():
    cache = make_cache(n_sets=16, assoc=2)
    for addr in range(0, 65536, 4096 + LINE_SIZE):
        assert 0 <= cache.set_index(addr) < 16

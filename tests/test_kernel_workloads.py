"""Tests for the background noise workloads."""

from repro.kernel.workloads import (
    BURST_LINES,
    KERNEL_BUILD_PAGES,
    kernel_build_program,
    pointer_chase_program,
    spawn_kernel_build,
    streaming_program,
)


def test_spawn_zero_threads_is_noop(kernel_env):
    _machine, _sim, kernel = kernel_env
    assert spawn_kernel_build(kernel, 0) == []


def test_spawn_avoids_reserved_cores(kernel_env):
    machine, sim, kernel = kernel_env
    reserved = {0, 1, 2, 6, 7}
    threads = spawn_kernel_build(kernel, 4, avoid_cores=reserved)
    for thread in threads:
        assert thread.core_id not in reserved


def test_spawn_interleaves_sockets(kernel_env):
    machine, sim, kernel = kernel_env
    threads = spawn_kernel_build(kernel, 4, avoid_cores={0, 1, 2, 6, 7})
    per_socket = machine.config.cores_per_socket
    sockets = [t.core_id // per_socket for t in threads]
    assert sockets.count(0) == 2
    assert sockets.count(1) == 2


def test_spawn_stacks_when_cores_exhausted(kernel_env):
    machine, sim, kernel = kernel_env
    reserved = {0, 1, 2, 6, 7}
    threads = spawn_kernel_build(kernel, 8, avoid_cores=reserved)
    assert len(threads) == 8
    # 7 free cores for 8 threads: exactly one core is doubled, and it is
    # not a reserved one.
    cores = [t.core_id for t in threads]
    assert all(c not in reserved for c in cores)
    assert max(cores.count(c) for c in set(cores)) == 2


def test_kernel_build_generates_memory_traffic(kernel_env):
    machine, sim, kernel = kernel_env
    threads = spawn_kernel_build(kernel, 1, avoid_cores={0})
    assert threads[0].daemon

    def waiter(cpu):
        yield from cpu.delay(100_000)

    process = kernel.create_process("w")
    kernel.spawn(process, "waiter", waiter, core_id=0)
    sim.run()
    ring = machine.interconnect.rings[threads[0].core_id
                                      // machine.config.cores_per_socket]
    assert ring.total_traffic > 100


def test_kernel_build_pollutes_llc(kernel_env):
    machine, sim, kernel = kernel_env
    threads = spawn_kernel_build(kernel, 2, avoid_cores={0})

    def waiter(cpu):
        yield from cpu.delay(400_000)

    process = kernel.create_process("w")
    kernel.spawn(process, "waiter", waiter, core_id=0)
    sim.run()
    socket = machine.socket_of(threads[0].core_id)
    # the working set exceeds the LLC, so occupancy should be substantial
    assert socket.data_array.occupancy() > 1000


def test_streaming_program_advances(kernel_env):
    machine, sim, kernel = kernel_env
    process = kernel.create_process("s")
    region = process.mmap(64)
    thread = kernel.spawn(
        process, "stream", streaming_program(region, 64), core_id=0,
        daemon=True,
    )

    def waiter(cpu):
        yield from cpu.delay(300_000)

    kernel.spawn(process, "w", waiter, core_id=1)
    sim.run()
    assert thread.ops_executed > 3


def test_pointer_chase_program_issues_loads(kernel_env):
    machine, sim, kernel = kernel_env
    process = kernel.create_process("c")
    region = process.mmap(16)
    rng = kernel.rng.get("test.chase")
    thread = kernel.spawn(
        process, "chase",
        pointer_chase_program(process, region, 16, rng),
        core_id=0, daemon=True,
    )

    def waiter(cpu):
        yield from cpu.delay(20_000)

    kernel.spawn(process, "w", waiter, core_id=1)
    sim.run()
    assert thread.ops_executed > 10


def test_constants_sane():
    assert KERNEL_BUILD_PAGES >= 1024
    assert BURST_LINES >= 16

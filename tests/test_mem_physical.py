"""Tests for physical memory: frames, refcounts, contents."""

import pytest

from repro.errors import ConfigError, InvalidAddressError, OutOfMemoryError
from repro.mem.physical import (
    PAGE_SIZE,
    PhysicalMemory,
    content_digest,
    page_pattern,
)


def test_alloc_returns_zeroed_frame():
    phys = PhysicalMemory(n_frames=4)
    frame = phys.alloc()
    assert bytes(frame.data) == b"\x00" * PAGE_SIZE
    assert frame.refcount == 1


def test_alloc_exhaustion():
    phys = PhysicalMemory(n_frames=2)
    phys.alloc()
    phys.alloc()
    with pytest.raises(OutOfMemoryError):
        phys.alloc()


def test_free_via_refcount():
    phys = PhysicalMemory(n_frames=1)
    frame = phys.alloc()
    phys.put_ref(frame.pfn)
    # frame returned to the pool
    again = phys.alloc()
    assert again.pfn == frame.pfn


def test_get_ref_increments():
    phys = PhysicalMemory(n_frames=2)
    frame = phys.alloc()
    phys.get_ref(frame.pfn)
    assert frame.refcount == 2
    phys.put_ref(frame.pfn)
    assert frame.refcount == 1
    # still allocated
    assert phys.frame(frame.pfn) is frame


def test_frame_lookup_of_free_pfn_fails():
    phys = PhysicalMemory(n_frames=2)
    with pytest.raises(InvalidAddressError):
        phys.frame(0)


def test_read_write_roundtrip():
    phys = PhysicalMemory(n_frames=2)
    frame = phys.alloc()
    base = phys.frame_base(frame.pfn)
    phys.write(base + 100, b"hello")
    assert phys.read(base + 100, 5) == b"hello"


def test_write_across_frame_boundary_rejected():
    phys = PhysicalMemory(n_frames=2)
    frame = phys.alloc()
    base = phys.frame_base(frame.pfn)
    with pytest.raises(InvalidAddressError):
        phys.write(base + PAGE_SIZE - 2, b"abcd")


def test_pfn_of_and_frame_base_inverse():
    phys = PhysicalMemory(n_frames=8)
    assert phys.pfn_of(phys.frame_base(5) + 123) == 5


def test_pfn_out_of_range():
    phys = PhysicalMemory(n_frames=2)
    with pytest.raises(InvalidAddressError):
        phys.pfn_of(PAGE_SIZE * 100)
    with pytest.raises(InvalidAddressError):
        phys.frame_base(99)


def test_counts():
    phys = PhysicalMemory(n_frames=4)
    assert phys.frames_free == 4
    phys.alloc()
    assert phys.frames_allocated == 1
    assert phys.frames_free == 3


def test_invalid_config():
    with pytest.raises(ConfigError):
        PhysicalMemory(n_frames=0)


def test_content_hash_changes_with_content():
    phys = PhysicalMemory(n_frames=2)
    frame = phys.alloc()
    before = frame.content_hash()
    frame.data[0] = 1
    assert frame.content_hash() != before


def test_page_pattern_is_deterministic():
    assert page_pattern(1, 0) == page_pattern(1, 0)
    assert page_pattern(1, 0) != page_pattern(2, 0)
    assert page_pattern(1, 0) != page_pattern(1, 1)
    assert len(page_pattern(7, 3)) == PAGE_SIZE


def test_content_digest_is_stable():
    assert content_digest(b"abc") == content_digest(b"abc")
    assert content_digest(b"abc") != content_digest(b"abd")

"""Tests for the interconnect contention model."""

import random
from collections import deque

import pytest

from repro.errors import ConfigError
from repro.mem.interconnect import Interconnect, Resource


class SeedResource:
    """Reference implementation: the seed's literal O(window) scan.

    The optimized :class:`Resource` must return bit-identical delays, so
    the randomized tests below compare against this with exact ``==``.
    """

    def __init__(self, window=2_000.0, saturation=110.0, service_cycles=2.0):
        self.window = window
        self.saturation = saturation
        self.service_cycles = service_cycles
        self.events = deque()

    def register(self, time, weight=1.0):
        cutoff = time - self.window
        while self.events and self.events[0][0] < cutoff:
            self.events.popleft()
        load = sum(w for t, w in self.events if cutoff <= t <= time)
        self.events.append((time, weight))
        rho = min(load / self.saturation, Resource.RHO_CAP)
        return self.service_cycles * rho / (1.0 - rho)


def test_idle_resource_has_no_delay():
    res = Resource("r", window=1000, saturation=50, service_cycles=2.0)
    assert res.register(0.0) == pytest.approx(0.0)


def test_delay_grows_with_load():
    res = Resource("r", window=1000, saturation=50, service_cycles=2.0)
    delays = [res.register(float(i)) for i in range(40)]
    assert delays[-1] > delays[5]


def test_mm1_shape():
    res = Resource("r", window=1000, saturation=10, service_cycles=1.0)
    for i in range(5):
        res.register(float(i))
    # load 5 of 10 => rho 0.5 => delay = 1 * 0.5/0.5 = 1.0
    assert res.register(5.0) == pytest.approx(1.0)


def test_rho_is_capped():
    res = Resource("r", window=1000, saturation=5, service_cycles=1.0)
    for i in range(100):
        res.register(float(i) * 0.1)
    delay = res.register(10.0)
    cap = Resource.RHO_CAP
    assert delay <= cap / (1 - cap) + 1e-9


def test_window_expiry():
    res = Resource("r", window=100, saturation=10, service_cycles=1.0)
    for i in range(8):
        res.register(float(i))
    assert res.register(10_000.0) == pytest.approx(0.0)


def test_future_events_do_not_count():
    res = Resource("r", window=1000, saturation=10, service_cycles=1.0)
    # a burst registers at future instants
    for t in (5_000.0, 6_000.0, 7_000.0):
        res.register(t)
    # a query in the past must not see them
    assert res.register(100.0) == pytest.approx(0.0)


def test_reset_clears_window():
    res = Resource("r", window=1000, saturation=5, service_cycles=1.0)
    for i in range(10):
        res.register(float(i))
    res.reset()
    assert res.register(20.0) == pytest.approx(0.0)


def test_total_traffic_accumulates():
    res = Resource("r")
    res.register(0.0)
    res.register(1.0, weight=2.0)
    assert res.total_traffic == pytest.approx(3.0)


def test_current_load():
    res = Resource("r", window=1000)
    res.register(0.0)
    res.register(10.0)
    assert res.current_load(20.0) == pytest.approx(2.0)
    assert res.current_load(5_000.0) == pytest.approx(0.0)


def test_window_boundary_is_inclusive():
    # An event at exactly t == cutoff (time - window) still counts: the
    # predicate is cutoff <= t <= time, and eviction drops only t < cutoff.
    res = Resource("r", window=100, saturation=10, service_cycles=1.0)
    res.register(0.0)
    assert res.current_load(100.0) == pytest.approx(1.0)
    assert res.current_load(100.5) == pytest.approx(0.0)


def test_future_boundary_is_inclusive():
    res = Resource("r", window=100, saturation=10, service_cycles=1.0)
    res.register(50.0)
    # An event registered at exactly the query time counts; later ones don't.
    assert res.current_load(50.0) == pytest.approx(1.0)
    assert res.current_load(49.0) == pytest.approx(0.0)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_register_matches_seed_scan_uniform(seed):
    # Randomized stream of unit-weight events, mostly time-ordered with
    # occasional out-of-order bursts (the machine's batched-burst shape).
    rng = random.Random(seed)
    fast = Resource("r", window=200, saturation=20, service_cycles=2.0)
    ref = SeedResource(window=200, saturation=20, service_cycles=2.0)
    now = 0.0
    for _ in range(2_000):
        now += rng.expovariate(0.2)
        t = now + (rng.uniform(0.0, 50.0) if rng.random() < 0.1 else 0.0)
        assert fast.register(t) == ref.register(t)


def test_register_matches_seed_scan_mixed_weights():
    # Fractional / non-uniform weights drop onto the literal slow path;
    # results must still match the reference exactly.
    rng = random.Random(3)
    fast = Resource("r", window=150, saturation=15, service_cycles=1.0)
    ref = SeedResource(window=150, saturation=15, service_cycles=1.0)
    now = 0.0
    for i in range(1_000):
        now += rng.expovariate(0.3)
        weight = 1.0 if i < 100 else rng.choice([1.0, 0.5, 2.0, 1.5])
        assert fast.register(now, weight) == ref.register(now, weight)


def test_reset_then_reuse_stays_consistent():
    rng = random.Random(4)
    fast = Resource("r", window=100, saturation=10, service_cycles=1.0)
    ref = SeedResource(window=100, saturation=10, service_cycles=1.0)
    now = 0.0
    for _ in range(300):
        now += rng.expovariate(0.5)
        assert fast.register(now) == ref.register(now)
    fast.reset()
    ref.events.clear()
    # The clock restarting below previously-seen times must not confuse
    # the time-sorted index (this is the calibration -> measurement reset).
    now = 0.0
    for _ in range(300):
        now += rng.expovariate(0.5)
        assert fast.register(now) == ref.register(now)


def test_invalid_parameters():
    with pytest.raises(ConfigError):
        Resource("r", window=0)
    with pytest.raises(ConfigError):
        Resource("r", saturation=0)


def test_interconnect_topology():
    ic = Interconnect(n_sockets=2)
    assert len(ic.rings) == 2
    assert len(ic.mems) == 2


def test_interconnect_rejects_zero_sockets():
    with pytest.raises(ConfigError):
        Interconnect(0)


def test_interconnect_delegates():
    ic = Interconnect(2)
    assert ic.ring_delay(0, 0.0) == pytest.approx(0.0)
    assert ic.qpi_delay(0.0) == pytest.approx(0.0)
    assert ic.mem_delay(1, 0.0) == pytest.approx(0.0)


def test_interconnect_reset():
    ic = Interconnect(2)
    for i in range(200):
        ic.ring_delay(0, float(i) * 0.1)
    ic.reset()
    assert ic.rings[0].current_load(100.0) == pytest.approx(0.0)


def test_rings_are_independent():
    ic = Interconnect(2)
    for i in range(100):
        ic.ring_delay(0, float(i))
    assert ic.rings[1].current_load(50.0) == pytest.approx(0.0)

"""Tests for the interconnect contention model."""

import pytest

from repro.errors import ConfigError
from repro.mem.interconnect import Interconnect, Resource


def test_idle_resource_has_no_delay():
    res = Resource("r", window=1000, saturation=50, service_cycles=2.0)
    assert res.register(0.0) == pytest.approx(0.0)


def test_delay_grows_with_load():
    res = Resource("r", window=1000, saturation=50, service_cycles=2.0)
    delays = [res.register(float(i)) for i in range(40)]
    assert delays[-1] > delays[5]


def test_mm1_shape():
    res = Resource("r", window=1000, saturation=10, service_cycles=1.0)
    for i in range(5):
        res.register(float(i))
    # load 5 of 10 => rho 0.5 => delay = 1 * 0.5/0.5 = 1.0
    assert res.register(5.0) == pytest.approx(1.0)


def test_rho_is_capped():
    res = Resource("r", window=1000, saturation=5, service_cycles=1.0)
    for i in range(100):
        res.register(float(i) * 0.1)
    delay = res.register(10.0)
    cap = Resource.RHO_CAP
    assert delay <= cap / (1 - cap) + 1e-9


def test_window_expiry():
    res = Resource("r", window=100, saturation=10, service_cycles=1.0)
    for i in range(8):
        res.register(float(i))
    assert res.register(10_000.0) == pytest.approx(0.0)


def test_future_events_do_not_count():
    res = Resource("r", window=1000, saturation=10, service_cycles=1.0)
    # a burst registers at future instants
    for t in (5_000.0, 6_000.0, 7_000.0):
        res.register(t)
    # a query in the past must not see them
    assert res.register(100.0) == pytest.approx(0.0)


def test_reset_clears_window():
    res = Resource("r", window=1000, saturation=5, service_cycles=1.0)
    for i in range(10):
        res.register(float(i))
    res.reset()
    assert res.register(20.0) == pytest.approx(0.0)


def test_total_traffic_accumulates():
    res = Resource("r")
    res.register(0.0)
    res.register(1.0, weight=2.0)
    assert res.total_traffic == pytest.approx(3.0)


def test_current_load():
    res = Resource("r", window=1000)
    res.register(0.0)
    res.register(10.0)
    assert res.current_load(20.0) == pytest.approx(2.0)
    assert res.current_load(5_000.0) == pytest.approx(0.0)


def test_invalid_parameters():
    with pytest.raises(ConfigError):
        Resource("r", window=0)
    with pytest.raises(ConfigError):
        Resource("r", saturation=0)


def test_interconnect_topology():
    ic = Interconnect(n_sockets=2)
    assert len(ic.rings) == 2
    assert len(ic.mems) == 2


def test_interconnect_rejects_zero_sockets():
    with pytest.raises(ConfigError):
        Interconnect(0)


def test_interconnect_delegates():
    ic = Interconnect(2)
    assert ic.ring_delay(0, 0.0) == pytest.approx(0.0)
    assert ic.qpi_delay(0.0) == pytest.approx(0.0)
    assert ic.mem_delay(1, 0.0) == pytest.approx(0.0)


def test_interconnect_reset():
    ic = Interconnect(2)
    for i in range(200):
        ic.ring_delay(0, float(i) * 0.1)
    ic.reset()
    assert ic.rings[0].current_load(100.0) == pytest.approx(0.0)


def test_rings_are_independent():
    ic = Interconnect(2)
    for i in range(100):
        ic.ring_delay(0, float(i))
    assert ic.rings[1].current_load(50.0) == pytest.approx(0.0)

"""Tests for deterministic RNG streams."""

import numpy as np
import pytest

from repro.sim.rng import RngStreams, derive_seed


def test_same_seed_same_stream():
    a = RngStreams(42).get("jitter")
    b = RngStreams(42).get("jitter")
    assert a.random() == b.random()


def test_different_names_different_streams():
    streams = RngStreams(42)
    a = streams.get("alpha").random()
    b = streams.get("beta").random()
    assert a != b


def test_stream_is_cached():
    streams = RngStreams(1)
    assert streams.get("x") is streams.get("x")


def test_creation_order_does_not_matter():
    one = RngStreams(9)
    one.get("first")
    value_one = one.get("second").random()
    two = RngStreams(9)
    value_two = two.get("second").random()
    assert value_one == value_two


def test_different_seeds_differ():
    a = RngStreams(1).get("s").random()
    b = RngStreams(2).get("s").random()
    assert a != b


def test_fork_changes_streams():
    base = RngStreams(5)
    forked = base.fork(1)
    assert forked.seed != base.seed
    assert base.get("n").random() != forked.get("n").random()


def test_fork_is_deterministic():
    assert RngStreams(5).fork(3).seed == RngStreams(5).fork(3).seed


def test_seed_property():
    assert RngStreams(7).seed == 7


def test_non_int_seed_rejected():
    with pytest.raises(TypeError):
        RngStreams("abc")


def test_streams_are_generators():
    stream = RngStreams(0).get("g")
    assert isinstance(stream, np.random.Generator)


def test_derive_seed_is_deterministic():
    assert derive_seed(7, "fig9", 2) == derive_seed(7, "fig9", 2)


def test_derive_seed_varies_with_every_component():
    base = derive_seed(7, "fig9", 2)
    assert derive_seed(8, "fig9", 2) != base
    assert derive_seed(7, "fig8", 2) != base
    assert derive_seed(7, "fig9", 3) != base


def test_derive_seed_fits_numpy_seed_range():
    for root in range(20):
        seed = derive_seed(root, "trial", root * 3)
        assert 0 <= seed < 2**31

"""Tests for the KSM (same-page merging) substrate — Section IV."""

import pytest

from repro.kernel.ksm import KsmDaemon
from repro.kernel.process import Process
from repro.mem.physical import PAGE_SIZE, PhysicalMemory, page_pattern


@pytest.fixture
def phys():
    return PhysicalMemory(n_frames=64)


@pytest.fixture
def ksm(phys):
    return KsmDaemon(phys)


def make_process(phys, ksm, pid, start_time=0.0):
    process = Process(pid=pid, name=f"p{pid}", phys=phys,
                      start_time=start_time)
    ksm.register_process(process)
    return process


def fill_and_advise(process, ksm, content):
    va = process.mmap(1)
    process.write_bytes(va, content)
    process.pte(va).mergeable = True
    return va


def test_identical_pages_merge(phys, ksm):
    a = make_process(phys, ksm, 1, start_time=0.0)
    b = make_process(phys, ksm, 2, start_time=1.0)
    pattern = page_pattern(0xC0FFEE, 0)
    va_a = fill_and_advise(a, ksm, pattern)
    va_b = fill_and_advise(b, ksm, pattern)
    merged = ksm.scan_once()
    assert merged == 1
    assert a.translate(va_a) == b.translate(va_b)
    assert ksm.stats.pages_sharing == 2


def test_merge_frees_duplicate_frame(phys, ksm):
    a = make_process(phys, ksm, 1)
    b = make_process(phys, ksm, 2, start_time=1.0)
    pattern = page_pattern(1, 0)
    fill_and_advise(a, ksm, pattern)
    fill_and_advise(b, ksm, pattern)
    before = phys.frames_allocated
    ksm.scan_once()
    assert phys.frames_allocated == before - 1


def test_different_content_does_not_merge(phys, ksm):
    a = make_process(phys, ksm, 1)
    b = make_process(phys, ksm, 2)
    va_a = fill_and_advise(a, ksm, page_pattern(1, 0))
    va_b = fill_and_advise(b, ksm, page_pattern(2, 0))
    assert ksm.scan_once() == 0
    assert a.translate(va_a) != b.translate(va_b)


def test_non_mergeable_pages_ignored(phys, ksm):
    a = make_process(phys, ksm, 1)
    b = make_process(phys, ksm, 2)
    pattern = page_pattern(3, 0)
    va_a = a.mmap(1)
    a.write_bytes(va_a, pattern)  # no madvise
    fill_and_advise(b, ksm, pattern)
    assert ksm.scan_once() == 0


def test_earliest_process_frame_is_canonical(phys, ksm):
    early = make_process(phys, ksm, 1, start_time=0.0)
    late = make_process(phys, ksm, 2, start_time=50.0)
    pattern = page_pattern(4, 0)
    va_early = fill_and_advise(early, ksm, pattern)
    va_late = fill_and_advise(late, ksm, pattern)
    pfn_early = early.pte(va_early).pfn
    ksm.scan_once()
    assert late.pte(va_late).pfn == pfn_early


def test_merged_pages_are_cow(phys, ksm):
    a = make_process(phys, ksm, 1)
    b = make_process(phys, ksm, 2, start_time=1.0)
    pattern = page_pattern(5, 0)
    va_a = fill_and_advise(a, ksm, pattern)
    va_b = fill_and_advise(b, ksm, pattern)
    ksm.scan_once()
    assert a.pte(va_a).cow and a.pte(va_a).merged
    assert b.pte(va_b).cow and b.pte(va_b).merged


def test_unmerge_separates_and_preserves_content(phys, ksm):
    a = make_process(phys, ksm, 1)
    b = make_process(phys, ksm, 2, start_time=1.0)
    pattern = page_pattern(6, 0)
    va_a = fill_and_advise(a, ksm, pattern)
    va_b = fill_and_advise(b, ksm, pattern)
    ksm.scan_once()
    from repro.kernel.paging import vpn_of
    ksm.unmerge(b, vpn_of(va_b))
    assert a.translate(va_a) != b.translate(va_b)
    assert b.read_bytes(va_b, PAGE_SIZE) == pattern
    assert ksm.stats.pages_unmerged == 1


def test_three_way_merge(phys, ksm):
    procs = [make_process(phys, ksm, i + 1, start_time=float(i))
             for i in range(3)]
    pattern = page_pattern(7, 0)
    vas = [fill_and_advise(p, ksm, pattern) for p in procs]
    merged = ksm.scan_once()
    assert merged == 2
    pas = {p.translate(va) for p, va in zip(procs, vas)}
    assert len(pas) == 1
    assert ksm.stats.pages_sharing == 3


def test_rescan_is_idempotent(phys, ksm):
    a = make_process(phys, ksm, 1)
    b = make_process(phys, ksm, 2, start_time=1.0)
    pattern = page_pattern(8, 0)
    fill_and_advise(a, ksm, pattern)
    fill_and_advise(b, ksm, pattern)
    assert ksm.scan_once() == 1
    assert ksm.scan_once() == 0
    assert ksm.stats.full_scans == 2


def test_changed_content_pruned_from_stable_tree(phys, ksm):
    a = make_process(phys, ksm, 1)
    va_a = fill_and_advise(a, ksm, page_pattern(9, 0))
    ksm.scan_once()  # registers canonical
    a.write_bytes(va_a, page_pattern(10, 0))  # direct content change
    b = make_process(phys, ksm, 2, start_time=1.0)
    va_b = fill_and_advise(b, ksm, page_pattern(9, 0))
    ksm.scan_once()
    # must NOT have merged b onto a's (now different) frame
    assert b.read_bytes(va_b, PAGE_SIZE) == page_pattern(9, 0)


def test_shared_frames_reporting(phys, ksm):
    a = make_process(phys, ksm, 1)
    b = make_process(phys, ksm, 2, start_time=1.0)
    pattern = page_pattern(11, 0)
    va_a = fill_and_advise(a, ksm, pattern)
    fill_and_advise(b, ksm, pattern)
    ksm.scan_once()
    shared = ksm.shared_frames()
    assert len(shared) == 1
    mappers = ksm.mappers_of(a.pte(va_a).pfn)
    assert {pid for pid, _vpn in mappers} == {1, 2}
    assert len(mappers) == 2


def test_daemon_thread_scans_periodically(kernel_env):
    machine, sim, kernel = kernel_env
    a = kernel.create_process("a")
    b = kernel.create_process("b")
    pattern = page_pattern(12, 0)
    va_a = a.mmap(1)
    va_b = b.mmap(1)
    a.write_bytes(va_a, pattern)
    b.write_bytes(va_b, pattern)
    kernel.madvise_mergeable(a, va_a)
    kernel.madvise_mergeable(b, va_b)
    kernel.ksm.scan_interval = 10_000.0
    kernel.start_ksm_daemon()

    def waiter(cpu):
        yield from cpu.delay(50_000)

    kernel.spawn(a, "waiter", waiter, core_id=0)
    sim.run()
    assert a.translate(va_a) == b.translate(va_b)

"""Deterministic checkpoint/restore and segmented execution.

The contract under test: a segmented run — paused at every segment
boundary, captured, stored, and continued — is *bit-identical* to an
uninterrupted one, and a later process that resumes from the newest
stored segment finishes with the same result the original would have
produced.  Covered across the three coherence backends (snoop MESI,
MOESI, home-node directory), with noise workloads and a warmup prefix
riding along, plus the blob format's integrity checks and the
``REPRO_SEGMENTS=0`` kill switch.
"""

import hashlib
import pickle
import struct

import pytest

from repro.channel.config import ProtocolParams
from repro.channel.session import (
    ChannelSession,
    SessionConfig,
    clear_warm_state,
    execute_point,
)
from repro.checkpoint.core import (
    BLOB_MAGIC,
    CHECKPOINT_VERSION,
    Checkpoint,
    inspect_blob,
    restore,
)
from repro.checkpoint.segments import (
    SegmentStore,
    point_identity,
    segment,
    segment_cycles,
    segments_enabled,
)
from repro.errors import CheckpointError
from repro.runner import ResultCache

PAYLOAD = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0, 0, 1, 0, 1]

#: One representative scenario per coherence backend: snoop-MESI,
#: MOESI (O-state channel), and the home-node directory protocol.
BACKENDS = ("mesi-es", "moesi-ostate", "dir-es")

#: Noise threads + a warmup prefix exercise the hard parts of a
#: snapshot: kernel-build workload threads, the KSM daemon, and the
#: warmup-labelled re-drive path.
POINT = dict(seed=11, calibration_samples=120, noise_threads=1,
             warmup_bits=4)


def digest(result) -> str:
    """Everything observable about one transmission, hashed."""
    h = hashlib.sha256()
    h.update(",".join(map(str, result.sent)).encode())
    h.update(b"|")
    h.update(",".join(map(str, result.received)).encode())
    h.update(b"|")
    for sample in result.samples:
        h.update(struct.pack("<dd", sample.timestamp, sample.latency))
    h.update(struct.pack("<d", result.cycles))
    return h.hexdigest()


@pytest.fixture
def seg_cache(monkeypatch, tmp_path):
    """A private segment cache and a clean checkpoint environment."""
    root = tmp_path / "cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(root))
    for var in ("REPRO_SEGMENT_CYCLES", "REPRO_SEGMENTS",
                "REPRO_KILL_AT_SEGMENT", "REPRO_CHECKPOINT_EXPORT",
                "REPRO_TRACE"):
        monkeypatch.delenv(var, raising=False)
    clear_warm_state()
    yield root
    clear_warm_state()


# -- round trip across backends ----------------------------------------


@pytest.mark.parametrize("spec", BACKENDS)
def test_segmented_and_resumed_runs_are_bit_identical(
    spec, seg_cache, monkeypatch
):
    baseline = execute_point(spec=spec, payload=list(PAYLOAD), **POINT)

    monkeypatch.setenv("REPRO_SEGMENT_CYCLES", "25000")
    clear_warm_state()
    segmented = execute_point(spec=spec, payload=list(PAYLOAD), **POINT)
    assert digest(segmented) == digest(baseline)
    assert segmented.manifest.segment_cycles == 25000.0
    assert segmented.manifest.segments_stored > 0
    assert segmented.manifest.resumed_from is None

    # A second invocation finds the newest stored segment and resumes
    # from it — as the crash-retry of a killed worker would — and still
    # lands on the identical result.
    clear_warm_state()
    resumed = execute_point(spec=spec, payload=list(PAYLOAD), **POINT)
    assert digest(resumed) == digest(baseline)
    assert resumed.manifest.resumed_from is not None


def test_kill_switch_restores_unsegmented_behavior(seg_cache, monkeypatch):
    kwargs = dict(spec="mesi-es", seed=7, calibration_samples=120)
    baseline = execute_point(payload=list(PAYLOAD), **kwargs)

    monkeypatch.setenv("REPRO_SEGMENT_CYCLES", "25000")
    monkeypatch.setenv("REPRO_SEGMENTS", "0")
    assert not segments_enabled()
    clear_warm_state()
    disabled = execute_point(payload=list(PAYLOAD), **kwargs)
    assert digest(disabled) == digest(baseline)
    assert disabled.manifest.segment_cycles == 0.0
    assert disabled.manifest.segments_stored == 0
    # the kill switch keeps the cache untouched too
    assert not list(seg_cache.rglob("*.pkl"))


# -- the blob format ----------------------------------------------------


def test_export_hook_writes_inspectable_blob(seg_cache, monkeypatch,
                                             tmp_path):
    blob_path = tmp_path / "ckpt.bin"
    monkeypatch.setenv("REPRO_SEGMENT_CYCLES", "25000")
    monkeypatch.setenv("REPRO_CHECKPOINT_EXPORT", str(blob_path))
    execute_point(spec="mesi-es", payload=list(PAYLOAD), seed=7,
                  calibration_samples=120)
    blob = blob_path.read_bytes()

    manifest = inspect_blob(blob)
    assert manifest["version"] == CHECKPOINT_VERSION
    assert manifest["state_bytes"] > 0
    assert manifest["segment"] >= 0
    assert manifest["label"] in ("warmup", "main")
    assert manifest["identity"]
    ckpt = Checkpoint.from_bytes(blob)
    assert ckpt.digest == manifest["digest"]


def test_blob_integrity_checks():
    ckpt = Checkpoint(manifest={"seed": 3}, state=pickle.dumps({"k": 1}))
    blob = ckpt.to_bytes()
    assert Checkpoint.from_bytes(blob).digest == ckpt.digest

    tampered = pickle.loads(blob[len(BLOB_MAGIC):])
    tampered["state"] = pickle.dumps({"k": 2})
    with pytest.raises(CheckpointError, match="digest mismatch"):
        Checkpoint.from_bytes(BLOB_MAGIC + pickle.dumps(tampered))

    with pytest.raises(CheckpointError, match="magic"):
        Checkpoint.from_bytes(b"NOPE" + blob[len(BLOB_MAGIC):])

    futuristic = pickle.loads(blob[len(BLOB_MAGIC):])
    futuristic["version"] = 99
    with pytest.raises(CheckpointError, match="version"):
        Checkpoint.from_bytes(BLOB_MAGIC + pickle.dumps(futuristic))


# -- warm-start adoption ------------------------------------------------


def test_adopt_prefix_warm_start(seg_cache, monkeypatch):
    monkeypatch.setenv("REPRO_SEGMENT_CYCLES", "25000")
    cache = ResultCache(seg_cache)
    session = ChannelSession(SessionConfig(
        spec="mesi-es", seed=7, calibration_samples=120,
    ))
    session.segments = SegmentStore("donor", cache=cache, cycles=25000.0)
    warmup = session.transmit(list(PAYLOAD[:4]), _label="warmup")
    assert session.segments.segments_stored > 0

    adopter = SegmentStore("adopter", cache=cache, cycles=25000.0)
    assert adopter.adopt_prefix("donor")
    blob = adopter.latest()
    assert blob is not None

    # The adopted checkpoint restores and finishes the warmup
    # bit-identically to the donor's own uninterrupted warmup.
    restored, ctx = restore(blob)
    assert ctx.label == "warmup"
    replay = restored.transmit(ctx.payload, _resume=ctx, _label=ctx.label)
    assert digest(replay) == digest(warmup)

    # After the donor's main transmission its newest checkpoint is
    # main-labelled — no longer a shared prefix, so not adoptable.
    session.transmit(list(PAYLOAD))
    late = SegmentStore("late", cache=cache, cycles=25000.0)
    assert late.adopt_prefix("donor") is False
    assert late.adopt_prefix("never-existed") is False


# -- identities, knobs, guards ------------------------------------------


def test_point_identity_is_stable_and_sensitive():
    base = {"spec": "mesi-es", "seed": 3, "payload": [1, 0, 1],
            "params": ProtocolParams()}
    assert point_identity(base) == point_identity(dict(base))
    assert point_identity(base) != point_identity({**base, "seed": 4})
    assert point_identity(base) != point_identity(
        {**base, "payload": [1, 0, 0]}
    )


def test_segment_cycles_env_parsing(monkeypatch):
    monkeypatch.delenv("REPRO_SEGMENT_CYCLES", raising=False)
    monkeypatch.delenv("REPRO_SEGMENTS", raising=False)
    assert segment_cycles() == 0.0
    assert not segments_enabled()
    monkeypatch.setenv("REPRO_SEGMENT_CYCLES", "2.5e5")
    assert segment_cycles() == 250000.0
    assert segments_enabled()
    monkeypatch.setenv("REPRO_SEGMENT_CYCLES", "banana")
    assert segment_cycles() == 0.0
    monkeypatch.setenv("REPRO_SEGMENT_CYCLES", "-5")
    assert segment_cycles() == 0.0
    monkeypatch.setenv("REPRO_SEGMENT_CYCLES", "1e5")
    monkeypatch.setenv("REPRO_SEGMENTS", "0")
    assert not segments_enabled()


def test_segment_store_guards(monkeypatch):
    monkeypatch.delenv("REPRO_SEGMENT_CYCLES", raising=False)
    with pytest.raises(CheckpointError, match="positive segment length"):
        SegmentStore("x", cache=object(), cycles=-1.0)
    with pytest.raises(CheckpointError, match="artifact"):
        segment(identity="x")


def test_next_boundary_is_strictly_ahead():
    store = SegmentStore("x", cache=object(), cycles=100.0)
    assert store.next_boundary(0.0) == 100.0
    assert store.next_boundary(99.9) == 100.0
    assert store.next_boundary(100.0) == 200.0

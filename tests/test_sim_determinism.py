"""Determinism properties of the simulation stack.

Reproducibility is a core design goal (DESIGN.md): identical seeds must
produce bit-identical machine behavior regardless of when components
were constructed.  These tests pin that down at several layers.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.cacheline import LINE_SIZE
from repro.mem.hierarchy import Machine, MachineConfig
from repro.sim.rng import RngStreams

ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["load", "store", "flush"]),
        st.integers(min_value=0, max_value=11),
        st.integers(min_value=0, max_value=7),
    ),
    min_size=1,
    max_size=40,
)


def replay(seed, ops):
    machine = Machine(MachineConfig(), RngStreams(seed))
    trace = []
    now = 0.0
    for op, core, line in ops:
        addr = 0x200000 + line * LINE_SIZE
        if op == "load":
            value, latency, path = machine.load(core, addr, now)
            trace.append(("load", value, round(latency, 6), path))
        elif op == "store":
            latency, path = machine.store(core, addr, 1, now)
            trace.append(("store", round(latency, 6), path))
        else:
            trace.append(("flush", round(machine.flush(core, addr, now), 6)))
        now += trace[-1][1] if isinstance(trace[-1][1], float) else 100.0
    return trace


@settings(max_examples=40, deadline=None)
@given(ops=ops_strategy, seed=st.integers(min_value=0, max_value=2**20))
def test_machine_is_bit_deterministic(ops, seed):
    assert replay(seed, ops) == replay(seed, ops)


@settings(max_examples=20, deadline=None)
@given(ops=ops_strategy)
def test_different_seeds_change_only_latencies(ops):
    a = replay(1, ops)
    b = replay(2, ops)

    def structure(trace):
        # keep op kind, loaded value, and service path; drop latencies
        return [
            (e[0], e[1] if e[0] == "load" else None,
             e[-1] if e[0] != "flush" else None)
            for e in trace
        ]

    assert structure(a) == structure(b)


def test_end_to_end_transmission_bit_deterministic():
    from repro.channel.config import TABLE_I
    from repro.channel.session import ChannelSession, SessionConfig

    def run():
        session = ChannelSession(SessionConfig(
            spec=TABLE_I[2].name, seed=77, calibration_samples=150,
        ))
        result = session.transmit([1, 0, 1, 1, 0, 0])
        return (
            tuple(result.received),
            tuple(round(s.latency, 9) for s in result.samples),
            result.cycles,
        )

    assert run() == run()


def test_rng_stream_isolation():
    """Consuming one stream never perturbs another."""
    a = RngStreams(5)
    b = RngStreams(5)
    a.get("first").random(1000)  # burn a lot of stream "first"
    assert a.get("second").random() == b.get("second").random()

"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig8" in out and "send" in out


def test_help_by_default(capsys):
    assert main([]) == 0
    assert "experiments" in capsys.readouterr().out


def test_unknown_command(capsys):
    assert main(["frobnicate"]) == 2
    assert "unknown command" in capsys.readouterr().err


def test_send_roundtrip(capsys):
    assert main(["send", "10110"]) == 0
    out = capsys.readouterr().out
    assert "sent     10110" in out
    assert "received 10110" in out


def test_send_rejects_empty_payload():
    with pytest.raises(SystemExit):
        main(["send", "xyz"])


def test_bands_command(capsys):
    assert main(["bands", "--samples", "120"]) == 0
    out = capsys.readouterr().out
    for label in ("LShared", "LExcl", "RShared", "RExcl", "dram"):
        assert label in out


def test_experiment_dispatch(capsys):
    assert main(["table1", "--bits", "8"]) == 0
    assert "Table I" in capsys.readouterr().out


def test_experiment_names_resolve():
    import importlib

    for module_name in EXPERIMENTS.values():
        module = importlib.import_module(f"repro.experiments.{module_name}")
        assert callable(module.main)


def test_trace_export_chrome(tmp_path, capsys):
    import json

    from repro.obs import validate_chrome_trace

    out = tmp_path / "trace.json"
    assert main(["trace", "export", "--format", "chrome",
                 "--output", str(out), "--bits", "4",
                 "--scenario", "LExclc-LSharedb"]) == 0
    captured = capsys.readouterr()
    assert f"wrote {out}" in captured.out
    trace = json.loads(out.read_text())
    validate_chrome_trace(trace)
    manifest = trace["otherData"]["manifest"]
    assert manifest["seed"] == 7
    assert manifest["scenario"] == "LExclc-LSharedb"
    assert manifest["traced_events"] > 0


def test_trace_export_text(capsys):
    assert main(["trace", "export", "--format", "text", "--bits", "2",
                 "--scenario", "LExclc-LSharedb"]) == 0
    captured = capsys.readouterr()
    assert "recorded" in captured.err
    lines = captured.out.splitlines()
    assert lines[0].lstrip().startswith("cycles")
    assert any("sample" in line for line in lines)
    assert any("coherence" in line for line in lines)


def test_trace_export_rejects_bad_rate(capsys):
    with pytest.raises(SystemExit):
        main(["trace", "export", "--rate", "0"])


def test_global_trace_flag_sets_environment(monkeypatch, capsys):
    import os

    monkeypatch.delenv("REPRO_TRACE", raising=False)
    assert main(["--trace", "list"]) == 0
    assert os.environ["REPRO_TRACE"] == "1"
    assert "fig8" in capsys.readouterr().out

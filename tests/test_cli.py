"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig8" in out and "send" in out


def test_help_by_default(capsys):
    assert main([]) == 0
    assert "experiments" in capsys.readouterr().out


def test_unknown_command(capsys):
    assert main(["frobnicate"]) == 2
    assert "unknown command" in capsys.readouterr().err


def test_send_roundtrip(capsys):
    assert main(["send", "10110"]) == 0
    out = capsys.readouterr().out
    assert "sent     10110" in out
    assert "received 10110" in out


def test_send_rejects_empty_payload():
    with pytest.raises(SystemExit):
        main(["send", "xyz"])


def test_bands_command(capsys):
    assert main(["bands", "--samples", "120"]) == 0
    out = capsys.readouterr().out
    for label in ("LShared", "LExcl", "RShared", "RExcl", "dram"):
        assert label in out


def test_experiment_dispatch(capsys):
    assert main(["table1", "--bits", "8"]) == 0
    assert "Table I" in capsys.readouterr().out


def test_experiment_names_resolve():
    import importlib

    for module_name in EXPERIMENTS.values():
        module = importlib.import_module(f"repro.experiments.{module_name}")
        assert callable(module.main)

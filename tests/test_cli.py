"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig8" in out and "send" in out


def test_help_by_default(capsys):
    assert main([]) == 0
    assert "experiments" in capsys.readouterr().out


def test_unknown_command(capsys):
    assert main(["frobnicate"]) == 2
    assert "unknown command" in capsys.readouterr().err


def test_send_roundtrip(capsys):
    assert main(["send", "10110"]) == 0
    out = capsys.readouterr().out
    assert "sent     10110" in out
    assert "received 10110" in out


def test_send_rejects_empty_payload():
    with pytest.raises(SystemExit):
        main(["send", "xyz"])


def test_bands_command(capsys):
    assert main(["bands", "--samples", "120"]) == 0
    out = capsys.readouterr().out
    for label in ("LShared", "LExcl", "RShared", "RExcl", "dram"):
        assert label in out


def test_experiment_dispatch(capsys):
    assert main(["table1", "--bits", "8"]) == 0
    assert "Table I" in capsys.readouterr().out


def test_experiment_names_resolve():
    import importlib

    for module_name in EXPERIMENTS.values():
        module = importlib.import_module(f"repro.experiments.{module_name}")
        assert callable(module.main)


def test_trace_export_chrome(tmp_path, capsys):
    import json

    from repro.obs import validate_chrome_trace

    out = tmp_path / "trace.json"
    assert main(["trace", "export", "--format", "chrome",
                 "--output", str(out), "--bits", "4",
                 "--scenario", "LExclc-LSharedb"]) == 0
    captured = capsys.readouterr()
    assert f"wrote {out}" in captured.out
    trace = json.loads(out.read_text())
    validate_chrome_trace(trace)
    manifest = trace["otherData"]["manifest"]
    assert manifest["seed"] == 7
    assert manifest["scenario"] == "LExclc-LSharedb"
    assert manifest["traced_events"] > 0


def test_trace_export_text(capsys):
    assert main(["trace", "export", "--format", "text", "--bits", "2",
                 "--scenario", "LExclc-LSharedb"]) == 0
    captured = capsys.readouterr()
    assert "recorded" in captured.err
    lines = captured.out.splitlines()
    assert lines[0].lstrip().startswith("cycles")
    assert any("sample" in line for line in lines)
    assert any("coherence" in line for line in lines)


def test_trace_export_rejects_bad_rate(capsys):
    with pytest.raises(SystemExit):
        main(["trace", "export", "--rate", "0"])


def test_global_trace_flag_sets_environment(monkeypatch, capsys):
    import os

    # main() writes REPRO_TRACE straight into os.environ; claim the key
    # through monkeypatch first so teardown removes whatever main set
    # instead of leaking tracing into every later test's sessions.
    monkeypatch.setenv("REPRO_TRACE", "")
    monkeypatch.delenv("REPRO_TRACE")
    assert main(["--trace", "list"]) == 0
    assert os.environ["REPRO_TRACE"] == "1"
    assert "fig8" in capsys.readouterr().out


def test_parse_age_units_and_errors():
    import argparse

    from repro.cli import _parse_age

    assert _parse_age("90") == 90.0
    assert _parse_age("45m") == 2700.0
    assert _parse_age("12h") == 43200.0
    assert _parse_age("7d") == 604800.0
    with pytest.raises(argparse.ArgumentTypeError, match="invalid age"):
        _parse_age("soon")
    with pytest.raises(argparse.ArgumentTypeError, match=">= 0"):
        _parse_age("-5m")


def test_cache_gc_max_age_cli(tmp_path, capsys):
    import os
    import time

    from repro.runner import Point, ResultCache

    cache = ResultCache(tmp_path)
    stale = Point(fn="tests.runner_points:square", params={"x": 1})
    fresh = Point(fn="tests.runner_points:square", params={"x": 2})
    cache.store(stale, 1)
    cache.store(fresh, 4)
    past = time.time() - 7200
    os.utime(cache.path_for(stale), (past, past))

    assert main(["cache", "gc", "--cache-dir", str(tmp_path),
                 "--max-age", "1h"]) == 0
    assert "pruned 1" in capsys.readouterr().out
    assert cache.lookup(stale) == (False, None)
    assert cache.lookup(fresh) == (True, 4)


def test_cache_stats_rejects_max_age(tmp_path, capsys):
    with pytest.raises(SystemExit):
        main(["cache", "stats", "--cache-dir", str(tmp_path),
              "--max-age", "1h"])
    assert "only applies to gc" in capsys.readouterr().err


def test_checkpoint_inspect_prints_manifest(tmp_path, capsys):
    import pickle

    from repro.checkpoint import Checkpoint

    blob = Checkpoint(
        manifest={"seed": 3, "label": "main", "segment": 2},
        state=pickle.dumps({"x": 1}),
    ).to_bytes()
    path = tmp_path / "ckpt.bin"
    path.write_bytes(blob)
    assert main(["checkpoint", "inspect", str(path)]) == 0
    out = capsys.readouterr().out
    for key in ("seed", "label", "segment", "digest", "state_bytes",
                "version"):
        assert key in out


def test_checkpoint_inspect_rejects_garbage(tmp_path, capsys):
    path = tmp_path / "junk.bin"
    path.write_bytes(b"definitely not a checkpoint blob")
    with pytest.raises(SystemExit):
        main(["checkpoint", "inspect", str(path)])
    assert "error" in capsys.readouterr().err

"""ScenarioSpec registry + spec-first session API contract.

Locks the API-facing behavior of the scenario matrix: registry
contents, matrix layout (including the undefined and expected-dead
cells), spec overlay/conflict rules on :class:`SessionConfig`, and the
deprecation shims the migration left behind.
"""

import pytest

from repro.channel.config import (
    LEXCL,
    LSHARED,
    TABLE_I,
    ProtocolParams,
    Scenario,
)
from repro.channel.scenarios import (
    CHANNEL_FAMILIES,
    MATRIX_COLS,
    MATRIX_ROWS,
    SCENARIOS,
    ScenarioSpec,
    matrix_cell,
    scenario_spec_by_name,
)
from repro.channel.session import SessionConfig, resolve_spec
from repro.errors import ConfigError
from repro.mem.hierarchy import MachineConfig


# -- registry contents ------------------------------------------------


def test_table_i_names_are_registered():
    for scenario in TABLE_I:
        spec = scenario_spec_by_name(scenario.name)
        assert spec.scenario == scenario
        assert spec.protocol == "mesi"
        assert spec.topology == "snoop"


def test_matrix_names_are_registered():
    for protocol in ("mesi", "mesif", "moesi"):
        for channel in CHANNEL_FAMILIES:
            assert f"{protocol}-{channel}" in SCENARIOS
    assert "dir-es" in SCENARIOS
    assert "dir-ostate" in SCENARIOS
    assert "dir-lru" not in SCENARIOS


def test_unknown_name_lists_choices():
    with pytest.raises(ConfigError, match="registered scenarios"):
        scenario_spec_by_name("nope")
    with pytest.raises(ConfigError, match="LExclc-LSharedb"):
        scenario_spec_by_name("nope")


def test_spec_validation_rejects_bad_fields():
    scenario = Scenario(csc=LEXCL, csb=LSHARED)
    with pytest.raises(ConfigError, match="registered protocols"):
        ScenarioSpec(name="x", scenario=scenario, protocol="mosi")
    with pytest.raises(ConfigError, match="channel family"):
        ScenarioSpec(name="x", scenario=scenario, channel="tlb")
    with pytest.raises(ConfigError, match="topology"):
        ScenarioSpec(name="x", scenario=scenario, topology="mesh")


# -- matrix layout ----------------------------------------------------


def test_matrix_cell_layout():
    for row in MATRIX_ROWS:
        for channel in MATRIX_COLS:
            spec = matrix_cell(row, channel)
            if row == "directory" and channel == "lru":
                assert spec is None  # undefined: nothing to sweep
                continue
            assert spec is not None
            assert spec.channel == channel
            if row == "directory":
                assert spec.topology == "directory"
            else:
                assert spec.protocol == row


def test_matrix_cell_rejects_unknown_axes():
    with pytest.raises(ConfigError, match="matrix row"):
        matrix_cell("dragon", "es")
    with pytest.raises(ConfigError, match="channel family"):
        matrix_cell("mesi", "plain-wrong")


def test_expected_dead_cells_are_registered_but_flagged():
    # MESI/MESIF x O-state stay in the registry — running them *is* the
    # demonstration that the O channel needs MOESI — but their summary
    # says so up front.
    for protocol in ("mesi", "mesif"):
        assert "dead" in SCENARIOS[f"{protocol}-ostate"].summary


# -- spec overlay on SessionConfig ------------------------------------


def test_spec_overlays_machine_protocol_and_topology():
    config = SessionConfig(spec="dir-ostate", scenario=None)
    assert config.machine.protocol == "moesi"
    assert config.machine.coherence == "directory"
    assert config.sharing == "explicit-rw"
    assert config.scenario == SCENARIOS["dir-ostate"].scenario


def test_spec_defers_to_explicit_caller_params():
    params = ProtocolParams(c1=7)
    config = SessionConfig(spec="mesi-lru", params=params)
    assert config.params is params  # caller's choice wins over for_lru_probe


def test_spec_machine_conflict_raises():
    with pytest.raises(ConfigError, match="pins protocol"):
        SessionConfig(
            spec="moesi-es", machine=MachineConfig(protocol="mesif"),
        )
    with pytest.raises(ConfigError, match="pins coherence"):
        # spec requires snoop, machine explicitly pins directory
        SessionConfig(
            spec="mesi-es", machine=MachineConfig(coherence="directory"),
        )


def test_resolve_spec_protocol_override():
    spec = resolve_spec("LExclc-LSharedb", protocol="moesi")
    assert spec.protocol == "moesi"
    assert spec.scenario == TABLE_I[0]


def test_resolve_spec_conflicting_protocol_raises():
    with pytest.raises(ConfigError):
        resolve_spec(spec="mesif-es", protocol="moesi")


def test_config_without_spec_or_scenario_raises():
    with pytest.raises(ConfigError, match="needs spec="):
        SessionConfig()


# -- deprecation shims ------------------------------------------------


def test_legacy_scenario_keyword_warns():
    with pytest.warns(DeprecationWarning, match="scenario=.*deprecated"):
        config = SessionConfig(scenario=TABLE_I[0])
    assert config.scenario == TABLE_I[0]


def test_bare_scenario_in_spec_slot_warns():
    with pytest.warns(DeprecationWarning, match="expects a.*ScenarioSpec"):
        config = SessionConfig(spec=TABLE_I[0])
    assert config.scenario == TABLE_I[0]


def test_run_transmission_with_bare_scenario_warns():
    from repro.channel.session import run_transmission

    with pytest.warns(DeprecationWarning, match="deprecated"):
        result = run_transmission(TABLE_I[0], [1, 0, 1], seed=3)
    assert result.accuracy == 1.0


def test_legacy_shims_land_on_the_resolved_configuration():
    """The deprecated entry forms warn AND end up exactly where the
    modern resolve_spec path lands."""
    modern = SessionConfig(spec=resolve_spec(TABLE_I[0].name))
    with pytest.warns(DeprecationWarning, match="scenario=.*deprecated"):
        legacy = SessionConfig(scenario=TABLE_I[0])
    with pytest.warns(DeprecationWarning, match="expects a.*ScenarioSpec"):
        bare = SessionConfig(spec=TABLE_I[0])
    assert legacy.scenario == modern.scenario == bare.scenario

    # resolve_spec wraps bare legacy inputs into ad-hoc specs itself
    wrapped = resolve_spec(TABLE_I[0])
    assert isinstance(wrapped, ScenarioSpec)
    assert wrapped.scenario == TABLE_I[0]


def test_execute_point_legacy_scenario_routes_through_resolve_spec(
    monkeypatch,
):
    import repro.channel.session as session_mod

    seen = []
    real = session_mod.resolve_spec

    def spy(*args, **kwargs):
        spec = real(*args, **kwargs)
        seen.append(spec.name)
        return spec

    monkeypatch.setattr(session_mod, "resolve_spec", spy)
    result = session_mod.execute_point(
        scenario=TABLE_I[0].name, payload=[1, 0, 1], seed=3,
        calibration_samples=120,
    )
    assert seen == [TABLE_I[0].name]
    assert result.scenario_name == TABLE_I[0].name

"""Topology tests: machine geometries beyond the paper's 2-socket box."""

import pytest

from repro.channel.config import TABLE_I
from repro.channel.session import ChannelSession, SessionConfig
from repro.errors import ConfigError
from repro.mem.cacheline import CoherenceState
from repro.mem.hierarchy import Machine, MachineConfig
from repro.mem.invariants import check_machine
from repro.mem.latency import NoiseModel
from repro.sim.events import AccessPath

ADDR = 0xC0_0000


def quad_socket(rng):
    config = MachineConfig(
        n_sockets=4, cores_per_socket=4, noise=NoiseModel(enabled=False)
    )
    return Machine(config, rng)


def test_quad_socket_geometry(rng):
    m = quad_socket(rng)
    assert m.config.n_cores == 16
    assert len(m.sockets) == 4
    assert m.socket_of(13).socket_id == 3


def test_quad_socket_remote_paths(rng):
    m = quad_socket(rng)
    m.load(12, ADDR)  # socket 3 holds it exclusively
    _v, _lat, path = m.load(0, ADDR)  # socket 0 probes remote sockets
    assert path is AccessPath.REMOTE_EXCL
    assert m.private_state(12, ADDR) is CoherenceState.SHARED
    check_machine(m)


def test_quad_socket_store_invalidates_all(rng):
    m = quad_socket(rng)
    for core in (0, 4, 8, 12):  # one reader per socket
        m.load(core, ADDR)
    m.store(1, ADDR, 9)
    for core in (0, 4, 8, 12):
        assert m.private_state(core, ADDR) is CoherenceState.INVALID
    value, _lat, _p = m.load(15, ADDR)
    assert value == 9
    check_machine(m)


def test_quad_socket_flush_is_global(rng):
    m = quad_socket(rng)
    for core in (0, 5, 10, 15):
        m.load(core, ADDR)
    m.flush(2, ADDR)
    for sid in range(4):
        assert m.llc_entry(sid, ADDR) is None
    check_machine(m)


def test_channel_works_on_quad_socket():
    """The attack generalizes to any socket count (paper Sec VIII-E)."""
    session = ChannelSession(SessionConfig(
        spec=TABLE_I[1].name,  # RExclc-RSharedb: fully remote
        seed=5,
        machine=MachineConfig(n_sockets=4, cores_per_socket=4),
        calibration_samples=200,
    ))
    result = session.transmit([1, 0, 1, 1, 0, 0, 1, 0])
    assert result.accuracy == 1.0


def test_single_core_socket_rejected_for_local_scenario():
    # one core per socket cannot host spy + two local trojan threads
    with pytest.raises(ConfigError):
        ChannelSession(SessionConfig(
            spec=TABLE_I[0].name,
            machine=MachineConfig(n_sockets=2, cores_per_socket=1),
            calibration_samples=50,
        ))


def test_wide_socket_counts_keep_invariants(rng):
    m = Machine(MachineConfig(n_sockets=3, cores_per_socket=2,
                              noise=NoiseModel(enabled=False)), rng)
    for core in range(6):
        m.load(core, ADDR + 64 * core)
        m.load((core + 3) % 6, ADDR + 64 * core)
    m.store(0, ADDR, 1)
    m.flush(5, ADDR + 64)
    check_machine(m)


def test_home_agent_mode_splits_bands(rng):
    """Section VIII-E: home-directory hops create extra latency profiles."""
    m = Machine(MachineConfig(home_agent=True,
                              noise=NoiseModel(enabled=False)), rng)
    lats = {}
    for addr in (0x100000, 0x101000):  # consecutive pages, homes 0 and 1
        m.flush(0, addr)
        m.load(6, addr)
        _v, lat, path = m.load(0, addr)
        assert path is AccessPath.REMOTE_EXCL
        home = (addr // 4096) % 2
        lats[home] = lat
    # home-remote addresses pay the extra directory hop
    assert lats[1] > lats[0] + 20
    check_machine(m)


def test_home_agent_local_hits_unaffected(rng):
    m = Machine(MachineConfig(home_agent=True,
                              noise=NoiseModel(enabled=False)), rng)
    addr = 0x101000  # home socket 1
    m.load(0, addr)
    _v, lat, path = m.load(0, addr)
    assert path is AccessPath.L1_HIT
    assert lat < 20


def test_home_agent_channel_still_works():
    session = ChannelSession(SessionConfig(
        spec=TABLE_I[0].name,
        seed=5,
        machine=MachineConfig(home_agent=True),
        calibration_samples=300,
    ))
    result = session.transmit([1, 0, 1, 1, 0, 0, 1, 0])
    assert result.accuracy == 1.0

"""Tests for alignment-based accuracy metrics."""

import pytest

from repro.channel.metrics import (
    align_bits,
    goodput_kbps,
    raw_bit_accuracy,
    transmission_rate_kbps,
)
from repro.mem.latency import CLOCK_HZ


def test_perfect_match():
    result = align_bits([1, 0, 1], [1, 0, 1])
    assert result.matches == 3
    assert result.accuracy == 1.0
    assert result.flips == result.losses == result.duplicates == 0


def test_single_flip():
    result = align_bits([1, 0, 1, 1], [1, 1, 1, 1])
    assert result.flips == 1
    assert result.matches == 3
    assert result.accuracy == 0.75


def test_single_loss():
    result = align_bits([1, 0, 1, 1], [1, 1, 1])
    assert result.losses == 1
    assert result.matches == 3


def test_single_duplicate():
    result = align_bits([1, 0, 1], [1, 0, 0, 1])
    assert result.duplicates == 1
    assert result.matches == 3


def test_empty_received():
    result = align_bits([1, 0], [])
    assert result.accuracy == 0.0
    assert result.losses == 2


def test_empty_sent():
    assert align_bits([], []).accuracy == 1.0
    assert align_bits([], [1]).accuracy == 0.0


def test_alignment_prefers_matching():
    # received is sent with one bit lost in the middle: alignment should
    # recover all the other matches, not declare everything shifted
    sent = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1]
    received = sent[:4] + sent[5:]
    result = align_bits(sent, received)
    assert result.matches == 9
    assert result.losses == 1


def test_error_rate_complement():
    result = align_bits([1, 0, 1, 1], [1, 1, 1, 1])
    assert result.error_rate == pytest.approx(1 - result.accuracy)


def test_raw_bit_accuracy_wrapper():
    assert raw_bit_accuracy([1, 1], [1, 1]) == 1.0


def test_totally_wrong():
    result = align_bits([1] * 8, [0] * 8)
    assert result.accuracy == 0.0
    assert result.flips == 8


def test_rates():
    # 2670 bits over one second of cycles = 2.67 Kbps
    assert transmission_rate_kbps(2670, CLOCK_HZ) == pytest.approx(2.67)
    assert goodput_kbps(2670, CLOCK_HZ) == pytest.approx(2.67)


def test_long_alignment_is_tractable():
    sent = [i % 2 for i in range(1500)]
    received = list(sent)
    received[700] ^= 1
    result = align_bits(sent, received)
    assert result.flips == 1
    assert result.matches == 1499

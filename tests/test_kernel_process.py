"""Tests for processes, paging and address translation."""

import pytest

from repro.errors import InvalidAddressError, PageFaultError
from repro.kernel.paging import page_offset, vpn_of
from repro.kernel.process import MMAP_BASE, Process
from repro.mem.physical import PAGE_SIZE, PhysicalMemory


@pytest.fixture
def phys():
    return PhysicalMemory(n_frames=64)


@pytest.fixture
def process(phys):
    return Process(pid=1, name="p", phys=phys)


def test_vpn_and_offset():
    assert vpn_of(3 * PAGE_SIZE + 17) == 3
    assert page_offset(3 * PAGE_SIZE + 17) == 17


def test_mmap_returns_page_aligned_bases(process):
    base = process.mmap(2)
    assert base == MMAP_BASE
    assert base % PAGE_SIZE == 0
    second = process.mmap(1)
    assert second == MMAP_BASE + 2 * PAGE_SIZE


def test_mmap_rejects_nonpositive(process):
    with pytest.raises(InvalidAddressError):
        process.mmap(0)


def test_translate_roundtrip(process, phys):
    base = process.mmap(1)
    pa = process.translate(base + 100)
    assert pa % PAGE_SIZE == 100
    pfn = phys.pfn_of(pa)
    assert phys.frame(pfn) is not None


def test_unmapped_translate_faults(process):
    with pytest.raises(PageFaultError):
        process.translate(0xDEAD_0000)


def test_write_read_bytes(process):
    base = process.mmap(1)
    process.write_bytes(base, b"secret")
    assert process.read_bytes(base, 6) == b"secret"


def test_map_frame_shares_physical_page(phys):
    a = Process(1, "a", phys)
    b = Process(2, "b", phys)
    frame = phys.alloc()
    va_a = a.map_frame(frame.pfn)
    va_b = b.map_frame(frame.pfn)
    assert a.translate(va_a) == b.translate(va_b)
    assert frame.refcount == 3  # alloc + two mappers


def test_map_frame_is_readonly_cow(phys):
    p = Process(1, "p", phys)
    frame = phys.alloc()
    va = p.map_frame(frame.pfn)
    pte = p.pte(va)
    assert not pte.writable
    assert pte.cow


def test_mapped_vpns_sorted(process):
    process.mmap(3)
    vpns = process.mapped_vpns()
    assert vpns == sorted(vpns)
    assert len(vpns) == 3


def test_distinct_processes_get_distinct_frames(phys):
    a = Process(1, "a", phys)
    b = Process(2, "b", phys)
    va_a = a.mmap(1)
    va_b = b.mmap(1)
    assert a.translate(va_a) != b.translate(va_b)

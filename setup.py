"""Setup shim: enables legacy editable installs on environments without
the ``wheel`` package (``pip install -e . --no-use-pep517``).  All project
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()

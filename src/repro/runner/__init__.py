"""repro.runner: parallel, memoized execution of experiment grids.

The subsystem behind every ``python -m repro <figure>`` sweep:

* :mod:`repro.runner.spec` — :class:`Point` / :class:`ExperimentSpec`,
  the declarative grid description every driver now builds;
* :mod:`repro.runner.executor` — :class:`Runner`, which fans points out
  over a process pool with per-point deterministic seeding;
* :mod:`repro.runner.cache` — :class:`ResultCache`, the
  content-addressed on-disk memo of completed points;
* :mod:`repro.runner.progress` — per-point timing lines for long sweeps.

Typical driver-side use::

    from repro.runner import ExperimentSpec, Point, execute

    spec = build_spec(seed=0)        # a grid of Points
    values = execute(spec)           # serial, hermetic
    result = collect(spec, values)   # figure-shaped dict

and CLI-side::

    runner = Runner(jobs=8, cache=ResultCache(), progress=StderrProgress("fig8"))
    report = runner.run(spec)
"""

from repro.runner.cache import ResultCache, default_cache_dir, version_salt
from repro.runner.executor import (
    FailurePolicy,
    PointOutcome,
    Runner,
    RunReport,
    auto_chunk_size,
    execute,
)
from repro.runner.progress import (
    JsonLinesProgress,
    StderrProgress,
    auto_progress,
    outcome_record,
    summary_record,
)
from repro.runner.spec import (
    ExperimentSpec,
    Point,
    canonical_json,
    chunk_pending,
    resolve_callable,
    spec_from_json,
)

__all__ = [
    "ExperimentSpec",
    "FailurePolicy",
    "JsonLinesProgress",
    "Point",
    "PointOutcome",
    "ResultCache",
    "RunReport",
    "Runner",
    "StderrProgress",
    "auto_chunk_size",
    "auto_progress",
    "canonical_json",
    "chunk_pending",
    "default_cache_dir",
    "execute",
    "outcome_record",
    "resolve_callable",
    "spec_from_json",
    "summary_record",
    "version_salt",
]

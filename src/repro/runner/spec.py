"""Declarative experiment grids: :class:`Point` and :class:`ExperimentSpec`.

Every paper figure is an embarrassingly parallel grid of independent
simulations — one :class:`Point` per (scenario, rate, noise, seed, ...)
combination.  A point names a **top-level callable** by module path
(``"repro.experiments.fig8_bandwidth:point"``) plus JSON-safe keyword
parameters, which makes it

* *executable anywhere* — the runner can call it in-process or ship it
  to a :class:`~concurrent.futures.ProcessPoolExecutor` worker, because
  resolving a module path never requires pickling closures;
* *content-addressable* — the canonical JSON of ``(fn, params)`` hashes
  to a stable cache key, so completed points can be memoized on disk;
* *deterministic* — the full RNG seed is part of the params, so a point
  computes the same value no matter which worker runs it or in what
  order (parallel results are bit-identical to serial ones).
"""

from __future__ import annotations

import hashlib
import importlib
import json
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.errors import SpecError


def canonical_json(value: Any) -> str:
    """Serialize *value* to a canonical (sorted, compact) JSON string.

    Raises :class:`SpecError` for values JSON cannot represent; point
    parameters must stay plain (numbers, strings, bools, lists, dicts)
    so cache keys and worker submissions are stable across processes.
    """
    try:
        return json.dumps(
            value, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
    except (TypeError, ValueError) as exc:
        raise SpecError(f"value is not canonically JSON-serializable: {exc}")


def resolve_callable(path: str) -> Callable[..., Any]:
    """Import and return the callable named by ``"pkg.module:attr"``."""
    module_name, _, attr = path.partition(":")
    if not module_name or not attr:
        raise SpecError(
            f"point fn must look like 'pkg.module:callable', got {path!r}"
        )
    try:
        module = importlib.import_module(module_name)
        fn = getattr(module, attr)
    except (ImportError, AttributeError) as exc:
        raise SpecError(f"cannot resolve point fn {path!r}: {exc}")
    if not callable(fn):
        raise SpecError(f"point fn {path!r} resolved to a non-callable")
    return fn


@dataclass(frozen=True, eq=False)
class Point:
    """One independent unit of experimental work.

    Parameters
    ----------
    fn:
        ``"pkg.module:callable"`` path of a top-level function taking
        ``**params`` and returning any picklable value.
    params:
        JSON-safe keyword arguments, including the RNG seed.
    label:
        Short human-readable tag for progress lines (not hashed).
    """

    fn: str
    params: Mapping[str, Any]
    label: str = ""

    def __post_init__(self) -> None:
        # Validate eagerly so a malformed grid fails at build time, not
        # deep inside a worker process.
        object.__setattr__(self, "params", dict(self.params))
        self.canonical()
        if ":" not in self.fn:
            raise SpecError(
                f"point fn must look like 'pkg.module:callable', got "
                f"{self.fn!r}"
            )

    def canonical(self) -> str:
        """Canonical JSON identity of this point (fn + params only)."""
        return canonical_json({"fn": self.fn, "params": self.params})

    def key(self, salt: str = "") -> str:
        """Content hash of the point, optionally salted (cache key)."""
        digest = hashlib.sha256()
        digest.update(salt.encode("utf-8"))
        digest.update(b"\0")
        digest.update(self.canonical().encode("utf-8"))
        return digest.hexdigest()

    def execute(self) -> Any:
        """Resolve ``fn`` and call it with this point's params."""
        return resolve_callable(self.fn)(**dict(self.params))

    def describe(self) -> str:
        """The progress-line name: explicit label or a params digest."""
        if self.label:
            return self.label
        short = ",".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"{self.fn.rpartition(':')[2]}({short})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Point):
            return NotImplemented
        return self.canonical() == other.canonical()

    def __hash__(self) -> int:
        return hash(self.canonical())


def chunk_pending(
    points: Sequence[Point], pending: Sequence[int], chunk_size: int
) -> list[list[int]]:
    """Split *pending* grid indices into seed-grouped dispatch chunks.

    Chunks are the unit the pool executor ships to a worker: one future
    executes ``chunk_size`` points back-to-back in the same process, so
    points sharing a calibration identity (the root ``seed`` param)
    should travel together — the first point of the chunk pays for
    calibration, the rest hit the worker's process-local memo.  Indices
    are therefore ordered by (seed, index) before slicing.  The slot
    each value lands in is still its grid index, so chunk order never
    affects results.

    ``chunk_size == 1`` preserves *pending*'s original order — one
    point per future, the pre-chunking dispatch exactly.
    """
    if chunk_size < 1:
        raise SpecError(f"chunk_size must be >= 1, got {chunk_size}")
    if chunk_size == 1:
        return [[index] for index in pending]
    ordered = sorted(
        pending, key=lambda i: (repr(points[i].params.get("seed")), i)
    )
    return [
        ordered[lo:lo + chunk_size]
        for lo in range(0, len(ordered), chunk_size)
    ]


@dataclass(frozen=True)
class ExperimentSpec:
    """A named, declarative grid of independent points.

    ``meta`` carries the grid axes (rates, scenario names, ...) that the
    driver's ``collect()`` needs to reassemble point values into the
    figure-shaped result dict; it is not hashed and never shipped to
    workers.
    """

    experiment: str
    points: tuple[Point, ...]
    meta: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "points", tuple(self.points))
        object.__setattr__(self, "meta", dict(self.meta))
        if not self.points:
            raise SpecError(f"spec {self.experiment!r} declares no points")

    def __len__(self) -> int:
        return len(self.points)

    def subset(self, indices: Sequence[int]) -> "ExperimentSpec":
        """A spec over a subset of this grid's points (same meta).

        The runner's resume path uses this to re-dispatch only the
        points an interrupted sweep never finished; ``indices`` keeps
        the original grid order.
        """
        try:
            points = tuple(self.points[i] for i in indices)
        except IndexError as exc:
            raise SpecError(
                f"subset index out of range for {self.experiment!r} "
                f"({len(self.points)} points): {exc}"
            )
        return ExperimentSpec(
            experiment=self.experiment, points=points, meta=self.meta
        )

    def key(self, salt: str = "") -> str:
        """Content hash of the whole grid (order-sensitive)."""
        digest = hashlib.sha256()
        digest.update(self.experiment.encode("utf-8"))
        for point in self.points:
            digest.update(point.key(salt).encode("ascii"))
        return digest.hexdigest()

    def to_json(self) -> dict[str, Any]:
        """JSON-plain form of the grid (the service job-submission body).

        Points are JSON-safe by construction (:func:`canonical_json`
        validates them eagerly), so the round-trip through
        :func:`spec_from_json` reproduces an identical spec — same
        content keys, same cache hits.
        """
        return {
            "experiment": self.experiment,
            "points": [
                {"fn": p.fn, "params": dict(p.params), "label": p.label}
                for p in self.points
            ],
            "meta": dict(self.meta),
        }


def spec_from_json(data: Mapping[str, Any]) -> ExperimentSpec:
    """Rebuild an :class:`ExperimentSpec` from :meth:`~ExperimentSpec.to_json`.

    Raises :class:`SpecError` on malformed input (missing fields, bad
    point shapes) — the error path the service's job API turns into an
    HTTP 400 instead of a worker-side crash.
    """
    try:
        experiment = data["experiment"]
        raw_points = data["points"]
    except (KeyError, TypeError) as exc:
        raise SpecError(f"malformed spec payload: missing {exc}")
    if not isinstance(experiment, str) or not experiment:
        raise SpecError("spec experiment must be a non-empty string")
    points = []
    for i, raw in enumerate(raw_points):
        try:
            points.append(Point(
                fn=raw["fn"],
                params=raw.get("params", {}),
                label=str(raw.get("label", "")),
            ))
        except (KeyError, TypeError) as exc:
            raise SpecError(f"malformed point {i} in spec payload: {exc}")
    meta = data.get("meta") or {}
    if not isinstance(meta, Mapping):
        raise SpecError("spec meta must be a mapping")
    return ExperimentSpec(experiment=experiment, points=tuple(points),
                          meta=meta)

"""Progress reporting for long sweeps: one stderr line per point.

The reporter is a plain callable compatible with
:class:`~repro.runner.executor.Runner`'s ``progress`` hook, so tests can
substitute a recording stub and the drivers stay print-free::

    [ 12/60] fig8 scenario=RExclc-LSharedb,rate=500.0   0.84s
    [ 13/60] fig8 scenario=RExclc-LSharedb,rate=600.0   cached

Two renderers share that hook signature:

* :class:`StderrProgress` — the historical interactive lines above;
* :class:`JsonLinesProgress` — one JSON object per line, for pipes and
  CI logs, and the exact payload the experiment service streams from
  ``GET /jobs/<id>/events``.

:func:`auto_progress` picks between them on ``stream.isatty()``.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Any, TextIO

from repro.runner.executor import PointOutcome, RunReport


class StderrProgress:
    """Print per-point completion lines (with timing) to *stream*."""

    def __init__(self, experiment: str, stream: TextIO | None = None):
        self.experiment = experiment
        self.stream = stream if stream is not None else sys.stderr
        self.completed = 0
        self._started = time.perf_counter()

    def __call__(self, outcome: PointOutcome) -> None:
        self.completed += 1
        width = len(str(outcome.total))
        if outcome.failed:
            cause = outcome.error.__cause__ or outcome.error
            status = (
                f"FAILED after {outcome.attempts} attempt(s): "
                f"{type(cause).__name__}"
            )
        elif outcome.cached:
            status = "cached"
        else:
            status = f"{outcome.seconds:.2f}s"
            if outcome.attempts > 1:
                status += f" ({outcome.attempts} attempts)"
        print(
            f"[{self.completed:{width}d}/{outcome.total}] "
            f"{self.experiment} {outcome.point.describe()}  {status}",
            file=self.stream,
        )

    def summarize(self, report: RunReport) -> None:
        """Print the end-of-sweep wall/compute/cache summary line."""
        parts = [
            f"{len(report.outcomes)} points",
            f"{report.wall_seconds:.2f}s wall",
            f"{report.point_seconds:.2f}s compute",
        ]
        if report.cache_hits:
            parts.append(f"{report.cache_hits} cached")
        if report.errors:
            parts.append(f"{len(report.errors)} FAILED")
        if report.pool_respawns:
            parts.append(f"{report.pool_respawns} pool respawn(s)")
        print(
            f"{self.experiment}: " + ", ".join(parts),
            file=self.stream,
        )


def outcome_record(experiment: str, outcome: PointOutcome) -> dict[str, Any]:
    """The machine-readable form of one finished point.

    This is the shared wire schema: :class:`JsonLinesProgress` prints it
    to non-TTY stderr and the service's ``/jobs/<id>/events`` endpoint
    streams it per point, so a consumer can parse either source with the
    same code.  Values stay JSON-plain; errors are reduced to the
    causing exception's type name and message.
    """
    record: dict[str, Any] = {
        "event": "point-failed" if outcome.failed else "point-complete",
        "experiment": experiment,
        "index": outcome.index,
        "total": outcome.total,
        "label": outcome.point.describe(),
        "cached": outcome.cached,
        "deduped": outcome.deduped,
        "attempts": outcome.attempts,
        "seconds": round(outcome.seconds, 6),
    }
    if outcome.failed:
        cause = outcome.error.__cause__ or outcome.error
        record["error"] = type(cause).__name__
        record["message"] = str(cause)
    return record


def summary_record(experiment: str, report: RunReport) -> dict[str, Any]:
    """The machine-readable end-of-sweep summary line."""
    return {
        "event": "run-summary",
        "experiment": experiment,
        "points": len(report.outcomes),
        "wall_seconds": round(report.wall_seconds, 6),
        "point_seconds": round(report.point_seconds, 6),
        "cache_hits": report.cache_hits,
        "deduped": report.deduped_hits,
        "failed": len(report.errors),
        "pool_respawns": report.pool_respawns,
    }


class JsonLinesProgress:
    """Emit one compact JSON object per completed point.

    The non-interactive twin of :class:`StderrProgress`: same hook
    signature, but machine-readable output for pipes, CI logs, and the
    experiment service's event stream.  Lines are flushed eagerly so a
    tail-reader sees points as they finish.
    """

    def __init__(self, experiment: str, stream: TextIO | None = None):
        self.experiment = experiment
        self.stream = stream if stream is not None else sys.stderr
        self.completed = 0

    def _write(self, record: dict[str, Any]) -> None:
        print(
            json.dumps(record, sort_keys=True, separators=(",", ":")),
            file=self.stream, flush=True,
        )

    def __call__(self, outcome: PointOutcome) -> None:
        self.completed += 1
        self._write(outcome_record(self.experiment, outcome))

    def summarize(self, report: RunReport) -> None:
        self._write(summary_record(self.experiment, report))


def auto_progress(
    experiment: str, stream: TextIO | None = None
) -> StderrProgress | JsonLinesProgress:
    """The right renderer for *stream*: interactive lines on a TTY,
    JSON-lines everywhere else (pipes, redirects, CI).
    """
    target = stream if stream is not None else sys.stderr
    try:
        interactive = target.isatty()
    except (AttributeError, ValueError):
        interactive = False
    if interactive:
        return StderrProgress(experiment, stream=target)
    return JsonLinesProgress(experiment, stream=target)

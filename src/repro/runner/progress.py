"""Progress reporting for long sweeps: one stderr line per point.

The reporter is a plain callable compatible with
:class:`~repro.runner.executor.Runner`'s ``progress`` hook, so tests can
substitute a recording stub and the drivers stay print-free::

    [ 12/60] fig8 scenario=RExclc-LSharedb,rate=500.0   0.84s
    [ 13/60] fig8 scenario=RExclc-LSharedb,rate=600.0   cached
"""

from __future__ import annotations

import sys
import time
from typing import TextIO

from repro.runner.executor import PointOutcome, RunReport


class StderrProgress:
    """Print per-point completion lines (with timing) to *stream*."""

    def __init__(self, experiment: str, stream: TextIO | None = None):
        self.experiment = experiment
        self.stream = stream if stream is not None else sys.stderr
        self.completed = 0
        self._started = time.perf_counter()

    def __call__(self, outcome: PointOutcome) -> None:
        self.completed += 1
        width = len(str(outcome.total))
        if outcome.failed:
            cause = outcome.error.__cause__ or outcome.error
            status = (
                f"FAILED after {outcome.attempts} attempt(s): "
                f"{type(cause).__name__}"
            )
        elif outcome.cached:
            status = "cached"
        else:
            status = f"{outcome.seconds:.2f}s"
            if outcome.attempts > 1:
                status += f" ({outcome.attempts} attempts)"
        print(
            f"[{self.completed:{width}d}/{outcome.total}] "
            f"{self.experiment} {outcome.point.describe()}  {status}",
            file=self.stream,
        )

    def summarize(self, report: RunReport) -> None:
        """Print the end-of-sweep wall/compute/cache summary line."""
        parts = [
            f"{len(report.outcomes)} points",
            f"{report.wall_seconds:.2f}s wall",
            f"{report.point_seconds:.2f}s compute",
        ]
        if report.cache_hits:
            parts.append(f"{report.cache_hits} cached")
        if report.errors:
            parts.append(f"{len(report.errors)} FAILED")
        if report.pool_respawns:
            parts.append(f"{report.pool_respawns} pool respawn(s)")
        print(
            f"{self.experiment}: " + ", ".join(parts),
            file=self.stream,
        )

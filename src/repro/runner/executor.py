"""The parallel, cache-aware grid executor.

:class:`Runner` takes an :class:`~repro.runner.spec.ExperimentSpec` and
produces one value per point, in spec order, regardless of how the work
was scheduled:

1. every point is first looked up in the on-disk result cache;
2. the misses run either in-process (``jobs=1``) or fanned out over a
   :class:`~concurrent.futures.ProcessPoolExecutor` (``jobs>1``);
3. fresh values are written back to the cache and slotted into their
   original grid positions.

Because each point carries its full RNG seed in its params (see
:mod:`repro.runner.spec`), the values are bit-identical whether they
came from the cache, a worker process, or a serial in-process loop —
``--jobs 4`` must and does reproduce ``--jobs 1`` exactly.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Mapping
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any

from repro.errors import PointExecutionError
from repro.runner.cache import ResultCache
from repro.runner.spec import ExperimentSpec, Point, resolve_callable

#: Progress callback signature: called once per completed point.
ProgressFn = Callable[["PointOutcome"], None]


@dataclass(frozen=True)
class PointOutcome:
    """One completed point: its value plus scheduling metadata."""

    index: int
    total: int
    point: Point
    value: Any
    seconds: float
    cached: bool


@dataclass
class RunReport:
    """Everything a driver or the CLI wants to know about one sweep."""

    spec: ExperimentSpec
    outcomes: list[PointOutcome] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def values(self) -> list[Any]:
        """Point values in spec order (what ``collect()`` consumes)."""
        return [outcome.value for outcome in self.outcomes]

    @property
    def cache_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def cache_misses(self) -> int:
        return sum(1 for o in self.outcomes if not o.cached)

    @property
    def point_seconds(self) -> float:
        """Total compute time across points (≥ wall time when parallel)."""
        return sum(o.seconds for o in self.outcomes)


def _timed_point(fn_path: str, params: Mapping[str, Any]) -> tuple[Any, float]:
    """Worker entry: execute one point, returning (value, seconds).

    Top-level so :mod:`concurrent.futures` can ship it to a forked or
    spawned worker by qualified name; everything heavy (machine, kernel,
    session) is constructed *inside* the call from the plain params.
    """
    start = time.perf_counter()
    value = resolve_callable(fn_path)(**dict(params))
    return value, time.perf_counter() - start


class Runner:
    """Execute experiment grids with optional parallelism and caching.

    Parameters
    ----------
    jobs:
        Worker processes; ``1`` (default) runs in-process, ``0`` or
        ``None`` uses every available CPU.
    cache:
        A :class:`ResultCache`, or ``None`` to disable memoization.
    progress:
        Optional callback receiving a :class:`PointOutcome` as each
        point completes (cache hits report immediately).
    """

    def __init__(
        self,
        jobs: int | None = 1,
        cache: ResultCache | None = None,
        progress: ProgressFn | None = None,
    ):
        if jobs is None or jobs <= 0:
            import os

            jobs = os.cpu_count() or 1
        self.jobs = int(jobs)
        self.cache = cache
        self.progress = progress

    # -- public API -----------------------------------------------------

    def run(self, spec: ExperimentSpec) -> RunReport:
        """Execute every point of *spec*; outcomes come back in order."""
        started = time.perf_counter()
        total = len(spec.points)
        slots: list[PointOutcome | None] = [None] * total

        pending: list[int] = []
        for index, point in enumerate(spec.points):
            if self.cache is not None:
                hit, value = self.cache.lookup(point)
                if hit:
                    slots[index] = self._completed(
                        index, total, point, value, 0.0, cached=True
                    )
                    continue
            pending.append(index)

        if pending and self.jobs > 1:
            self._run_pool(spec, pending, slots, total)
        else:
            for index in pending:
                point = spec.points[index]
                try:
                    value, seconds = _timed_point(point.fn, point.params)
                except PointExecutionError:
                    raise
                except Exception as exc:
                    raise PointExecutionError(point.describe(), exc) from exc
                self._store(point, value)
                slots[index] = self._completed(
                    index, total, point, value, seconds, cached=False
                )

        report = RunReport(spec=spec, outcomes=[s for s in slots if s is not None])
        report.wall_seconds = time.perf_counter() - started
        return report

    # -- internals ------------------------------------------------------

    def _run_pool(
        self,
        spec: ExperimentSpec,
        pending: list[int],
        slots: list[PointOutcome | None],
        total: int,
    ) -> None:
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(
                    _timed_point, spec.points[i].fn, spec.points[i].params
                ): i
                for i in pending
            }
            try:
                remaining = set(futures)
                while remaining:
                    done, remaining = wait(
                        remaining, return_when=FIRST_EXCEPTION
                    )
                    for future in done:
                        index = futures[future]
                        point = spec.points[index]
                        try:
                            value, seconds = future.result()
                        except Exception as exc:
                            raise PointExecutionError(
                                point.describe(), exc
                            ) from exc
                        self._store(point, value)
                        slots[index] = self._completed(
                            index, total, point, value, seconds, cached=False
                        )
            except BaseException:
                for future in futures:
                    future.cancel()
                raise

    def _store(self, point: Point, value: Any) -> None:
        if self.cache is not None:
            self.cache.store(point, value)

    def _completed(
        self,
        index: int,
        total: int,
        point: Point,
        value: Any,
        seconds: float,
        cached: bool,
    ) -> PointOutcome:
        outcome = PointOutcome(
            index=index,
            total=total,
            point=point,
            value=value,
            seconds=seconds,
            cached=cached,
        )
        if self.progress is not None:
            self.progress(outcome)
        return outcome


def execute(spec: ExperimentSpec, runner: Runner | None = None) -> list[Any]:
    """Run *spec* and return its point values in grid order.

    The default runner is serial and cache-less — the mode the drivers'
    programmatic ``run()`` API uses so library calls stay hermetic; the
    CLI passes a configured :class:`Runner` instead.
    """
    if runner is None:
        runner = Runner(jobs=1, cache=None)
    return runner.run(spec).values

"""The parallel, cache-aware, failure-hardened grid executor.

:class:`Runner` takes an :class:`~repro.runner.spec.ExperimentSpec` and
produces one value per point, in spec order, regardless of how the work
was scheduled:

1. every point is first looked up in the on-disk result cache;
2. the misses run either in-process (``jobs=1``) or fanned out over a
   :class:`~concurrent.futures.ProcessPoolExecutor` (``jobs>1``), where
   they are dispatched in seed-grouped *chunks* — one future executes
   several points back-to-back in the same worker, amortizing the IPC
   round-trip and letting the worker's process-local calibration memo
   and warm machine pool hit on every point after the chunk's first
   (``chunk_size``, auto-sized from grid size and worker count;
   ``REPRO_CHUNK_SIZE`` overrides);
3. fresh values are written back to the cache and slotted into their
   original grid positions.

Because each point carries its full RNG seed in its params (see
:mod:`repro.runner.spec`), the values are bit-identical whether they
came from the cache, a worker process, or a serial in-process loop —
``--jobs 4`` must and does reproduce ``--jobs 1`` exactly.

A :class:`FailurePolicy` makes long sweeps survivable instead of
all-or-nothing:

* failed points retry up to ``retries`` extra attempts with exponential
  backoff whose jitter is *deterministic* (derived from the policy seed
  and the point, so two runs of the same failing grid sleep identically);
* each attempt can carry a wall-clock ``timeout``, enforced inside the
  executing process via ``SIGALRM`` so a wedged simulation cannot hang
  the sweep;
* a killed worker (``BrokenProcessPool``) no longer poisons the run —
  the pool is respawned and only the in-flight points are re-dispatched,
  each charged one attempt;
* with ``keep_going`` the sweep runs to completion and failed points
  become typed error outcomes in the :class:`RunReport` instead of an
  exception;
* whatever happens, every completed value is flushed to the cache
  before the runner raises, so an interrupted grid resumes where it
  died instead of recomputing survivors.

Deterministic adversity for all of the above comes from
:class:`repro.faults.FaultInjector` via the ``injector`` hook.
"""

from __future__ import annotations

import os
import signal
import threading
import time
import warnings
from collections.abc import Callable, Mapping
from concurrent.futures import CancelledError, ProcessPoolExecutor, wait
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Any

from repro.errors import (
    IncompleteRunError,
    InjectedFaultError,
    PointExecutionError,
    PointTimeoutError,
    WorkerCrashError,
)
from repro.faults.harness import apply_worker_fault
from repro.obs.recorder import runner_now, runner_recorder
from repro.runner.cache import ResultCache
from repro.runner.spec import (
    ExperimentSpec,
    Point,
    chunk_pending,
    resolve_callable,
)
from repro.sim.lanes import (
    LaneState,
    consume_bypass_notes,
    lane_fingerprint,
    lane_scope,
    lane_width,
    lanes_enabled,
    point_bypass_reason,
)
from repro.sim.rng import derive_seed

#: Progress callback signature: called once per completed point.
ProgressFn = Callable[["PointOutcome"], None]


@dataclass(frozen=True)
class FailurePolicy:
    """How the runner responds when a point fails.

    The default policy is the historical behavior: no retries, no
    timeout, fail the sweep on the first error.  ``backoff_seconds``
    grows exponentially per attempt and is jittered *deterministically*
    — the jitter for (point, attempt) comes from
    :func:`~repro.sim.rng.derive_seed`, never from wall-clock entropy,
    so replaying a failing sweep sleeps the exact same schedule.
    """

    retries: int = 0
    timeout: float | None = None
    keep_going: bool = False
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 5.0
    jitter: float = 0.5
    seed: int = 0

    def backoff_seconds(self, key: str, attempt: int) -> float:
        """Sleep before retrying *key* after failed attempt *attempt* (1-based)."""
        base = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** (attempt - 1),
        )
        if self.jitter <= 0.0:
            return base
        unit = derive_seed(self.seed, "backoff", str(key), attempt) / 0x7FFFFFFF
        return base * (1.0 + self.jitter * (2.0 * unit - 1.0))


@dataclass(frozen=True)
class PointOutcome:
    """One finished point: its value (or error) plus scheduling metadata."""

    index: int
    total: int
    point: Point
    value: Any
    seconds: float
    cached: bool
    attempts: int = 1
    error: PointExecutionError | None = None
    #: The value arrived from another client's concurrent execution via
    #: a single-flight cache (reserved elsewhere, awaited here) rather
    #: than from disk or local compute.  Always ``cached`` too.
    deduped: bool = False

    @property
    def failed(self) -> bool:
        return self.error is not None


@dataclass
class RunReport:
    """Everything a driver or the CLI wants to know about one sweep."""

    spec: ExperimentSpec
    outcomes: list[PointOutcome] = field(default_factory=list)
    wall_seconds: float = 0.0
    pool_respawns: int = 0

    @property
    def values(self) -> list[Any]:
        """Point values in spec order (what ``collect()`` consumes).

        Raises :class:`~repro.errors.IncompleteRunError` if any point is
        missing or failed — a shorter, silently misaligned list would
        let ``collect()`` zip values against the wrong parameters.  Use
        :meth:`padded_values` for partial (keep-going) reports.
        """
        by_index = {o.index: o for o in self.outcomes}
        missing = [
            point.describe()
            for index, point in enumerate(self.spec.points)
            if by_index.get(index) is None or by_index[index].failed
        ]
        if missing:
            raise IncompleteRunError(self.spec.experiment, missing)
        return [by_index[i].value for i in range(len(self.spec.points))]

    def padded_values(self, fill: Any = None) -> list[Any]:
        """Values in spec order with *fill* in failed/missing slots."""
        by_index = {o.index: o for o in self.outcomes if not o.failed}
        return [
            by_index[i].value if i in by_index else fill
            for i in range(len(self.spec.points))
        ]

    @property
    def errors(self) -> list[PointOutcome]:
        """The failed outcomes, in spec order."""
        return [o for o in self.outcomes if o.failed]

    @property
    def cache_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def cache_misses(self) -> int:
        return sum(1 for o in self.outcomes if not o.cached)

    @property
    def deduped_hits(self) -> int:
        """Points whose value came from another client's execution."""
        return sum(1 for o in self.outcomes if o.deduped)

    @property
    def point_seconds(self) -> float:
        """Total compute time across points (≥ wall time when parallel)."""
        return sum(o.seconds for o in self.outcomes)


def _async_exc_injector():
    """CPython's cross-thread exception hook, or ``None`` elsewhere."""
    try:
        import ctypes

        return ctypes.pythonapi.PyThreadState_SetAsyncExc, ctypes
    except (ImportError, AttributeError):  # pragma: no cover - non-CPython
        return None


@contextmanager
def _deadline(seconds: float | None):
    """Raise :class:`PointTimeoutError` if the body runs past *seconds*.

    Preferred mechanism is ``SIGALRM``, which only works on the main
    thread of a POSIX process — exactly where pool workers and the
    serial runner execute points.  Anywhere else (Windows, a point
    driven from a helper thread), a portable watchdog takes over: a
    ``threading.Timer`` that injects :class:`PointTimeoutError` into the
    executing thread via CPython's async-exception hook.  The watchdog
    fires at the next bytecode boundary, so it interrupts a wedged
    *simulation* (pure Python) but not a blocking C call — the same
    practical coverage the alarm gives.  If neither mechanism exists
    (a non-CPython embedder), a warning marks the point as effectively
    deadline-less instead of silently dropping the limit.
    """
    if seconds is None or seconds <= 0:
        yield
        return
    if (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    ):
        def _alarm(signum, frame):
            raise PointTimeoutError(
                f"point exceeded its {seconds:g}s wall-clock limit"
            )

        previous = signal.signal(signal.SIGALRM, _alarm)
        signal.setitimer(signal.ITIMER_REAL, float(seconds))
        try:
            yield
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)
        return

    hook = _async_exc_injector()
    if hook is None:  # pragma: no cover - non-CPython
        warnings.warn(
            f"point timeout of {seconds:g}s requested, but neither SIGALRM "
            "(non-main thread) nor the CPython async-exception watchdog is "
            "available; the point runs without a wall-clock limit",
            RuntimeWarning,
            stacklevel=3,
        )
        yield
        return

    set_async_exc, ctypes = hook
    ident = threading.get_ident()

    def _fire():
        set_async_exc(ctypes.c_ulong(ident), ctypes.py_object(PointTimeoutError))

    timer = threading.Timer(float(seconds), _fire)
    timer.daemon = True
    timer.start()
    try:
        yield
    finally:
        timer.cancel()


def _timed_point(
    fn_path: str,
    params: Mapping[str, Any],
    timeout: float | None = None,
    fault: Mapping[str, Any] | None = None,
) -> tuple[Any, float]:
    """Worker entry: execute one point, returning (value, seconds).

    Top-level so :mod:`concurrent.futures` can ship it to a forked or
    spawned worker by qualified name; everything heavy (machine, kernel,
    session) is constructed *inside* the call from the plain params.
    The optional injected *fault* applies under the same deadline as the
    point itself, so a ``slow`` fault trips a configured timeout.
    """
    start = time.perf_counter()
    with _deadline(timeout):
        if fault is not None:
            apply_worker_fault(fault)
        value = resolve_callable(fn_path)(**dict(params))
    return value, time.perf_counter() - start


def _timed_chunk(
    items: list[tuple[int, str, Mapping[str, Any], Mapping[str, Any] | None]],
    timeout: float | None = None,
) -> list[tuple[int, bool, Any, float]]:
    """Worker entry: execute a chunk of points in one process.

    *items* is ``(grid_index, fn_path, params, fault)`` per point.  Each
    point runs under its **own** deadline and its own try/except, so a
    failing or timed-out point never takes the rest of the chunk with it
    — its raw exception travels back in the result tuple for the parent
    to wrap, retry, or record exactly as it would a per-point future.
    (A ``worker_kill`` fault still kills the whole process and therefore
    the whole chunk; the parent charges every point of a lost chunk one
    attempt, matching the lost-future accounting.)

    Returns ``(grid_index, ok, value_or_exception, seconds)`` per point,
    in chunk order.
    """
    out: list[tuple[int, bool, Any, float]] = []
    for index, fn_path, params, fault in items:
        try:
            value, seconds = _timed_point(fn_path, params, timeout, fault)
        except Exception as exc:  # noqa: BLE001 - shipped to the parent
            out.append((index, False, exc, 0.0))
        else:
            out.append((index, True, value, seconds))
    return out


def _timed_lane_batch(
    items: list[tuple[int, str, Mapping[str, Any], Mapping[str, Any] | None]],
    timeout: float | None = None,
) -> tuple[list[tuple[int, bool, Any, float]], dict, list[dict]]:
    """Worker entry: execute one lane-compatible batch of points.

    Same item shape and per-point failure isolation as
    :func:`_timed_chunk`, but the batch runs under
    :func:`repro.sim.lanes.lane_scope`, so every eligible session inside
    is built on the lane backend — and struct-of-arrays
    :class:`~repro.sim.lanes.LaneState` bookkeeping (per-lane clocks,
    event counts, bypass mask) is filled as the lanes retire, giving the
    parent a single batch-level audit record.

    Returns ``(results, lane_summary, bypass_notes)`` where *results*
    matches ``_timed_chunk`` and *bypass_notes* are the lane fall-outs
    recorded inside the batch (sessions that stood down mid-flight).
    """
    consume_bypass_notes()  # a reused pool worker may hold stale notes
    out: list[tuple[int, bool, Any, float]] = []
    state = LaneState(len(items))
    with lane_scope(True):
        for lane, (index, fn_path, params, fault) in enumerate(items):
            try:
                value, seconds = _timed_point(fn_path, params, timeout, fault)
            except Exception as exc:  # noqa: BLE001 - shipped to the parent
                out.append((index, False, exc, 0.0))
                state.drop(lane)
            else:
                out.append((index, True, value, seconds))
                manifest = getattr(value, "manifest", None)
                stats = getattr(manifest, "stats", None) or {}
                state.record(
                    lane,
                    float(getattr(value, "cycles", 0.0) or 0.0),
                    int(stats.get("engine.events", 0)),
                )
    return out, state.summary(), consume_bypass_notes()


def lane_batches(
    points: list[Point], pending: list[int], width: int, injector: Any = None
) -> tuple[list[list[int]], list[tuple[int, str]]]:
    """Split cache-miss indices into lane batches plus bypassed leftovers.

    Points are grouped by :func:`repro.sim.lanes.lane_fingerprint` —
    same point function, same non-vectorizing parameters — and each
    group is cut into batches of at most *width*.  Points that must not
    take the lane path (declared fault parameters, or a harness fault
    planned by *injector* for their first attempt) come back in the
    second list with their bypass reason; they dispatch through the
    ordinary chunk path.  Grouping is deterministic: first-seen
    fingerprint order, pending order within a group.
    """
    groups: dict[str, list[int]] = {}
    bypassed: list[tuple[int, str]] = []
    for index in pending:
        point = points[index]
        reason = point_bypass_reason(point)
        if reason is None and injector is not None:
            if injector.event_for(index, 0) is not None:
                reason = "injected-fault"
        if reason is not None:
            bypassed.append((index, reason))
            continue
        groups.setdefault(lane_fingerprint(point), []).append(index)
    batches = [
        group[start:start + width]
        for group in groups.values()
        for start in range(0, len(group), width)
    ]
    return batches, bypassed


#: Upper bound on auto-sized chunks: big enough to amortize dispatch and
#: calibration, small enough that one straggler chunk cannot idle the
#: rest of the pool at the tail of a grid.
AUTO_CHUNK_CAP = 8


def auto_chunk_size(pending: int, workers: int) -> int:
    """Default chunk size for *pending* points on *workers* processes.

    Targets at least ~4 chunks per worker so the pool load-balances,
    capped at :data:`AUTO_CHUNK_CAP`.  Small grids (fewer points than
    ``4 × workers``) get chunk size 1 — there, per-point dispatch costs
    nothing and finer granularity retires the grid sooner.
    """
    return max(1, min(AUTO_CHUNK_CAP, pending // (workers * 4)))


class Runner:
    """Execute experiment grids with parallelism, caching, and retries.

    Parameters
    ----------
    jobs:
        Worker processes; ``1`` (default) runs in-process, ``0`` or
        ``None`` uses every available CPU.
    cache:
        A :class:`ResultCache`, or ``None`` to disable memoization.
    progress:
        Optional callback receiving a :class:`PointOutcome` as each
        point finishes (cache hits report immediately; failed points
        report their error outcome).
    policy:
        A :class:`FailurePolicy`; the default fails fast with no
        retries, matching the pre-policy behavior.
    injector:
        Optional :class:`repro.faults.FaultInjector` supplying
        deterministic harness faults (tests and ``--inject-faults``).
    chunk_size:
        Points per pool future.  ``None`` (default) auto-sizes via
        :func:`auto_chunk_size` — unless ``REPRO_CHUNK_SIZE`` is set,
        which then supplies the default.  Ignored when ``jobs=1``
        (the serial path has no dispatch to amortize).
    lanes:
        Lane-batch width: cache-miss points are grouped by
        :func:`repro.sim.lanes.lane_fingerprint` into batches of at
        most this many compatible points, each batch executed on the
        lane backend (see :mod:`repro.sim.lanes`).  ``None`` (default)
        takes the width from ``REPRO_LANES`` when that enables lanes;
        ``0`` disables lane dispatch.  ``REPRO_LANES=0`` is the global
        kill switch and wins over an explicit width.
    wait_timeout:
        With a *single-flight* cache (``cache.single_flight`` true, e.g.
        :class:`repro.service.RemoteCache`), how long to wait for a
        point another client reserved before taking it over and
        executing locally.  Dedupe is best-effort: a takeover can only
        recompute the same deterministic value.
    """

    #: Default single-flight wait before a takeover (seconds).
    DEFAULT_WAIT_TIMEOUT = 600.0

    def __init__(
        self,
        jobs: int | None = 1,
        cache: ResultCache | None = None,
        progress: ProgressFn | None = None,
        policy: FailurePolicy | None = None,
        injector: Any = None,
        chunk_size: int | None = None,
        lanes: int | None = None,
        wait_timeout: float | None = None,
    ):
        if jobs is None or jobs <= 0:
            jobs = os.cpu_count() or 1
        self.jobs = int(jobs)
        self.cache = cache
        self.progress = progress
        self.policy = policy if policy is not None else FailurePolicy()
        self.injector = injector
        if chunk_size is None:
            env = os.environ.get("REPRO_CHUNK_SIZE")
            if env:
                chunk_size = int(env)
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.chunk_size = chunk_size
        if lanes is None and lanes_enabled():
            lanes = lane_width()
        if os.environ.get("REPRO_LANES") == "0":
            lanes = 0  # kill switch beats an explicit Runner(lanes=...)
        if lanes is not None and lanes < 0:
            raise ValueError(f"lanes must be >= 0, got {lanes}")
        self.lanes = lanes or 0
        self.wait_timeout = (
            self.DEFAULT_WAIT_TIMEOUT if wait_timeout is None
            else float(wait_timeout)
        )
        # Single-flight caches expose reserve/wait_for/release on top of
        # the plain lookup/store contract; the flag is bound once so the
        # ordinary ResultCache path stays exactly as before.
        self._single_flight = bool(getattr(cache, "single_flight", False))
        # Bound once: None when tracing is disabled, so the scheduling
        # paths carry a single attribute test and no environment reads.
        self._recorder = runner_recorder()

    def _emit(self, name: str, **data) -> None:
        """Record one runner-lifecycle trace event (no-op when untraced)."""
        if self._recorder is not None:
            self._recorder.emit(runner_now(), "runner", name, data)

    # -- public API -----------------------------------------------------

    def run(self, spec: ExperimentSpec) -> RunReport:
        """Execute every point of *spec*; outcomes come back in order.

        With the default policy the first failure aborts the sweep with
        :class:`~repro.errors.PointExecutionError` — but only after
        every already-running point has finished and been flushed to the
        cache, so a re-run resumes instead of recomputing survivors.
        Under ``keep_going`` failures become error outcomes instead.
        """
        started = time.perf_counter()
        total = len(spec.points)
        slots: list[PointOutcome | None] = [None] * total
        report = RunReport(spec=spec)
        self._emit(
            "run-start", experiment=spec.experiment, points=total,
            jobs=self.jobs,
        )

        pending: list[int] = []
        waiting: list[int] = []
        for index, point in enumerate(spec.points):
            if self.cache is not None:
                if self._single_flight:
                    # Reserve instead of looking up: a miss makes this
                    # runner the key's single executor fleet-wide, and
                    # a key someone else is already computing is parked
                    # to be awaited (never recomputed) below.
                    status, value = self.cache.reserve(point)
                    if status == "hit":
                        self._emit("cache-hit", index=index)
                        slots[index] = self._completed(
                            index, total, point, value, 0.0, cached=True
                        )
                        continue
                    if status == "wait":
                        self._emit("cache-wait", index=index)
                        waiting.append(index)
                        continue
                else:
                    hit, value = self.cache.lookup(point)
                    if hit:
                        self._emit("cache-hit", index=index)
                        slots[index] = self._completed(
                            index, total, point, value, 0.0, cached=True
                        )
                        continue
            pending.append(index)

        try:
            if (pending or waiting) and self.jobs > 1:
                self._run_pool(spec, pending, slots, total, report, waiting)
            else:
                self._run_serial(spec, pending, slots, total, waiting)
        finally:
            # Whatever happened, reservations this runner still owns
            # (aborted before executing, crashed mid-grid) are handed
            # back so remote waiters are promoted instead of timing out.
            release_all = getattr(self.cache, "release_all", None)
            if self._single_flight and release_all is not None:
                release_all()

        report.outcomes = [s for s in slots if s is not None]
        report.wall_seconds = time.perf_counter() - started
        self._emit(
            "run-end", experiment=spec.experiment,
            completed=len(report.outcomes),
            respawns=report.pool_respawns,
        )
        return report

    # -- internals ------------------------------------------------------

    def _fault_for(self, index: int, attempt: int):
        """The planned fault event for a 0-based attempt, if any."""
        if self.injector is None:
            return None
        return self.injector.event_for(index, attempt)

    def _run_serial(
        self,
        spec: ExperimentSpec,
        pending: list[int],
        slots: list[PointOutcome | None],
        total: int,
        waiting: list[int] | None = None,
    ) -> None:
        if self.lanes:
            consume_bypass_notes()  # stale notes from an earlier in-process run
        for index in pending:
            self._serial_point(spec, index, slots, total)
        for index in waiting or ():
            point = spec.points[index]
            status, value = self.cache.wait_for(
                point, timeout=self.wait_timeout
            )
            if status == "hit":
                self._emit("cache-dedup", index=index)
                slots[index] = self._completed(
                    index, total, point, value, 0.0,
                    cached=True, deduped=True,
                )
                continue
            # "own": the remote executor failed or released, and this
            # runner was promoted to owner.  "pending": the wait timed
            # out.  Either way the point executes locally — dedupe is
            # an optimization, never a correctness dependency.
            self._emit("dedup-takeover", index=index, status=status)
            self._serial_point(spec, index, slots, total)

    def _serial_point(
        self,
        spec: ExperimentSpec,
        index: int,
        slots: list[PointOutcome | None],
        total: int,
    ) -> None:
        policy = self.policy
        point = spec.points[index]
        static_reason = (
            point_bypass_reason(point) if self.lanes else None
        )
        if static_reason is not None:
            self._emit("lane_bypass", index=index, reason=static_reason)
        for attempt in range(policy.retries + 1):
            event = self._fault_for(index, attempt)
            fault = event.to_json() if event is not None else None
            use_lane = (
                bool(self.lanes)
                and static_reason is None
                and fault is None
            )
            if (
                self.lanes
                and fault is not None
                and static_reason is None
            ):
                self._emit(
                    "lane_bypass", index=index, reason="injected-fault",
                )
            self._emit(
                "dispatch", index=index, attempt=attempt + 1,
                mode="lane" if use_lane else "serial",
            )
            try:
                if fault is not None and fault["kind"] == "worker_kill":
                    # There is no worker to kill in-process; degrade
                    # to a transient failure instead of exiting the
                    # parent interpreter.
                    raise InjectedFaultError(
                        f"injected worker_kill on point {index} "
                        f"(serial mode: degraded to transient)"
                    )
                try:
                    scope = (
                        lane_scope(True) if use_lane
                        else nullcontext()
                    )
                    with scope:
                        value, seconds = _timed_point(
                            point.fn, point.params, policy.timeout, fault
                        )
                finally:
                    if use_lane:
                        for note in consume_bypass_notes():
                            self._emit("lane_bypass", index=index, **note)
            except PointExecutionError:
                raise
            except Exception as exc:
                error = PointExecutionError(point.describe(), exc)
                error.__cause__ = exc
                if attempt < policy.retries:
                    self._emit(
                        "retry", index=index, attempt=attempt + 1,
                        error=type(exc).__name__,
                    )
                    time.sleep(
                        policy.backoff_seconds(point.describe(), attempt + 1)
                    )
                    continue
                self._release(point)
                if policy.keep_going:
                    slots[index] = self._completed(
                        index, total, point, None, 0.0,
                        cached=False, attempts=attempt + 1, error=error,
                    )
                    break
                raise error from exc
            else:
                self._store(point, value, index)
                slots[index] = self._completed(
                    index, total, point, value, seconds,
                    cached=False, attempts=attempt + 1,
                )
                break

    def _run_pool(
        self,
        spec: ExperimentSpec,
        pending: list[int],
        slots: list[PointOutcome | None],
        total: int,
        report: RunReport,
        waiting: list[int] | None = None,
    ) -> None:
        policy = self.policy
        waiting = list(waiting or ())
        workers = min(self.jobs, max(1, len(pending) + len(waiting)))
        size = self.chunk_size
        if size is None:
            size = auto_chunk_size(max(1, len(pending)), workers)
        # attempts started per index; waiting indices are charged only
        # if a dedupe wait falls through to a local takeover.
        attempts = dict.fromkeys([*pending, *waiting], 0)
        futures: dict[Any, list[int]] = {}  # future -> chunk grid indices
        lane_futures: set[Any] = set()  # futures running _timed_lane_batch
        misfired: list[int] = []  # dispatches that hit an already-broken pool
        first_error: PointExecutionError | None = None
        aborting = False
        pool = ProcessPoolExecutor(max_workers=workers)

        def submit(indices: list[int], lane: bool = False) -> None:
            items = []
            for index in indices:
                point = spec.points[index]
                event = self._fault_for(index, attempts[index])
                fault = event.to_json() if event is not None else None
                attempts[index] += 1
                items.append((index, point.fn, dict(point.params), fault))
            self._emit(
                "dispatch", indices=list(indices),
                mode="lane" if lane else "pool",
            )
            entry = _timed_lane_batch if lane else _timed_chunk
            try:
                future = pool.submit(entry, items, policy.timeout)
            except BrokenExecutor:
                # The pool broke between crash detection and this dispatch
                # (a worker died moments ago).  The attempts are charged;
                # the points join the next crash batch for re-dispatch.
                misfired.extend(indices)
                return
            futures[future] = list(indices)
            if lane:
                lane_futures.add(future)

        def retriable(index: int) -> bool:
            return not aborting and attempts[index] <= policy.retries

        def terminal(index: int, error: PointExecutionError) -> None:
            """Record a point whose retry budget is spent."""
            nonlocal first_error, aborting
            self._release(spec.points[index])
            if policy.keep_going:
                slots[index] = self._completed(
                    index, total, spec.points[index], None, 0.0,
                    cached=False, attempts=attempts[index], error=error,
                )
                return
            if first_error is None:
                first_error = error
            if not aborting:
                # Let in-flight points finish (their values get cached,
                # so the re-run resumes), but stop everything queued.
                aborting = True
                for future in futures:
                    future.cancel()

        def point_failed(
            index: int,
            exc: Exception,
            retry: list[tuple[int, PointExecutionError]],
        ) -> None:
            error = PointExecutionError(spec.points[index].describe(), exc)
            error.__cause__ = exc
            if retriable(index):
                retry.append((index, error))
            else:
                terminal(index, error)

        try:
            if self.lanes:
                batches, bypassed = lane_batches(
                    spec.points, pending, self.lanes, self.injector
                )
                for index, reason in bypassed:
                    self._emit("lane_bypass", index=index, reason=reason)
                for batch in batches:
                    submit(batch, lane=True)
                leftovers = [index for index, _ in bypassed]
                for chunk in chunk_pending(spec.points, leftovers, size):
                    submit(chunk)
            else:
                for chunk in chunk_pending(spec.points, pending, size):
                    submit(chunk)
            while futures or misfired or waiting:
                if futures:
                    # With dedupe waits outstanding, poll instead of
                    # blocking so remote publishes are picked up even
                    # while local chunks grind.
                    done, _ = wait(
                        set(futures),
                        timeout=0.25 if waiting else None,
                        return_when=FIRST_COMPLETED,
                    )
                else:
                    done = set()
                crashed: list[int] = misfired[:]
                misfired.clear()
                retry: list[tuple[int, PointExecutionError]] = []
                for future in done:
                    indices = futures.pop(future)
                    lane = future in lane_futures
                    lane_futures.discard(future)
                    try:
                        results = future.result()
                    except CancelledError:
                        continue
                    except BrokenExecutor:
                        crashed.extend(indices)
                    except Exception as exc:
                        # The chunk machinery itself failed (a value or
                        # exception that would not pickle back, say);
                        # every point of the chunk is charged.
                        for index in indices:
                            point_failed(index, exc, retry)
                    else:
                        if lane:
                            results, lane_summary, notes = results
                            self._emit(
                                "lane-batch", indices=list(indices),
                                **lane_summary,
                            )
                            for note in notes:
                                self._emit("lane_bypass", **note)
                        for index, ok, payload, seconds in results:
                            if not ok:
                                point_failed(index, payload, retry)
                                continue
                            point = spec.points[index]
                            self._store(point, payload, index)
                            slots[index] = self._completed(
                                index, total, point, payload, seconds,
                                cached=False, attempts=attempts[index],
                            )
                if crashed:
                    # The pool is broken: every in-flight dispatch is
                    # lost.  Charge each lost point one attempt, respawn
                    # the pool, and re-dispatch only those points.
                    for indices in futures.values():
                        crashed.extend(indices)
                    futures.clear()
                    lane_futures.clear()
                    pool.shutdown(wait=False)
                    report.pool_respawns += 1
                    self._emit("pool-respawn", lost=sorted(crashed))
                    pool = ProcessPoolExecutor(max_workers=workers)
                    for index in sorted(crashed):
                        point = spec.points[index]
                        cause = WorkerCrashError(
                            f"pool worker died while executing point "
                            f"{point.describe()!r}"
                        )
                        error = PointExecutionError(point.describe(), cause)
                        error.__cause__ = cause
                        if retriable(index):
                            retry.append((index, error))
                        else:
                            terminal(index, error)
                # Resubmits happen only after crash handling, so a retry
                # can never be dispatched to a pool that just broke.
                # Retries go out as singleton chunks: the point already
                # failed once, so it gets its own future (and its own
                # deterministic backoff) rather than risking a batch.
                for index, error in sorted(retry):
                    if aborting:
                        terminal(index, error)
                        continue
                    self._emit(
                        "retry", index=index, attempt=attempts[index],
                    )
                    time.sleep(
                        policy.backoff_seconds(
                            spec.points[index].describe(), attempts[index]
                        )
                    )
                    submit([index])
                if aborting:
                    # Abandoned waits hold no reservation; just stop
                    # watching them so the drain loop can exit.
                    waiting.clear()
                elif waiting:
                    # When local work is still in flight, poll each wait
                    # without blocking; once the pool is idle, block up
                    # to wait_timeout so an abandoned reservation cannot
                    # wedge the sweep.
                    block = not (futures or misfired)
                    still: list[int] = []
                    for index in waiting:
                        point = spec.points[index]
                        status, value = self.cache.wait_for(
                            point,
                            timeout=self.wait_timeout if block else 0.0,
                        )
                        if status == "hit":
                            self._emit("cache-dedup", index=index)
                            slots[index] = self._completed(
                                index, total, point, value, 0.0,
                                cached=True, deduped=True,
                            )
                        elif status == "own" or block:
                            # Promoted to owner (remote executor failed)
                            # or the blocking wait timed out: execute
                            # locally as a singleton chunk.
                            self._emit(
                                "dedup-takeover", index=index, status=status,
                            )
                            submit([index])
                        else:
                            still.append(index)
                    waiting[:] = still
        finally:
            pool.shutdown(wait=True)
        if first_error is not None:
            raise first_error

    def _store(self, point: Point, value: Any, index: int) -> None:
        if self.cache is not None:
            self.cache.store(point, value)
            if self.injector is not None:
                self.injector.maybe_tear(self.cache, index, point)

    def _release(self, point: Point) -> None:
        """Give up a single-flight reservation after a terminal failure.

        Releasing promptly lets a remote waiter take the point over
        instead of blocking until this run's final ``release_all``.
        """
        if not self._single_flight:
            return
        release = getattr(self.cache, "release", None)
        if release is not None:
            release(point)

    def _completed(
        self,
        index: int,
        total: int,
        point: Point,
        value: Any,
        seconds: float,
        cached: bool,
        attempts: int = 1,
        error: PointExecutionError | None = None,
        deduped: bool = False,
    ) -> PointOutcome:
        outcome = PointOutcome(
            index=index,
            total=total,
            point=point,
            value=value,
            seconds=seconds,
            cached=cached,
            attempts=attempts,
            error=error,
            deduped=deduped,
        )
        self._emit(
            "point-failed" if error is not None else "point-complete",
            index=index, cached=cached, attempts=attempts,
            seconds=round(seconds, 6), deduped=deduped,
        )
        if self.progress is not None:
            self.progress(outcome)
        return outcome


def execute(spec: ExperimentSpec, runner: Runner | None = None) -> list[Any]:
    """Run *spec* and return its point values in grid order.

    The default runner is serial and cache-less — the mode the drivers'
    programmatic ``run()`` API uses so library calls stay hermetic; the
    CLI passes a configured :class:`Runner` instead.
    """
    if runner is None:
        runner = Runner(jobs=1, cache=None)
    return runner.run(spec).values

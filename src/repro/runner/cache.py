"""Content-addressed on-disk memoization of completed grid points.

Cache key = SHA-256 of the point's canonical JSON ``(fn, params)``
salted with :data:`repro.__version__` — touching only analysis or
rendering code leaves keys unchanged (re-running a figure is
near-instant), while bumping the package version invalidates every
entry wholesale (simulation semantics may have changed).

Values are arbitrary picklable Python objects (floats, result dicts,
:class:`~repro.channel.session.TransmissionResult` instances, numpy
arrays).  Entries are written atomically (temp file + rename) so a
killed run never leaves a torn entry.  Corrupt entries (bad pickle
bytes) are deleted and recomputed; transiently unreadable entries
(``OSError``) are reported as misses but left in place.  Orphaned
``*.tmp`` files from killed runs are swept on construction.

Layout::

    <cache_dir>/<key[:2]>/<key>.pkl
"""

from __future__ import annotations

import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Any

from repro.runner.spec import Point

#: Sentinel distinguishing "cached None" from "not cached".
_MISS = object()

#: Minimum age (seconds) before an orphaned ``*.tmp`` file is swept.
#: Younger temps may belong to a store() in progress in another process.
STALE_TMP_SECONDS = 60.0


def version_salt() -> str:
    """The cache-key salt: the installed repro version."""
    from repro import __version__

    return f"repro-{__version__}"


def default_cache_dir() -> Path:
    """Resolve the cache root: $REPRO_CACHE_DIR, else XDG cache."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "results"


class ResultCache:
    """On-disk point-result store under a single root directory."""

    def __init__(self, root: str | Path | None = None,
                 salt: str | None = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.salt = salt if salt is not None else version_salt()
        self.hits = 0
        self.misses = 0
        self.swept_tmp = self._sweep_stale_tmp()

    def _sweep_stale_tmp(self) -> int:
        """Delete orphaned ``*.tmp`` files left by killed runs.

        A worker killed between ``mkstemp`` and ``os.replace`` leaks its
        temp file forever (the next run writes a fresh one).  Swept on
        construction, with an age grace so a concurrent writer's
        in-flight temp is left alone.  Returns the number removed.
        """
        removed = 0
        if not self.root.is_dir():
            return removed
        cutoff = time.time() - STALE_TMP_SECONDS
        try:
            for tmp in self.root.glob("*/*.tmp"):
                try:
                    if tmp.stat().st_mtime < cutoff:
                        tmp.unlink()
                        removed += 1
                except OSError:
                    continue
        except OSError:
            pass
        return removed

    def key_for(self, point: Point) -> str:
        """The content hash addressing *point* under this cache's salt."""
        return point.key(self.salt)

    def path_for(self, point: Point) -> Path:
        key = self.key_for(point)
        return self.root / key[:2] / f"{key}.pkl"

    def lookup(self, point: Point) -> tuple[bool, Any]:
        """Return ``(hit, value)``; a corrupt entry counts as a miss."""
        path = self.path_for(point)
        value = _MISS
        try:
            with open(path, "rb") as fh:
                value = pickle.load(fh)
        except OSError:
            # Missing entry, or a *transient* read failure (EACCES from
            # a permission hiccup, EIO, NFS timeouts).  The entry may be
            # perfectly good — report a miss but never delete it.
            pass
        except Exception:
            # Torn write or stale class layout.  Unpickling corrupt
            # bytes can raise nearly anything (UnpicklingError,
            # EOFError, ValueError from bad opcodes, AttributeError or
            # ImportError from renamed classes, ...): drop the entry.
            try:
                path.unlink()
            except OSError:
                pass
        if value is _MISS:
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def store(self, point: Point, value: Any) -> None:
        """Persist *value* for *point* atomically; best-effort on errors."""
        path = self.path_for(point)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=path.name, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except (OSError, pickle.PicklingError):
            # A read-only or full cache dir must not fail the experiment.
            pass

    def evict(self, point: Point) -> bool:
        """Remove the entry for *point*; returns whether one existed."""
        try:
            self.path_for(point).unlink()
            return True
        except OSError:
            return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ResultCache(root={str(self.root)!r}, "
                f"hits={self.hits}, misses={self.misses})")

"""Content-addressed on-disk memoization of completed grid points.

Cache key = SHA-256 of the point's canonical JSON ``(fn, params)``
salted with :data:`repro.__version__` — touching only analysis or
rendering code leaves keys unchanged (re-running a figure is
near-instant), while bumping the package version invalidates every
entry wholesale (simulation semantics may have changed).

Values are arbitrary picklable Python objects (floats, result dicts,
:class:`~repro.channel.session.TransmissionResult` instances, numpy
arrays).  Entries are written atomically (temp file + rename) so a
killed run never leaves a torn entry.  Corrupt entries (bad pickle
bytes) are deleted and recomputed; transiently unreadable entries
(``OSError``) are reported as misses but left in place.  Orphaned
``*.tmp`` files from killed runs are swept on construction.

Entry format (schema v2): a 4-byte magic ``RPC2`` + 1 flags byte +
payload.  The payload is the value's pickle, zlib-compressed when it
exceeds :data:`COMPRESS_THRESHOLD` (flag bit 0).  Lookup decodes
transparently, including legacy schema-v1 entries (bare pickle bytes —
pickles never start with ``RPC2``).

Layout::

    <cache_dir>/<salt-dir>/<key[:2]>/<key>.pkl

where ``<salt-dir>`` names the version salt the entries were keyed
under.  Pre-v2 caches stored entries directly under
``<cache_dir>/<key[:2]>/``; grouping by salt makes stale generations
enumerable, which is what :meth:`ResultCache.stats` and
:meth:`ResultCache.gc` (the ``repro cache`` CLI) operate on.
"""

from __future__ import annotations

import os
import pickle
import re
import tempfile
import time
import zlib
from pathlib import Path
from typing import Any

from repro.runner.spec import Point

#: Sentinel distinguishing "cached None" from "not cached".
_MISS = object()

#: Minimum age (seconds) before an orphaned ``*.tmp`` file is swept.
#: Younger temps may belong to a store() in progress in another process.
STALE_TMP_SECONDS = 60.0

#: Magic prefix of schema-v2 entries.  Pickle streams begin with
#: ``b"\x80"`` (any protocol >= 2), so the two formats cannot collide.
ENTRY_MAGIC = b"RPC2"

#: Flags-byte bit: the payload is zlib-compressed.
FLAG_ZLIB = 0x01

#: Pickles at or above this size are stored compressed.  Latency traces
#: compress ~3-5x; tiny float entries are left alone (zlib overhead
#: would dominate).
COMPRESS_THRESHOLD = 4096

#: Top-level directories of the pre-salt-dir layout: two hex chars.
_LEGACY_SHARD = re.compile(r"^[0-9a-f]{2}$")


def _salt_dirname(salt: str) -> str:
    """A filesystem-safe directory name for *salt*.

    Must never look like a legacy two-hex-char shard directory; real
    salts (``repro-<version>``) never do, and the fallback keeps a
    pathological salt distinguishable too.
    """
    name = re.sub(r"[^A-Za-z0-9._+-]", "_", salt) or "_"
    if _LEGACY_SHARD.match(name):
        name = f"salt-{name}"
    return name


def encode_entry(value: Any) -> bytes:
    """Serialize *value* into the schema-v2 on-disk entry format."""
    payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    flags = 0
    if len(payload) >= COMPRESS_THRESHOLD:
        compressed = zlib.compress(payload, level=6)
        if len(compressed) < len(payload):
            payload = compressed
            flags |= FLAG_ZLIB
    return ENTRY_MAGIC + bytes([flags]) + payload


def decode_entry(blob: bytes) -> Any:
    """Inverse of :func:`encode_entry`; legacy bare pickles also decode."""
    if not blob.startswith(ENTRY_MAGIC):
        return pickle.loads(blob)  # schema v1: bare pickle bytes
    flags = blob[len(ENTRY_MAGIC)]
    payload = blob[len(ENTRY_MAGIC) + 1:]
    if flags & FLAG_ZLIB:
        payload = zlib.decompress(payload)
    return pickle.loads(payload)


def version_salt() -> str:
    """The cache-key salt: the installed repro version."""
    from repro import __version__

    return f"repro-{__version__}"


def default_cache_dir() -> Path:
    """Resolve the cache root: $REPRO_CACHE_DIR, else XDG cache."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "results"


class ResultCache:
    """On-disk point-result store under a single root directory."""

    def __init__(self, root: str | Path | None = None,
                 salt: str | None = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.salt = salt if salt is not None else version_salt()
        self.hits = 0
        self.misses = 0
        self.swept_tmp = self._sweep_stale_tmp()

    def _sweep_stale_tmp(self) -> int:
        """Delete orphaned ``*.tmp`` files left by killed runs.

        A worker killed between ``mkstemp`` and ``os.replace`` leaks its
        temp file forever (the next run writes a fresh one).  Swept on
        construction, with an age grace so a concurrent writer's
        in-flight temp is left alone.  Returns the number removed.
        """
        removed = 0
        if not self.root.is_dir():
            return removed
        cutoff = time.time() - STALE_TMP_SECONDS
        try:
            # rglob, not glob: temps live at either layout depth
            # (<root>/<shard>/ legacy, <root>/<salt>/<shard>/ current).
            for tmp in self.root.rglob("*.tmp"):
                try:
                    # The age guard protects a concurrent store() whose
                    # temp is about to be renamed into place: a fresh
                    # temp is never touched.  A temp that disappears
                    # between the listing and the stat/unlink (the
                    # writer's os.replace won the race) is simply not
                    # ours to sweep.
                    if tmp.stat().st_mtime >= cutoff:
                        continue
                    tmp.unlink()
                    removed += 1
                except FileNotFoundError:
                    continue
                except OSError:
                    continue
        except OSError:
            pass
        return removed

    def key_for(self, point: Point) -> str:
        """The content hash addressing *point* under this cache's salt."""
        return point.key(self.salt)

    def path_for_key(self, key: str) -> Path:
        """On-disk entry path for a raw content *key* (current salt)."""
        return self.root / _salt_dirname(self.salt) / key[:2] / f"{key}.pkl"

    def path_for(self, point: Point) -> Path:
        return self.path_for_key(self.key_for(point))

    # -- raw key-addressed blob access (the cache-server transport) -----

    def lookup_blob(self, key: str) -> bytes | None:
        """Raw entry bytes for *key*, or ``None`` on miss.

        The cache *server* (:mod:`repro.service`) moves entries as
        opaque framed blobs — same keys, same on-disk encoding — so a
        blob fetched here can be shipped over a socket and decoded by
        any client with :func:`decode_entry`.  Corrupt entries cannot be
        detected without decoding, so unlike :meth:`lookup` this never
        deletes; transiently unreadable entries are misses.
        """
        try:
            with open(self.path_for_key(key), "rb") as fh:
                return fh.read()
        except OSError:
            return None

    def store_blob(self, key: str, blob: bytes) -> None:
        """Persist raw entry bytes for *key* atomically; best-effort."""
        path = self.path_for_key(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=path.name, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(blob)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            # A read-only or full cache dir must not fail the caller.
            pass

    def lookup(self, point: Point) -> tuple[bool, Any]:
        """Return ``(hit, value)``; a corrupt entry counts as a miss."""
        path = self.path_for(point)
        value = _MISS
        try:
            with open(path, "rb") as fh:
                value = decode_entry(fh.read())
        except OSError:
            # Missing entry, or a *transient* read failure (EACCES from
            # a permission hiccup, EIO, NFS timeouts).  The entry may be
            # perfectly good — report a miss but never delete it.
            pass
        except Exception:
            # Torn write or stale class layout.  Unpickling corrupt
            # bytes can raise nearly anything (UnpicklingError,
            # EOFError, ValueError from bad opcodes, AttributeError or
            # ImportError from renamed classes, ...): drop the entry.
            try:
                path.unlink()
            except OSError:
                pass
        if value is _MISS:
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def store(self, point: Point, value: Any) -> None:
        """Persist *value* for *point* atomically; best-effort on errors."""
        try:
            blob = encode_entry(value)
        except pickle.PicklingError:
            return
        self.store_blob(self.key_for(point), blob)

    def evict(self, point: Point) -> bool:
        """Remove the entry for *point*; returns whether one existed."""
        try:
            self.path_for(point).unlink()
            return True
        except OSError:
            return False

    # -- maintenance (the ``repro cache`` CLI) --------------------------

    def _generations(self) -> dict[str, list[Path]]:
        """Entry files grouped by generation directory name.

        Keys are salt-dir names, plus ``"legacy"`` for entries stored by
        the pre-salt-dir layout directly under two-hex shard dirs.
        """
        generations: dict[str, list[Path]] = {}
        if not self.root.is_dir():
            return generations
        try:
            children = sorted(self.root.iterdir())
        except OSError:
            return generations
        for child in children:
            if not child.is_dir():
                continue
            name = "legacy" if _LEGACY_SHARD.match(child.name) else child.name
            files = [p for p in child.rglob("*.pkl") if p.is_file()]
            generations.setdefault(name, []).extend(files)
        return generations

    def stats(self) -> dict:
        """Entry counts, byte totals, and schema mix per generation.

        The ``current`` generation is the one this cache reads and
        writes (its salt's directory); every other generation — other
        salts, the legacy flat layout — is dead weight :meth:`gc` can
        reclaim.  Schema counts come from each entry's leading bytes
        (``v2`` framed, ``v1`` bare pickle).
        """
        current = _salt_dirname(self.salt)
        out = {
            "root": str(self.root),
            "salt": self.salt,
            "entries": 0,
            "bytes": 0,
            "generations": {},
        }
        for name, files in self._generations().items():
            schemas: dict[str, int] = {}
            total = 0
            for path in files:
                try:
                    size = path.stat().st_size
                    with open(path, "rb") as fh:
                        head = fh.read(len(ENTRY_MAGIC))
                except OSError:
                    continue
                total += size
                schema = "v2" if head == ENTRY_MAGIC else "v1"
                schemas[schema] = schemas.get(schema, 0) + 1
            info = {
                "entries": sum(schemas.values()),
                "bytes": total,
                "schemas": schemas,
                "current": name == current,
            }
            out["generations"][name] = info
            out["entries"] += info["entries"]
            out["bytes"] += info["bytes"]
        return out

    def gc(self, max_age_seconds: float | None = None) -> tuple[int, int]:
        """Prune every stale generation; returns (entries, bytes) freed.

        Removes entries keyed under other version salts and the legacy
        flat layout — both unreachable by this cache's lookups — along
        with their emptied directories.  The current generation is never
        touched by default; with ``max_age_seconds``, entries of *any*
        generation (the current one included) whose mtime is older than
        the cutoff are reaped too — the knob that keeps long-lived
        caches (checkpoint segments especially, which are superseded but
        never overwritten once a run completes) from growing without
        bound.
        """
        current = _salt_dirname(self.salt)
        cutoff = None
        if max_age_seconds is not None:
            if max_age_seconds < 0:
                raise ValueError(
                    f"max_age_seconds must be >= 0, got {max_age_seconds}"
                )
            cutoff = time.time() - float(max_age_seconds)
        removed = 0
        freed = 0
        for name, files in self._generations().items():
            for path in files:
                # One stat decides both the age check and the freed-byte
                # accounting; a second stat-then-unlink window would let
                # a concurrent store() rename a *fresh* blob into place
                # after an age check made against the old bytes.
                try:
                    st = path.stat()
                except OSError:
                    continue
                if name == current:
                    if cutoff is None:
                        continue
                    if st.st_mtime >= cutoff:
                        continue
                    # Guard against the rename race: re-check the mtime
                    # immediately before the unlink.  A writer that
                    # refreshed the entry between the two stats makes it
                    # current again, so it must survive this sweep.
                    try:
                        if path.stat().st_mtime_ns != st.st_mtime_ns:
                            continue
                    except FileNotFoundError:
                        continue  # already reaped by a concurrent gc
                    except OSError:
                        continue
                try:
                    path.unlink()
                except FileNotFoundError:
                    continue  # vanished mid-sweep: nothing was freed
                except OSError:
                    continue
                removed += 1
                freed += st.st_size
        # Sweep now-empty generation directories (bottom-up).
        try:
            candidates = sorted(
                (p for p in self.root.rglob("*") if p.is_dir()),
                key=lambda p: len(p.parts),
                reverse=True,
            )
            for directory in candidates:
                if directory.name == current and directory.parent == self.root:
                    continue
                try:
                    directory.rmdir()  # fails unless empty
                except OSError:
                    pass
        except OSError:
            pass
        return removed, freed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ResultCache(root={str(self.root)!r}, "
                f"hits={self.hits}, misses={self.misses})")

"""``python -m repro`` dispatches to :mod:`repro.cli`."""

from repro.cli import main

raise SystemExit(main())

"""Page-table entries and virtual-address arithmetic."""

from __future__ import annotations

from dataclasses import dataclass

from repro.mem.physical import PAGE_SIZE


@dataclass
class PageTableEntry:
    """One virtual-page mapping.

    Attributes
    ----------
    pfn:
        Physical frame number backing the page.
    writable:
        Whether the *mapping* permits writes.  A merged (COW) page keeps
        ``writable=True`` at the process level but ``cow=True`` forces a
        fault-and-copy on the first write (the KSM unmerge of Section IV).
    cow:
        Copy-on-write: the frame may be shared with other processes.
    mergeable:
        The process has madvise()d this page as a KSM merge candidate.
    merged:
        KSM currently has this page merged into a shared frame.
    """

    pfn: int
    writable: bool = True
    cow: bool = False
    mergeable: bool = False
    merged: bool = False


def vpn_of(vaddr: int) -> int:
    """Virtual page number containing *vaddr*."""
    return vaddr // PAGE_SIZE


def page_offset(vaddr: int) -> int:
    """Offset of *vaddr* within its page."""
    return vaddr % PAGE_SIZE

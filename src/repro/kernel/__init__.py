"""Simulated OS kernel: processes, paging, KSM, scheduling, workloads."""

from repro.kernel.ksm import KsmDaemon, KsmStats
from repro.kernel.paging import PageTableEntry, page_offset, vpn_of
from repro.kernel.process import MMAP_BASE, Process
from repro.kernel.scheduler import Scheduler
from repro.kernel.syscalls import COW_FAULT_CYCLES, Kernel
from repro.kernel.workloads import (
    KERNEL_BUILD_PAGES,
    kernel_build_program,
    pointer_chase_program,
    spawn_kernel_build,
    streaming_program,
)

__all__ = [
    "COW_FAULT_CYCLES",
    "KERNEL_BUILD_PAGES",
    "Kernel",
    "KsmDaemon",
    "KsmStats",
    "MMAP_BASE",
    "PageTableEntry",
    "Process",
    "Scheduler",
    "kernel_build_program",
    "page_offset",
    "pointer_chase_program",
    "spawn_kernel_build",
    "streaming_program",
    "vpn_of",
]

"""CPU scheduler: core pinning, time-sharing and preemption noise.

Threads are pinned to cores (the paper's ``sched_setaffinity``).  When a
core is oversubscribed the scheduler applies a fair-share slowdown (each
of *k* runnable threads progresses at 1/k rate) plus stochastic
context-switch penalties; this is the approximation that lets the
kernel-build noise experiments oversubscribe 12 cores with 13+ threads
as the paper does, without a cycle-accurate context-switch model.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


class Scheduler:
    """Tracks thread-to-core assignments and computes time-sharing costs.

    Parameters
    ----------
    n_cores:
        Number of cores in the machine.
    context_switch_cost:
        Cycles charged when a context switch hits an op.
    preempt_probability:
        Chance per op that a thread on a *shared* core pays a context
        switch (scaled by how oversubscribed the core is).
    """

    def __init__(
        self,
        n_cores: int,
        context_switch_cost: float = 1_500.0,
        preempt_probability: float = 0.002,
    ):
        if n_cores <= 0:
            raise ConfigError("n_cores must be positive")
        self.n_cores = n_cores
        self.context_switch_cost = context_switch_cost
        self.preempt_probability = preempt_probability
        self._assignments: dict[int, set[int]] = {c: set() for c in range(n_cores)}
        self._thread_core: dict[int, int] = {}

    def assign(self, tid: int, core_id: int) -> None:
        """Pin thread *tid* to *core_id* (moving it if already pinned)."""
        if core_id < 0 or core_id >= self.n_cores:
            raise ConfigError(f"core {core_id} out of range")
        self.release(tid)
        self._assignments[core_id].add(tid)
        self._thread_core[tid] = core_id

    def release(self, tid: int) -> None:
        """Remove *tid* from its core (no-op if unassigned)."""
        core = self._thread_core.pop(tid, None)
        if core is not None:
            self._assignments[core].discard(tid)

    def core_of(self, tid: int) -> int | None:
        """The core *tid* is pinned to, or None."""
        return self._thread_core.get(tid)

    def load(self, core_id: int) -> int:
        """Number of threads currently pinned to *core_id*."""
        return len(self._assignments[core_id])

    def least_loaded_core(self, socket_cores: list[int]) -> int:
        """Pick the least-loaded core among *socket_cores*."""
        return min(socket_cores, key=lambda c: (self.load(c), c))

    def timeshare(
        self, tid: int, rng: np.random.Generator
    ) -> tuple[float, float]:
        """Return (slowdown_factor, extra_penalty_cycles) for one op."""
        core = self._thread_core.get(tid)
        if core is None:
            return 1.0, 0.0
        # Inlined self.load(core); called once per executed op.
        k = len(self._assignments[core])
        if k <= 1:
            return 1.0, 0.0
        penalty = 0.0
        if rng.random() < self.preempt_probability * (k - 1):
            penalty = self.context_switch_cost * rng.uniform(0.5, 2.0)
        return float(k), penalty

"""Simulated processes: address spaces over the physical frame pool."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import InvalidAddressError, PageFaultError
from repro.kernel.paging import PageTableEntry, vpn_of
from repro.mem.physical import PAGE_SIZE, PhysicalMemory

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    pass

#: Base virtual address of the mmap region in every process.
MMAP_BASE = 0x1000_0000


class Process:
    """One process: a pid, a start time and a private page table.

    Processes are created through :meth:`repro.kernel.syscalls.Kernel.
    create_process`; the start time matters because KSM scans address
    spaces in process start order (Section IV).
    """

    def __init__(self, pid: int, name: str, phys: PhysicalMemory,
                 start_time: float = 0.0):
        self.pid = pid
        self.name = name
        self.start_time = start_time
        self._phys = phys
        self.page_table: dict[int, PageTableEntry] = {}
        self._mmap_cursor = MMAP_BASE

    def mmap(self, n_pages: int, writable: bool = True) -> int:
        """Allocate *n_pages* anonymous zeroed pages; returns the base VA."""
        if n_pages <= 0:
            raise InvalidAddressError("n_pages must be positive")
        base = self._mmap_cursor
        for i in range(n_pages):
            frame = self._phys.alloc()
            self.page_table[vpn_of(base) + i] = PageTableEntry(
                pfn=frame.pfn, writable=writable
            )
        self._mmap_cursor += n_pages * PAGE_SIZE
        return base

    def map_frame(self, pfn: int, writable: bool = False) -> int:
        """Map an existing frame (shared library model); returns the VA.

        The frame's refcount is incremented; the mapping defaults to
        read-only, matching explicitly shared read-only pages.
        """
        self._phys.get_ref(pfn)
        base = self._mmap_cursor
        self.page_table[vpn_of(base)] = PageTableEntry(
            pfn=pfn, writable=writable, cow=True
        )
        self._mmap_cursor += PAGE_SIZE
        return base

    def pte(self, vaddr: int) -> PageTableEntry:
        """The page-table entry mapping *vaddr* (PageFaultError if none)."""
        entry = self.page_table.get(vpn_of(vaddr))
        if entry is None:
            raise PageFaultError(vaddr, self.pid)
        return entry

    def translate(self, vaddr: int) -> int:
        """Virtual-to-physical translation for reads.

        Inlines :meth:`pte`/``vpn_of``/``page_offset``: translation runs
        once per simulated load/store/flush and the three helper calls
        were measurable in the event-loop profile.
        """
        entry = self.page_table.get(vaddr // PAGE_SIZE)
        if entry is None:
            raise PageFaultError(vaddr, self.pid)
        return entry.pfn * PAGE_SIZE + vaddr % PAGE_SIZE

    def write_bytes(self, vaddr: int, data: bytes) -> None:
        """Setup helper: write page contents directly (no COW handling).

        Used to populate pages before transmission starts; goes through
        the physical memory so KSM sees the real contents.
        """
        self._phys.write(self.translate(vaddr), data)

    def read_bytes(self, vaddr: int, length: int) -> bytes:
        """Setup helper: read page contents directly."""
        return self._phys.read(self.translate(vaddr), length)

    def mapped_vpns(self) -> list[int]:
        """All mapped virtual page numbers, ascending."""
        return sorted(self.page_table)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Process(pid={self.pid}, name={self.name!r}, pages={len(self.page_table)})"

"""Background noise workloads (Section VIII-C).

The paper stress-tests the channel against *kernel-build* (kcbench), a
highly memory-intensive multi-threaded compile workload.  The programs
here reproduce its two disturbance mechanisms:

* LLC pollution — streaming over a working set larger than the LLC
  evicts the covert line, so the spy occasionally reads the DRAM band;
* interconnect contention — sustained ring/QPI/memory-controller traffic
  inflates and jitters everyone's latencies.
"""

from __future__ import annotations

from collections.abc import Callable, Generator

import numpy as np

from repro.checkpoint.spec import ProgramSpec, RngRef
from repro.kernel.process import Process
from repro.kernel.syscalls import Kernel
from repro.mem.cacheline import LINE_SIZE
from repro.mem.physical import PAGE_SIZE
from repro.sim.thread import Cpu, SimThread

#: Pages in each kernel-build worker's private working set; sized ~3x a
#: socket's scaled-down LLC so steady-state traffic keeps evicting.
KERNEL_BUILD_PAGES = 1536

#: Accesses issued per batched burst event.
BURST_LINES = 64


def kernel_build_program(
    region_base: int,
    region_pages: int,
    rng: np.random.Generator,
    write_ratio: float = 0.3,
    think_time: tuple[float, float] = (500.0, 2_000.0),
    mlp: float = 4.0,
    cursor: tuple | None = None,
) -> Callable[[Cpu], Generator]:
    """A compile-like worker: bursts of strided accesses + think time.

    ``mlp`` models the memory-level parallelism of an out-of-order core
    streaming a compile working set.  Runs forever; spawn as a daemon.

    Both per-iteration RNG draws happen together at the top of the loop
    (same stream order as drawing them at their use sites) so the
    checkpoint ``cursor`` can carry them: a re-driven program consumes
    the parked iteration's draws from the cursor instead of re-drawing,
    and the restored RNG stream state picks up at the next iteration.
    """
    region_bytes = region_pages * PAGE_SIZE
    max_start = region_bytes - BURST_LINES * LINE_SIZE

    def program(cpu: Cpu) -> Generator:
        mark = cpu.mark
        resume = cursor
        while True:
            if resume is not None:
                start, think = resume
                resume = None
            else:
                start = int(rng.integers(0, max_start)) & ~(LINE_SIZE - 1)
                think = float(rng.uniform(*think_time))
            mark((start, think))
            yield from cpu.burst(
                region_base + start,
                count=BURST_LINES,
                stride=LINE_SIZE,
                write_ratio=write_ratio,
                mlp=mlp,
            )
            yield from cpu.delay(think)

    return program


def spawn_kernel_build(
    kernel: Kernel,
    n_threads: int,
    avoid_cores: set[int] | None = None,
    name_prefix: str = "kbuild",
) -> list[SimThread]:
    """Spawn *n_threads* kernel-build workers, one process, spread cores.

    The trojan and spy are pinned (``sched_setaffinity``); a fair OS
    scheduler therefore balances the unpinned kernel-build threads over
    the remaining cores, stacking them up on each other — never on the
    already-busy pinned cores — once every free core is taken.  This is
    the 8-thread regime of Figure 9 (13 runnable threads, 12 cores).
    """
    if n_threads <= 0:
        return []
    avoid = avoid_cores or set()
    process = kernel.create_process(f"{name_prefix}-proc")
    threads = []
    cfg = kernel.machine.config
    free = [c for c in range(cfg.n_cores) if c not in avoid]
    if not free:
        free = list(range(cfg.n_cores))
    # Interleave sockets the way a load-balancing scheduler does, so the
    # noise pressure lands evenly on both coherence domains.
    by_socket: dict[int, list[int]] = {}
    for c in free:
        by_socket.setdefault(c // cfg.cores_per_socket, []).append(c)
    preferred: list[int] = []
    pools = list(by_socket.values())
    for rank in range(max(len(p) for p in pools)):
        for pool in pools:
            if rank < len(pool):
                preferred.append(pool[rank])
    for i in range(n_threads):
        core = min(preferred, key=lambda c: (kernel.scheduler.load(c),
                                             preferred.index(c)))
        region = process.mmap(KERNEL_BUILD_PAGES)
        stream = f"workload.{name_prefix}.{i}"
        rng = kernel.rng.get(stream)
        program = kernel_build_program(region, KERNEL_BUILD_PAGES, rng)
        spec = ProgramSpec(
            "repro.kernel.workloads:kernel_build_program",
            (region, KERNEL_BUILD_PAGES, RngRef(stream)),
        )
        threads.append(
            kernel.spawn(
                process, f"{name_prefix}-{i}", program, core, daemon=True,
                spec=spec,
            )
        )
    return threads


def streaming_program(
    region_base: int,
    region_pages: int,
    stride: int = LINE_SIZE,
) -> Callable[[Cpu], Generator]:
    """A pure sequential reader (memory-bandwidth hog, no writes)."""
    region_bytes = region_pages * PAGE_SIZE

    def program(cpu: Cpu) -> Generator:
        addr = 0
        while True:
            yield from cpu.burst(
                region_base + addr, count=BURST_LINES, stride=stride
            )
            addr = (addr + BURST_LINES * stride) % (region_bytes - BURST_LINES * stride)

    return program


def pointer_chase_program(
    process: Process,
    region_base: int,
    region_pages: int,
    rng: np.random.Generator,
) -> Callable[[Cpu], Generator]:
    """A latency-bound random walker (one dependent load at a time)."""
    n_lines = region_pages * PAGE_SIZE // LINE_SIZE

    def program(cpu: Cpu) -> Generator:
        while True:
            line = int(rng.integers(0, n_lines))
            yield from cpu.load(region_base + line * LINE_SIZE)

    return program

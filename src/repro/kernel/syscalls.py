"""The Kernel facade: processes, threads, address translation, faults.

This is the layer thread programs run on.  It owns the physical frame
pool, the KSM daemon and the scheduler, and supplies the *executor* that
turns the ops a thread yields (virtual addresses) into machine accesses
(physical addresses), charging page-fault and COW-unmerge costs on the
way — including the KSM unmerge-on-write that would destroy the covert
channel if the trojan ever wrote to the shared page.
"""

from __future__ import annotations

from collections.abc import Callable, Generator
from typing import Any

from repro.checkpoint.spec import ProgramSpec
from repro.errors import OutOfMemoryError, ProtectionFaultError
from repro.kernel.ksm import KsmDaemon
from repro.kernel.paging import PageTableEntry, vpn_of
from repro.kernel.process import Process
from repro.kernel.scheduler import Scheduler
from repro.mem.cacheline import LINE_SIZE
from repro.mem.hierarchy import Machine
from repro.mem.physical import PAGE_SIZE, PhysicalMemory, page_pattern
from repro.sim.engine import Simulator
from repro.sim.events import (
    Burst,
    Delay,
    Fence,
    Flush,
    Load,
    Op,
    OpResult,
    Rdtsc,
    Store,
)
from repro.sim.rng import RngStreams
from repro.sim.thread import Cpu, SimThread

#: Cycles charged for a COW-break page fault (allocate + copy + TLB work).
COW_FAULT_CYCLES = 2_400.0


class Kernel:
    """The simulated OS: the glue between thread programs and hardware.

    Parameters
    ----------
    machine:
        The coherent machine the kernel manages.
    simulator:
        The discrete-event engine threads are spawned into.
    rng:
        Deterministic RNG registry (shared with the machine, normally).
    n_frames:
        Size of the physical frame pool.
    """

    def __init__(
        self,
        machine: Machine,
        simulator: Simulator,
        rng: RngStreams | None = None,
        n_frames: int = 16_384,
    ):
        self.machine = machine
        self.sim = simulator
        self.rng = rng if rng is not None else machine.rng
        self.phys = PhysicalMemory(n_frames=n_frames)
        self.ksm = KsmDaemon(self.phys)
        self.scheduler = Scheduler(machine.config.n_cores)
        self.stats = machine.stats
        self._sched_rng = self.rng.get("kernel.scheduler")
        self._burst_rng = self.rng.get("kernel.burst")
        self._next_pid = 1
        self.processes: list[Process] = []
        # Bound hot-path callables/constants for _execute (which runs
        # once per engine event).  machine.load/.flush are deliberately
        # NOT bound: the detection subsystem interposes on them by
        # assigning instance attributes (EventMonitor.attach), so the
        # executor must resolve them per call.
        self._timeshare = self.scheduler.timeshare
        self._fence_cost = machine.config.latency.fence
        # Scheduler internals for the timeshare fast path (thread alone
        # on its core: factor 1, no penalty, no RNG draw — the common
        # case).  Both dicts are mutated in place by assign/release, so
        # holding them here stays coherent with the scheduler.
        self._sched_thread_core = self.scheduler._thread_core
        self._sched_assignments = self.scheduler._assignments

    # ------------------------------------------------------------------
    # process / thread management
    # ------------------------------------------------------------------

    def create_process(self, name: str, start_time: float | None = None) -> Process:
        """Create a process (KSM-registered) and return it."""
        process = Process(
            pid=self._next_pid,
            name=name,
            phys=self.phys,
            start_time=(
                self.sim.global_clock if start_time is None else start_time
            ),
        )
        self._next_pid += 1
        self.processes.append(process)
        self.ksm.register_process(process)
        return process

    def spawn(
        self,
        process: Process,
        name: str,
        program: Callable[[Cpu], Generator],
        core_id: int,
        daemon: bool = False,
        start_time: float | None = None,
        spec: Any = None,
    ) -> SimThread:
        """Spawn a thread of *process* pinned to *core_id*.

        ``spec`` (a :class:`repro.checkpoint.ProgramSpec`) makes the
        thread checkpointable; it is passed through to the engine.
        """
        thread = self.sim.spawn(
            name=name,
            program=program,
            core_id=core_id,
            executor=self._execute,
            start_time=start_time,
            daemon=daemon,
            process=process,
            spec=spec,
        )
        self.scheduler.assign(thread.tid, core_id)
        thread.on_exit = lambda t: self.scheduler.release(t.tid)
        return thread

    def spawn_kernel_thread(
        self,
        name: str,
        program: Callable[[Cpu], Generator],
        core_id: int = 0,
        daemon: bool = True,
        spec: Any = None,
    ) -> SimThread:
        """Spawn a kernel-context thread (e.g. the KSM daemon).

        Kernel threads are not pinned in the scheduler, so they never
        contribute to core oversubscription.
        """
        return self.sim.spawn(
            name=name,
            program=program,
            core_id=core_id,
            executor=self._execute,
            daemon=daemon,
            process=None,
            spec=spec,
        )

    def start_ksm_daemon(self) -> SimThread:
        """Run the KSM scanner as a periodic simulated kernel thread."""
        return self.spawn_kernel_thread(
            "ksmd",
            self.ksm.run,
            core_id=0,
            spec=ProgramSpec("repro.kernel.ksm:ksm_program", (self.ksm,)),
        )

    # ------------------------------------------------------------------
    # shared-memory setup (Section IV)
    # ------------------------------------------------------------------

    def map_shared_readonly(
        self, processes: list[Process], n_pages: int = 1
    ) -> list[int]:
        """Explicit sharing: map the same frames read-only into each process.

        Models the shared-library-code setup of prior work; returns one
        base VA per process.
        """
        frames = [self.phys.alloc() for _ in range(n_pages)]
        bases = []
        for process in processes:
            base = None
            for frame in frames:
                va = process.map_frame(frame.pfn, writable=False)
                if base is None:
                    base = va
            bases.append(base)
        # map_frame took a ref per process; drop the allocation ref.
        for frame in frames:
            self.phys.put_ref(frame.pfn)
        return bases

    def map_shared_writable(
        self, processes: list[Process], n_pages: int = 1
    ) -> list[int]:
        """Explicit sharing with write access: shared frames, writable PTEs.

        Models a writable shared segment (``mmap MAP_SHARED`` /
        ``shmget``) — the setup the O-state channel needs, since the
        trojan must be able to *dirty* the shared block: a KSM-merged
        page would COW-unmerge on the first write and an explicit
        read-only mapping would fault.  PTEs are built directly because
        :meth:`Process.map_frame` hardcodes the COW semantics of
        read-only library sharing.  Returns one base VA per process.
        """
        frames = [self.phys.alloc() for _ in range(n_pages)]
        bases = []
        for process in processes:
            base = None
            for frame in frames:
                self.phys.get_ref(frame.pfn)
                va = process._mmap_cursor
                process.page_table[vpn_of(va)] = PageTableEntry(
                    pfn=frame.pfn, writable=True, cow=False
                )
                process._mmap_cursor += PAGE_SIZE
                if base is None:
                    base = va
            bases.append(base)
        for frame in frames:
            self.phys.put_ref(frame.pfn)
        return bases

    def madvise_mergeable(self, process: Process, vaddr: int, n_pages: int = 1) -> None:
        """Mark pages as KSM merge candidates (madvise MERGEABLE)."""
        for i in range(n_pages):
            process.pte(vaddr + i * PAGE_SIZE).mergeable = True

    def setup_ksm_shared_page(
        self,
        first: Process,
        second: Process,
        pattern_seed: int = 0xC0FFEE,
        scan_now: bool = True,
    ) -> tuple[int, int]:
        """Force-create a KSM-shared page between two processes.

        Each process allocates a private page and fills it with the same
        deterministic pseudo-random pattern derived from a pre-agreed
        seed, then madvises it; a scan merges them onto one frame.
        Returns the two virtual addresses.
        """
        va_a = first.mmap(1)
        va_b = second.mmap(1)
        pattern = page_pattern(pattern_seed, 0)
        first.write_bytes(va_a, pattern)
        second.write_bytes(va_b, pattern)
        self.madvise_mergeable(first, va_a)
        self.madvise_mergeable(second, va_b)
        if scan_now:
            self.ksm.scan_once()
        return va_a, va_b

    def build_eviction_set(
        self, process: Process, target_va: int, n_lines: int | None = None
    ) -> list[int]:
        """Allocate an LLC eviction set for the line holding *target_va*.

        Returns virtual addresses of ``n_lines`` (default: LLC
        associativity + 2) lines in *process*'s address space whose
        physical addresses map to the same LLC set as the target.
        Loading all of them evicts the target from the inclusive LLC —
        the paper's clflush alternative ("eviction of all the ways in
        the set", Section VI-B).

        The kernel uses its knowledge of the physical layout; a real
        attacker discovers such sets with timing, which changes setup
        cost but not the channel mechanics.
        """
        cfg = self.machine.config
        if n_lines is None:
            n_lines = cfg.llc_assoc + 2
        target_pa = process.translate(target_va)
        target_set = (target_pa >> 6) & (cfg.llc_sets - 1)
        lines_per_page = PAGE_SIZE // LINE_SIZE
        out: list[int] = []
        guard = 0
        while len(out) < n_lines:
            guard += 1
            if guard > 4096:
                raise OutOfMemoryError(
                    "could not build an eviction set (frame pool too small)"
                )
            va = process.mmap(1)
            page_pa = process.translate(va)
            base_set = (page_pa >> 6) & (cfg.llc_sets - 1)
            offset_lines = (target_set - base_set) % cfg.llc_sets
            if offset_lines < lines_per_page:
                line_va = va + offset_lines * LINE_SIZE
                line_pa = process.translate(line_va)
                if line_pa != target_pa:
                    out.append(line_va)
        return out

    # ------------------------------------------------------------------
    # the executor: ops -> machine accesses
    # ------------------------------------------------------------------

    def _execute(self, thread: SimThread, op: Op) -> OpResult:
        now = thread.clock
        value = 0
        path = None
        # Exact-type dispatch: op classes are final (frozen, slotted
        # dataclasses memoized by Cpu), so ``type(op) is X`` replaces the
        # isinstance chain that cost up to seven calls per executed op.
        t = type(op)
        if t is Load:
            process = thread.process
            paddr = op.vaddr if process is None else process.translate(op.vaddr)
            value, latency, path = self.machine.load(thread.core_id, paddr, now)
        elif t is Store:
            latency = self._do_store(thread, op.vaddr, op.value, now)
        elif t is Flush:
            process = thread.process
            paddr = op.vaddr if process is None else process.translate(op.vaddr)
            latency = self.machine.flush(thread.core_id, paddr, now)
        elif t is Delay:
            latency = float(op.cycles)
            if latency < 0.0:
                latency = 0.0
        elif t is Rdtsc:
            latency = 0.0
        elif t is Fence:
            latency = self._fence_cost
        elif t is Burst:
            latency = self._do_burst(thread, op, now)
        else:  # pragma: no cover - engine validates op types
            raise TypeError(f"unknown op {op!r}")

        # Timeshare fast path: a thread alone on its core (or a kernel
        # thread with no core slot) pays nothing and draws no RNG —
        # identical to Scheduler.timeshare, which handles the shared
        # case (k > 1, stochastic preemption penalty).
        tid = thread.tid
        core = self._sched_thread_core.get(tid)
        if core is None or len(self._sched_assignments[core]) <= 1:
            return OpResult(latency, now + latency, value, path)
        factor, penalty = self._timeshare(tid, self._sched_rng)
        if t is Delay or t is Burst:
            # Fair-share slowdown applies to compute/think time: an
            # oversubscribed thread progresses at 1/k rate.
            latency = latency * factor
        # A preemption penalty can land on any op; when it hits a timed
        # load it shows up as a huge latency outlier, exactly what a
        # context switch does to an rdtsc-bracketed measurement.
        latency += penalty
        return OpResult(latency, now + latency, value, path)

    def _translate_read(self, thread: SimThread, vaddr: int) -> int:
        process: Process = thread.process
        if process is None:
            # Kernel threads address physical memory directly.
            return vaddr
        return process.translate(vaddr)

    def _do_store(self, thread: SimThread, vaddr: int, value: int, now: float) -> float:
        process: Process = thread.process
        fault_cost = 0.0
        if process is not None:
            pte = process.pte(vaddr)
            if pte.cow:
                # COW break — for a KSM-merged page this is the unmerge
                # that separates the sharers again (Section IV).
                old_pfn = pte.pfn
                self.ksm.unmerge(process, vpn_of(vaddr))
                self._purge_frame_from_caches(old_pfn)
                fault_cost = COW_FAULT_CYCLES
                self.stats.incr("kernel.cow_faults")
            elif not pte.writable:
                raise ProtectionFaultError(vaddr, process.pid)
            paddr = process.translate(vaddr)
            # Keep frame contents in sync so KSM hashing stays honest;
            # clamp so the 8-byte write never crosses the frame boundary.
            page_base = paddr - (paddr % PAGE_SIZE)
            offset = min(paddr % PAGE_SIZE, PAGE_SIZE - 8)
            self.phys.write(
                page_base + offset,
                (value & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little"),
            )
        else:
            paddr = vaddr
        latency, _path = self.machine.store(thread.core_id, paddr, value, now)
        return latency + fault_cost

    def _do_burst(self, thread: SimThread, op: Burst, now: float) -> float:
        process: Process = thread.process
        total = 0.0
        addr = op.vaddr
        for _i in range(op.count):
            paddr = process.translate(addr) if process is not None else addr
            if op.write_ratio > 0 and self._burst_rng.random() < op.write_ratio:
                latency, _path = self.machine.store(
                    thread.core_id, paddr, 1, now + total
                )
            else:
                _value, latency, _path = self.machine.load(
                    thread.core_id, paddr, now + total
                )
            # Overlapped execution: mlp outstanding requests hide a
            # proportional share of each access's latency.
            total += latency / max(1.0, op.mlp)
            addr += op.stride
        return total

    def _purge_frame_from_caches(self, pfn: int) -> None:
        """Invalidate every line of a frame from every cache.

        Called when a page is remapped (KSM unmerge) so no core keeps
        serving stale lines for a freed frame.
        """
        base = pfn * PAGE_SIZE
        for offset in range(0, PAGE_SIZE, LINE_SIZE):
            self.machine.drop_line(base + offset)

"""Kernel Same-page Merging (Section IV of the paper).

The daemon periodically scans every page that processes have madvise()d
as mergeable, in process start-time order (earliest first, as the paper
notes).  Pages with identical contents are merged onto the earliest
scanned frame; duplicate frames are released, and the survivors are
marked copy-on-write so that any write triggers an unmerge fault.

This is the implicit-sharing mechanism the trojan and spy exploit: they
fill private pages with an identical pre-agreed pseudo-random pattern,
madvise them, and after a scan both map the *same physical page* without
ever sharing code or data explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kernel.paging import PageTableEntry
from repro.kernel.process import Process
from repro.mem.physical import PAGE_SIZE, PhysicalMemory


@dataclass
class KsmStats:
    """Counters mirroring /sys/kernel/mm/ksm."""

    full_scans: int = 0
    pages_scanned: int = 0
    pages_merged: int = 0
    pages_unmerged: int = 0
    pages_sharing: int = 0


@dataclass
class MergeRecord:
    """Bookkeeping for one canonical (stable-tree) frame."""

    pfn: int
    digest: bytes
    mappers: set[tuple[int, int]] = field(default_factory=set)  # (pid, vpn)


class KsmDaemon:
    """The same-page-merging scanner.

    Parameters
    ----------
    phys:
        The physical frame pool.
    scan_interval:
        Cycles between scan passes when run as a simulated thread.
    """

    def __init__(self, phys: PhysicalMemory, scan_interval: float = 20_000_000.0):
        self._phys = phys
        self.scan_interval = scan_interval
        self.stats = KsmStats()
        # stable tree: content digest -> canonical frame record
        self._stable: dict[bytes, MergeRecord] = {}
        self._processes: list[Process] = []

    def register_process(self, process: Process) -> None:
        """Track a process whose mergeable pages should be scanned."""
        if process not in self._processes:
            self._processes.append(process)

    # ------------------------------------------------------------------
    # scanning / merging
    # ------------------------------------------------------------------

    def scan_once(self) -> int:
        """One full scan pass; returns the number of pages merged."""
        merged = 0
        self._prune_stable()
        for process in sorted(self._processes, key=lambda p: p.start_time):
            for vpn in process.mapped_vpns():
                pte = process.page_table[vpn]
                if not pte.mergeable or pte.merged:
                    continue
                self.stats.pages_scanned += 1
                if self._try_merge(process, vpn, pte):
                    merged += 1
        self.stats.full_scans += 1
        return merged

    def _try_merge(self, process: Process, vpn: int, pte: PageTableEntry) -> bool:
        frame = self._phys.frame(pte.pfn)
        digest = frame.content_hash()
        record = self._stable.get(digest)
        if record is None or record.pfn == pte.pfn:
            # First sighting: this frame becomes the stable-tree canonical
            # copy.  Mark it COW so a later write by its own mapper also
            # breaks sharing correctly.
            self._stable[digest] = MergeRecord(
                pfn=pte.pfn, digest=digest,
                mappers={(process.pid, vpn)},
            )
            pte.cow = True
            pte.merged = True
            return False
        # Merge: remap onto the canonical frame, free the duplicate.
        old_pfn = pte.pfn
        self._phys.get_ref(record.pfn)
        pte.pfn = record.pfn
        pte.cow = True
        pte.merged = True
        record.mappers.add((process.pid, vpn))
        self._phys.put_ref(old_pfn)
        self.stats.pages_merged += 1
        self.stats.pages_sharing = sum(
            len(r.mappers) for r in self._stable.values() if len(r.mappers) > 1
        )
        return True

    def _prune_stable(self) -> None:
        """Drop stable-tree records whose frame contents changed or died."""
        stale = []
        for digest, record in self._stable.items():
            try:
                frame = self._phys.frame(record.pfn)
            except Exception:
                stale.append(digest)
                continue
            if frame.content_hash() != digest:
                stale.append(digest)
        for digest in stale:
            del self._stable[digest]

    # ------------------------------------------------------------------
    # unmerge (COW break on write, or forced by a mitigation policy)
    # ------------------------------------------------------------------

    def unmerge(self, process: Process, vpn: int) -> int:
        """Break sharing for one merged page; returns the new pfn.

        Called by the page-fault handler on a write to a merged page, and
        by the KSM-timeout mitigation (Section VIII-E) to forcibly
        separate suspicious pages.
        """
        pte = process.page_table[vpn]
        old_pfn = pte.pfn
        old_frame = self._phys.frame(old_pfn)
        new_frame = self._phys.alloc()
        new_frame.data[:] = old_frame.data
        pte.pfn = new_frame.pfn
        pte.cow = False
        pte.merged = False
        self._phys.put_ref(old_pfn)
        for record in self._stable.values():
            record.mappers.discard((process.pid, vpn))
        self.stats.pages_unmerged += 1
        return new_frame.pfn

    def shared_frames(self) -> list[MergeRecord]:
        """Records of frames currently mapped by more than one page."""
        return [r for r in self._stable.values() if len(r.mappers) > 1]

    def mappers_of(self, pfn: int) -> set[tuple[int, int]]:
        """(pid, vpn) pairs currently sharing frame *pfn*."""
        for record in self._stable.values():
            if record.pfn == pfn:
                return set(record.mappers)
        return set()

    def run(self, cpu) -> "object":
        """Thread-program body: scan forever at ``scan_interval``.

        Spawn with ``daemon=True``; each pass is instantaneous in
        simulated time (scan work is attributed to the interval delay).

        The loop carries no state between iterations, so the checkpoint
        mark is an empty cursor: a re-driven scanner just re-enters the
        parked interval delay (the scan itself happens in the engine
        step that delivers the delay's result, after any snapshot).
        """
        while True:
            cpu.mark(())
            yield from cpu.delay(self.scan_interval)
            self.scan_once()

    @staticmethod
    def page_size() -> int:
        """The page granularity KSM merges at."""
        return PAGE_SIZE


def ksm_program(daemon: KsmDaemon, cursor: tuple | None = None):
    """Checkpoint factory for the scanner program (see ProgramSpec).

    The scanner loop is stateless between marks, so *cursor* carries no
    payload and is ignored; the daemon object itself travels in the
    checkpoint's pickle graph and arrives here already restored.
    """
    del cursor
    return daemon.run

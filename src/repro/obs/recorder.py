"""The bounded, digestible event recorder at the center of ``repro.obs``.

A :class:`TraceRecorder` is a ring buffer of typed :class:`TraceEvent`
records.  Memory is bounded: past ``capacity`` events the oldest are
overwritten and counted as *dropped*, so a runaway trace can never grow
without limit.  The recorder follows the same bind-once discipline as
:meth:`repro.sim.stats.StatsRegistry.counter_handle` — components check
the enable predicate **once** (at session construction, at
``Runner.__init__``) and hold either a recorder reference or ``None``;
the disabled path therefore carries no per-event conditional at all.

Event streams are content-addressable: :meth:`TraceRecorder.digest`
hashes every retained event (category, name, timestamp, canonical JSON
of the payload) plus the emitted/dropped counts, which is what the
golden trace test pins.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from typing import Callable

#: Default ring capacity.  A full fixed-seed transmission (calibration
#: included) emits a few tens of thousands of events, so the default
#: retains complete runs while bounding memory to a few MB.
DEFAULT_CAPACITY = 1 << 17

#: A live consumer of the event feed: any callable taking one
#: :class:`TraceEvent`.  Sinks observe the same object the ring buffer
#: retains and must treat it as read-only — mutating ``event.data``
#: would corrupt the recorded stream (and its digest).
TraceSink = Callable[["TraceEvent"], None]


def trace_enabled() -> bool:
    """Whether tracing is globally enabled (``REPRO_TRACE`` truthy).

    ``REPRO_TRACE=1`` (or any value other than ``0`` / empty) turns
    tracing on for every session and runner in the process; the CLI's
    global ``--trace`` flag sets it.
    """
    return os.environ.get("REPRO_TRACE", "") not in ("", "0")


class TraceEvent:
    """One typed trace record.

    Attributes
    ----------
    ts:
        Timestamp.  Simulated cycles for machine/channel events,
        wall-clock microseconds for runner lifecycle events.
    category:
        Event family: ``"load"``, ``"store"``, ``"flush"``,
        ``"coherence"``, ``"hop"``, ``"phase"``, ``"fault"`` or
        ``"runner"``.
    name:
        Short event name within the family (a service path, a phase
        name, a fault kind, ...).
    data:
        JSON-plain payload mapping.
    """

    __slots__ = ("ts", "category", "name", "data")

    def __init__(self, ts: float, category: str, name: str, data: dict):
        self.ts = ts
        self.category = category
        self.name = name
        self.data = data

    def to_json(self) -> dict:
        """Plain-dict form (stable key order is the caller's concern)."""
        return {
            "ts": self.ts,
            "category": self.category,
            "name": self.name,
            "data": self.data,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceEvent({self.ts!r}, {self.category!r}, {self.name!r}, "
            f"{self.data!r})"
        )


class TraceRecorder:
    """A bounded ring buffer of :class:`TraceEvent` records."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._buffer: list[TraceEvent] = []
        self._head = 0  # next overwrite slot once the buffer is full
        self.emitted = 0
        self._sinks: tuple[TraceSink, ...] = ()

    def subscribe(self, sink: TraceSink) -> None:
        """Attach a live :data:`TraceSink` to the feed (idempotent).

        Every subsequent :meth:`emit` calls *sink* with the event, after
        it has been placed in the ring — so a streaming consumer (e.g.
        :class:`repro.detection.streaming.StreamingDetector`) sees the
        identical feed a later replay of :meth:`events` would, without a
        second interposition layer on the machine.  Sinks never affect
        what is recorded: the ring contents, counters and
        :meth:`digest` are byte-for-byte the same with or without
        subscribers.
        """
        if sink not in self._sinks:
            self._sinks = self._sinks + (sink,)

    def unsubscribe(self, sink: TraceSink) -> None:
        """Detach a previously subscribed sink (no-op if absent)."""
        self._sinks = tuple(s for s in self._sinks if s is not sink)

    def emit(
        self, ts: float, category: str, name: str, data: dict | None = None
    ) -> None:
        """Record one event (overwriting the oldest when full)."""
        event = TraceEvent(ts, category, name, data if data is not None else {})
        if len(self._buffer) < self.capacity:
            self._buffer.append(event)
        else:
            self._buffer[self._head] = event
            self._head = (self._head + 1) % self.capacity
        self.emitted += 1
        if self._sinks:
            for sink in self._sinks:
                sink(event)

    @property
    def dropped(self) -> int:
        """Events overwritten because the ring was full."""
        return self.emitted - len(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)

    def events(self) -> list[TraceEvent]:
        """Retained events, oldest first."""
        return self._buffer[self._head:] + self._buffer[:self._head]

    def select(self, *categories: str) -> list[TraceEvent]:
        """Retained events of the given categories, oldest first."""
        wanted = set(categories)
        return [e for e in self.events() if e.category in wanted]

    def clear(self) -> None:
        """Drop every retained event and reset the counters."""
        self._buffer.clear()
        self._head = 0
        self.emitted = 0

    def digest(self) -> str:
        """SHA-256 over the retained event stream plus the counters.

        Stable across processes: floats hash via their shortest-repr
        form and payload dicts via canonical (sorted, compact) JSON.
        Any reorder, drop, or payload change moves the digest — which
        is exactly what the golden trace test wants to detect.
        """
        h = hashlib.sha256()
        h.update(f"{self.emitted}|{self.dropped}".encode())
        for event in self.events():
            h.update(
                f"\n{event.ts!r}|{event.category}|{event.name}|".encode()
            )
            h.update(json.dumps(
                event.data, sort_keys=True, separators=(",", ":"),
                default=str,
            ).encode())
        return h.hexdigest()


# ----------------------------------------------------------------------
# the process-global runner recorder
# ----------------------------------------------------------------------

#: Lazily created recorder for runner lifecycle events (dispatch, retry,
#: cache hits).  Process-global because one :class:`~repro.runner.Runner`
#: schedules many points and the interesting signal is the interleaving.
_RUNNER_RECORDER: TraceRecorder | None = None

#: Wall-clock origin for runner-event timestamps (microseconds since the
#: first enabled recorder was created).
_RUNNER_EPOCH: float | None = None


def runner_recorder() -> TraceRecorder | None:
    """The process-global runner-lifecycle recorder, or ``None``.

    Returns ``None`` when tracing is disabled — callers bind the result
    once and the disabled path never re-checks the environment.
    """
    global _RUNNER_RECORDER, _RUNNER_EPOCH
    if not trace_enabled():
        return None
    if _RUNNER_RECORDER is None:
        _RUNNER_RECORDER = TraceRecorder()
        _RUNNER_EPOCH = time.monotonic()
    return _RUNNER_RECORDER


def runner_now() -> float:
    """Microseconds since the runner recorder's epoch."""
    if _RUNNER_EPOCH is None:
        return 0.0
    return (time.monotonic() - _RUNNER_EPOCH) * 1e6


def clear_runner_recorder() -> None:
    """Drop the process-global runner recorder (test hook)."""
    global _RUNNER_RECORDER, _RUNNER_EPOCH
    _RUNNER_RECORDER = None
    _RUNNER_EPOCH = None

"""Trace exporters: Chrome trace-event JSON and merged text timelines.

``chrome://tracing`` / Perfetto's legacy JSON importer accept the
*JSON Object Format*: a dict with a ``traceEvents`` list whose entries
carry ``name``/``ph``/``ts``/``pid``/``tid``.  Timestamps are nominally
microseconds; we write simulated cycles directly, so one viewer
"microsecond" is one simulated cycle (noted in ``otherData``).

:func:`text_timeline` renders the same stream as terminal text, merged
chronologically with the spy's latency samples so the causal chain —
flush, transition, service path, timed sample — reads top to bottom.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.obs.recorder import TraceEvent, TraceRecorder

#: Category -> Chrome "thread" lane, in display order.
_LANES = {
    "phase": 0,
    "load": 1,
    "store": 2,
    "flush": 3,
    "coherence": 4,
    "hop": 5,
    "fault": 6,
    "runner": 7,
}

_PHASES_ALLOWED = {"B", "E", "i", "M", "X"}


def _as_events(events) -> list[TraceEvent]:
    if isinstance(events, TraceRecorder):
        return events.events()
    return list(events)


def to_chrome_trace(
    events: TraceRecorder | Iterable[TraceEvent],
    manifest=None,
) -> dict:
    """Build a Chrome trace-event JSON object from an event stream.

    Phase events carrying ``data["mark"]`` of ``"B"``/``"E"`` become
    duration begin/end pairs; everything else becomes a thread-scoped
    instant event.  *manifest* (a :class:`~repro.obs.manifest.RunManifest`
    or its ``to_json`` dict) lands in ``otherData``.
    """
    trace_events: list[dict] = []
    for category, tid in _LANES.items():
        trace_events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": category},
        })
    for event in _as_events(events):
        tid = _LANES.get(event.category, len(_LANES))
        record = {
            "name": event.name,
            "cat": event.category,
            "ts": float(event.ts),
            "pid": 1,
            "tid": tid,
            "args": dict(event.data),
        }
        mark = event.data.get("mark") if event.category == "phase" else None
        if mark in ("B", "E"):
            record["ph"] = mark
            record["args"] = {
                k: v for k, v in event.data.items() if k != "mark"
            }
        else:
            record["ph"] = "i"
            record["s"] = "t"
        trace_events.append(record)
    other: dict = {"timeUnit": "simulated cycles (1 cycle = 1 viewer us)"}
    if manifest is not None:
        other["manifest"] = (
            manifest if isinstance(manifest, dict) else manifest.to_json()
        )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def validate_chrome_trace(obj) -> None:
    """Raise :class:`ValueError` unless *obj* is viewer-loadable JSON.

    Checks the JSON Object Format contract the Chrome trace viewer and
    Perfetto's legacy importer actually enforce: a ``traceEvents`` list
    whose entries are dicts with a string ``name``, a known ``ph``, a
    numeric ``ts`` and integer ``pid``/``tid``, with begin/end phase
    marks balanced per (pid, tid).
    """
    if not isinstance(obj, dict):
        raise ValueError(f"trace must be a JSON object, got {type(obj).__name__}")
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace must carry a 'traceEvents' list")
    depth: dict[tuple, int] = {}
    for i, record in enumerate(events):
        if not isinstance(record, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        if not isinstance(record.get("name"), str):
            raise ValueError(f"traceEvents[{i}] has no string 'name'")
        ph = record.get("ph")
        if ph not in _PHASES_ALLOWED:
            raise ValueError(f"traceEvents[{i}] has unknown ph {ph!r}")
        if ph != "M":
            if not isinstance(record.get("ts"), (int, float)):
                raise ValueError(f"traceEvents[{i}] has no numeric 'ts'")
        for key in ("pid", "tid"):
            if not isinstance(record.get(key), int):
                raise ValueError(f"traceEvents[{i}] has no integer {key!r}")
        if ph in ("B", "E"):
            lane = (record["pid"], record["tid"])
            depth[lane] = depth.get(lane, 0) + (1 if ph == "B" else -1)
            if depth[lane] < 0:
                raise ValueError(
                    f"traceEvents[{i}]: 'E' without matching 'B' on {lane}"
                )
    unbalanced = {lane: d for lane, d in depth.items() if d != 0}
    if unbalanced:
        raise ValueError(f"unbalanced B/E phase marks: {unbalanced}")


def write_chrome_trace(
    path: str | Path,
    events: TraceRecorder | Iterable[TraceEvent],
    manifest=None,
) -> Path:
    """Validate and write a Chrome trace JSON file; returns the path."""
    trace = to_chrome_trace(events, manifest=manifest)
    validate_chrome_trace(trace)
    out = Path(path)
    out.write_text(json.dumps(trace, indent=1, default=str) + "\n")
    return out


def _summarize(data: dict) -> str:
    parts = []
    for key, value in data.items():
        if key == "line" and isinstance(value, int):
            parts.append(f"line={value:#x}")
        elif isinstance(value, float):
            parts.append(f"{key}={value:.1f}")
        else:
            parts.append(f"{key}={value}")
    return " ".join(parts)


def text_timeline(
    events: TraceRecorder | Iterable[TraceEvent],
    samples: Sequence | None = None,
    max_rows: int | None = None,
) -> str:
    """Render events (and optionally spy samples) as a merged timeline.

    Rows are ordered by timestamp; each is ``cycles | category | name |
    payload``.  *samples* (``repro.channel.decoder.Sample`` records, the
    stream :mod:`repro.analysis.trace` exports) appear as ``sample``
    rows, so a run's trace and its reception trace line up in one view.
    """
    rows: list[tuple[float, int, str]] = []
    for order, event in enumerate(_as_events(events)):
        rows.append((
            float(event.ts),
            order,
            f"{event.ts:14.1f} | {event.category:9s} | {event.name:14s} | "
            f"{_summarize(event.data)}",
        ))
    if samples:
        for order, sample in enumerate(samples):
            path = getattr(sample.path, "value", sample.path)
            rows.append((
                float(sample.timestamp),
                1_000_000_000 + order,
                f"{sample.timestamp:14.1f} | {'sample':9s} | "
                f"{sample.label:14s} | latency={sample.latency:.1f} "
                f"path={path if path is not None else '-'}",
            ))
    rows.sort(key=lambda row: (row[0], row[1]))
    if max_rows is not None:
        rows = rows[:max_rows]
    header = f"{'cycles':>14s} | {'category':9s} | {'event':14s} | detail"
    return "\n".join([header, *[text for _ts, _order, text in rows]])

"""Run manifests: the reproducibility fingerprint of one transmission.

A :class:`RunManifest` answers "what exactly produced this result?" —
root seed, scenario, sharing mode, a stable hash of the machine
configuration, code and interpreter versions, the installed fault plan,
a snapshot of the stats counters, and the trace-recorder accounting.
One is attached to every
:class:`~repro.channel.session.TransmissionResult` (and therefore rides
inside every cached grid point), whether or not tracing is enabled.
"""

from __future__ import annotations

import hashlib
import platform
from dataclasses import asdict, dataclass, field


@dataclass(frozen=True)
class RunManifest:
    """Everything needed to identify and reproduce one transmission."""

    repro_version: str
    python_version: str
    seed: int
    scenario: str
    sharing: str
    #: SHA-256 of :meth:`MachineConfig.fingerprint` — short enough to
    #: log, stable across processes, and equal iff the machines are
    #: behaviorally identical.
    machine_fingerprint: str
    calibration_samples: int
    flush_method: str = "clflush"
    noise_threads: int = 0
    resyncs: int = 0
    #: :meth:`FaultPlan.to_json` dict, or ``None`` when no faults.
    fault_plan: dict | None = None
    #: Stats-counter snapshot taken when the result was assembled.
    stats: dict = field(default_factory=dict)
    #: Trace accounting (zero when tracing was disabled).
    traced_events: int = 0
    dropped_events: int = 0
    #: Segmented-execution accounting (see :mod:`repro.checkpoint`):
    #: the configured segment length (0.0 = unsegmented), segments this
    #: session stored, and the segment index the run resumed from
    #: (``None`` for a run that started cold).
    segment_cycles: float = 0.0
    segments_stored: int = 0
    resumed_from: int | None = None

    def to_json(self) -> dict:
        """Plain-dict form (JSON-safe; inverse of :meth:`from_json`)."""
        return asdict(self)

    @classmethod
    def from_json(cls, data: dict) -> "RunManifest":
        """Rebuild a manifest from :meth:`to_json` output."""
        return cls(**data)

    @classmethod
    def capture(cls, session, resyncs: int = 0) -> "RunManifest":
        """Snapshot *session*'s identity and counters right now."""
        import repro
        from repro.faults.plan import FaultPlan

        cfg = session.config
        plan = FaultPlan.from_json(cfg.faults)
        recorder = getattr(session, "recorder", None)
        store = getattr(session, "segments", None)
        return cls(
            repro_version=repro.__version__,
            python_version=platform.python_version(),
            seed=cfg.seed,
            scenario=cfg.scenario.name if cfg.scenario is not None else "",
            sharing=cfg.sharing,
            machine_fingerprint=machine_fingerprint(cfg.machine),
            calibration_samples=cfg.calibration_samples,
            flush_method=cfg.flush_method,
            noise_threads=cfg.noise_threads,
            resyncs=resyncs,
            fault_plan=plan.to_json() if plan.events else None,
            stats=session.machine.stats.counters(),
            traced_events=recorder.emitted if recorder is not None else 0,
            dropped_events=recorder.dropped if recorder is not None else 0,
            segment_cycles=store.cycles if store is not None else 0.0,
            segments_stored=store.segments_stored if store is not None else 0,
            resumed_from=store.resumed_from if store is not None else None,
        )


def machine_fingerprint(config) -> str:
    """SHA-256 hex digest of a machine config's canonical fingerprint."""
    return hashlib.sha256(config.fingerprint().encode()).hexdigest()

"""Read-only machine interposition: ops and coherence transitions.

:class:`MachineTap` observes a live :class:`~repro.mem.hierarchy.Machine`
the same way the detection subsystem's
:class:`~repro.detection.events.EventMonitor` does — by wrapping the
``load``/``store``/``flush`` *instance* attributes (the kernel executes
every op through attribute access, so wrappers see all traffic) — and
additionally swaps the machine's bound interconnect registers
(``_ring_register`` / ``_qpi_register`` / ``_mem_register``) for
pass-through wrappers that record each hop.

Coherence-state transitions are **derived, not instrumented**: around
each op the tap snapshots the accessed line's private-state map with
:meth:`~repro.mem.coherence.SocketDomain.private_line` (a ``touch=False``
peek) and emits a ``"coherence"`` event for every core whose state
changed, carrying the full post-op state map.  The walk draws no RNG and
mutates no simulated state, so an attached tap is provably inert — the
golden determinism digests are identical with and without it.  Victim
traffic (lines evicted as a side effect of an access to a *different*
set) is intentionally out of scope: the tap follows the accessed line's
causal chain, which is the one the covert channel modulates.

When tracing is disabled no tap exists and the machine's hot path is the
unmodified code — the disabled-mode overhead gated by ``repro bench`` is
the absence of the feature, not a cheap branch.
"""

from __future__ import annotations

from repro.mem.cacheline import CoherenceState
from repro.obs.recorder import TraceRecorder


class MachineTap:
    """Attachable observer recording a machine's traffic into a recorder."""

    def __init__(self, machine, recorder: TraceRecorder):
        self.machine = machine
        self.recorder = recorder
        self._attached = False
        self._orig_load = None
        self._orig_store = None
        self._orig_flush = None
        self._orig_ring = None
        self._orig_qpi = None
        self._orig_mem = None
        self._orig_dir_trace = None
        self._dir_wrapper = None
        self._wrappers: dict[str, object] = {}

    # -- state snapshots ------------------------------------------------

    def _line_states(self, base: int) -> dict[int, CoherenceState]:
        """Private coherence state per holding core for one line."""
        states: dict[int, CoherenceState] = {}
        for domain in self.machine.sockets:
            for core in domain.cores:
                line = domain.private_line(core, base)
                if line is not None:
                    states[core.core_id] = line.state
        return states

    def _emit_transitions(
        self,
        base: int,
        before: dict[int, CoherenceState],
        after: dict[int, CoherenceState],
        now: float,
    ) -> None:
        changed = []
        for core_id in sorted(before.keys() | after.keys()):
            src = before.get(core_id, CoherenceState.INVALID)
            dst = after.get(core_id, CoherenceState.INVALID)
            if src is not dst:
                changed.append([core_id, src.value, dst.value])
        if not changed:
            return
        self.recorder.emit(now, "coherence", "transition", {
            "line": base,
            "changed": changed,
            "states": {
                str(core_id): state.value
                for core_id, state in sorted(after.items())
            },
        })

    # -- attach / detach ------------------------------------------------

    def attach(self) -> None:
        """Start observing (idempotent); registers on ``machine._trace_tap``."""
        if self._attached:
            return
        self._attached = True
        machine = self.machine
        recorder = self.recorder
        self._orig_load = machine.load
        self._orig_store = machine.store
        self._orig_flush = machine.flush
        orig_load, orig_store, orig_flush = (
            self._orig_load, self._orig_store, self._orig_flush
        )
        line_states = self._line_states
        emit_transitions = self._emit_transitions

        def load(core_id: int, paddr: int, now: float = 0.0):
            base = paddr & ~63
            before = line_states(base)
            value, latency, path = orig_load(core_id, paddr, now)
            emit_transitions(base, before, line_states(base), now)
            recorder.emit(now, "load", path.value, {
                "core": core_id, "line": base, "latency": latency,
            })
            return value, latency, path

        def store(core_id: int, paddr: int, value: int, now: float = 0.0):
            base = paddr & ~63
            before = line_states(base)
            latency, path = orig_store(core_id, paddr, value, now)
            emit_transitions(base, before, line_states(base), now)
            recorder.emit(now, "store", path.value, {
                "core": core_id, "line": base, "latency": latency,
            })
            return latency, path

        def flush(core_id: int, paddr: int, now: float = 0.0):
            base = paddr & ~63
            before = line_states(base)
            latency = orig_flush(core_id, paddr, now)
            emit_transitions(base, before, line_states(base), now)
            recorder.emit(now, "flush", "clflush", {
                "core": core_id, "line": base, "latency": latency,
            })
            return latency

        machine.load = load
        machine.store = store
        machine.flush = flush
        self._wrappers = {"load": load, "store": store, "flush": flush}

        def hop_wrapper(name: str, register):
            def wrapped(now: float, weight: float) -> float:
                contribution = register(now, weight)
                recorder.emit(now, "hop", name, {
                    "contribution": contribution,
                })
                return contribution
            return wrapped

        self._orig_ring = machine._ring_register
        self._orig_qpi = machine._qpi_register
        self._orig_mem = machine._mem_register
        machine._ring_register = [
            hop_wrapper(f"ring{i}", reg)
            for i, reg in enumerate(self._orig_ring)
        ]
        machine._qpi_register = hop_wrapper("qpi", self._orig_qpi)
        machine._mem_register = [
            hop_wrapper(f"mem{i}", reg)
            for i, reg in enumerate(self._orig_mem)
        ]

        # Directory-backend machines expose a home-agent hook: each
        # serviced request reports which path the home chose
        # (owner_forward / home_service / memory_fill / rfo / flush)
        # along with the post-op entry.  Chain rather than replace so a
        # pre-installed hook keeps firing.
        self._orig_dir_trace = machine._dir_trace
        orig_dir_trace = self._orig_dir_trace

        def dir_trace(now: float, kind: str, base: int, entry) -> None:
            if orig_dir_trace is not None:
                orig_dir_trace(now, kind, base, entry)
            recorder.emit(now, "directory", kind, {
                "line": base,
                "state": entry.state.value,
                "sharers": entry.sharers,
                "owner": entry.owner(),
                "dirty": entry.dirty,
            })

        machine._dir_trace = dir_trace
        self._dir_wrapper = dir_trace
        machine._trace_tap = self

    def detach(self) -> None:
        """Stop observing, restoring every binding (idempotent).

        An op wrapper is only removed while it is still the outermost
        interposition; if something else (a detection monitor, say)
        wrapped on top of the tap, the attribute is left for
        :meth:`Machine.reset`'s unconditional pop, which restores the
        class methods regardless of nesting order.
        """
        if not self._attached:
            return
        self._attached = False
        machine = self.machine
        for name, wrapper in self._wrappers.items():
            if machine.__dict__.get(name) is wrapper:
                machine.__dict__.pop(name)
        self._wrappers = {}
        machine._ring_register = self._orig_ring
        machine._qpi_register = self._orig_qpi
        machine._mem_register = self._orig_mem
        if machine._dir_trace is self._dir_wrapper:
            machine._dir_trace = self._orig_dir_trace
        self._dir_wrapper = None
        if getattr(machine, "_trace_tap", None) is self:
            machine._trace_tap = None

    @property
    def attached(self) -> bool:
        return self._attached

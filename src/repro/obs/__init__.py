"""Structured tracing and run telemetry (``repro.obs``).

The paper's argument is a causal chain — coherence state transition →
service path → latency sample → decoded bit — and this package makes
every link of that chain observable as *typed events* instead of
aggregate counters:

* :class:`TraceRecorder` — a bounded ring buffer of
  :class:`TraceEvent` records with a stable content digest, plus a
  :data:`TraceSink` subscription hook
  (:meth:`~TraceRecorder.subscribe`) that hands every emitted event to
  live consumers — e.g. the streaming detector
  (:mod:`repro.detection.streaming`) — without a second interposition
  layer on the machine;
* :class:`MachineTap` — read-only interposition on a
  :class:`~repro.mem.hierarchy.Machine` that records loads, stores,
  flushes, interconnect hops and the coherence-state transitions of
  every accessed line;
* :class:`RunManifest` — the reproducibility fingerprint (seed,
  machine, versions, fault plan, stats snapshot) attached to every
  transmission result;
* Chrome trace-event JSON and text-timeline exporters
  (:func:`to_chrome_trace`, :func:`write_chrome_trace`,
  :func:`text_timeline`).

Tracing is **inert by design**: when disabled (the default) nothing is
attached to the machine and the hot path is byte-for-byte the untraced
code; when enabled, the tap draws no RNG and mutates no simulated state,
so the golden determinism digests are identical with tracing on and off.
Enable per session with ``SessionConfig(trace=True)``, globally with
``REPRO_TRACE=1`` or the CLI's ``--trace`` flag.
"""

from repro.obs.export import (
    text_timeline,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.manifest import RunManifest
from repro.obs.recorder import (
    DEFAULT_CAPACITY,
    TraceEvent,
    TraceRecorder,
    TraceSink,
    clear_runner_recorder,
    runner_recorder,
    trace_enabled,
)
from repro.obs.tap import MachineTap

__all__ = [
    "DEFAULT_CAPACITY",
    "MachineTap",
    "RunManifest",
    "TraceEvent",
    "TraceRecorder",
    "TraceSink",
    "clear_runner_recorder",
    "runner_recorder",
    "text_timeline",
    "to_chrome_trace",
    "trace_enabled",
    "validate_chrome_trace",
    "write_chrome_trace",
]

"""Harness-plane fault injection: adversity for the runner itself.

:class:`FaultInjector` is the hook :class:`repro.runner.Runner` consults
while executing a grid.  It answers one question — "does this attempt of
this point fault, and how?" — from a :class:`~repro.faults.plan.FaultPlan`,
so the same plan replays the same failures bit-for-bit, serial or
parallel, no matter how the pool schedules the points.

Fault kinds and where they bite:

* ``transient`` — the point raises :class:`InjectedFaultError` (inside
  the worker, so the failure crosses the process boundary the way a real
  point exception does) until its faulty attempts are used up;
* ``slow`` — the point stalls ``magnitude`` seconds before executing,
  which trips a configured per-point timeout;
* ``worker_kill`` — the pool worker hard-exits (``os._exit``) mid-point,
  producing a genuine ``BrokenProcessPool`` in the parent; in serial
  mode it degrades to a transient error (there is no worker to kill).
  With a positive ``magnitude`` and segmented execution enabled, the
  kill is deferred: the worker SIGKILLs itself only after storing that
  many checkpoint segments, so the retry proves crash-*resume* (see
  :mod:`repro.checkpoint.segments`), not just crash-retry;
* ``torn_cache`` — after the point's value is stored, its cache entry is
  overwritten with garbage, exercising the cache's corrupt-entry
  recovery on the next run.
"""

from __future__ import annotations

import os
import time
from collections.abc import Mapping
from typing import Any

from repro.errors import FaultError, InjectedFaultError
from repro.faults.plan import FaultEvent, FaultPlan

#: Exit status a killed worker dies with (visible in pool diagnostics).
WORKER_KILL_EXIT_STATUS = 17


def apply_worker_fault(event_json: Mapping[str, Any]) -> None:
    """Apply a harness fault inside the executing (worker) process.

    Called by the runner's worker entry point before the point function
    runs; ``event_json`` is the :meth:`FaultEvent.to_json` form because
    only plain data crosses the process boundary.
    """
    kind = event_json.get("kind")
    if kind == "worker_kill":
        magnitude = float(event_json.get("magnitude", 0.0))
        if magnitude > 0:
            from repro.checkpoint.segments import (
                arm_kill_after,
                segments_enabled,
            )

            if segments_enabled():
                # Deferred kill: SIGKILL this worker after it has stored
                # ``magnitude`` checkpoint segments — the mid-run death
                # the crash-resume machinery (repro.checkpoint.segments)
                # exists to survive.  Without segmented execution there
                # is no segment to count, so the kill stays immediate.
                arm_kill_after(int(magnitude))
                return
        # A hard kill: no exception, no cleanup — the parent observes
        # BrokenProcessPool exactly as with a real OOM-killed worker.
        os._exit(WORKER_KILL_EXIT_STATUS)
    if kind == "slow":
        time.sleep(float(event_json.get("magnitude", 0.0)))
        return
    if kind == "transient":
        raise InjectedFaultError(
            f"injected transient fault on point "
            f"{event_json.get('point')} (planned)"
        )
    if kind == "torn_cache":
        return  # applied parent-side, after the store
    raise FaultError(f"unknown harness fault kind {kind!r}")


class FaultInjector:
    """Deterministic harness-fault oracle for one grid run.

    Parameters
    ----------
    plan:
        The fault plan; only its harness-plane events matter here.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._by_point: dict[int, FaultEvent] = {}
        for event in plan.harness_events:
            if event.point in self._by_point:
                raise FaultError(
                    f"fault plan schedules two harness events for point "
                    f"{event.point}"
                )
            self._by_point[event.point] = event
        self._torn: set[int] = set()
        #: (point index, attempt, kind) log of every fault fired —
        #: tests assert replay identity against this.
        self.fired: list[tuple[int, int, str]] = []

    def event_for(self, index: int, attempt: int) -> FaultEvent | None:
        """The fault for *attempt* (0-based) of point *index*, if any.

        ``torn_cache`` events never fail an attempt, so they are not
        reported here; see :meth:`maybe_tear`.
        """
        event = self._by_point.get(index)
        if event is None or event.kind == "torn_cache":
            return None
        if attempt >= event.attempts:
            return None
        self.fired.append((index, attempt, event.kind))
        return event

    def maybe_tear(self, cache, index: int, point) -> bool:
        """Corrupt *point*'s just-written cache entry if planned.

        Fires at most once per point per run; returns whether it did.
        The torn entry is exactly the artifact a crash between write
        and rename would leave, so the cache's corrupt-entry handling
        (delete + recompute) is what the next run must do.
        """
        event = self._by_point.get(index)
        if (
            cache is None
            or event is None
            or event.kind != "torn_cache"
            or index in self._torn
        ):
            return False
        self._torn.add(index)
        try:
            cache.path_for(point).write_bytes(b"torn by fault injection")
        except OSError:
            return False
        self.fired.append((index, 0, "torn_cache"))
        return True

"""Seedable, replayable fault plans: *what* goes wrong, *when*.

A :class:`FaultPlan` is a frozen list of :class:`FaultEvent` entries on
two planes:

* **harness** events target the experiment runner itself — a grid point
  that raises transiently, stalls, kills its pool worker, or tears its
  own cache entry.  They let the runner's failure policy be tested
  against deterministic adversity instead of ad-hoc monkeypatching.
* **simulation** events target a running
  :class:`~repro.channel.session.ChannelSession` — a third party
  touching the shared line, forced preemption on the spy's core, a KSM
  unmerge/re-merge cycle, or a transient interconnect latency spike.
  These are the hostile conditions (context switches, co-located
  sharers) the paper's Section VIII robustness protocol exists for.

Plans are pure data: canonically JSON-serializable (so they ride inside
grid-point params and hash into cache keys) and derived bit-for-bit
deterministically from a root seed via :func:`repro.sim.rng.derive_seed`
— building the same plan twice, in any process, yields identical events
in identical order.  :meth:`FaultPlan.key` is the replay identity.
"""

from __future__ import annotations

import hashlib
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.errors import FaultError
from repro.sim.rng import derive_seed

#: Harness-plane fault kinds (runner adversity).
HARNESS_KINDS = ("transient", "slow", "worker_kill", "torn_cache")

#: Simulation-plane fault kinds (channel adversity).
SIMULATION_KINDS = (
    "third_party_touch",
    "preempt",
    "ksm_unmerge",
    "latency_spike",
)

_PLANES = {"harness": HARNESS_KINDS, "simulation": SIMULATION_KINDS}


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    Harness events address a grid point by ``point`` (its index in the
    spec) and fire while the point's attempt counter is below
    ``attempts`` — so an event with ``attempts=2`` fails the first two
    tries and lets the third succeed.  Simulation events address a
    window of simulated time, ``at_cycles`` .. ``at_cycles +
    duration_cycles``, relative to the start of the transmission the
    plan is installed into.  ``magnitude`` is kind-specific (stall
    seconds, touch period in cycles, burst intensity).
    """

    plane: str
    kind: str
    point: int = 0
    attempts: int = 1
    at_cycles: float = 0.0
    duration_cycles: float = 0.0
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        kinds = _PLANES.get(self.plane)
        if kinds is None:
            raise FaultError(f"unknown fault plane {self.plane!r}")
        if self.kind not in kinds:
            raise FaultError(
                f"unknown {self.plane}-plane fault kind {self.kind!r}; "
                f"expected one of {kinds}"
            )
        if self.plane == "harness" and self.attempts < 1:
            raise FaultError("a harness fault must fire on >= 1 attempt")
        if self.at_cycles < 0 or self.duration_cycles < 0:
            raise FaultError("fault times must be non-negative")

    def to_json(self) -> dict:
        """Plain-dict form (canonically JSON-safe)."""
        return {
            "plane": self.plane,
            "kind": self.kind,
            "point": int(self.point),
            "attempts": int(self.attempts),
            "at_cycles": float(self.at_cycles),
            "duration_cycles": float(self.duration_cycles),
            "magnitude": float(self.magnitude),
        }

    @classmethod
    def from_json(cls, data: Mapping) -> "FaultEvent":
        try:
            return cls(**{k: data[k] for k in (
                "plane", "kind", "point", "attempts",
                "at_cycles", "duration_cycles", "magnitude",
            ) if k in data})
        except TypeError as exc:
            raise FaultError(f"malformed fault event {dict(data)!r}: {exc}")


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, replayable set of fault events."""

    seed: int = 0
    events: tuple[FaultEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))

    def __len__(self) -> int:
        return len(self.events)

    def plane(self, plane: str) -> tuple[FaultEvent, ...]:
        """The events of one plane, in plan order."""
        if plane not in _PLANES:
            raise FaultError(f"unknown fault plane {plane!r}")
        return tuple(e for e in self.events if e.plane == plane)

    @property
    def harness_events(self) -> tuple[FaultEvent, ...]:
        return self.plane("harness")

    @property
    def simulation_events(self) -> tuple[FaultEvent, ...]:
        return self.plane("simulation")

    def key(self) -> str:
        """SHA-256 replay identity: equal keys == bit-identical plans."""
        from repro.runner.spec import canonical_json

        digest = hashlib.sha256()
        digest.update(canonical_json(self.to_json()).encode("utf-8"))
        return digest.hexdigest()

    def to_json(self) -> dict:
        """Plain-dict form, suitable for grid-point params."""
        return {
            "seed": int(self.seed),
            "events": [e.to_json() for e in self.events],
        }

    @classmethod
    def from_json(cls, data: Mapping | "FaultPlan" | None) -> "FaultPlan":
        """Rebuild a plan from its :meth:`to_json` form (idempotent)."""
        if data is None:
            return cls()
        if isinstance(data, FaultPlan):
            return data
        try:
            events = tuple(
                FaultEvent.from_json(e) for e in data.get("events", ())
            )
            return cls(seed=int(data.get("seed", 0)), events=events)
        except (AttributeError, TypeError, ValueError) as exc:
            raise FaultError(f"malformed fault plan: {exc}")

    # -- deterministic generators --------------------------------------

    @classmethod
    def build_harness(
        cls,
        seed: int,
        n_points: int,
        rate: float = 0.25,
        kinds: Sequence[str] = HARNESS_KINDS,
        max_faulty_attempts: int = 2,
    ) -> "FaultPlan":
        """A harness plan: each grid point faults with prob. *rate*.

        Fully determined by the arguments — the draws come from a
        generator seeded with ``derive_seed(seed, "faults.harness",
        n_points)``, never from global state.  ``max_faulty_attempts``
        bounds how many consecutive attempts a transient fault consumes,
        so a retry budget of the same size always recovers the sweep.
        """
        if not 0.0 <= rate <= 1.0:
            raise FaultError(f"fault rate must be in [0, 1], got {rate!r}")
        for kind in kinds:
            if kind not in HARNESS_KINDS:
                raise FaultError(f"unknown harness fault kind {kind!r}")
        rng = np.random.default_rng(
            derive_seed(seed, "faults.harness", n_points)
        )
        events = []
        for index in range(n_points):
            if rng.random() >= rate:
                continue
            kind = kinds[int(rng.integers(len(kinds)))]
            attempts = int(rng.integers(1, max(1, max_faulty_attempts) + 1))
            magnitude = float(rng.uniform(0.005, 0.02))  # stall seconds
            events.append(FaultEvent(
                plane="harness", kind=kind, point=index,
                attempts=attempts, magnitude=magnitude,
            ))
        return cls(seed=seed, events=tuple(events))

    @classmethod
    def build_simulation(
        cls,
        seed: int,
        rate_per_mcycle: float,
        window_cycles: float,
        kinds: Sequence[str] = ("third_party_touch", "preempt"),
        duration_range: tuple[float, float] = (30_000.0, 120_000.0),
    ) -> "FaultPlan":
        """A simulation plan: faults spread over one transmission window.

        ``rate_per_mcycle`` is the expected fault count per million
        simulated cycles; the realized count is the deterministic
        rounding of ``rate * window / 1e6`` so equal arguments always
        produce equal plans (no Poisson sampling).  Event start times and
        durations are drawn uniformly from the window.
        """
        if rate_per_mcycle < 0:
            raise FaultError("fault rate must be non-negative")
        for kind in kinds:
            if kind not in SIMULATION_KINDS:
                raise FaultError(f"unknown simulation fault kind {kind!r}")
        n_events = int(round(rate_per_mcycle * window_cycles / 1e6))
        rng = np.random.default_rng(
            derive_seed(seed, "faults.simulation", n_events)
        )
        lo, hi = duration_range
        events = []
        for _ in range(n_events):
            kind = kinds[int(rng.integers(len(kinds)))]
            at = float(rng.uniform(0.0, max(1.0, window_cycles)))
            duration = float(rng.uniform(lo, hi))
            magnitude = float(rng.uniform(1_000.0, 3_000.0))  # cycles
            events.append(FaultEvent(
                plane="simulation", kind=kind,
                at_cycles=at, duration_cycles=duration, magnitude=magnitude,
            ))
        # Sort by start time so installation order is stable and readable.
        events.sort(key=lambda e: e.at_cycles)
        return cls(seed=seed, events=tuple(events))

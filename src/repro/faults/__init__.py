"""Deterministic, replayable fault injection.

Two planes of adversity, both derived bit-for-bit from a seed:

* **harness** — faults against the experiment runner (worker kills,
  transient point errors, stalls, torn cache entries), consumed by
  :class:`FaultInjector` inside :class:`repro.runner.Runner`;
* **simulation** — faults against a live covert-channel session (third
  party touching the shared line, forced preemption, KSM unmerge,
  interconnect latency spikes), installed by
  :func:`install_simulation_faults`.

See ``EXPERIMENTS.md`` ("Failure handling & fault injection") for the
operational guide.
"""

from repro.faults.harness import (
    WORKER_KILL_EXIT_STATUS,
    FaultInjector,
    apply_worker_fault,
)
from repro.faults.plan import (
    HARNESS_KINDS,
    SIMULATION_KINDS,
    FaultEvent,
    FaultPlan,
)
from repro.faults.simulation import install_simulation_faults

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "apply_worker_fault",
    "install_simulation_faults",
    "HARNESS_KINDS",
    "SIMULATION_KINDS",
    "WORKER_KILL_EXIT_STATUS",
]

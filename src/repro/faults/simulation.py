"""Simulation-plane fault injection: hostile conditions for the channel.

Installs a :class:`~repro.faults.plan.FaultPlan`'s simulation events
into a live :class:`~repro.channel.session.SessionBase` as simulated
threads, scheduled relative to the moment of installation (normally the
start of a transmission).  Each fault models a disturbance the paper
calls out as the covert channel's operating reality:

* ``third_party_touch`` — an unrelated process that maps the shared
  frame keeps loading and occasionally flushing the covert line during
  its window, perturbing the coherence states the spy times
  (third-party sharers, Section VIII-C);
* ``preempt`` — a phantom competitor occupies the spy's core for the
  window, halving its progress and salting its timed loads with
  context-switch penalties (the forced preemption that desynchronizes
  the handshake, Section VII-A);
* ``ksm_unmerge`` — the shared page is unmerged (the sharers get
  private frames, severing the channel) and re-merged after the window
  by a fresh KSM scan, modeling dedup churn / page migration;
* ``latency_spike`` — a burst workload hammers the interconnect from a
  spare core for the window, inflating and jittering everyone's
  latencies.

All fault threads are daemons that terminate themselves at the end of
their window; they never keep the engine alive and never outlive their
scheduled disturbance.
"""

from __future__ import annotations

from repro.errors import FaultError
from repro.faults.plan import FaultPlan
from repro.kernel.paging import vpn_of
from repro.mem.cacheline import LINE_SIZE
from repro.mem.physical import PAGE_SIZE

#: Pages of the latency-spike burst region (small: contention, not
#: LLC-scale pollution — that is what noise_threads are for).
SPIKE_PAGES = 32

#: Accesses per latency-spike burst event.
SPIKE_BURST_LINES = 64


def _free_core(session) -> int:
    """A core no channel party is pinned to (falls back to the last one)."""
    n_cores = session.config.machine.n_cores
    reserved = set(session.reserved_cores())
    for core in range(n_cores):
        if core not in reserved:
            return core
    return n_cores - 1


def _interloper(session):
    """The (lazily created) process fault threads run as."""
    existing = getattr(session, "_fault_interloper", None)
    if existing is not None:
        return existing
    process = session.kernel.create_process("fault-interloper")
    session._fault_interloper = process
    return process


def install_simulation_faults(session, plan: FaultPlan) -> list:
    """Spawn *plan*'s simulation events into *session*'s simulator.

    Event times are relative to the simulator's current global clock, so
    installing at the start of a transmission schedules the faults
    mid-transmission.  Returns the spawned threads (daemons), mainly for
    tests.
    """
    base = session.sim.global_clock
    recorder = getattr(session, "recorder", None)
    threads = []
    for index, event in enumerate(plan.simulation_events):
        start = base + event.at_cycles
        end = start + max(1.0, event.duration_cycles)
        name = f"fault-{event.kind}-{index}"
        if recorder is not None:
            recorder.emit(base, "fault", event.kind, {
                "index": index,
                "start": start,
                "end": end,
                "magnitude": event.magnitude,
            })
        if event.kind == "third_party_touch":
            threads.append(_install_touch(session, name, start, end,
                                          period=event.magnitude))
        elif event.kind == "preempt":
            threads.append(_install_preempt(session, name, start, end,
                                            token=-(1_000 + index)))
        elif event.kind == "ksm_unmerge":
            threads.append(_install_ksm_unmerge(session, name, start, end))
        elif event.kind == "latency_spike":
            threads.append(_install_spike(session, name, start, end,
                                          mlp=max(1.0, event.magnitude / 300)))
        else:  # pragma: no cover - plan validation rejects unknown kinds
            raise FaultError(f"unknown simulation fault kind {event.kind!r}")
    return threads


def _install_touch(session, name, start, end, period):
    """A third party loading (and periodically flushing) the covert line."""
    kernel = session.kernel
    process = _interloper(session)
    pfn = kernel.phys.pfn_of(session.spy_proc.translate(session.spy_va))
    va = process.map_frame(pfn, writable=False)
    period = max(200.0, float(period))

    def program(cpu):
        now = yield from cpu.rdtsc()
        if start > now:
            yield from cpu.delay(start - now)
        touches = 0
        while True:
            now = yield from cpu.rdtsc()
            if now >= end:
                return
            if touches % 4 == 3:
                # Every fourth touch evicts the line outright — the
                # harshest thing an innocent sharer's reuse-distance
                # behavior does to it.
                yield from cpu.flush(va)
            else:
                yield from cpu.load(va)
            touches += 1
            yield from cpu.delay(period)

    return kernel.spawn(process, name, program,
                        core_id=_free_core(session), daemon=True)


def _install_preempt(session, name, start, end, token):
    """A phantom competitor on the spy's core for the window.

    Registering an extra scheduler assignment on the core is exactly
    what a runnable sibling thread does: the fair-share model halves the
    spy's progress and its ops start drawing stochastic context-switch
    penalties — the latency outliers a real preemption smears over
    rdtsc-bracketed loads.
    """
    kernel = session.kernel
    core = session.config.spy_core

    def program(cpu):
        now = yield from cpu.rdtsc()
        if start > now:
            yield from cpu.delay(start - now)
        kernel.scheduler.assign(token, core)
        try:
            yield from cpu.delay(end - max(start, now))
        finally:
            kernel.scheduler.release(token)

    # A kernel-context thread: the *phantom token* takes the scheduler
    # slot, so the coordinator itself must not occupy a core.
    return kernel.spawn_kernel_thread(name, program, core_id=core,
                                      daemon=True)


def _install_ksm_unmerge(session, name, start, end):
    """Unmerge the shared page at *start*; re-merge after the window."""
    kernel = session.kernel
    spy_proc = session.spy_proc
    vpn = vpn_of(session.spy_va)

    def program(cpu):
        now = yield from cpu.rdtsc()
        if start > now:
            yield from cpu.delay(start - now)
        pte = spy_proc.page_table[vpn]
        if pte.merged:
            kernel.ksm.unmerge(spy_proc, vpn)
        yield from cpu.delay(max(1.0, end - max(start, now)))
        # The private copy still holds the pre-agreed pattern, so the
        # next scan folds the page back onto the canonical frame.
        kernel.ksm.scan_once()

    return kernel.spawn_kernel_thread(name, program, core_id=0, daemon=True)


def _install_spike(session, name, start, end, mlp):
    """Sustained strided bursts from a spare core during the window."""
    kernel = session.kernel
    process = _interloper(session)
    base_va = process.mmap(SPIKE_PAGES)
    span = SPIKE_PAGES * PAGE_SIZE - SPIKE_BURST_LINES * LINE_SIZE

    def program(cpu):
        now = yield from cpu.rdtsc()
        if start > now:
            yield from cpu.delay(start - now)
        offset = 0
        while True:
            now = yield from cpu.rdtsc()
            if now >= end:
                return
            yield from cpu.burst(
                base_va + offset,
                count=SPIKE_BURST_LINES,
                stride=LINE_SIZE,
                write_ratio=0.1,
                mlp=mlp,
            )
            offset = (offset + SPIKE_BURST_LINES * LINE_SIZE) % span

    return kernel.spawn(process, name, program,
                        core_id=_free_core(session), daemon=True)

"""Physical memory: page frames, allocation, contents and refcounts.

The covert channel itself only needs physical *addresses*; frame
*contents* exist so that the KSM substrate (Section IV of the paper) can
do what the real kernel does — hash page contents and merge identical
pages.  Frames carry a refcount because a merged page is mapped by
several processes at once (copy-on-write).
"""

from __future__ import annotations

import hashlib

from repro.errors import ConfigError, InvalidAddressError, OutOfMemoryError

PAGE_SIZE = 4096


class Frame:
    """One physical page frame."""

    __slots__ = ("pfn", "data", "refcount")

    def __init__(self, pfn: int):
        self.pfn = pfn
        self.data = bytearray(PAGE_SIZE)
        self.refcount = 1

    def content_hash(self) -> bytes:
        """Digest of the frame contents (used by the KSM stable tree)."""
        return hashlib.sha256(bytes(self.data)).digest()


class PhysicalMemory:
    """A fixed pool of page frames with a free list.

    Parameters
    ----------
    n_frames:
        Number of 4 KiB frames in the pool.
    """

    def __init__(self, n_frames: int = 4096):
        if n_frames <= 0:
            raise ConfigError("n_frames must be positive")
        self.n_frames = n_frames
        self._frames: dict[int, Frame] = {}
        self._free: list[int] = list(range(n_frames - 1, -1, -1))

    @property
    def frames_allocated(self) -> int:
        """Number of currently allocated frames."""
        return len(self._frames)

    @property
    def frames_free(self) -> int:
        """Number of free frames remaining."""
        return len(self._free)

    def alloc(self) -> Frame:
        """Allocate one zeroed frame; raises OutOfMemoryError when empty."""
        if not self._free:
            raise OutOfMemoryError("physical memory exhausted")
        pfn = self._free.pop()
        frame = Frame(pfn)
        self._frames[pfn] = frame
        return frame

    def frame(self, pfn: int) -> Frame:
        """Return the allocated frame *pfn* (InvalidAddressError if free)."""
        try:
            return self._frames[pfn]
        except KeyError:
            raise InvalidAddressError(f"pfn {pfn} is not allocated") from None

    def get_ref(self, pfn: int) -> Frame:
        """Increment *pfn*'s refcount and return the frame."""
        frame = self.frame(pfn)
        frame.refcount += 1
        return frame

    def put_ref(self, pfn: int) -> None:
        """Decrement *pfn*'s refcount, freeing the frame at zero."""
        frame = self.frame(pfn)
        frame.refcount -= 1
        if frame.refcount <= 0:
            del self._frames[pfn]
            self._free.append(pfn)

    def frame_base(self, pfn: int) -> int:
        """Physical byte address of the start of frame *pfn*."""
        if pfn < 0 or pfn >= self.n_frames:
            raise InvalidAddressError(f"pfn {pfn} out of range")
        return pfn * PAGE_SIZE

    def pfn_of(self, paddr: int) -> int:
        """The frame number containing physical address *paddr*."""
        pfn = paddr // PAGE_SIZE
        if pfn < 0 or pfn >= self.n_frames:
            raise InvalidAddressError(f"paddr {paddr:#x} out of range")
        return pfn

    def write(self, paddr: int, data: bytes) -> None:
        """Write *data* at *paddr* (must stay within one frame)."""
        pfn = self.pfn_of(paddr)
        offset = paddr % PAGE_SIZE
        if offset + len(data) > PAGE_SIZE:
            raise InvalidAddressError("write crosses a frame boundary")
        self.frame(pfn).data[offset:offset + len(data)] = data

    def read(self, paddr: int, length: int) -> bytes:
        """Read *length* bytes at *paddr* (within one frame)."""
        pfn = self.pfn_of(paddr)
        offset = paddr % PAGE_SIZE
        if offset + length > PAGE_SIZE:
            raise InvalidAddressError("read crosses a frame boundary")
        return bytes(self.frame(pfn).data[offset:offset + length])


def page_pattern(seed: int, index: int) -> bytes:
    """A deterministic page-sized bit pattern.

    The trojan and spy fill their pages with identical patterns generated
    from a pre-agreed seed so KSM will merge them (Section IV: "a
    deterministic, pseudo-random number generator function that begins
    with the same seed").
    """
    out = bytearray()
    state = (seed * 2654435761 + index * 97531) & 0xFFFFFFFF
    while len(out) < PAGE_SIZE:
        state = (1103515245 * state + 12345) & 0x7FFFFFFF
        out += state.to_bytes(4, "little")
    return bytes(out[:PAGE_SIZE])


def content_digest(data: bytes) -> bytes:
    """Stable digest used for KSM content comparison."""
    return hashlib.sha256(data).digest()

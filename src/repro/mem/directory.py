"""Home-node directory coherence: global entries with sharer bitmasks.

The snoop-mode model (:mod:`repro.mem.coherence`) keeps one directory
per socket LLC and resolves misses by walking sockets.  Real multi-socket
parts instead assign every physical address a *home node* whose directory
entry is authoritative for the whole machine: an LLC miss always consults
the home first, and the home either answers from memory-side state or
snoops the single owning core (Section VIII-E's discussion of home-agent
systems).  :class:`DirectoryEntry` is that authoritative record — a
global :class:`DirectoryState`, a sharer *bitmask* over global core ids,
and owner extraction from the mask.

The request path itself lives in
:meth:`repro.mem.hierarchy.Machine._directory_load` and friends
(selected with ``MachineConfig(coherence="directory")``); this module is
pure bookkeeping so the entry semantics are unit-testable in isolation.

Sharer masks are deliberately *conservative*: private caches may evict
silently, so a set bit means "may hold a copy", never "must".  Owner
extraction therefore tolerates stale state — a named owner whose private
copy is gone falls back to the home's memory-side service.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class DirectoryState(enum.Enum):
    """Global (home-node) state of one line."""

    UNCACHED = "I"    # no cache anywhere may hold the line
    SHARED = "S"      # >= 1 clean copies; home answers from memory side
    EXCLUSIVE = "E"   # one core granted exclusive (clean) rights
    MODIFIED = "M"    # one core holds the only, dirty copy
    OWNED = "O"       # MOESI: dirty owner services reads, sharers exist

    @property
    def has_owner(self) -> bool:
        """Whether reads must be forwarded to an owning core."""
        return self in (
            DirectoryState.EXCLUSIVE,
            DirectoryState.MODIFIED,
            DirectoryState.OWNED,
        )


@dataclass(slots=True)
class DirectoryEntry:
    """One home-node directory entry.

    Attributes
    ----------
    addr:
        Line base address.
    state:
        Global :class:`DirectoryState`.
    sharers:
        Bitmask over *global* core ids (bit ``1 << core_id``); a superset
        of the cores actually holding a copy (bits go stale on silent
        private evictions and are healed lazily).
    owner_id:
        Explicit owner core for :attr:`DirectoryState.OWNED`, where the
        sharer mask alone cannot name the servicing core (the dirty
        owner coexists with clean sharers).
    value:
        Memory-side copy of the line's data tag.
    dirty:
        Whether ``value`` is newer than DRAM (write back on flush).
    """

    addr: int
    state: DirectoryState = DirectoryState.UNCACHED
    sharers: int = 0
    owner_id: int | None = None
    value: int = 0
    dirty: bool = False

    def add_sharer(self, core_id: int) -> None:
        """Record *core_id* as (possibly) holding a copy."""
        self.sharers |= 1 << core_id

    def drop_sharer(self, core_id: int) -> None:
        """Clear *core_id*'s bit (no-op if it was never set)."""
        self.sharers &= ~(1 << core_id)

    def sharer_ids(self) -> list[int]:
        """Global core ids with a set bit, in ascending order."""
        out = []
        mask = self.sharers
        while mask:
            low = mask & -mask
            out.append(low.bit_length() - 1)
            mask ^= low
        return out

    @property
    def sharer_count(self) -> int:
        """Popcount of the sharer mask."""
        return self.sharers.bit_count()

    def owner(self) -> int | None:
        """The core that must service reads, extracted from the entry.

        For E/M the owner is the single set bit of the sharer mask —
        ``None`` when the mask is empty (stale entry) or has multiple
        bits set (the exclusivity invariant was already broken, so no
        core can be trusted to service).  For O the mask legitimately
        has several bits, so the explicit :attr:`owner_id` is used.
        For UNCACHED/SHARED the home answers itself.
        """
        if self.state is DirectoryState.OWNED:
            return self.owner_id
        if not self.state.has_owner:
            return None
        if self.sharers == 0 or self.sharers & (self.sharers - 1):
            return None
        return self.sharers.bit_length() - 1

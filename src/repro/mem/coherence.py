"""Directory-based coherence controller, one domain per socket.

Implements Section VI of the paper literally.  Each socket's LLC keeps a
directory entry per line with the core-valid-bits vector:

* popcount >= 2 (or a clean LLC copy with no exclusive owner): the LLC
  answers a read miss directly — the *shared* latency band;
* popcount == 1 with exclusive rights granted: the LLC forwards the miss
  to the owner, the owner replies, downgrades E/M -> S and writes back —
  the *exclusive* latency band;
* popcount == 0 and no LLC copy: the miss falls through to the next
  socket, and finally to DRAM.

The controller also maintains inclusion (back-invalidation on LLC
eviction) or, in the non-inclusive variant, a tag-only snoop-filter
entry, which is the configuration discussed in Section VIII-E.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CoherenceError
from repro.mem.cache import SetAssocCache
from repro.mem.cacheline import CoherenceState, LlcLine, PrivateLine
from repro.mem.protocols import ProtocolPolicy


@dataclass
class Core:
    """One core's private cache hierarchy.

    L1 and L2 share :class:`PrivateLine` objects, so L2 is inclusive of
    L1 by construction and a state change is visible at both levels.
    """

    core_id: int
    socket_id: int
    l1: SetAssocCache[PrivateLine]
    l2: SetAssocCache[PrivateLine]


@dataclass
class ReadService:
    """Outcome of a directory read transaction inside one socket."""

    value: int
    #: "shared" when the LLC answered directly, "excl" when the request
    #: was forwarded to an owning core's private cache.
    band: str
    entry: LlcLine


@dataclass
class SocketDomain:
    """Coherence domain of one socket: cores + LLC data array + directory."""

    socket_id: int
    cores: list[Core]
    data_array: SetAssocCache[LlcLine]
    policy: ProtocolPolicy
    dram: dict[int, int]
    inclusive: bool = True
    directory: dict[int, LlcLine] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._cores_by_id = {core.core_id: core for core in self.cores}

    # ------------------------------------------------------------------
    # private-cache helpers
    # ------------------------------------------------------------------

    def core(self, core_id: int) -> Core:
        """The core object for a global core id (must be in this socket)."""
        return self._cores_by_id[core_id]

    def private_lookup(self, core: Core, addr: int) -> tuple[PrivateLine | None, str]:
        """L1-then-L2 lookup; promotes an L2 hit into L1.

        Returns (line, level) where level is "l1", "l2" or "miss".
        """
        base = addr & ~63  # line_addr inlined (64-byte lines)
        line = core.l1.lookup(base)
        if line is not None:
            return line, "l1"
        line = core.l2.lookup(base)
        if line is not None:
            victim = core.l1.insert(base, line)
            if victim is not None:
                self._handle_l1_victim(core, victim)
            return line, "l2"
        return None, "miss"

    def private_line(self, core: Core, addr: int) -> PrivateLine | None:
        """Peek at a private copy without touching LRU state."""
        base = addr & ~63  # line_addr inlined (64-byte lines)
        line = core.l1.lookup(base, touch=False)
        if line is None:
            line = core.l2.lookup(base, touch=False)
        return line

    def private_fill(
        self, core: Core, addr: int, state: CoherenceState, value: int
    ) -> None:
        """Install a line in the core's L1+L2 in the given state."""
        base = addr & ~63  # line_addr inlined (64-byte lines)
        existing = self.private_line(core, addr)
        if existing is not None:
            existing.state = state
            existing.value = value
            # make sure it is present at both levels
            if core.l1.lookup(base, touch=False) is None:
                victim = core.l1.insert(base, existing)
                if victim is not None:
                    self._handle_l1_victim(core, victim)
            return
        record = PrivateLine(addr=base, state=state, value=value)
        victim = core.l2.insert(base, record)
        if victim is not None:
            self._handle_l2_victim(core, victim)
        victim = core.l1.insert(base, record)
        if victim is not None:
            self._handle_l1_victim(core, victim)

    def private_invalidate(self, core: Core, addr: int) -> PrivateLine | None:
        """Drop a core's private copy, updating the directory entry.

        Returns the removed line (carrying the latest value) if present.
        """
        base = addr & ~63  # line_addr inlined (64-byte lines)
        line = core.l1.remove(base)
        line2 = core.l2.remove(base)
        line = line if line is not None else line2
        if line is None:
            return None
        entry = self.directory.get(base)
        if entry is not None:
            entry.core_valid.discard(core.core_id)
            if entry.owner == core.core_id:
                entry.owner = None
            if entry.forwarder == core.core_id:
                entry.forwarder = None
            if line.state.dirty:
                entry.value = line.value
                entry.dirty = True
        return line

    def _handle_l1_victim(self, core: Core, victim: PrivateLine) -> None:
        # The same object still lives in L2 (L2 is inclusive of L1), so
        # state and value remain visible; nothing else to do.  If L2 lost
        # it already, fall back to full-eviction handling.
        if core.l2.lookup(victim.addr, touch=False) is None:
            self._handle_l2_victim(core, victim)

    def _handle_l2_victim(self, core: Core, victim: PrivateLine) -> None:
        # Inclusion: L1 must not outlive L2.
        core.l1.remove(victim.addr)
        entry = self.directory.get(victim.addr)
        if entry is None:
            if victim.state.dirty:
                self.dram[victim.addr] = victim.value
            return
        entry.core_valid.discard(core.core_id)
        if entry.owner == core.core_id:
            entry.owner = None
        if entry.forwarder == core.core_id:
            entry.forwarder = None
        if victim.state.dirty:
            entry.value = victim.value
            entry.dirty = True
        self._maybe_collect_entry(victim.addr, entry)

    # ------------------------------------------------------------------
    # LLC / directory
    # ------------------------------------------------------------------

    def llc_fill(self, addr: int, value: int) -> LlcLine:
        """Create or refresh the directory entry + LLC data for *addr*."""
        base = addr & ~63  # line_addr inlined (64-byte lines)
        entry = self.directory.get(base)
        if entry is None:
            entry = LlcLine(addr=base, value=value)
            self.directory[base] = entry
        else:
            entry.value = value
        if not entry.data_valid or base not in self.data_array:
            entry.data_valid = True
            victim = self.data_array.insert(base, entry)
            if victim is not None and victim.addr != base:
                self._handle_llc_victim(victim)
        return entry

    def _handle_llc_victim(self, victim: LlcLine) -> None:
        if self.inclusive:
            # Back-invalidate every private copy in this socket.
            for core_id in list(victim.core_valid):
                core = self._cores_by_id.get(core_id)
                if core is None:
                    continue
                line = core.l1.remove(victim.addr)
                line2 = core.l2.remove(victim.addr)
                line = line if line is not None else line2
                if line is not None and line.state.dirty:
                    victim.value = line.value
                    victim.dirty = True
            victim.core_valid.clear()
            victim.owner = None
            victim.forwarder = None
            if victim.dirty:
                self.dram[victim.addr] = victim.value
            self.directory.pop(victim.addr, None)
        else:
            # Non-inclusive: keep a tag-only snoop-filter entry while
            # private copies remain.
            victim.data_valid = False
            self._maybe_collect_entry(victim.addr, victim)

    def _maybe_collect_entry(self, addr: int, entry: LlcLine) -> None:
        if not entry.core_valid and not entry.data_valid:
            if entry.dirty:
                self.dram[addr] = entry.value
            self.directory.pop(addr, None)

    def read(self, addr: int, requester_id: int | None) -> ReadService | None:
        """One directory read transaction (Section VI-A walk).

        *requester_id* is the id of a local requesting core, or ``None``
        when the request arrives from another socket over QPI.  Returns
        ``None`` when the socket cannot service the request.
        """
        base = addr & ~63  # line_addr inlined (64-byte lines)
        entry = self.directory.get(base)
        if entry is None:
            return None
        if requester_id is not None:
            # Self-heal: a requester that just missed privately cannot
            # still be a valid sharer.
            entry.core_valid.discard(requester_id)
            if entry.owner == requester_id:
                entry.owner = None
        if entry.owner is not None:
            owner = self._cores_by_id.get(entry.owner)
            if owner is None:
                raise CoherenceError(
                    f"directory of socket {self.socket_id} names owner core "
                    f"{entry.owner} which is not in this socket"
                )
            owner_line = self.private_line(owner, base)
            if owner_line is None or not owner_line.state.readable:
                raise CoherenceError(
                    f"line {base:#x}: owner core {entry.owner} holds no copy"
                )
            value = owner_line.value
            self.policy.on_owner_read_service(entry, owner_line)
            return ReadService(value=value, band="excl", entry=entry)
        if entry.data_valid:
            self.data_array.lookup(base)  # LRU touch
            return ReadService(value=entry.value, band="shared", entry=entry)
        if entry.core_valid:
            # Non-inclusive tag-only entry: forward from any sharer.
            sharer_id = (
                entry.forwarder
                if entry.forwarder in entry.core_valid
                else min(entry.core_valid)
            )
            sharer_line = self.private_line(self._cores_by_id[sharer_id], base)
            if sharer_line is None:
                raise CoherenceError(
                    f"line {base:#x}: sharer {sharer_id} in core-valid bits "
                    "holds no private copy"
                )
            return ReadService(value=sharer_line.value, band="excl", entry=entry)
        self._maybe_collect_entry(base, entry)
        return None

    def grant_to_local(self, entry: LlcLine, core: Core, value: int) -> CoherenceState:
        """Register a local core as a sharer and fill its private caches."""
        entry.core_valid.add(core.core_id)
        previous_forwarder = entry.forwarder
        state = self.policy.fill_state_for_read(entry, core.core_id)
        if state is CoherenceState.EXCLUSIVE:
            entry.owner = core.core_id
        elif (
            state is CoherenceState.FORWARD
            and previous_forwarder is not None
            and previous_forwarder != core.core_id
        ):
            # MESIF: the forwarder role moved to the newest sharer; the
            # previous forwarder drops to plain S.
            old = self._cores_by_id.get(previous_forwarder)
            if old is not None:
                old_line = self.private_line(old, entry.addr)
                if old_line is not None and old_line.state is CoherenceState.FORWARD:
                    old_line.state = CoherenceState.SHARED
        self.private_fill(core, entry.addr, state, value)
        return state

    def invalidate_line(self, addr: int) -> tuple[int | None, bool]:
        """Remove the line from this whole domain (clflush semantics).

        Returns (latest_value, was_dirty).
        """
        base = addr & ~63  # line_addr inlined (64-byte lines)
        entry = self.directory.pop(base, None)
        latest: int | None = None
        dirty = False
        if entry is None:
            return latest, dirty
        self.data_array.remove(base)
        if entry.data_valid:
            latest = entry.value
        if entry.dirty:
            dirty = True
        for core_id in list(entry.core_valid):
            core = self._cores_by_id.get(core_id)
            if core is None:
                continue
            line = core.l1.remove(base)
            line2 = core.l2.remove(base)
            line = line if line is not None else line2
            if line is not None:
                if latest is None or line.state.dirty:
                    latest = line.value
                if line.state.dirty:
                    dirty = True
        return latest, dirty

"""The machine model: sockets, cores, caches and the access API.

:class:`Machine` wires the per-socket coherence domains together and
implements the three operations thread programs use — ``load``, ``store``
and ``flush`` — returning both the access latency (base path latency +
interconnect contention + jitter) and the service path, which maps
one-to-one onto the paper's latency bands.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigError
from repro.mem.cache import SetAssocCache
from repro.mem.cacheline import CoherenceState, LlcLine, line_addr
from repro.mem.coherence import Core, SocketDomain
from repro.mem.directory import DirectoryEntry, DirectoryState
from repro.mem.interconnect import Interconnect
from repro.mem.latency import LatencyProfile, NoiseModel, ObfuscationPolicy
from repro.mem.protocols import make_policy
from repro.sim.events import AccessPath
from repro.sim.rng import RngStreams
from repro.sim.stats import StatsRegistry

#: The four (location, state) bands of the paper — membership test used
#: on the per-op _finish path instead of the AccessPath property (which
#: costs a descriptor call plus a tuple build per access).
_COHERENCE_BANDS = frozenset({
    AccessPath.LOCAL_SHARED,
    AccessPath.LOCAL_EXCL,
    AccessPath.REMOTE_SHARED,
    AccessPath.REMOTE_EXCL,
})


@dataclass(frozen=True)
class MachineConfig:
    """Geometry and behaviour of the simulated machine.

    Defaults model the paper's dual-socket Xeon X5650 (2 sockets x 6
    cores, 32 KB L1, 256 KB L2, shared inclusive LLC).  The LLC is scaled
    down from 12 MB to 2 MB per socket to keep simulations tractable;
    only capacity-eviction *rates* under noise depend on this, and the
    noise workload working-set is scaled with it (see DESIGN.md).
    """

    n_sockets: int = 2
    cores_per_socket: int = 6
    l1_sets: int = 64
    l1_assoc: int = 8
    l2_sets: int = 512
    l2_assoc: int = 8
    llc_sets: int = 2048
    llc_assoc: int = 16
    protocol: str = "mesi"
    #: Coherence backend: "snoop" (per-socket LLC directories resolved by
    #: walking sockets, the default) or "directory" (a global home-node
    #: directory of :class:`repro.mem.directory.DirectoryEntry` records —
    #: every LLC miss consults the address's home socket first, changing
    #: which service paths exist and therefore the latency-band shape).
    coherence: str = "snoop"
    inclusive: bool = True
    #: Section VIII-E mitigation: LLC is notified of E->M transitions and
    #: can answer E-state read misses directly, merging the E and S bands.
    llc_direct_e_response: bool = False
    #: Section VIII-E discussion: on home-agent directory systems, an
    #: LLC miss first consults the address's *home* socket directory, so
    #: service latency additionally depends on whether the requester is
    #: the home node — creating extra latency profiles an adversary can
    #: exploit.  Homes are page-interleaved across sockets.
    home_agent: bool = False
    home_hop_cycles: float = 34.0
    latency: LatencyProfile = field(default_factory=LatencyProfile)
    noise: NoiseModel = field(default_factory=NoiseModel)
    #: Interconnect contention: window width, per-window no-delay
    #: capacities and the added delay per excess access.
    contention_window: float = 2_000.0
    ring_capacity: float = 50.0
    qpi_capacity: float = 35.0
    mem_capacity: float = 38.0
    delay_per_excess: float = 3.5

    def __post_init__(self) -> None:
        if self.n_sockets < 1:
            raise ConfigError("need at least one socket")
        if self.cores_per_socket < 1:
            raise ConfigError("need at least one core per socket")
        if self.coherence not in ("snoop", "directory"):
            raise ConfigError(
                f"unknown coherence backend {self.coherence!r}; "
                "expected 'snoop' or 'directory'"
            )
        if self.coherence == "directory" and self.home_agent:
            raise ConfigError(
                "home_agent is a snoop-mode refinement; the directory "
                "backend already routes every miss through the home node"
            )

    @property
    def n_cores(self) -> int:
        """Total core count across sockets."""
        return self.n_sockets * self.cores_per_socket

    def with_updates(self, **changes) -> "MachineConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **changes)

    def fingerprint(self) -> str:
        """Canonical JSON identity of this config (nested profiles too).

        Two configs with equal fingerprints build behaviorally identical
        machines; the warm-worker pool and the calibration memo key on
        this.
        """
        import json
        from dataclasses import asdict

        return json.dumps(asdict(self), sort_keys=True,
                          separators=(",", ":"), default=str)


class Machine:
    """A coherent multi-socket, multi-core machine.

    Parameters
    ----------
    config:
        Machine geometry and behaviour flags.
    rng:
        Deterministic RNG registry (jitter draws come from the
        ``"machine.jitter"`` stream).
    stats:
        Optional shared statistics registry.
    """

    def __init__(
        self,
        config: MachineConfig | None = None,
        rng: RngStreams | None = None,
        stats: StatsRegistry | None = None,
    ):
        self.config = config if config is not None else MachineConfig()
        self.rng = rng if rng is not None else RngStreams(0)
        self.stats = stats if stats is not None else StatsRegistry()
        self.dram: dict[int, int] = {}
        self.obfuscation: ObfuscationPolicy | None = None
        self._jitter_rng = self.rng.get("machine.jitter")
        # -- bound hot-path state ---------------------------------------
        # Every load/store/flush used to pay an f-string format plus a
        # string-dict probe per stats sample and a dict rebuild per
        # latency lookup; bind counters and tables once instead.
        profile = self.config.latency
        self._base_latency: dict[AccessPath, float] = {
            path: profile.for_path(path)
            for path in AccessPath
            if path is not AccessPath.UNCACHED
        }
        # Coherence-band latency table; on Section VIII-E mitigated
        # hardware the LLC answers E-state reads itself, collapsing the
        # E band onto the S band.
        self._band_table: dict[AccessPath, float] = dict(self._base_latency)
        if self.config.llc_direct_e_response:
            self._band_table[AccessPath.LOCAL_EXCL] = profile.local_shared
            self._band_table[AccessPath.REMOTE_EXCL] = profile.remote_shared
        self._home_agent = (
            self.config.home_agent and self.config.n_sockets >= 2
        )
        self._load_counters = {
            path: self.stats.counter_handle(f"machine.load.{path.value}")
            for path in AccessPath
            if path is not AccessPath.UNCACHED
        }
        # One-probe fast table for load(): path -> (band-aware base
        # latency, bound counter), so the hot path pays a single enum
        # hash instead of two.
        self._path_info = {
            path: (self._band_table[path], self._load_counters[path])
            for path in self._band_table
        }
        self._store_hit_counter = self.stats.counter_handle("machine.store.hit_m")
        self._store_rfo_counter = self.stats.counter_handle("machine.store.rfo")
        self._flush_counter = self.stats.counter_handle("machine.flush")
        self._noise = self.config.noise
        self.interconnect = Interconnect(
            self.config.n_sockets,
            window=self.config.contention_window,
            ring_capacity=self.config.ring_capacity,
            qpi_capacity=self.config.qpi_capacity,
            mem_capacity=self.config.mem_capacity,
            delay_per_excess=self.config.delay_per_excess,
        )
        policy = make_policy(self.config.protocol)
        self.policy = policy
        # -- directory (home-node) backend state ------------------------
        # One global directory keyed by line address; each entry's home
        # socket is derived from the address (page-interleaved).  In
        # snoop mode the dict stays empty and the flag short-circuits.
        self._dir_mode = self.config.coherence == "directory"
        self.home_directory: dict[int, DirectoryEntry] = {}
        self._dir_trace = None
        if self._dir_mode:
            self._dir_owner_fwd_counter = self.stats.counter_handle(
                "machine.dir.owner_forward")
            self._dir_home_counter = self.stats.counter_handle(
                "machine.dir.home_service")
            self._dir_fill_counter = self.stats.counter_handle(
                "machine.dir.memory_fill")
        self.cores: list[Core] = []
        self.sockets: list[SocketDomain] = []
        cfg = self.config
        for sid in range(cfg.n_sockets):
            socket_cores = []
            for c in range(cfg.cores_per_socket):
                core_id = sid * cfg.cores_per_socket + c
                core = Core(
                    core_id=core_id,
                    socket_id=sid,
                    l1=SetAssocCache(f"l1.{core_id}", cfg.l1_sets, cfg.l1_assoc),
                    l2=SetAssocCache(f"l2.{core_id}", cfg.l2_sets, cfg.l2_assoc),
                )
                socket_cores.append(core)
                self.cores.append(core)
            domain = SocketDomain(
                socket_id=sid,
                cores=socket_cores,
                data_array=SetAssocCache(f"llc.{sid}", cfg.llc_sets, cfg.llc_assoc),
                policy=policy,
                dram=self.dram,
                inclusive=cfg.inclusive,
            )
            self.sockets.append(domain)
        # Per-core direct indexes for the access hot paths (socket_of
        # keeps its range validation for external callers; internal
        # calls always carry a valid pinned core id).  Interconnect
        # resources are stable for the machine's lifetime (reset()
        # mutates in place), so their register methods can be bound.
        self._socket_by_core = [
            self.sockets[cid // cfg.cores_per_socket] for cid in range(cfg.n_cores)
        ]
        ic = self.interconnect
        self._ring_register = [r.register for r in ic.rings]
        self._qpi_register = ic.qpi.register
        self._mem_register = [r.register for r in ic.mems]

    def reset(self, rng: RngStreams | None = None) -> None:
        """Restore pristine post-construction state, keeping the topology.

        The warm-worker path reuses one constructed machine across grid
        points whose structural parameters match: building the object
        graph (12 cores x 2 private caches, per-socket LLC + directory,
        interconnect resources, bound counters) costs far more than
        wiping it.  After ``reset`` the machine must be observationally
        identical to ``Machine(self.config, rng)`` — the golden
        determinism digests and the warm-vs-fresh equality tests hold it
        to that.  Resets, in order:

        * any instance-level interposition on ``load``/``store``/``flush``
          (e.g. a detection :class:`EventMonitor`) is unwrapped;
        * every private cache, LLC data array and directory is emptied;
        * DRAM contents are dropped (cleared in place — sockets hold a
          reference to the same dict);
        * the interconnect windows and the stats registry are cleared in
          place, so bound handles stay valid;
        * the RNG registry is replaced by *rng* (fresh streams for the
          next point's seed) and the jitter stream is re-bound.
        """
        tap = getattr(self, "_trace_tap", None)
        if tap is not None:
            # A trace tap also swapped the interconnect register
            # bindings; its detach restores them before the generic
            # unwrap below clears any remaining op interposition.
            tap.detach()
        for name in ("load", "store", "flush"):
            self.__dict__.pop(name, None)
        for core in self.cores:
            core.l1.clear()
            core.l2.clear()
        for domain in self.sockets:
            domain.data_array.clear()
            domain.directory.clear()
        self.home_directory.clear()
        self._dir_trace = None
        self.dram.clear()
        self.obfuscation = None
        self.interconnect.reset()
        self.stats.reset()
        if rng is not None:
            self.rng = rng
        self._jitter_rng = self.rng.get("machine.jitter")

    # ------------------------------------------------------------------
    # checkpoint support (see repro.checkpoint)
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Every piece of mutable machine state, as plain containers.

        The returned dict references the *live* line records (pickling
        the checkpoint immediately serializes their current state, and a
        single pickle graph preserves the identity sharing between L1/L2
        — inclusive by object sharing — and between each socket's
        directory dict and LLC data array).  Cache sets are captured as
        (addr, line) pair lists in insertion order, which *is* the LRU
        order; interconnect resources keep their whole sliding-window
        index so contention delays resume bit-identically.

        Only valid on an uninstrumented machine: obfuscation policies and
        trace taps interpose unpicklable closures, so sessions running
        either fall back to unsegmented execution.
        """
        if self.obfuscation is not None:
            raise ConfigError(
                "cannot snapshot a machine with an obfuscation policy "
                "installed (live policy state is not checkpointable)"
            )
        cores = [
            (
                [list(bucket.items()) for bucket in core.l1._sets],
                [list(bucket.items()) for bucket in core.l2._sets],
            )
            for core in self.cores
        ]
        sockets = [
            (
                [list(bucket.items()) for bucket in d.data_array._sets],
                dict(d.directory),
            )
            for d in self.sockets
        ]
        ic = self.interconnect
        resources = {}
        for res in (*ic.rings, ic.qpi, *ic.mems):
            resources[res.name] = (
                list(res._events),
                None if res._times is None else list(res._times),
                res._tpos,
                res._weight,
                res._uniform,
                res.total_traffic,
            )
        return {
            "dram": dict(self.dram),
            "cores": cores,
            "sockets": sockets,
            "home_directory": dict(self.home_directory),
            "resources": resources,
            "counters": self.stats.counters(),
            "histograms": {
                name: list(h.samples)
                for name, h in self.stats._histograms.items()
            },
        }

    def restore_state(self, state: dict) -> None:
        """Overwrite all mutable state with a :meth:`snapshot_state`.

        Everything is restored *in place* (the containers themselves
        survive, like :meth:`reset`), so bound counter handles, the
        sockets' shared reference to ``dram`` and the bound interconnect
        register methods all stay valid.  RNG streams are restored
        separately through :class:`~repro.sim.rng.RngStreams` — the
        jitter binding keeps pointing at the same generator object.
        """
        self.dram.clear()
        self.dram.update(state["dram"])
        for core, (l1_sets, l2_sets) in zip(self.cores, state["cores"]):
            for bucket, entries in zip(core.l1._sets, l1_sets):
                bucket.clear()
                bucket.update(entries)
            for bucket, entries in zip(core.l2._sets, l2_sets):
                bucket.clear()
                bucket.update(entries)
        for domain, (llc_sets, directory) in zip(self.sockets, state["sockets"]):
            for bucket, entries in zip(domain.data_array._sets, llc_sets):
                bucket.clear()
                bucket.update(entries)
            domain.directory.clear()
            domain.directory.update(directory)
        self.home_directory.clear()
        self.home_directory.update(state["home_directory"])
        ic = self.interconnect
        for res in (*ic.rings, ic.qpi, *ic.mems):
            events, times, tpos, weight, uniform, total = (
                state["resources"][res.name]
            )
            res._events.clear()
            res._events.extend(events)
            res._times = None if times is None else list(times)
            res._tpos = tpos
            res._weight = weight
            res._uniform = uniform
            res.total_traffic = total
        self.stats.reset()
        for name, value in state["counters"].items():
            self.stats.counter_handle(name).value = value
        for name, samples in state["histograms"].items():
            hist = self.stats.histogram(name)
            hist.samples.extend(samples)

    # ------------------------------------------------------------------
    # topology helpers
    # ------------------------------------------------------------------

    def socket_of(self, core_id: int) -> SocketDomain:
        """The socket domain that owns *core_id*."""
        if core_id < 0 or core_id >= self.config.n_cores:
            raise ConfigError(f"core {core_id} out of range")
        return self.sockets[core_id // self.config.cores_per_socket]

    def core(self, core_id: int) -> Core:
        """The core object for a global core id."""
        return self.cores[core_id]

    # ------------------------------------------------------------------
    # access API
    # ------------------------------------------------------------------

    def load(
        self, core_id: int, paddr: int, now: float = 0.0
    ) -> tuple[int, float, AccessPath]:
        """Service a load; returns (value, latency_cycles, path)."""
        if self._dir_mode:
            return self._directory_load(core_id, paddr, now)
        base = paddr & ~63
        home = self._socket_by_core[core_id]
        core = self.cores[core_id]
        line, level = home.private_lookup(core, base)
        if line is not None:
            path = AccessPath.L1_HIT if level == "l1" else AccessPath.L2_HIT
            base_lat, counter = self._path_info[path]
            latency = self._finish(core_id, base_lat, path)
            counter.value += 1
            return line.value, latency, path

        home_sid = home.socket_id
        ring_register = self._ring_register[home_sid]
        contention = ring_register(now, 1.0)
        home_hop = self._home_agent_hop(home_sid, base, now)
        service = home.read(base, requester_id=core_id)
        if service is not None:
            path = (
                AccessPath.LOCAL_EXCL
                if service.band == "excl"
                else AccessPath.LOCAL_SHARED
            )
            if path is AccessPath.LOCAL_EXCL:
                # Owner-forwarded data crosses the ring a second time
                # (LLC -> owner -> requester), so E-state services are
                # twice as sensitive to ring congestion — the asymmetry
                # the paper observes under kernel-build noise.
                contention += ring_register(now, 1.0)
            home.grant_to_local(service.entry, core, service.value)
            base_lat, counter = self._path_info[path]
            latency = (base_lat + home_hop + self._queueing(contention))
            latency = self._finish(core_id, latency, path)
            counter.value += 1
            return service.value, latency, path

        # Probe the other sockets over QPI before falling back to DRAM
        # (Section VI-B).
        for remote in self.sockets:
            if remote.socket_id == home_sid:
                continue
            remote_service = remote.read(base, requester_id=None)
            if remote_service is None:
                continue
            path = (
                AccessPath.REMOTE_EXCL
                if remote_service.band == "excl"
                else AccessPath.REMOTE_SHARED
            )
            remote_ring = self._ring_register[remote.socket_id]
            contention += self._qpi_register(now, 1.0)
            contention += remote_ring(now, 1.0)
            if path is AccessPath.REMOTE_EXCL:
                # Remote owner-forward: a second remote-ring crossing and
                # a second QPI message leg.
                contention += remote_ring(now, 1.0)
                contention += self._qpi_register(now, 1.0)
            value = remote_service.value
            # The line is now present in (at least) two sockets: install a
            # shared copy locally; neither socket keeps exclusive rights.
            entry = home.llc_fill(base, value)
            entry.core_valid.add(core_id)
            entry.owner = None
            home.private_fill(core, base, CoherenceState.SHARED, value)
            base_lat, counter = self._path_info[path]
            latency = (base_lat + home_hop + self._queueing(contention))
            latency = self._finish(core_id, latency, path)
            counter.value += 1
            return value, latency, path

        # DRAM fill; requester gets the line in E state (sole copy).
        value = self.dram.get(base, 0)
        contention += self._mem_register[home_sid](now, 1.0)
        entry = home.llc_fill(base, value)
        home.grant_to_local(entry, core, value)
        path = AccessPath.DRAM
        base_lat, counter = self._path_info[path]
        latency = self._finish(
            core_id,
            base_lat + home_hop + self._queueing(contention),
            path,
        )
        counter.value += 1
        return value, latency, path

    def _queueing(self, mean_delay: float) -> float:
        """Turn a mean queuing delay into a bursty random draw.

        Interconnect queues are bursty: the same average occupancy
        produces mostly-small delays with a tail, which is what pushes
        latency samples out of their calibrated bands under co-located
        noise (Figure 9).  A gamma(2) draw keeps the mean while thinning
        the tail at light load (an M/M/1 queue seen through a two-hop
        path), so one background thread does not already saturate the
        error rate.
        """
        if mean_delay <= 0:
            return 0.0
        return float(self._jitter_rng.gamma(2.0, mean_delay / 2.0))

    def store(
        self, core_id: int, paddr: int, value: int, now: float = 0.0
    ) -> tuple[float, AccessPath]:
        """Service a store (read-for-ownership); returns (latency, path)."""
        if self._dir_mode:
            return self._directory_store(core_id, paddr, value, now)
        base = paddr & ~63
        home = self._socket_by_core[core_id]
        core = self.cores[core_id]
        profile = self.config.latency
        line, _level = home.private_lookup(core, base)
        if line is not None and line.state.writable:
            line.value = value
            latency = self._finish(core_id, profile.l1_hit, AccessPath.L1_HIT)
            self._store_hit_counter.value += 1
            return latency, AccessPath.L1_HIT

        # Gather the latest value and where it came from, invalidating
        # every other copy in the system.
        latest, source_path = self._gather_for_ownership(core_id, base, now)
        if line is not None and line.state.readable:
            # Upgrade in place (e.g. E -> M, S -> M after invalidations).
            latest = line.value
        entry = home.llc_fill(base, latest)
        entry.core_valid = {core_id}
        entry.owner = core_id
        entry.forwarder = None
        entry.dirty = True
        home.private_fill(core, base, CoherenceState.MODIFIED, value)
        entry.value = value
        latency = self._base_latency[source_path] + profile.store_upgrade
        latency = self._finish(core_id, latency, AccessPath.UNCACHED)
        self._store_rfo_counter.value += 1
        return latency, source_path

    def _gather_for_ownership(
        self, core_id: int, base: int, now: float
    ) -> tuple[int, AccessPath]:
        home = self._socket_by_core[core_id]
        latest: int | None = None
        source = AccessPath.DRAM
        self._ring_register[home.socket_id](now, 1.0)
        for domain in self.sockets:
            entry = domain.directory.get(base)
            if entry is None:
                continue
            is_home = domain.socket_id == home.socket_id
            if entry.owner is not None and entry.owner != core_id:
                owner_core = domain.core(entry.owner)
                owner_line = domain.private_line(owner_core, base)
                if owner_line is not None:
                    latest = owner_line.value
                source = (
                    AccessPath.LOCAL_EXCL if is_home else AccessPath.REMOTE_EXCL
                )
            elif latest is None and entry.data_valid:
                latest = entry.value
                if source is AccessPath.DRAM:
                    source = (
                        AccessPath.LOCAL_SHARED
                        if is_home
                        else AccessPath.REMOTE_SHARED
                    )
            for other_id in list(entry.core_valid):
                if other_id == core_id:
                    continue
                other = domain.core(other_id)
                invalidated = domain.private_invalidate(other, base)
                if invalidated is not None and invalidated.state.dirty:
                    latest = invalidated.value
            if not is_home:
                domain.directory.pop(base, None)
                domain.data_array.remove(base)
                self._qpi_register(now, 1.0)
        if latest is None:
            latest = self.dram.get(base, 0)
            self._mem_register[home.socket_id](now, 1.0)
        return latest, source

    def flush(self, core_id: int, paddr: int, now: float = 0.0) -> float:
        """clflush: drop the line from every cache in every socket."""
        if self._dir_mode:
            return self._directory_flush(core_id, paddr, now)
        base = paddr & ~63
        profile = self.config.latency
        latest: int | None = None
        dirty = False
        for domain in self.sockets:
            value, was_dirty = domain.invalidate_line(base)
            if value is not None and (latest is None or was_dirty):
                latest = value
            dirty = dirty or was_dirty
        latency = profile.flush
        if dirty and latest is not None:
            self.dram[base] = latest
            latency += profile.flush_writeback
            self._mem_register[self._socket_by_core[core_id].socket_id](now, 1.0)
        self._flush_counter.value += 1
        return self._finish(core_id, latency, AccessPath.UNCACHED)

    # ------------------------------------------------------------------
    # directory (home-node) request path
    # ------------------------------------------------------------------
    #
    # Selected with MachineConfig(coherence="directory").  Every LLC
    # miss first consults the address's *home* socket (page-interleaved,
    # like the snoop-mode home_agent refinement) whose DirectoryEntry is
    # authoritative for the whole machine.  Three service classes fall
    # out, and they map onto the paper's bands differently than snoop
    # mode does:
    #
    # * owner forward (E/M/O entry with a live owner): home snoops the
    #   owning core -> LOCAL_EXCL / REMOTE_EXCL by the *owner's* socket;
    # * home-side service (SHARED entry): the home answers from its
    #   memory-side copy -> LOCAL_SHARED / REMOTE_SHARED by the *home's*
    #   socket — so a remote sharer no longer produces a remote band if
    #   the home is local, a genuinely different leakage surface;
    # * memory fill (no entry / no copies): DRAM, requester granted E.
    #
    # Sharer masks are conservative supersets (silent private evictions
    # leave stale bits); every path self-heals before trusting a bit.

    def _dir_home_socket(self, base: int) -> int:
        """Home socket of a line address (page-interleaved)."""
        return (base >> 12) % self.config.n_sockets

    def _dir_entry_heal(self, entry: DirectoryEntry, core_id: int) -> None:
        """Drop the requester's stale claim on *entry*, if any.

        A core that just missed privately cannot still hold a copy; if
        the entry names it owner, ownership lapses and the entry falls
        back to home-side (SHARED) service.
        """
        entry.drop_sharer(core_id)
        if entry.owner_id == core_id:
            entry.owner_id = None
            entry.state = DirectoryState.SHARED

    def _directory_load(
        self, core_id: int, paddr: int, now: float
    ) -> tuple[int, float, AccessPath]:
        base = paddr & ~63
        domain = self._socket_by_core[core_id]
        core = self.cores[core_id]
        line, level = domain.private_lookup(core, base)
        if line is not None:
            path = AccessPath.L1_HIT if level == "l1" else AccessPath.L2_HIT
            base_lat, counter = self._path_info[path]
            latency = self._finish(core_id, base_lat, path)
            counter.value += 1
            return line.value, latency, path

        req_sid = domain.socket_id
        contention = self._ring_register[req_sid](now, 1.0)
        home_sid = self._dir_home_socket(base)
        hop = 0.0
        if home_sid != req_sid:
            # The directory consult itself crosses QPI to the home node.
            contention += self._qpi_register(now, 1.0)
            hop = self.config.home_hop_cycles
        entry = self.home_directory.get(base)
        trace = self._dir_trace
        if entry is not None:
            self._dir_entry_heal(entry, core_id)
            owner = entry.owner()
            if owner is not None:
                owner_domain = self._socket_by_core[owner]
                owner_line = owner_domain.private_line(
                    self.cores[owner], base)
                if owner_line is not None and owner_line.state.readable:
                    # Live owner: home forwards the request; data comes
                    # cache-to-cache from the owner's socket.
                    value = owner_line.value
                    osid = owner_domain.socket_id
                    contention += self._ring_register[osid](now, 1.0)
                    if osid != req_sid:
                        contention += self._qpi_register(now, 1.0)
                    if owner_line.state.dirty and self.policy.has_owned_state:
                        # MOESI: the dirty owner keeps servicing in O.
                        owner_line.state = CoherenceState.OWNED
                        entry.state = DirectoryState.OWNED
                        entry.owner_id = owner
                        entry.dirty = True
                    else:
                        if owner_line.state.dirty:
                            entry.dirty = True
                        owner_line.state = CoherenceState.SHARED
                        entry.state = DirectoryState.SHARED
                        entry.owner_id = None
                    entry.value = value
                    entry.add_sharer(owner)
                    entry.add_sharer(core_id)
                    domain.private_fill(
                        core, base, CoherenceState.SHARED, value)
                    path = (
                        AccessPath.LOCAL_EXCL
                        if osid == req_sid
                        else AccessPath.REMOTE_EXCL
                    )
                    if trace is not None:
                        trace(now, "owner_forward", base, entry)
                    base_lat, counter = self._path_info[path]
                    latency = self._finish(
                        core_id,
                        base_lat + hop + self._queueing(contention),
                        path,
                    )
                    counter.value += 1
                    self._dir_owner_fwd_counter.value += 1
                    return value, latency, path
                # Stale owner: its copy evicted silently (a dirty victim
                # already reached DRAM via the L2-victim path).  Heal to
                # home-side service.
                entry.drop_sharer(owner)
                entry.owner_id = None
                entry.state = DirectoryState.SHARED
            if entry.sharers:
                # Home-side (memory-side) service of a shared line: the
                # band is set by where the *home* is, not the sharers.
                value = entry.value
                entry.state = DirectoryState.SHARED
                entry.owner_id = None
                entry.add_sharer(core_id)
                domain.private_fill(core, base, CoherenceState.SHARED, value)
                path = (
                    AccessPath.LOCAL_SHARED
                    if home_sid == req_sid
                    else AccessPath.REMOTE_SHARED
                )
                if trace is not None:
                    trace(now, "home_service", base, entry)
                base_lat, counter = self._path_info[path]
                latency = self._finish(
                    core_id,
                    base_lat + hop + self._queueing(contention),
                    path,
                )
                counter.value += 1
                self._dir_home_counter.value += 1
                return value, latency, path

        # No entry or no live copies: memory fill, requester granted E.
        if entry is not None and entry.dirty:
            value = self.dram.get(base, entry.value)
        else:
            value = self.dram.get(base, 0)
        contention += self._mem_register[home_sid](now, 1.0)
        if entry is None:
            entry = DirectoryEntry(addr=base)
            self.home_directory[base] = entry
        entry.state = DirectoryState.EXCLUSIVE
        entry.sharers = 1 << core_id
        entry.owner_id = None
        entry.value = value
        domain.private_fill(core, base, CoherenceState.EXCLUSIVE, value)
        path = AccessPath.DRAM
        if trace is not None:
            trace(now, "memory_fill", base, entry)
        base_lat, counter = self._path_info[path]
        latency = self._finish(
            core_id,
            base_lat + hop + self._queueing(contention),
            path,
        )
        counter.value += 1
        self._dir_fill_counter.value += 1
        return value, latency, path

    def _directory_store(
        self, core_id: int, paddr: int, value: int, now: float
    ) -> tuple[float, AccessPath]:
        base = paddr & ~63
        domain = self._socket_by_core[core_id]
        core = self.cores[core_id]
        profile = self.config.latency
        line, _level = domain.private_lookup(core, base)
        if line is not None and line.state.writable:
            line.value = value
            latency = self._finish(core_id, profile.l1_hit, AccessPath.L1_HIT)
            self._store_hit_counter.value += 1
            return latency, AccessPath.L1_HIT

        req_sid = domain.socket_id
        self._ring_register[req_sid](now, 1.0)
        home_sid = self._dir_home_socket(base)
        if home_sid != req_sid:
            self._qpi_register(now, 1.0)
        entry = self.home_directory.get(base)
        latest: int | None = None
        source = AccessPath.DRAM
        if entry is not None:
            self._dir_entry_heal(entry, core_id)
            owner = entry.owner()
            if owner is not None:
                owner_domain = self._socket_by_core[owner]
                owner_line = owner_domain.private_line(
                    self.cores[owner], base)
                osid = owner_domain.socket_id
                self._ring_register[osid](now, 1.0)
                if osid != req_sid:
                    self._qpi_register(now, 1.0)
                if owner_line is not None:
                    latest = owner_line.value
                    source = (
                        AccessPath.LOCAL_EXCL
                        if osid == req_sid
                        else AccessPath.REMOTE_EXCL
                    )
                elif entry.dirty:
                    latest = entry.value
            elif entry.sharers:
                latest = entry.value
                source = (
                    AccessPath.LOCAL_SHARED
                    if home_sid == req_sid
                    else AccessPath.REMOTE_SHARED
                )
            elif entry.dirty:
                latest = entry.value
            # Invalidate every (possibly stale) sharer bit.
            for cid in entry.sharer_ids():
                if cid == core_id:
                    continue
                sharer_domain = self._socket_by_core[cid]
                invalidated = sharer_domain.private_invalidate(
                    self.cores[cid], base)
                if invalidated is not None and invalidated.state.dirty:
                    latest = invalidated.value
        if line is not None and line.state.readable:
            # Upgrade in place (e.g. E -> M, S -> M after invalidations).
            latest = line.value
        if latest is None:
            latest = self.dram.get(base, 0)
            self._mem_register[home_sid](now, 1.0)
        if entry is None:
            entry = DirectoryEntry(addr=base)
            self.home_directory[base] = entry
        entry.state = DirectoryState.MODIFIED
        entry.sharers = 1 << core_id
        entry.owner_id = None
        entry.value = value
        entry.dirty = True
        domain.private_fill(core, base, CoherenceState.MODIFIED, value)
        if self._dir_trace is not None:
            self._dir_trace(now, "rfo", base, entry)
        latency = self._base_latency[source] + profile.store_upgrade
        latency = self._finish(core_id, latency, AccessPath.UNCACHED)
        self._store_rfo_counter.value += 1
        return latency, source

    def _directory_flush(
        self, core_id: int, paddr: int, now: float
    ) -> float:
        base = paddr & ~63
        profile = self.config.latency
        entry = self.home_directory.pop(base, None)
        latest: int | None = None
        dirty = False
        if entry is not None:
            if entry.dirty:
                latest = entry.value
                dirty = True
            for cid in entry.sharer_ids():
                sharer_domain = self._socket_by_core[cid]
                invalidated = sharer_domain.private_invalidate(
                    self.cores[cid], base)
                if invalidated is not None:
                    if latest is None or invalidated.state.dirty:
                        latest = invalidated.value
                    dirty = dirty or invalidated.state.dirty
            if self._dir_trace is not None:
                self._dir_trace(now, "flush", base, entry)
        latency = profile.flush
        if dirty and latest is not None:
            self.dram[base] = latest
            latency += profile.flush_writeback
            self._mem_register[self._socket_by_core[core_id].socket_id](now, 1.0)
        self._flush_counter.value += 1
        return self._finish(core_id, latency, AccessPath.UNCACHED)

    def drop_line(self, paddr: int) -> None:
        """Invalidate a line everywhere without write-back.

        For page remaps (KSM COW unmerge): the physical frame is being
        replaced, so dirty data is deliberately discarded.  Works under
        both coherence backends.
        """
        base = paddr & ~63
        if self._dir_mode:
            entry = self.home_directory.pop(base, None)
            if entry is not None:
                for cid in entry.sharer_ids():
                    self._socket_by_core[cid].private_invalidate(
                        self.cores[cid], base)
            return
        for domain in self.sockets:
            domain.invalidate_line(base)

    # ------------------------------------------------------------------
    # latency assembly
    # ------------------------------------------------------------------

    def _home_agent_hop(self, requester_socket: int, base: int, now: float) -> float:
        """Extra hop to the address's home directory (home-agent mode).

        Charged on every LLC-miss transaction whose requester is not the
        line's home node; page-interleaved homes mean the same (location,
        state) pair splits into home-local and home-remote sub-bands.
        """
        if not self._home_agent:
            return 0.0
        home_socket = (base // 4096) % self.config.n_sockets
        if home_socket == requester_socket:
            return 0.0
        self._qpi_register(now, 1.0)
        return self.config.home_hop_cycles

    def _band_latency(self, core_id: int, path: AccessPath) -> float:
        """Band base latency under the active mitigation flags.

        Just a table lookup: the llc_direct_e_response merge (Section
        VIII-E) is folded into ``_band_table`` at construction.
        """
        return self._band_table[path]

    def _finish(self, core_id: int, base_latency: float, path: AccessPath) -> float:
        obf = self.obfuscation
        if (
            obf is not None
            and obf.applies_to(core_id)
            and path in _COHERENCE_BANDS
        ):
            return obf.obfuscate(self._jitter_rng)
        # Inlined NoiseModel.sample (one call per executed memory op);
        # draw order and clamping match the model exactly.
        noise = self._noise
        rng = self._jitter_rng
        if not noise.enabled:
            return base_latency if base_latency > 1.0 else 1.0
        value = base_latency + rng.normal(0.0, noise.sigma)
        if rng.random() < noise.tail_probability:
            value += rng.exponential(noise.tail_scale)
        return value if value > 1.0 else 1.0

    # ------------------------------------------------------------------
    # introspection (tests / experiments)
    # ------------------------------------------------------------------

    def private_state(self, core_id: int, paddr: int) -> CoherenceState:
        """Coherence state of the line in a core's private caches."""
        domain = self.socket_of(core_id)
        line = domain.private_line(domain.core(core_id), paddr)
        return CoherenceState.INVALID if line is None else line.state

    def llc_entry(self, socket_id: int, paddr: int) -> LlcLine | None:
        """Directory entry for the line in a socket (None if absent)."""
        return self.sockets[socket_id].directory.get(line_addr(paddr))

    def home_entry(self, paddr: int) -> DirectoryEntry | None:
        """Home-node directory entry (directory backend; None if absent)."""
        return self.home_directory.get(line_addr(paddr))

    def global_coherence_state(self, paddr: int) -> CoherenceState:
        """The strongest private state any core holds for the line."""
        order = [
            CoherenceState.MODIFIED,
            CoherenceState.OWNED,
            CoherenceState.EXCLUSIVE,
            CoherenceState.FORWARD,
            CoherenceState.SHARED,
        ]
        states = set()
        for domain in self.sockets:
            for core in domain.cores:
                line = domain.private_line(core, paddr)
                if line is not None:
                    states.add(line.state)
        for state in order:
            if state in states:
                return state
        return CoherenceState.INVALID

"""Coherence protocol variants: MESI (default), MESIF and MOESI.

The paper evaluates Intel's MESIF and notes AMD's MOESI, observing that
the F and O states "simply serve to improve performance, and do not
fundamentally add new functionality" (Section II-B).  The policies below
capture exactly the behaviours that differ between the variants:

* what state a read fill receives when other sharers exist,
* what happens to an owner's dirty line when it services a read
  (MESI/MESIF write back to the LLC; MOESI keeps the dirty line in O and
  continues to service reads itself).

Everything else — the directory walk, the E-vs-S service paths the covert
channel exploits — is variant-independent, which is how the paper's
attack generalizes across vendors.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.mem.cacheline import CoherenceState, LlcLine, PrivateLine


class ProtocolPolicy:
    """Hook points where the protocol variants differ."""

    name = "abstract"
    has_forward_state = False
    has_owned_state = False

    def fill_state_for_read(self, entry: LlcLine, requester: int) -> CoherenceState:
        """State granted to *requester* on a read fill.

        Called after the requester has been added to ``entry.core_valid``.
        """
        if entry.core_valid == {requester} and entry.owner in (None, requester):
            return CoherenceState.EXCLUSIVE
        return CoherenceState.SHARED

    def on_owner_read_service(
        self, entry: LlcLine, owner_line: PrivateLine
    ) -> None:
        """Downgrade the owner after it serviced another core's read.

        MESI semantics: the owner drops to S and writes the latest value
        back to the LLC, leaving a clean copy for future read misses
        (Section VI-A); the directory stops forwarding to it.
        """
        entry.value = owner_line.value
        if owner_line.state.dirty:
            entry.dirty = True
        owner_line.state = CoherenceState.SHARED
        entry.owner = None

    def validate(self) -> None:
        """Sanity-check the policy object (subclasses may extend)."""


class MesiPolicy(ProtocolPolicy):
    """Plain MESI: the baseline protocol of Section II-B."""

    name = "mesi"


class MesifPolicy(ProtocolPolicy):
    """MESIF (Intel): one sharer is designated the forwarder (F).

    The most recent requester receives F; the previous forwarder drops to
    plain S.  Timing is identical to MESI for every path the covert
    channel uses — the F state matters only for which cache responds to
    cross-socket snoops, not for whether the LLC can respond.
    """

    name = "mesif"
    has_forward_state = True

    def fill_state_for_read(self, entry: LlcLine, requester: int) -> CoherenceState:
        state = super().fill_state_for_read(entry, requester)
        if state is CoherenceState.SHARED:
            entry.forwarder = requester
            return CoherenceState.FORWARD
        return state

    def on_owner_read_service(
        self, entry: LlcLine, owner_line: PrivateLine
    ) -> None:
        super().on_owner_read_service(entry, owner_line)


class MoesiPolicy(ProtocolPolicy):
    """MOESI (AMD): a dirty owner keeps the line in O and keeps serving.

    Avoids the write-back to the LLC/memory when a modified block becomes
    shared; the directory keeps forwarding read misses to the owner, so
    dirty-shared lines stay in the cache-to-cache (E-band) latency class.
    Clean E lines downgrade to S exactly as in MESI, which is why the
    paper's read-only covert channel is unaffected by the O state.
    """

    name = "moesi"
    has_owned_state = True

    def on_owner_read_service(
        self, entry: LlcLine, owner_line: PrivateLine
    ) -> None:
        if owner_line.state.dirty:
            # Keep servicing from the owner; no LLC write-back.
            owner_line.state = CoherenceState.OWNED
            entry.value = owner_line.value
            return
        super().on_owner_read_service(entry, owner_line)


#: The protocol registry: name -> policy class.  This is the single
#: dispatch point for protocol selection — the ``--protocol`` CLI flag,
#: :class:`repro.channel.scenarios.ScenarioSpec` and
#: :class:`repro.mem.hierarchy.MachineConfig` all validate against it,
#: mirroring how drivers register in ``repro.experiments.REGISTRY``.
PROTOCOLS: dict[str, type[ProtocolPolicy]] = {
    "mesi": MesiPolicy,
    "mesif": MesifPolicy,
    "moesi": MoesiPolicy,
}


def make_policy(name: str) -> ProtocolPolicy:
    """Instantiate the registered protocol policy called *name*.

    Case-insensitive.  Unknown names raise :class:`ConfigError` listing
    the registered choices.
    """
    try:
        policy_cls = PROTOCOLS[name.lower()]
    except KeyError:
        raise ConfigError(
            f"unknown protocol {name!r}; registered protocols: "
            f"{', '.join(sorted(PROTOCOLS))}"
        ) from None
    policy = policy_cls()
    policy.validate()
    return policy

"""Memory-system substrate: caches, coherence, latency, interconnect.

Public surface:

* :class:`~repro.mem.hierarchy.Machine` /
  :class:`~repro.mem.hierarchy.MachineConfig` — the simulated machine.
* :class:`~repro.mem.latency.LatencyProfile` /
  :class:`~repro.mem.latency.NoiseModel` — the timing model.
* :class:`~repro.mem.cacheline.CoherenceState` — MESI(+F/O) states.
* :class:`~repro.mem.physical.PhysicalMemory` — page frames for the OS.
* :func:`~repro.mem.invariants.check_machine` — protocol invariants.
"""

from repro.mem.cache import SetAssocCache
from repro.mem.cacheline import (
    LINE_SIZE,
    CoherenceState,
    LlcLine,
    PrivateLine,
    line_addr,
)
from repro.mem.hierarchy import Machine, MachineConfig
from repro.mem.interconnect import Interconnect, Resource
from repro.mem.invariants import check_line, check_machine
from repro.mem.latency import (
    CLOCK_HZ,
    LatencyProfile,
    NoiseModel,
    ObfuscationPolicy,
    cycles_to_seconds,
    kbps,
)
from repro.mem.physical import (
    PAGE_SIZE,
    Frame,
    PhysicalMemory,
    content_digest,
    page_pattern,
)
from repro.mem.protocols import make_policy

__all__ = [
    "CLOCK_HZ",
    "CoherenceState",
    "Frame",
    "Interconnect",
    "LINE_SIZE",
    "LatencyProfile",
    "LlcLine",
    "Machine",
    "MachineConfig",
    "NoiseModel",
    "ObfuscationPolicy",
    "PAGE_SIZE",
    "PhysicalMemory",
    "PrivateLine",
    "Resource",
    "SetAssocCache",
    "check_line",
    "check_machine",
    "content_digest",
    "cycles_to_seconds",
    "kbps",
    "line_addr",
    "make_policy",
    "page_pattern",
]

"""Interconnect contention model (on-chip ring, QPI link, memory bus).

Every memory operation registers traffic on the resources its service
path crosses; a sliding-window occupancy count converts concurrent
traffic into queuing delay.  This is what makes co-located noise
workloads (Figure 9) degrade the covert channel: they both evict the
covert line *and* inflate latency variance through these resources.

Hot-path design.  The seed implementation recomputed the window load
with an O(window) linear ``sum()`` over the event deque on *every*
access crossing *every* resource.  The model's semantics are preserved
exactly — the event log is still an insertion-ordered deque, eviction
still drops only the expired *prefix* (so mildly out-of-order events
from batched bursts are retained, exactly as before), and the load is
still the traffic with ``cutoff <= t <= time`` among retained events —
but the load query is now answered in O(log n) from a time-sorted index
of the live events, with uniform integral weights (the only kind the
machine ever registers) counted instead of summed.  Non-uniform or
fractional weights fall back to the seed's literal linear scan, so the
result is bit-identical in every case.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from collections import deque

from repro.errors import ConfigError


class Resource:
    """One contended resource with a sliding-window M/M/1 queuing model.

    The mean queuing delay grows as ``k * rho / (1 - rho)`` where the
    utilization ``rho`` is the traffic inside the window divided by the
    resource's saturation throughput — near-zero when lightly loaded,
    steeply superlinear as the resource saturates, the way real
    ring/memory-controller queues behave under co-located noise.

    Parameters
    ----------
    name:
        Resource label (e.g. ``"ring0"``, ``"qpi"``).
    window:
        Width in cycles of the occupancy window.
    saturation:
        Accesses per window at which the resource saturates.
    service_cycles:
        The ``k`` factor: delay scale in cycles.
    """

    #: Utilization is clamped here so delays stay finite past saturation.
    RHO_CAP = 0.96

    #: Compact the sorted-time index once this many evicted slots
    #: accumulate at its head (amortizes the O(n) front deletion).
    _COMPACT_THRESHOLD = 512

    __slots__ = (
        "name", "window", "saturation", "service_cycles", "total_traffic",
        "_events", "_times", "_tpos", "_weight", "_uniform",
    )

    def __init__(
        self,
        name: str,
        window: float = 2_000.0,
        saturation: float = 110.0,
        service_cycles: float = 2.0,
    ):
        if window <= 0 or saturation <= 0 or service_cycles < 0:
            raise ConfigError(f"invalid contention parameters for {name}")
        self.name = name
        self.window = window
        self.saturation = saturation
        self.service_cycles = service_cycles
        self._events: deque[tuple[float, float]] = deque()
        self.total_traffic = 0.0
        # Fast-path index: the times of every event still in ``_events``,
        # kept sorted, with a lazily-compacted head offset.  Only valid
        # while every registered weight is the same integral value (so
        # ``count * weight`` is bit-identical to the seed's sequential
        # float summation); the first deviating weight drops the
        # resource onto the exact slow path for its remaining lifetime.
        self._times: list[float] | None = None
        self._tpos = 0
        self._weight: float | None = None
        self._uniform = True

    # -- window maintenance --------------------------------------------

    def _window_load(self, time: float) -> float:
        """Evict the expired prefix and return the load in the window.

        This is the single definition of the window predicate shared by
        :meth:`register` and :meth:`current_load`: traffic registered at
        ``t`` counts iff the event is still retained (only the expired
        prefix of the insertion-ordered log is ever dropped) and
        ``time - window <= t <= time``.
        """
        cutoff = time - self.window
        events = self._events
        times = self._times
        if not self._uniform or times is None:
            # Exact slow path (non-uniform or fractional weights): the
            # seed's literal prefix-evict + linear scan.
            while events and events[0][0] < cutoff:
                events.popleft()
            return sum(w for t, w in events if cutoff <= t <= time)
        tpos = self._tpos
        while events and events[0][0] < cutoff:
            t, _w = events.popleft()
            # Drop t from the sorted index.  The evicted prefix usually
            # holds the globally oldest times, so this is almost always
            # the index head; out-of-order retirements bisect.
            if times[tpos] == t:
                tpos += 1
            else:
                del times[bisect_left(times, t, tpos)]
        if tpos >= self._COMPACT_THRESHOLD:
            del times[:tpos]
            tpos = 0
        self._tpos = tpos
        count = (
            bisect_right(times, time, tpos)
            - bisect_left(times, cutoff, tpos)
        )
        if count == 0:
            return 0.0
        return count * self._weight

    def _record(self, time: float, weight: float) -> None:
        """Append one event to the log (and the sorted index)."""
        self._events.append((time, weight))
        self.total_traffic += weight
        if not self._uniform:
            return
        if self._weight is None:
            if weight == int(weight):
                self._weight = weight
                self._times = [time]
                return
        elif weight == self._weight:
            times = self._times
            if not times or time >= times[-1]:
                times.append(time)
            else:
                insort(times, time, self._tpos)
            return
        # First non-uniform (or fractional) weight: abandon the index,
        # the slow path scans the deque exactly as the seed did.
        self._uniform = False
        self._times = None
        self._tpos = 0

    # -- public API -----------------------------------------------------

    def register(self, time: float, weight: float = 1.0) -> float:
        """Record *weight* units of traffic at *time*.

        Returns the *mean* queuing delay at the current utilization; the
        machine turns it into a bursty draw.  Events may arrive mildly
        out of time order (a batched burst registers accesses at future
        instants before other threads catch up), so the load is computed
        over events actually inside ``(time - window, time]``.
        """
        load = self._window_load(time)
        self._record(time, weight)
        rho = min(load / self.saturation, self.RHO_CAP)
        return self.service_cycles * rho / (1.0 - rho)

    def current_load(self, time: float) -> float:
        """Traffic units inside the window ending at *time*."""
        return self._window_load(time)

    def reset(self) -> None:
        """Forget all recorded traffic (used between measurement phases)."""
        self._events.clear()
        if self._uniform:
            self._times = [] if self._weight is not None else None
            self._tpos = 0


class Interconnect:
    """The set of contended resources in a machine.

    One on-chip ring per socket, one inter-socket link (QPI), and one
    memory controller per socket.
    """

    def __init__(
        self,
        n_sockets: int,
        window: float = 2_000.0,
        ring_capacity: float = 50.0,
        qpi_capacity: float = 35.0,
        mem_capacity: float = 38.0,
        delay_per_excess: float = 3.5,
    ):
        if n_sockets <= 0:
            raise ConfigError("n_sockets must be positive")
        self.rings = [
            Resource(f"ring{s}", window, ring_capacity, delay_per_excess)
            for s in range(n_sockets)
        ]
        self.qpi = Resource("qpi", window, qpi_capacity, delay_per_excess)
        self.mems = [
            Resource(f"mem{s}", window, mem_capacity, delay_per_excess * 1.5)
            for s in range(n_sockets)
        ]

    def ring_delay(self, socket_id: int, time: float, weight: float = 1.0) -> float:
        """Register traffic on a socket's ring; return queuing delay."""
        return self.rings[socket_id].register(time, weight)

    def qpi_delay(self, time: float, weight: float = 1.0) -> float:
        """Register traffic on the inter-socket link; return delay."""
        return self.qpi.register(time, weight)

    def mem_delay(self, socket_id: int, time: float, weight: float = 1.0) -> float:
        """Register traffic on a socket's memory controller."""
        return self.mems[socket_id].register(time, weight)

    def reset(self) -> None:
        """Clear every resource's traffic window.

        Needed when the measurement clock restarts (e.g. after a
        calibration pass that used its own local time base).
        """
        for resource in (*self.rings, self.qpi, *self.mems):
            resource.reset()

"""Interconnect contention model (on-chip ring, QPI link, memory bus).

Every memory operation registers traffic on the resources its service
path crosses; a sliding-window occupancy count converts concurrent
traffic into queuing delay.  This is what makes co-located noise
workloads (Figure 9) degrade the covert channel: they both evict the
covert line *and* inflate latency variance through these resources.
"""

from __future__ import annotations

from collections import deque

from repro.errors import ConfigError


class Resource:
    """One contended resource with a sliding-window M/M/1 queuing model.

    The mean queuing delay grows as ``k * rho / (1 - rho)`` where the
    utilization ``rho`` is the traffic inside the window divided by the
    resource's saturation throughput — near-zero when lightly loaded,
    steeply superlinear as the resource saturates, the way real
    ring/memory-controller queues behave under co-located noise.

    Parameters
    ----------
    name:
        Resource label (e.g. ``"ring0"``, ``"qpi"``).
    window:
        Width in cycles of the occupancy window.
    saturation:
        Accesses per window at which the resource saturates.
    service_cycles:
        The ``k`` factor: delay scale in cycles.
    """

    #: Utilization is clamped here so delays stay finite past saturation.
    RHO_CAP = 0.96

    def __init__(
        self,
        name: str,
        window: float = 2_000.0,
        saturation: float = 110.0,
        service_cycles: float = 2.0,
    ):
        if window <= 0 or saturation <= 0 or service_cycles < 0:
            raise ConfigError(f"invalid contention parameters for {name}")
        self.name = name
        self.window = window
        self.saturation = saturation
        self.service_cycles = service_cycles
        self._events: deque[tuple[float, float]] = deque()
        self.total_traffic = 0.0

    def register(self, time: float, weight: float = 1.0) -> float:
        """Record *weight* units of traffic at *time*.

        Returns the *mean* queuing delay at the current utilization; the
        machine turns it into a bursty draw.  Events may arrive mildly
        out of time order (a batched burst registers accesses at future
        instants before other threads catch up), so the load is computed
        over events actually inside ``(time - window, time]``.
        """
        cutoff = time - self.window
        events = self._events
        while events and events[0][0] < cutoff:
            events.popleft()
        load = sum(w for t, w in events if cutoff <= t <= time)
        events.append((time, weight))
        self.total_traffic += weight
        rho = min(load / self.saturation, self.RHO_CAP)
        return self.service_cycles * rho / (1.0 - rho)

    def current_load(self, time: float) -> float:
        """Traffic units inside the window ending at *time*."""
        cutoff = time - self.window
        while self._events and self._events[0][0] < cutoff:
            self._events.popleft()
        return sum(w for t, w in self._events if cutoff <= t <= time)

    def reset(self) -> None:
        """Forget all recorded traffic (used between measurement phases)."""
        self._events.clear()


class Interconnect:
    """The set of contended resources in a machine.

    One on-chip ring per socket, one inter-socket link (QPI), and one
    memory controller per socket.
    """

    def __init__(
        self,
        n_sockets: int,
        window: float = 2_000.0,
        ring_capacity: float = 50.0,
        qpi_capacity: float = 35.0,
        mem_capacity: float = 38.0,
        delay_per_excess: float = 3.5,
    ):
        if n_sockets <= 0:
            raise ConfigError("n_sockets must be positive")
        self.rings = [
            Resource(f"ring{s}", window, ring_capacity, delay_per_excess)
            for s in range(n_sockets)
        ]
        self.qpi = Resource("qpi", window, qpi_capacity, delay_per_excess)
        self.mems = [
            Resource(f"mem{s}", window, mem_capacity, delay_per_excess * 1.5)
            for s in range(n_sockets)
        ]

    def ring_delay(self, socket_id: int, time: float, weight: float = 1.0) -> float:
        """Register traffic on a socket's ring; return queuing delay."""
        return self.rings[socket_id].register(time, weight)

    def qpi_delay(self, time: float, weight: float = 1.0) -> float:
        """Register traffic on the inter-socket link; return delay."""
        return self.qpi.register(time, weight)

    def mem_delay(self, socket_id: int, time: float, weight: float = 1.0) -> float:
        """Register traffic on a socket's memory controller."""
        return self.mems[socket_id].register(time, weight)

    def reset(self) -> None:
        """Clear every resource's traffic window.

        Needed when the measurement clock restarts (e.g. after a
        calibration pass that used its own local time base).
        """
        for resource in (*self.rings, self.qpi, *self.mems):
            resource.reset()

"""Latency model: per-path base latencies plus stochastic jitter.

The base numbers are calibrated to Section V of the paper (Intel Xeon
X5650, 2.67 GHz): a local S-state block is served by the inclusive LLC in
about 98 cycles, a local E-state block requires an owner-forward and takes
about 124 cycles, and the remote-socket variants add QPI hops.  Figure 2
shows the four bands are narrow and well separated; the jitter model
reproduces that (small Gaussian core, rare heavy-tail outliers from OS
interference).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.sim.events import AccessPath

#: Clock frequency of the modeled Xeon X5650, used to convert cycles to
#: seconds when reporting bandwidths the way the paper does.
CLOCK_HZ = 2.67e9


@dataclass(frozen=True)
class LatencyProfile:
    """Base (noise-free) latency in cycles for every service path.

    The defaults reproduce the latency bands of Figure 2 / Section V.
    """

    l1_hit: float = 4.0
    l2_hit: float = 12.0
    local_shared: float = 98.0      # LLC hit (S state / clean, popcount != 1)
    local_excl: float = 124.0       # LLC -> local owner forward (E/M state)
    remote_shared: float = 170.0    # remote socket LLC hit over QPI
    remote_excl: float = 232.0      # remote LLC -> remote owner forward
    dram: float = 320.0             # no cached copy anywhere
    flush: float = 44.0             # clflush issue cost
    flush_writeback: float = 36.0   # extra when a dirty copy must be written
    store_upgrade: float = 30.0     # extra cycles for RFO/invalidation
    fence: float = 6.0              # serializing instruction cost

    def __post_init__(self) -> None:
        ordered = (
            self.l1_hit, self.l2_hit, self.local_shared, self.local_excl,
            self.remote_shared, self.remote_excl, self.dram,
        )
        if any(lat <= 0 for lat in ordered):
            raise ConfigError("all latencies must be positive")
        if list(ordered) != sorted(ordered):
            raise ConfigError(
                "latency profile must be ordered "
                "l1 < l2 < local_shared < local_excl < remote_shared "
                "< remote_excl < dram"
            )
        # The profile is frozen after validation, so the per-path table
        # can be built once here instead of per for_path() call (which
        # sits on the machine's per-load hot path).
        object.__setattr__(self, "_table", {
            AccessPath.L1_HIT: self.l1_hit,
            AccessPath.L2_HIT: self.l2_hit,
            AccessPath.LOCAL_SHARED: self.local_shared,
            AccessPath.LOCAL_EXCL: self.local_excl,
            AccessPath.REMOTE_SHARED: self.remote_shared,
            AccessPath.REMOTE_EXCL: self.remote_excl,
            AccessPath.DRAM: self.dram,
        })

    def for_path(self, path: AccessPath) -> float:
        """Base latency of a load serviced by *path*."""
        try:
            return self._table[path]
        except KeyError:
            raise ConfigError(f"path {path} has no base latency") from None


@dataclass
class NoiseModel:
    """Stochastic jitter added to every memory operation.

    ``sigma`` is the standard deviation of the Gaussian core of each band;
    ``tail_probability``/``tail_scale`` model rare long delays (SMIs,
    interrupts) visible as the slow tails in Figure 2's CDFs.
    """

    sigma: float = 2.5
    tail_probability: float = 0.004
    tail_scale: float = 60.0
    enabled: bool = True

    def sample(self, base: float, rng: np.random.Generator) -> float:
        """Return *base* perturbed by jitter (never below 1 cycle)."""
        if not self.enabled:
            return max(1.0, base)
        value = base + rng.normal(0.0, self.sigma)
        if rng.random() < self.tail_probability:
            value += rng.exponential(self.tail_scale)
        return max(1.0, value)


@dataclass
class ObfuscationPolicy:
    """Optional timing-obfuscation mitigation (Section VIII-E).

    When attached to a machine's latency stage, loads by cores in
    ``suspicious_cores`` have their latency replaced by a draw that makes
    local/remote and E/S bands indistinguishable: a uniform draw over the
    full [lo, hi] coherence-band range.
    """

    suspicious_cores: set[int] = field(default_factory=set)
    lo: float = 90.0
    hi: float = 250.0

    def applies_to(self, core_id: int) -> bool:
        """Whether this core's timing is being obfuscated."""
        return core_id in self.suspicious_cores

    def obfuscate(self, rng: np.random.Generator) -> float:
        """Draw an obfuscated latency."""
        return float(rng.uniform(self.lo, self.hi))


def cycles_to_seconds(cycles: float) -> float:
    """Convert simulated cycles to seconds at the modeled clock rate."""
    return cycles / CLOCK_HZ


def kbps(bits: float, cycles: float) -> float:
    """Bandwidth in Kbits/s for *bits* transferred over *cycles* cycles."""
    seconds = cycles_to_seconds(cycles)
    if seconds <= 0:
        return 0.0
    return bits / seconds / 1e3

"""Set-associative cache with true-LRU replacement.

A single generic container is used for every level: private L1/L2 hold
:class:`~repro.mem.cacheline.PrivateLine` records and the shared LLC
holds :class:`~repro.mem.cacheline.LlcLine` records.  The container only
implements geometry, lookup and LRU; all coherence-state manipulation
lives in :mod:`repro.mem.coherence`.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterator
from typing import Generic, TypeVar

from repro.errors import ConfigError
from repro.mem.cacheline import LINE_SHIFT, line_addr

LineT = TypeVar("LineT")


class SetAssocCache(Generic[LineT]):
    """A set-associative, true-LRU cache of line records.

    Parameters
    ----------
    name:
        Label used in statistics and error messages.
    n_sets:
        Number of sets; must be a power of two.
    assoc:
        Ways per set.
    """

    __slots__ = ("name", "n_sets", "assoc", "_set_mask", "_sets")

    def __init__(self, name: str, n_sets: int, assoc: int):
        if n_sets <= 0 or (n_sets & (n_sets - 1)) != 0:
            raise ConfigError(f"{name}: n_sets must be a power of two, got {n_sets}")
        if assoc <= 0:
            raise ConfigError(f"{name}: assoc must be positive, got {assoc}")
        self.name = name
        self.n_sets = n_sets
        self.assoc = assoc
        self._set_mask = n_sets - 1
        # set index -> (line base addr -> line record), insertion order = LRU order
        self._sets: list[OrderedDict[int, LineT]] = [
            OrderedDict() for _ in range(n_sets)
        ]

    @property
    def capacity_lines(self) -> int:
        """Total number of lines the cache can hold."""
        return self.n_sets * self.assoc

    def set_index(self, addr: int) -> int:
        """The set an address maps to."""
        return (line_addr(addr) >> LINE_SHIFT) & self._set_mask

    # The three per-access methods below inline line alignment
    # (``addr & ~63`` == line_addr for 64-byte lines) and set selection:
    # every simulated memory access crosses at least one of them, and the
    # two helper calls per access showed up in the event-loop profile.

    def lookup(self, addr: int, touch: bool = True) -> LineT | None:
        """Return the line holding *addr* or None; updates LRU on hit."""
        base = addr & ~63
        bucket = self._sets[(base >> 6) & self._set_mask]
        line = bucket.get(base)
        if line is not None and touch:
            bucket.move_to_end(base)
        return line

    def insert(self, addr: int, record: LineT) -> LineT | None:
        """Insert *record* for *addr*, returning the evicted victim if any.

        The victim is the LRU line of the set; the caller is responsible
        for handling write-back / back-invalidation before discarding it.
        """
        base = addr & ~63
        bucket = self._sets[(base >> 6) & self._set_mask]
        victim = None
        if base not in bucket and len(bucket) >= self.assoc:
            _victim_addr, victim = bucket.popitem(last=False)
        bucket[base] = record
        bucket.move_to_end(base)
        return victim

    def remove(self, addr: int) -> LineT | None:
        """Remove and return the line holding *addr* (None if absent)."""
        base = addr & ~63
        bucket = self._sets[(base >> 6) & self._set_mask]
        return bucket.pop(base, None)

    def lines(self) -> Iterator[LineT]:
        """Iterate over every resident line (for invariant checks)."""
        for bucket in self._sets:
            yield from bucket.values()

    def occupancy(self) -> int:
        """Total number of resident lines."""
        return sum(len(bucket) for bucket in self._sets)

    def clear(self) -> None:
        """Drop every line without write-back (test helper)."""
        for bucket in self._sets:
            bucket.clear()

    def __contains__(self, addr: int) -> bool:
        return self.lookup(addr, touch=False) is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SetAssocCache({self.name!r}, sets={self.n_sets}, "
            f"assoc={self.assoc}, occupancy={self.occupancy()})"
        )

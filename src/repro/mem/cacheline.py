"""Cache line records and coherence states.

Private (per-core) caches hold :class:`PrivateLine` records with a MESI
(optionally MESIF/MOESI) state.  The shared, inclusive LLC holds
:class:`LlcLine` records which double as the directory: they carry the
core-valid-bits vector and the "exclusive granted" flag that Section VI
of the paper describes driving the E-vs-S service-path difference.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

LINE_SIZE = 64
LINE_SHIFT = 6


def line_addr(addr: int) -> int:
    """Align *addr* down to its cache-line base address."""
    return addr & ~(LINE_SIZE - 1)


class CoherenceState(enum.Enum):
    """Private-cache coherence states (MESI plus the F/O extensions)."""

    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"
    FORWARD = "F"   # MESIF: designated forwarder among sharers
    OWNED = "O"     # MOESI: dirty line shared with other caches

    @property
    def readable(self) -> bool:
        """Whether a core holding this state may read without a request."""
        return self is not CoherenceState.INVALID

    @property
    def writable(self) -> bool:
        """Whether a core holding this state may write without a request."""
        return self is CoherenceState.MODIFIED

    @property
    def dirty(self) -> bool:
        """Whether the copy may differ from the LLC/DRAM copy."""
        return self in (CoherenceState.MODIFIED, CoherenceState.OWNED)

    @property
    def sole_copy(self) -> bool:
        """Whether the protocol guarantees no other private copy exists."""
        return self in (CoherenceState.MODIFIED, CoherenceState.EXCLUSIVE)


@dataclass(slots=True)
class PrivateLine:
    """One line in a private (L1/L2) cache.

    Slotted: fills and state transitions allocate/mutate these on every
    cache miss, and slot access skips the per-instance dict.
    """

    addr: int
    state: CoherenceState
    value: int = 0

    def __post_init__(self) -> None:
        self.addr = line_addr(self.addr)


@dataclass(slots=True)
class LlcLine:
    """One line in the shared LLC, including its directory metadata.

    Attributes
    ----------
    core_valid:
        Global core ids whose private hierarchy currently holds the line
        (the paper's core-valid-bits vector).
    owner:
        Core id that must service read misses for this line (a core
        holding it in E/M, or O under MOESI); ``None`` when the LLC can
        answer directly.  A non-None owner is what creates the E-state
        latency band of Section VI.
    forwarder:
        MESIF only: the sharer designated to forward the line.
    data_valid:
        Whether the LLC actually holds the data (always True for an
        inclusive LLC; False for tag-only directory entries in the
        non-inclusive variant).
    dirty:
        LLC copy differs from DRAM (must be written back on eviction).
    """

    addr: int
    value: int = 0
    core_valid: set[int] = field(default_factory=set)
    owner: int | None = None
    forwarder: int | None = None
    data_valid: bool = True
    dirty: bool = False

    def __post_init__(self) -> None:
        self.addr = line_addr(self.addr)

    @property
    def sharer_count(self) -> int:
        """Popcount of the core-valid-bits vector."""
        return len(self.core_valid)

    @property
    def exclusive_granted(self) -> bool:
        """True when a single core was granted E/M rights for the line."""
        return self.owner is not None and len(self.core_valid) <= 1

"""Coherence-invariant checking used by tests and property-based fuzzing.

:func:`check_machine` walks every cache in a :class:`Machine` and raises
:class:`~repro.errors.CoherenceError` when any protocol invariant is
violated.  It is intentionally exhaustive and slow — call it from tests,
not from hot paths.
"""

from __future__ import annotations

from collections import defaultdict

from repro.errors import CoherenceError
from repro.mem.cacheline import CoherenceState, line_addr
from repro.mem.hierarchy import Machine


def _private_holders(machine: Machine) -> dict[int, list[tuple[int, CoherenceState]]]:
    """Map line addr -> [(core_id, state)] over all private caches."""
    holders: dict[int, list[tuple[int, CoherenceState]]] = defaultdict(list)
    for domain in machine.sockets:
        for core in domain.cores:
            seen: set[int] = set()
            for cache in (core.l1, core.l2):
                for line in cache.lines():
                    if line.addr in seen:
                        continue
                    seen.add(line.addr)
                    holders[line.addr].append((core.core_id, line.state))
    return holders


def check_machine(machine: Machine) -> None:
    """Verify every coherence invariant; raise CoherenceError on breach.

    Checked invariants:

    * **SWMR**: at most one core holds a line in M or E, and if one does,
      no other core holds it at all (single-writer / multiple-reader).
    * **MOESI-O**: at most one O holder; co-holders must be in S.
    * **L1/L2 inclusion**: every L1-resident line is L2-resident.
    * **Directory precision**: a socket's core-valid bits equal the set of
      its cores privately holding the line, and ``owner`` points at a core
      actually holding a forwardable (E/M/O) copy.
    * **LLC inclusion** (inclusive mode): a private copy implies a
      data-valid LLC entry in the same socket.
    * **Value coherence**: all clean private copies of a line agree with
      the LLC copy.
    """
    holders = _private_holders(machine)

    for addr, entries in holders.items():
        states = [state for _core, state in entries]
        strong = [s for s in states if s.sole_copy]
        if strong and len(entries) > 1:
            raise CoherenceError(
                f"line {addr:#x}: {strong[0].value} copy coexists with "
                f"{len(entries) - 1} other private copies"
            )
        if len(strong) > 1:
            raise CoherenceError(f"line {addr:#x}: multiple M/E copies")
        owned = [s for s in states if s is CoherenceState.OWNED]
        if len(owned) > 1:
            raise CoherenceError(f"line {addr:#x}: multiple O copies")
        if owned:
            others = [s for s in states if s is not CoherenceState.OWNED]
            bad = [s for s in others if s not in (CoherenceState.SHARED,
                                                  CoherenceState.FORWARD)]
            if bad:
                raise CoherenceError(
                    f"line {addr:#x}: O coexists with {bad[0].value}"
                )

    for domain in machine.sockets:
        for core in domain.cores:
            for line in core.l1.lines():
                if core.l2.lookup(line.addr, touch=False) is None:
                    raise CoherenceError(
                        f"core {core.core_id}: line {line.addr:#x} in L1 "
                        "but not in L2 (inclusion violated)"
                    )

        for addr, entry in domain.directory.items():
            actual = set()
            for core in domain.cores:
                if domain.private_line(core, addr) is not None:
                    actual.add(core.core_id)
            if entry.core_valid != actual:
                raise CoherenceError(
                    f"socket {domain.socket_id} line {addr:#x}: core-valid "
                    f"bits {sorted(entry.core_valid)} != actual holders "
                    f"{sorted(actual)}"
                )
            if entry.owner is not None:
                if entry.owner not in actual:
                    raise CoherenceError(
                        f"socket {domain.socket_id} line {addr:#x}: owner "
                        f"{entry.owner} holds no private copy"
                    )
                owner_core = domain.core(entry.owner)
                owner_line = domain.private_line(owner_core, addr)
                if owner_line.state in (CoherenceState.SHARED,
                                        CoherenceState.INVALID):
                    raise CoherenceError(
                        f"socket {domain.socket_id} line {addr:#x}: owner "
                        f"holds non-forwardable state {owner_line.state.value}"
                    )

        if domain.inclusive:
            for core in domain.cores:
                seen = set()
                for cache in (core.l1, core.l2):
                    for line in cache.lines():
                        seen.add(line.addr)
                for addr in seen:
                    entry = domain.directory.get(addr)
                    if entry is None or not entry.data_valid:
                        raise CoherenceError(
                            f"socket {domain.socket_id} core {core.core_id}: "
                            f"private copy of {addr:#x} without an "
                            "LLC-resident entry (inclusion violated)"
                        )

        # Value coherence: clean private copies agree with the LLC copy.
        for addr, entry in domain.directory.items():
            if not entry.data_valid:
                continue
            for core in domain.cores:
                line = domain.private_line(core, addr)
                if line is None or line.state.dirty:
                    continue
                if entry.owner is not None:
                    # LLC copy may be stale while an owner exists.
                    continue
                if line.value != entry.value:
                    raise CoherenceError(
                        f"line {addr:#x}: clean private value {line.value} "
                        f"!= LLC value {entry.value}"
                    )


def check_transition_events(events) -> None:
    """Validate recorded coherence-transition events against MESI law.

    *events* is an iterable of ``repro.obs`` ``TraceEvent`` records (or
    plain mappings with the same ``data`` payload) of category
    ``"coherence"``, as emitted by ``MachineTap``.  Each event carries
    the complete post-transition private-state map of the affected line
    (``data["states"]``: core id -> state value) plus the per-core
    ``data["changed"]`` triples, so every snapshot can be checked
    independently:

    * **SWMR** per snapshot: at most one M/E copy, and a sole-copy state
      never coexists with other holders; at most one O copy, and O only
      coexists with S/F.
    * ``changed`` consistency: each ``[core, src, dst]`` triple must be a
      genuine change and its destination must match the snapshot.

    Snapshots are *not* required to chain into one another: victim
    evictions of unrelated lines are untraced by design, so a core can
    legitimately appear to drop a line between two recorded events.

    Raises :class:`~repro.errors.CoherenceError` on the first violation.
    """
    for index, event in enumerate(events):
        data = event.data if hasattr(event, "data") else event["data"]
        line = data.get("line", -1)
        states = {
            int(core_id): CoherenceState(value)
            for core_id, value in data["states"].items()
        }
        values = list(states.values())
        strong = [s for s in values if s.sole_copy]
        if strong and len(values) > 1:
            raise CoherenceError(
                f"event {index} line {line:#x}: {strong[0].value} copy "
                f"coexists with {len(values) - 1} other private copies"
            )
        if len(strong) > 1:
            raise CoherenceError(
                f"event {index} line {line:#x}: multiple M/E copies"
            )
        owned = [s for s in values if s is CoherenceState.OWNED]
        if len(owned) > 1:
            raise CoherenceError(
                f"event {index} line {line:#x}: multiple O copies"
            )
        if owned:
            bad = [
                s for s in values
                if s not in (CoherenceState.OWNED, CoherenceState.SHARED,
                             CoherenceState.FORWARD)
            ]
            if bad:
                raise CoherenceError(
                    f"event {index} line {line:#x}: O coexists with "
                    f"{bad[0].value}"
                )
        for core_id, src, dst in data.get("changed", ()):
            if src == dst:
                raise CoherenceError(
                    f"event {index} line {line:#x}: core {core_id} recorded "
                    f"a no-op transition {src}->{dst}"
                )
            recorded = states.get(int(core_id), CoherenceState.INVALID)
            if recorded.value != dst:
                raise CoherenceError(
                    f"event {index} line {line:#x}: core {core_id} "
                    f"transition lands in {dst} but snapshot shows "
                    f"{recorded.value}"
                )


def check_line(machine: Machine, paddr: int) -> None:
    """Check the invariants relevant to one line (cheaper than full walk)."""
    base = line_addr(paddr)
    holders: list[tuple[int, CoherenceState]] = []
    for domain in machine.sockets:
        for core in domain.cores:
            line = domain.private_line(core, base)
            if line is not None:
                holders.append((core.core_id, line.state))
    strong = [s for _c, s in holders if s.sole_copy]
    if strong and len(holders) > 1:
        raise CoherenceError(
            f"line {base:#x}: sole-copy state with {len(holders)} holders"
        )

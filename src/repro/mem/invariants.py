"""Coherence-invariant checking used by tests and property-based fuzzing.

:func:`check_machine` walks every cache in a :class:`Machine` and raises
:class:`~repro.errors.CoherenceError` when any protocol invariant is
violated.  It is intentionally exhaustive and slow — call it from tests,
not from hot paths.
"""

from __future__ import annotations

from collections import defaultdict

from repro.errors import CoherenceError
from repro.mem.cacheline import CoherenceState, line_addr
from repro.mem.hierarchy import Machine


def _private_holders(machine: Machine) -> dict[int, list[tuple[int, CoherenceState]]]:
    """Map line addr -> [(core_id, state)] over all private caches."""
    holders: dict[int, list[tuple[int, CoherenceState]]] = defaultdict(list)
    for domain in machine.sockets:
        for core in domain.cores:
            seen: set[int] = set()
            for cache in (core.l1, core.l2):
                for line in cache.lines():
                    if line.addr in seen:
                        continue
                    seen.add(line.addr)
                    holders[line.addr].append((core.core_id, line.state))
    return holders


def check_machine(machine: Machine) -> None:
    """Verify every coherence invariant; raise CoherenceError on breach.

    Checked invariants:

    * **SWMR**: at most one core holds a line in M or E, and if one does,
      no other core holds it at all (single-writer / multiple-reader).
    * **MOESI-O**: at most one O holder; co-holders must be in S.
    * **L1/L2 inclusion**: every L1-resident line is L2-resident.
    * **Directory precision**: a socket's core-valid bits equal the set of
      its cores privately holding the line, and ``owner`` points at a core
      actually holding a forwardable (E/M/O) copy.
    * **LLC inclusion** (inclusive mode): a private copy implies a
      data-valid LLC entry in the same socket.
    * **Value coherence**: all clean private copies of a line agree with
      the LLC copy.
    """
    holders = _private_holders(machine)

    for addr, entries in holders.items():
        states = [state for _core, state in entries]
        strong = [s for s in states if s.sole_copy]
        if strong and len(entries) > 1:
            raise CoherenceError(
                f"line {addr:#x}: {strong[0].value} copy coexists with "
                f"{len(entries) - 1} other private copies"
            )
        if len(strong) > 1:
            raise CoherenceError(f"line {addr:#x}: multiple M/E copies")
        owned = [s for s in states if s is CoherenceState.OWNED]
        if len(owned) > 1:
            raise CoherenceError(f"line {addr:#x}: multiple O copies")
        if owned:
            others = [s for s in states if s is not CoherenceState.OWNED]
            bad = [s for s in others if s not in (CoherenceState.SHARED,
                                                  CoherenceState.FORWARD)]
            if bad:
                raise CoherenceError(
                    f"line {addr:#x}: O coexists with {bad[0].value}"
                )

    for domain in machine.sockets:
        for core in domain.cores:
            for line in core.l1.lines():
                if core.l2.lookup(line.addr, touch=False) is None:
                    raise CoherenceError(
                        f"core {core.core_id}: line {line.addr:#x} in L1 "
                        "but not in L2 (inclusion violated)"
                    )

        for addr, entry in domain.directory.items():
            actual = set()
            for core in domain.cores:
                if domain.private_line(core, addr) is not None:
                    actual.add(core.core_id)
            if entry.core_valid != actual:
                raise CoherenceError(
                    f"socket {domain.socket_id} line {addr:#x}: core-valid "
                    f"bits {sorted(entry.core_valid)} != actual holders "
                    f"{sorted(actual)}"
                )
            if entry.owner is not None:
                if entry.owner not in actual:
                    raise CoherenceError(
                        f"socket {domain.socket_id} line {addr:#x}: owner "
                        f"{entry.owner} holds no private copy"
                    )
                owner_core = domain.core(entry.owner)
                owner_line = domain.private_line(owner_core, addr)
                if owner_line.state in (CoherenceState.SHARED,
                                        CoherenceState.INVALID):
                    raise CoherenceError(
                        f"socket {domain.socket_id} line {addr:#x}: owner "
                        f"holds non-forwardable state {owner_line.state.value}"
                    )

        if domain.inclusive:
            for core in domain.cores:
                seen = set()
                for cache in (core.l1, core.l2):
                    for line in cache.lines():
                        seen.add(line.addr)
                for addr in seen:
                    entry = domain.directory.get(addr)
                    if entry is None or not entry.data_valid:
                        raise CoherenceError(
                            f"socket {domain.socket_id} core {core.core_id}: "
                            f"private copy of {addr:#x} without an "
                            "LLC-resident entry (inclusion violated)"
                        )

        # Value coherence: clean private copies agree with the LLC copy.
        for addr, entry in domain.directory.items():
            if not entry.data_valid:
                continue
            for core in domain.cores:
                line = domain.private_line(core, addr)
                if line is None or line.state.dirty:
                    continue
                if entry.owner is not None:
                    # LLC copy may be stale while an owner exists.
                    continue
                if line.value != entry.value:
                    raise CoherenceError(
                        f"line {addr:#x}: clean private value {line.value} "
                        f"!= LLC value {entry.value}"
                    )


def check_line(machine: Machine, paddr: int) -> None:
    """Check the invariants relevant to one line (cheaper than full walk)."""
    base = line_addr(paddr)
    holders: list[tuple[int, CoherenceState]] = []
    for domain in machine.sockets:
        for core in domain.cores:
            line = domain.private_line(core, base)
            if line is not None:
                holders.append((core.core_id, line.state))
    strong = [s for _c, s in holders if s.sole_copy]
    if strong and len(holders) > 1:
        raise CoherenceError(
            f"line {base:#x}: sole-copy state with {len(holders)} holders"
        )

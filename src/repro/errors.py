"""Exception hierarchy for the repro package.

Every error raised by the package derives from :class:`ReproError` so that
callers can catch package failures with a single ``except`` clause while
still being able to distinguish subsystem-specific failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class SimulationError(ReproError):
    """Base class for errors raised by the discrete-event engine."""


class DeadlockError(SimulationError):
    """No thread can make progress but the simulation is not finished."""


class ThreadProgramError(SimulationError):
    """A thread program yielded something that is not a simulator op."""


class MemorySystemError(ReproError):
    """Base class for errors raised by the memory system."""


class InvalidAddressError(MemorySystemError):
    """An address is outside the configured physical or virtual range."""


class CoherenceError(MemorySystemError):
    """A coherence-protocol invariant was violated (indicates a bug)."""


class KernelError(ReproError):
    """Base class for errors raised by the simulated OS kernel."""


class PageFaultError(KernelError):
    """An unrecoverable page fault (no mapping for the address)."""

    def __init__(self, vaddr: int, pid: int, message: str | None = None):
        self.vaddr = vaddr
        self.pid = pid
        super().__init__(
            message or f"unhandled page fault at va={vaddr:#x} in pid={pid}"
        )


class ProtectionFaultError(KernelError):
    """A write to a read-only (non-COW) mapping."""

    def __init__(self, vaddr: int, pid: int):
        self.vaddr = vaddr
        self.pid = pid
        super().__init__(f"write to read-only va={vaddr:#x} in pid={pid}")


class OutOfMemoryError(KernelError):
    """The physical frame allocator is exhausted."""


class RunnerError(ReproError):
    """Base class for experiment-runner errors."""


class SpecError(RunnerError):
    """An ExperimentSpec or Point is malformed (e.g. unpicklable params)."""


class PointExecutionError(RunnerError):
    """A grid point raised while executing (in-process or in a worker)."""

    def __init__(self, label: str, cause: BaseException):
        self.label = label
        self.cause = cause
        super().__init__(
            f"point {label!r} failed: {type(cause).__name__}: {cause}"
        )


class ChannelError(ReproError):
    """Base class for covert-channel layer errors."""


class SyncTimeoutError(ChannelError):
    """Trojan/spy synchronization did not complete within its deadline."""


class DecodeError(ChannelError):
    """The spy-side decoder could not interpret the received samples."""


class CalibrationError(ChannelError):
    """Latency-band calibration produced unusable (overlapping) bands."""

"""Exception hierarchy for the repro package.

Every error raised by the package derives from :class:`ReproError` so that
callers can catch package failures with a single ``except`` clause while
still being able to distinguish subsystem-specific failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class SimulationError(ReproError):
    """Base class for errors raised by the discrete-event engine."""


class DeadlockError(SimulationError):
    """No thread can make progress but the simulation is not finished."""


class ThreadProgramError(SimulationError):
    """A thread program yielded something that is not a simulator op."""


class MemorySystemError(ReproError):
    """Base class for errors raised by the memory system."""


class InvalidAddressError(MemorySystemError):
    """An address is outside the configured physical or virtual range."""


class CoherenceError(MemorySystemError):
    """A coherence-protocol invariant was violated (indicates a bug)."""


class KernelError(ReproError):
    """Base class for errors raised by the simulated OS kernel."""


class PageFaultError(KernelError):
    """An unrecoverable page fault (no mapping for the address)."""

    def __init__(self, vaddr: int, pid: int, message: str | None = None):
        self.vaddr = vaddr
        self.pid = pid
        super().__init__(
            message or f"unhandled page fault at va={vaddr:#x} in pid={pid}"
        )


class ProtectionFaultError(KernelError):
    """A write to a read-only (non-COW) mapping."""

    def __init__(self, vaddr: int, pid: int):
        self.vaddr = vaddr
        self.pid = pid
        super().__init__(f"write to read-only va={vaddr:#x} in pid={pid}")


class OutOfMemoryError(KernelError):
    """The physical frame allocator is exhausted."""


class RunnerError(ReproError):
    """Base class for experiment-runner errors."""


class SpecError(RunnerError):
    """An ExperimentSpec or Point is malformed (e.g. unpicklable params)."""


class PointExecutionError(RunnerError):
    """A grid point raised while executing (in-process or in a worker)."""

    def __init__(self, label: str, cause: BaseException):
        self.label = label
        self.cause = cause
        super().__init__(
            f"point {label!r} failed: {type(cause).__name__}: {cause}"
        )


class PointTimeoutError(RunnerError):
    """A grid point exceeded its per-point wall-clock limit."""


class WorkerCrashError(RunnerError):
    """A pool worker died (killed, OOM, hard crash) mid-point.

    Wraps :class:`concurrent.futures.process.BrokenProcessPool` for the
    specific point whose dispatch was lost; the runner respawns the pool
    and re-dispatches, so this surfaces only once the retry budget is
    exhausted.
    """


class IncompleteRunError(RunnerError):
    """A RunReport is missing point values (failed or never-run points).

    Raised by :attr:`repro.runner.RunReport.values` instead of silently
    returning a list misaligned with the grid order, which would let
    ``collect()`` zip values against the wrong parameters.
    """

    def __init__(self, experiment: str, missing: list[str]):
        self.missing = list(missing)
        shown = ", ".join(self.missing[:5])
        if len(self.missing) > 5:
            shown += f", ... ({len(self.missing) - 5} more)"
        super().__init__(
            f"run of {experiment!r} is missing {len(self.missing)} point "
            f"value(s): {shown}; use keep_going/padded_values() for "
            f"partial results"
        )


class FaultError(ReproError):
    """A fault plan or fault event is malformed."""


class InjectedFaultError(FaultError):
    """A deterministic fault injected by a FaultPlan (harness plane).

    Raised in place of (or inside) a point execution to exercise the
    runner's failure policy; never raised unless fault injection was
    explicitly requested.
    """


class CheckpointError(ReproError):
    """A checkpoint could not be captured, validated, or restored."""


class ChannelError(ReproError):
    """Base class for covert-channel layer errors."""


class SyncTimeoutError(ChannelError):
    """Trojan/spy synchronization did not complete within its deadline."""


class DecodeError(ChannelError):
    """The spy-side decoder could not interpret the received samples."""


class CalibrationError(ChannelError):
    """Latency-band calibration produced unusable (overlapping) bands."""


class ServiceError(ReproError):
    """The experiment service (job API or cache server) failed."""


class CacheProtocolError(ServiceError):
    """The cache server spoke an unexpected frame (or went away)."""

"""Discrete-event simulation kernel.

Public surface:

* :class:`~repro.sim.engine.Simulator` — time-ordered thread interleaving.
* :class:`~repro.sim.thread.Cpu` / :class:`~repro.sim.thread.SimThread` —
  the op API thread programs use, and the schedulable thread object.
* :mod:`repro.sim.events` — primitive ops and :class:`OpResult`.
* :class:`~repro.sim.rng.RngStreams` — deterministic named RNG streams.
* :class:`~repro.sim.stats.StatsRegistry` — counters and histograms.
"""

from repro.sim.engine import Simulator
from repro.sim.events import (
    AccessPath,
    Burst,
    Delay,
    Fence,
    Flush,
    Load,
    Op,
    OpResult,
    Rdtsc,
    Store,
)
from repro.sim.rng import RngStreams, derive_seed
from repro.sim.stats import Histogram, StatsRegistry
from repro.sim.thread import Cpu, SimThread, ThreadState

__all__ = [
    "AccessPath",
    "Burst",
    "Cpu",
    "Delay",
    "Fence",
    "Flush",
    "Histogram",
    "Load",
    "Op",
    "OpResult",
    "Rdtsc",
    "RngStreams",
    "SimThread",
    "Simulator",
    "StatsRegistry",
    "Store",
    "ThreadState",
    "derive_seed",
]

"""Primitive operations that thread programs yield to the engine.

A thread program is a Python generator.  Each ``yield`` hands one of the
op dataclasses below to the engine; the engine executes it against the
machine (through the thread's executor) and sends an :class:`OpResult`
back into the generator.  User code normally does not construct these
directly — it calls the helpers on :class:`repro.sim.thread.Cpu`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class AccessPath(enum.Enum):
    """Which service path satisfied a memory access.

    These correspond one-to-one to the latency bands the paper exploits
    (Section V / Figure 2) plus the fast private-cache and DRAM paths.
    """

    L1_HIT = "l1_hit"
    L2_HIT = "l2_hit"
    LOCAL_SHARED = "local_shared"      # served by local LLC (S-state band)
    LOCAL_EXCL = "local_excl"          # forwarded to a local owner core (E)
    REMOTE_SHARED = "remote_shared"    # served by a remote socket's LLC (S)
    REMOTE_EXCL = "remote_excl"        # forwarded to a remote owner core (E)
    DRAM = "dram"                      # no cached copy anywhere
    UNCACHED = "uncached"              # store/flush paths with no band

    @property
    def is_coherence_band(self) -> bool:
        """True for the four (location, state) bands of the paper."""
        return self in (
            AccessPath.LOCAL_SHARED,
            AccessPath.LOCAL_EXCL,
            AccessPath.REMOTE_SHARED,
            AccessPath.REMOTE_EXCL,
        )


@dataclass(frozen=True, slots=True)
class Load:
    """Read one cache line at virtual address ``vaddr``.

    Immutable, so hot issuers (:class:`repro.sim.thread.Cpu`) memoize
    one instance per address instead of allocating per access.
    """

    vaddr: int


@dataclass(frozen=True, slots=True)
class Store:
    """Write ``value`` (a small int tag) to the line at ``vaddr``."""

    vaddr: int
    value: int = 0


@dataclass(frozen=True, slots=True)
class Flush:
    """clflush: evict the line at ``vaddr`` from every coherent cache."""

    vaddr: int


@dataclass(frozen=True, slots=True)
class Delay:
    """Spin for ``cycles`` cycles without touching memory."""

    cycles: float


@dataclass(frozen=True, slots=True)
class Rdtsc:
    """Read the thread's cycle clock (result carries the timestamp)."""


@dataclass(frozen=True, slots=True)
class Fence:
    """Serializing no-op; costs a fixed small latency."""


@dataclass(frozen=True, slots=True)
class Burst:
    """A batched sequence of ``count`` accesses for noise workloads.

    Executes ``count`` line accesses starting at ``vaddr`` with ``stride``
    bytes between them as a single engine event, advancing the thread
    clock by the summed latency divided by ``mlp`` (memory-level
    parallelism: how many requests the workload keeps outstanding, the
    way an out-of-order core with prefetchers streams a working set).
    ``write_ratio`` of them are stores.  Used so that background
    workloads do not dominate the event count.
    """

    vaddr: int
    count: int
    stride: int
    write_ratio: float = 0.0
    mlp: float = 1.0


@dataclass(slots=True)
class OpResult:
    """What the engine sends back into the generator after each op.

    One OpResult is allocated per executed op, so this is the hottest
    allocation in the simulator; it is a slotted, non-frozen dataclass
    because frozen construction costs an ``object.__setattr__`` per
    field.  Treat instances as immutable all the same.

    Attributes
    ----------
    latency:
        Cycles the op took (for ``Rdtsc`` this is 0).
    timestamp:
        The thread's clock *after* the op completed.
    value:
        Loaded value for ``Load`` (line tag), else 0.
    path:
        Service path for memory ops, ``None`` otherwise.
    """

    latency: float
    timestamp: float
    value: int = 0
    path: AccessPath | None = None


Op = Load | Store | Flush | Delay | Rdtsc | Fence | Burst

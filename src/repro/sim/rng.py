"""Deterministic random-number streams for the simulator.

Every stochastic component of the simulation (latency jitter, interconnect
contention, workload address generation, ...) draws from its own named
child stream derived from a single root seed.  Two runs with the same root
seed therefore produce bit-identical results regardless of the order in
which components are constructed, and adding a new consumer does not
perturb the draws seen by existing consumers.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np


def derive_seed(root: int, *components: int | float | str | bool) -> int:
    """A stable 31-bit seed for one unit of parallel work.

    Hashes ``(root, components)`` through canonical JSON + SHA-256, so
    the result depends only on the values — not on process identity,
    execution order, or Python's per-process string hashing.  This is
    the sanctioned way to give every point of an experiment grid its own
    independent seed: workers constructed from ``derive_seed(...)``
    params produce bit-identical results whether the grid runs serially
    or fanned out over a process pool.

    >>> derive_seed(0, "fig8", "RExclc-LSharedb", 500.0) \\
    ...     == derive_seed(0, "fig8", "RExclc-LSharedb", 500.0)
    True
    """
    if not isinstance(root, int):
        raise TypeError(f"root seed must be an int, got {type(root).__name__}")
    text = json.dumps([root, *components], sort_keys=True,
                      separators=(",", ":"), allow_nan=False)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "little") & 0x7FFF_FFFF


class RngStreams:
    """A registry of named, independently-seeded numpy generators.

    Parameters
    ----------
    seed:
        Root seed for the whole simulation.  Streams are derived from it
        by hashing the stream name, so stream identity depends only on
        ``(seed, name)``.
    """

    def __init__(self, seed: int = 0):
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = seed
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this registry was created with."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for *name*, creating it on first use.

        The same name always returns the same generator object, so
        consumers may call :meth:`get` eagerly or lazily with identical
        results.
        """
        stream = self._streams.get(name)
        if stream is None:
            # Derive a child seed from (root seed, name) only.  Using
            # spawn() would make stream identity depend on creation order.
            name_digest = np.frombuffer(
                name.encode("utf-8").ljust(8, b"\0")[:8], dtype=np.uint64
            )[0]
            seq = np.random.SeedSequence(
                entropy=self._seed, spawn_key=(int(name_digest), len(name))
            )
            stream = np.random.default_rng(seq)
            self._streams[name] = stream
        return stream

    def snapshot(self) -> dict[str, dict]:
        """Capture the exact state of every stream created so far.

        The returned mapping (stream name -> bit-generator state dict) is
        a deep copy, so later draws do not mutate it.  Together with
        :meth:`restore` this lets a caller skip a deterministic block of
        work — e.g. a memoized calibration pass — while leaving the
        generators exactly where really doing the work would have left
        them, which is what keeps downstream draws bit-identical.
        """
        import copy

        return {
            name: copy.deepcopy(stream.bit_generator.state)
            for name, stream in self._streams.items()
        }

    def restore(self, states: dict[str, dict]) -> None:
        """Set streams to a :meth:`snapshot` taken from an equal registry.

        Streams named in *states* are created on demand; streams we have
        that the snapshot lacks are left untouched (the snapshot was
        taken after strictly more work, so such streams cannot exist when
        restoring onto an identically-constructed registry).
        """
        import copy

        for name, state in states.items():
            self.get(name).bit_generator.state = copy.deepcopy(state)

    def fork(self, salt: int) -> "RngStreams":
        """Return a new registry whose streams are independent of ours.

        Used to give repeated experiment trials (e.g. one per sweep point)
        their own noise without re-seeding global state.
        """
        return RngStreams(seed=(self._seed * 1_000_003 + salt) & 0x7FFF_FFFF)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStreams(seed={self._seed}, streams={sorted(self._streams)})"

"""The lane backend: drive channel threads without generator dispatch.

The reference engine (:class:`repro.sim.engine.Simulator`) pays a fixed
per-event Python toll — a generator resume, an executor call, an
``OpResult`` allocation and a heap push — for every executed op.  For
the covert-channel workloads that toll dominates: the trojan workers,
the spy and the controller issue millions of ops per transmission from
three small, fully-known programs.

:class:`LaneSimulator` removes the toll for exactly those threads.  At
spawn time it recognizes the three channel programs by their
:class:`~repro.checkpoint.spec.ProgramSpec` factory path and attaches a
*driver* — a flat state machine that issues the same op sequence the
generator would, against the same machine model, drawing the same RNG
streams in the same order.  The run loop then advances a driven thread
with an **inline run**: when the thread pops off the event heap, its
driver keeps executing ops while each completion time stays strictly
below the next heap entry's clock, and the thread is pushed back once.
Because the elided intermediate heap pushes would all have been strict
minima popped straight back (and the fresh-sequence tie-break at the
boundary resolves the ``==`` case the same way), the global interleaving
of machine mutations, RNG draws, event counts and clock updates is
**bit-identical** to the reference loop — the golden digests and the
randomized equivalence suite in ``tests/test_lanes.py`` pin this.

Divergent workloads fall out of the lane into the unchanged reference
path, the same bypass pattern ``calibrate_memoized`` uses:

* at session build: tracing sessions, segmented (checkpointing) runs
  and simulation-plane fault plans never get a :class:`LaneSimulator`
  (:func:`session_bypass_reason`);
* at run entry: an installed obfuscation policy or a detection tap that
  interposed on ``machine.load/store/flush`` stands the lane down
  (:meth:`LaneSimulator.lane_stand_down`) — partially-driven worker
  threads are re-materialized as ordinary generators at their exact
  park position, and the reference loop takes over;
* mid-session: a resync (lost handshake) stands the lane down for the
  session's remainder.

Every fall-out is recorded via :func:`note_bypass` so sweeps can audit
their vectorization coverage (the runner emits these as ``lane_bypass``
events, see :mod:`repro.runner.executor`).

``REPRO_LANES=0`` is the kill switch: it forces the reference path
everywhere regardless of CLI flags or runner configuration.  Any other
non-empty value enables lanes (and doubles as the lane-batch width for
the runner); unset defers to the process-local :func:`lane_scope`
context the runner's lane dispatch installs in pool workers.
"""

from __future__ import annotations

import heapq
import os
from contextlib import contextmanager
from typing import Any

import numpy as np

from repro.errors import SimulationError, SyncTimeoutError
from repro.sim.engine import Simulator
from repro.sim.events import AccessPath, OpResult
from repro.sim.thread import SimThread, ThreadState

_READY = ThreadState.READY
_DONE = ThreadState.DONE
_FAILED = ThreadState.FAILED
_INF = float("inf")
_L1_HIT = AccessPath.L1_HIT

__all__ = [
    "LaneSimulator",
    "LaneState",
    "consume_bypass_notes",
    "lane_fingerprint",
    "lane_scope",
    "lane_width",
    "lanes_enabled",
    "note_bypass",
    "session_bypass_reason",
]


# ----------------------------------------------------------------------
# gating: environment kill switch + process-local context
# ----------------------------------------------------------------------

class _LaneContext:
    """Process-local default used when ``REPRO_LANES`` is unset."""

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = False


_context = _LaneContext()

#: Default lane-batch width when ``REPRO_LANES`` does not carry one.
DEFAULT_LANE_WIDTH = 8


def lanes_enabled() -> bool:
    """Whether sessions built now should use the lane backend.

    ``REPRO_LANES=0`` always wins (kill switch); any other non-empty
    value forces lanes on; unset defers to :func:`lane_scope`.
    """
    raw = os.environ.get("REPRO_LANES")
    if raw:
        return raw != "0"
    return _context.enabled


def lane_width(default: int = DEFAULT_LANE_WIDTH) -> int:
    """Lane-batch width carried by ``REPRO_LANES`` (or *default*)."""
    raw = os.environ.get("REPRO_LANES")
    try:
        value = int(raw) if raw else 0
    except ValueError:
        return default
    return value if value > 0 else default


@contextmanager
def lane_scope(enabled: bool = True):
    """Enable (or disable) the lane backend for sessions built inside.

    The runner's lane dispatch wraps each lane-batch point execution in
    ``lane_scope(True)`` so cache keys and point params stay untouched —
    lanes ride the environment/context, never the point identity,
    exactly like ``REPRO_TRACE`` and ``REPRO_SEGMENT_CYCLES``.
    """
    previous = _context.enabled
    _context.enabled = enabled
    try:
        yield
    finally:
        _context.enabled = previous


# ----------------------------------------------------------------------
# bypass audit trail
# ----------------------------------------------------------------------

_bypass_notes: list[dict[str, Any]] = []


def note_bypass(reason: str, **detail: Any) -> None:
    """Record one lane fall-out (session bypass or mid-flight stand-down)."""
    note = {"reason": reason}
    if detail:
        note.update(detail)
    _bypass_notes.append(note)


def consume_bypass_notes() -> list[dict[str, Any]]:
    """Drain and return the bypass notes recorded since the last call."""
    notes = _bypass_notes[:]
    del _bypass_notes[:]
    return notes


def session_bypass_reason(config: Any, traced: bool = False) -> str | None:
    """Why a session about to be built cannot use the lane backend.

    Returns ``None`` when the lane backend is safe, else one of
    ``"trace"`` (recorder sessions interpose on the machine),
    ``"segments"`` (checkpointing needs replay logs the drivers do not
    write) or ``"faults"`` (simulation-plane fault plans perturb thread
    programs in ways the drivers do not model).
    """
    if traced:
        return "trace"
    from repro.checkpoint.segments import segments_enabled

    if segments_enabled():
        return "segments"
    faults = getattr(config, "faults", None)
    if faults:
        from repro.faults.plan import FaultPlan

        if FaultPlan.from_json(faults).simulation_events:
            return "faults"
    return None


# ----------------------------------------------------------------------
# lane-batch compatibility fingerprint (runner grouping)
# ----------------------------------------------------------------------

#: Point parameters that vectorize across lanes: points differing only
#: in these still share a lane batch (same scenario cell, same machine
#: shape, different seed/payload/operating point).
_LANE_VARIANT_KEYS = frozenset({
    "seed", "rate", "rate_kbps", "bits", "payload", "n_bits", "index",
})


def lane_fingerprint(point: Any) -> str:
    """Compatibility key grouping cache-miss points into lane batches.

    Two points are lane-compatible when they run the same point
    function with the same non-vectorizing parameters — the same
    ``ScenarioSpec`` cell, machine fingerprint, sharing mode and flush
    method — differing only in seed/payload/rate, which vectorize.
    """
    from repro.runner.spec import canonical_json

    params = {
        key: value
        for key, value in dict(point.params).items()
        if key not in _LANE_VARIANT_KEYS
    }
    return canonical_json({"fn": point.fn, "params": params})


def point_bypass_reason(point: Any) -> str | None:
    """Why a grid point must skip lane dispatch entirely (or ``None``).

    Fault-injected points diverge mid-flight by design; keeping them on
    the reference dispatch path avoids a guaranteed stand-down.
    """
    params = point.params
    if params.get("faults") or params.get("fault_rate"):
        return "faults"
    return None


# ----------------------------------------------------------------------
# struct-of-arrays batch bookkeeping
# ----------------------------------------------------------------------

class LaneState:
    """Struct-of-arrays bookkeeping for one lane batch.

    One row per lane (grid point).  The runner's lane dispatch fills
    the arrays as points complete: per-lane clocks, executed-event
    counts, the live/bypassed masks, and the per-path base-latency
    table broadcast per lane (every lane shares a machine fingerprint,
    so the broadcast is exact).  The arrays make batch-level audits —
    total events, slowest lane, vectorization coverage — single numpy
    reductions instead of per-point dict walks.
    """

    __slots__ = (
        "width", "clocks", "events", "active", "bypassed", "base_latency",
        "paths",
    )

    def __init__(self, width: int, base_latency: dict | None = None):
        self.width = width
        self.clocks = np.zeros(width, dtype=np.float64)
        self.events = np.zeros(width, dtype=np.int64)
        self.active = np.ones(width, dtype=bool)
        self.bypassed = np.zeros(width, dtype=bool)
        if base_latency:
            self.paths = sorted(base_latency, key=lambda p: p.value)
            row = np.array(
                [float(base_latency[p]) for p in self.paths], dtype=np.float64
            )
            self.base_latency = np.broadcast_to(
                row, (width, len(row))
            ).copy()
        else:
            self.paths = []
            self.base_latency = np.zeros((width, 0), dtype=np.float64)

    def record(self, lane: int, clock: float, events: int) -> None:
        """Record a completed lane's final clock and event count."""
        self.clocks[lane] = clock
        self.events[lane] = events
        self.active[lane] = False

    def drop(self, lane: int) -> None:
        """Mark a lane as having fallen out to the reference path."""
        self.active[lane] = False
        self.bypassed[lane] = True

    def summary(self) -> dict[str, Any]:
        """Batch-level aggregates for audit events and benchmarks."""
        return {
            "width": int(self.width),
            "events": int(self.events.sum()),
            "max_clock": float(self.clocks.max()) if self.width else 0.0,
            "bypassed": int(self.bypassed.sum()),
        }


# ----------------------------------------------------------------------
# the drivers
# ----------------------------------------------------------------------

class _LaneIneligible(Exception):
    """A driver constructor refusing a thread it cannot drive exactly."""


class _Runtime:
    """Hot-loop accounting shared between the run loop and a driver.

    The run loop hoists ``events``/``global_clock`` into locals exactly
    like the reference; around each driver advance they are spilled
    into this object so an exception mid-advance (a spy sync timeout,
    the ``max_events`` guard) leaves the counts exact.
    """

    __slots__ = (
        "events", "global_clock", "event_limit", "cycle_limit",
        "max_events", "max_cycles",
    )

    def __init__(self) -> None:
        self.events = 0
        self.global_clock = 0.0
        self.event_limit = _INF
        self.cycle_limit = _INF
        self.max_events: int | None = None
        self.max_cycles: float | None = None


def _kernel_of(executor: Any) -> Any | None:
    """The owning Kernel of a bound ``Kernel._execute`` (else None)."""
    kernel = getattr(executor, "__self__", None)
    if kernel is None or not hasattr(kernel, "_sched_thread_core"):
        return None
    return kernel


#: Lazily-resolved channel-layer constants (import layering: sim must
#: not import channel at module load).  Resolved once per process, at
#: the first driver construction.
_channel_consts_cache: tuple | None = None


def _channel_consts() -> tuple:
    """(``_THREADS_NEEDED``, ``LineState.OWNED``, ``Sample``)."""
    global _channel_consts_cache
    if _channel_consts_cache is None:
        from repro.channel.config import _THREADS_NEEDED, LineState
        from repro.channel.decoder import Sample

        _channel_consts_cache = (_THREADS_NEEDED, LineState.OWNED, Sample)
    return _channel_consts_cache


class _WorkerDriver:
    """Drives ``repro.channel.trojan:worker_program`` threads.

    Replicates the worker loop exactly: one control poll per wakeup,
    the OWNED rank-0 store path, the load with the adaptive
    backoff/spin decision, and the idle poll cadence — including the
    inline L1-hit fast path that skips the full ``machine.load`` call
    (probing only the L1 bucket, so a miss leaves the caches untouched
    for the real lookup; valid in both snoop and directory mode, whose
    private-hit paths are identical).
    """

    __slots__ = (
        "sim", "thread", "kernel", "control", "role", "block_va", "params",
        "started", "state", "load_latency", "poll", "parked", "_hoist",
    )

    def __init__(self, sim: "LaneSimulator", thread: SimThread, kernel: Any,
                 spec: Any):
        if len(spec.args) != 4 or spec.kwargs:
            raise _LaneIneligible("unexpected worker_program spec shape")
        self.sim = sim
        self.thread = thread
        self.kernel = kernel
        self.control, self.role, self.block_va, self.params = spec.args
        self.started = False
        #: 0 = loop top (poll next), 1 = after the OWNED store (idle
        #: next), 2 = after the load (backoff/spin decision next).
        self.state = 0
        self.load_latency = 0.0
        #: The (running, pair) the current iteration's poll observed —
        #: the worker_program checkpoint cursor, used by rebuild().
        self.poll: tuple | None = None
        #: (latency, clock, value, path) of the op the thread parked
        #: on; materialized into an OpResult only if rebuild() needs it.
        self.parked: tuple | None = None

        params = self.params
        machine = kernel.machine
        l1 = machine.cores[thread.core_id].l1
        noise = machine._noise
        rng = machine._jitter_rng
        hit_base, hit_counter = machine._path_info[_L1_HIT]
        reload_period = float(params.reload_period)
        if reload_period < 0.0:
            reload_period = 0.0
        spin = float(params.worker_spin_cycles)
        if spin < 0.0:
            spin = 0.0
        backoff = float(params.worker_backoff_fraction * params.slot_cycles)
        if backoff < 0.0:
            backoff = 0.0
        needed, owned, _ = _channel_consts()
        # Everything frozen at spawn time, unpacked in one sequence per
        # advance().  Anything that can change between spawn and run —
        # obfuscation, machine interposition — stands the whole lane
        # down at run entry, before any advance happens; translations
        # are deliberately NOT hoisted (KSM merges and our own COW-
        # breaking store can remap the page mid-run).
        # pair -> poll action (0 idle, 1 store, 2 probe), keyed by id:
        # a scenario holds at most four distinct StatePairs and the
        # values list pins them, so the ids stay valid.
        pair_actions: dict[int, int] = {}
        pair_refs: list[Any] = []
        self._hoist = (
            l1._sets, l1._set_mask, hit_base, hit_counter,
            noise.enabled, noise.sigma, noise.tail_probability,
            noise.tail_scale, rng.normal, rng.random, rng.exponential,
            machine.load, kernel._do_store, reload_period, spin, backoff,
            params.adaptive_backoff, params.worker_refill_floor,
            self.role.location, self.role.index, owned, needed,
            kernel._timeshare, kernel._sched_rng, thread.tid,
            thread.process, thread.core_id, self.block_va,
            pair_actions, pair_refs,
        )

    def advance(self, bound: float, rt: _Runtime) -> None:
        thread = self.thread
        kernel = self.kernel
        control = self.control
        self.started = True

        (buckets, set_mask, hit_base, hit_counter, noise_on, sigma,
         tail_p, tail_s, normal, random, exponential, mload, do_store,
         reload_period, spin, backoff, adaptive, refill_floor,
         role_location, role_index, owned, needed, timeshare, sched_rng,
         tid, process, core_id, va, pair_actions, pair_refs) = self._hoist

        core = kernel._sched_thread_core.get(tid)
        # Static during one advance: assignments only change when
        # another thread exits, and no other thread runs while this
        # driver advances.
        shared = (
            core is not None and len(kernel._sched_assignments[core]) > 1
        )

        clock = thread.clock
        events = rt.events
        global_clock = rt.global_clock
        event_limit = rt.event_limit
        cycle_limit = rt.cycle_limit
        state = self.state
        ops = 0
        value = 0
        path = None
        latency = 0.0
        try:
            while True:
                is_delay = False
                if state == 0:
                    running = control.running
                    pair = control.active_pair
                    if not running:
                        # The program would break and StopIteration:
                        # no op, no event, thread exits.
                        thread.state = _DONE
                        thread.result = None
                        thread._fire_exit()
                        return
                    action = pair_actions.get(id(pair))
                    if action is None:
                        # First sighting of this pair: classify once
                        # (0 idle, 1 store, 2 probe) and pin the pair so
                        # its id stays valid for the cache's lifetime.
                        if (
                            pair is not None
                            and role_location is pair.location
                            and role_index < needed[pair.state]
                        ):
                            action = (
                                1 if role_index == 0
                                and pair.state is owned else 2
                            )
                        else:
                            action = 0
                        pair_actions[id(pair)] = action
                        pair_refs.append(pair)
                    if action == 2:
                        self.poll = (running, pair)
                        # Translated per probe: our own COW-breaking
                        # stores and ksmd merges can remap the page
                        # between ops.
                        paddr = (
                            va if process is None
                            else process.translate(va)
                        )
                        base = paddr & ~63
                        bucket = buckets[(base >> 6) & set_mask]
                        line = bucket.get(base)
                        if line is not None:
                            # Inline L1 hit: LRU touch + the exact
                            # _finish draw sequence (obfuscation is
                            # None by the run-entry check).
                            bucket.move_to_end(base)
                            if noise_on:
                                sample = hit_base + normal(0.0, sigma)
                                if random() < tail_p:
                                    sample += exponential(tail_s)
                                latency = (
                                    sample if sample > 1.0 else 1.0
                                )
                            else:
                                latency = (
                                    hit_base if hit_base > 1.0 else 1.0
                                )
                            hit_counter.value += 1
                            value = line.value
                            path = _L1_HIT
                        else:
                            value, latency, path = mload(
                                core_id, paddr, clock
                            )
                        self.load_latency = latency
                        state = 2
                    elif action == 1:
                        self.poll = (running, pair)
                        latency = do_store(thread, va, 1, clock)
                        value = 0
                        path = None
                        state = 1
                    elif not shared:
                        # Idle stretch on a private core: every poll has
                        # constant latency, draws no RNG, and the
                        # control state cannot change while this driver
                        # runs — so step straight to the bound in a
                        # tight loop.  The iterative += accumulation
                        # reproduces the reference's per-op float math
                        # bit-for-bit (a closed form would not).
                        latency = reload_period
                        value = 0
                        path = None
                        while True:
                            clock += reload_period
                            ops += 1
                            events += 1
                            if clock > global_clock:
                                global_clock = clock
                            if events >= event_limit:
                                thread.clock = clock
                                thread.ops_executed += ops
                                self.parked = (
                                    latency, clock, value, path
                                )
                                ops = 0
                                self.sim._push(thread)
                                raise SimulationError(
                                    f"exceeded max_events={rt.max_events} "
                                    f"(global clock {global_clock:.0f})"
                                )
                            if global_clock > cycle_limit:
                                thread.clock = clock
                                thread.ops_executed += ops
                                self.parked = (
                                    latency, clock, value, path
                                )
                                ops = 0
                                self.sim._push(thread)
                                raise SimulationError(
                                    f"exceeded max_cycles={rt.max_cycles}"
                                )
                            if clock >= bound:
                                thread.clock = clock
                                thread.ops_executed += ops
                                self.parked = (
                                    latency, clock, value, path
                                )
                                ops = 0
                                return
                    else:
                        latency = reload_period
                        is_delay = True
                        value = 0
                        path = None
                        # state stays 0: idle poll, back to loop top.
                elif state == 2:
                    if adaptive and self.load_latency >= refill_floor:
                        latency = backoff
                    else:
                        latency = spin
                    is_delay = True
                    value = 0
                    path = None
                    state = 0
                else:  # state == 1: after the OWNED store
                    latency = reload_period
                    is_delay = True
                    value = 0
                    path = None
                    state = 0

                if shared:
                    factor, penalty = timeshare(tid, sched_rng)
                    if is_delay:
                        latency = latency * factor
                    latency += penalty
                clock += latency
                ops += 1
                events += 1
                if clock > global_clock:
                    global_clock = clock
                if events >= event_limit:
                    self._park(clock, latency, value, path, ops)
                    ops = 0
                    self.sim._push(thread)
                    raise SimulationError(
                        f"exceeded max_events={rt.max_events} "
                        f"(global clock {global_clock:.0f})"
                    )
                if global_clock > cycle_limit:
                    self._park(clock, latency, value, path, ops)
                    ops = 0
                    self.sim._push(thread)
                    raise SimulationError(
                        f"exceeded max_cycles={rt.max_cycles}"
                    )
                if clock >= bound:
                    self._park(clock, latency, value, path, ops)
                    ops = 0
                    return
        finally:
            rt.events = events
            rt.global_clock = global_clock
            self.state = state
            if ops:
                thread.clock = clock
                thread.ops_executed += ops

    def _park(self, clock: float, latency: float, value: int,
              path: Any, ops: int) -> None:
        thread = self.thread
        thread.clock = clock
        thread.ops_executed += ops
        self.parked = (latency, clock, value, path)

    def rebuild(self) -> None:
        """Re-materialize the thread's generator at the parked position.

        Used by lane stand-down: the thread's real generator was never
        advanced (the driver executed its ops), so a fresh one is built
        with the worker's checkpoint ``cursor`` — the iteration's poll
        — and fast-forwarded past the ops the driver already executed.
        The result of the op the thread parked on (deferred as a plain
        tuple at park time) is re-delivered by the reference loop
        exactly as it would have been.
        """
        from repro.channel.trojan import worker_program

        thread = self.thread
        thread._generator.close()
        state = self.state
        cursor = None if state == 0 else self.poll
        program = worker_program(
            self.control, self.role, self.block_va, self.params,
            cursor=cursor,
        )
        thread._generator = program(thread.cpu)
        if state == 0:
            # Loop top: the program re-polls live on the next resume
            # and ignores the delivered result of a delay/store op, so
            # a fresh send(None) is exact.
            thread._pending_result = None
        else:
            # Mid-iteration: replay the poll via the cursor, advance to
            # the first op's yield (already executed by the driver) and
            # let the loop deliver its parked result.
            latency, clock, value, path = self.parked
            thread._pending_result = OpResult(latency, clock, value, path)
            next(thread._generator)


class _SpyDriver:
    """Drives ``repro.channel.spy:spy_program`` threads.

    One state per primitive of the spy's slot — rdtsc, pacing delay,
    flush (clflush or the eviction-load sweep), the post-flush wait,
    and the fence-bracketed measured load — plus a no-op processing
    state that applies Algorithm 2's phase logic between slots.  The
    flush and load primitives are real machine calls; only the fixed
    delays and fences are computed inline.
    """

    __slots__ = (
        "sim", "thread", "kernel", "result", "decoder", "params",
        "block_va", "eviction_set", "started", "state", "phase", "polls",
        "quiet", "next_slot", "evict_index", "evict_paddrs",
        "load_latency", "load_timestamp", "load_path", "_hoist",
    )

    # FSM states: which primitive executes next.
    PROCESS, RDTSC, PACE, FLUSH, EVICT, WAIT, FENCE1, LOAD, FENCE2 = range(9)

    def __init__(self, sim: "LaneSimulator", thread: SimThread, kernel: Any,
                 spec: Any):
        if len(spec.args) != 4:
            raise _LaneIneligible("unexpected spy_program spec shape")
        kwargs = dict(spec.kwargs)
        eviction = kwargs.pop("eviction_set", None)
        if kwargs:
            raise _LaneIneligible("unexpected spy_program kwargs")
        self.sim = sim
        self.thread = thread
        self.kernel = kernel
        self.result, self.decoder, self.params, self.block_va = spec.args
        self.eviction_set = list(eviction) if eviction is not None else None
        self.started = False
        self.state = self.RDTSC
        self.phase = 1
        self.polls = 0
        self.quiet = 0
        self.next_slot: float | None = None
        self.evict_index = 0
        self.evict_paddrs: list[int] | None = None
        self.load_latency = 0.0
        self.load_timestamp = 0.0
        self.load_path: Any = None

        params = self.params
        machine = kernel.machine
        _, _, sample_cls = _channel_consts()
        wait_cycles = float(params.spy_wait_cycles)
        if wait_cycles < 0.0:
            wait_cycles = 0.0
        # Frozen at spawn time (see _WorkerDriver._hoist).  The probed
        # block's translation stays per-advance: in KSM mode the shared
        # page can be remapped by a merge mid-run.
        self._hoist = (
            machine.load, machine.flush, kernel._fence_cost,
            params.slot_cycles, wait_cycles, params.end_run,
            params.max_poll_slots, params.max_reception_slots,
            self.decoder.label, sample_cls, self.result,
            self.result.samples, self.result.poll_samples,
            kernel._timeshare, kernel._sched_rng, thread.tid,
            thread.process, thread.core_id, self.block_va,
        )

    def advance(self, bound: float, rt: _Runtime) -> None:
        thread = self.thread
        kernel = self.kernel
        self.started = True

        (mload, mflush, fence_cost, slot_cycles, wait_cycles, end_run,
         max_poll, max_recv, label, Sample, spy_result, samples,
         poll_samples, timeshare, sched_rng, tid, process, core_id,
         va) = self._hoist

        evict = None
        if self.eviction_set is not None:
            evict = self.evict_paddrs
            if evict is None:
                # Spy-private, never-mergeable pages: translations are
                # stable for the session's lifetime.
                evict = self.evict_paddrs = [
                    va if process is None else process.translate(va)
                    for va in self.eviction_set
                ]
        n_evict = len(evict) if evict is not None else 0

        core = kernel._sched_thread_core.get(tid)
        shared = (
            core is not None and len(kernel._sched_assignments[core]) > 1
        )

        PROCESS = self.PROCESS
        RDTSC = self.RDTSC
        PACE = self.PACE
        FLUSH = self.FLUSH
        EVICT = self.EVICT
        WAIT = self.WAIT
        FENCE1 = self.FENCE1
        LOAD = self.LOAD
        FENCE2 = self.FENCE2

        clock = thread.clock
        events = rt.events
        global_clock = rt.global_clock
        event_limit = rt.event_limit
        cycle_limit = rt.cycle_limit
        state = self.state
        phase = self.phase
        polls = self.polls
        quiet = self.quiet
        next_slot = self.next_slot
        ops = 0
        value = 0
        path = None
        latency = 0.0
        try:
            while True:
                is_delay = False
                is_load = False
                if state == PROCESS:
                    # Between-slot bookkeeping: build the Sample from
                    # the fence-bracketed load and apply Algorithm 2's
                    # phase logic.  No op executes in this state.
                    lat = self.load_latency
                    sample = Sample(
                        timestamp=self.load_timestamp,
                        latency=lat,
                        label=label(lat),
                        path=self.load_path,
                    )
                    if phase == 1:
                        poll_samples.append(sample)
                        if sample.label == "b":
                            spy_result.started_at = sample.timestamp
                            samples.append(sample)
                            phase = 2
                        else:
                            polls += 1
                            if polls >= max_poll:
                                spy_result.timed_out = True
                                thread.state = _FAILED
                                thread._fire_exit()
                                raise SyncTimeoutError(
                                    f"spy saw no transmission start in "
                                    f"{polls} slots"
                                )
                    else:
                        samples.append(sample)
                        quiet = quiet + 1 if sample.label == "x" else 0
                        if len(samples) >= max_recv:
                            spy_result.timed_out = True
                            spy_result.finished_at = sample.timestamp
                            thread.state = _DONE
                            thread.result = None
                            thread._fire_exit()
                            return
                        if quiet >= end_run:
                            del samples[-end_run:]
                            spy_result.finished_at = (
                                samples[-1].timestamp if samples else None
                            )
                            thread.state = _DONE
                            thread.result = None
                            thread._fire_exit()
                            return
                    state = RDTSC

                if state == RDTSC:
                    latency = 0.0
                    value = 0
                    path = None
                    state = PACE
                elif state == PACE:
                    # After rdtsc, ``now`` is the rdtsc completion time
                    # — exactly ``clock`` here.
                    target = next_slot
                    if target is not None and target > clock:
                        next_slot = target + slot_cycles
                        latency = target - clock
                        is_delay = True
                        value = 0
                        path = None
                        state = FLUSH
                        # fall through to accounting: this is an op.
                    else:
                        # Overrun (or the first slot): re-anchor, no
                        # pacing op — the flush executes immediately.
                        next_slot = clock + slot_cycles
                        state = FLUSH
                        continue
                elif state == FLUSH:
                    if evict is None:
                        # Translated per op: in KSM mode a merge can
                        # remap the shared block between slots.
                        paddr = (
                            va if process is None
                            else process.translate(va)
                        )
                        latency = mflush(core_id, paddr, clock)
                        value = 0
                        path = None
                        state = WAIT
                    else:
                        value, latency, path = mload(
                            core_id, evict[0], clock
                        )
                        self.evict_index = 1
                        state = WAIT if n_evict == 1 else EVICT
                elif state == EVICT:
                    index = self.evict_index
                    value, latency, path = mload(
                        core_id, evict[index], clock
                    )
                    index += 1
                    self.evict_index = index
                    if index >= n_evict:
                        state = WAIT
                elif state == WAIT:
                    latency = wait_cycles
                    is_delay = True
                    value = 0
                    path = None
                    state = FENCE1
                elif state == FENCE1:
                    latency = fence_cost
                    value = 0
                    path = None
                    state = LOAD
                elif state == LOAD:
                    paddr = (
                        va if process is None
                        else process.translate(va)
                    )
                    value, latency, path = mload(core_id, paddr, clock)
                    is_load = True
                    state = FENCE2
                else:  # FENCE2
                    latency = fence_cost
                    value = 0
                    path = None
                    state = PROCESS

                if shared:
                    factor, penalty = timeshare(tid, sched_rng)
                    if is_delay:
                        latency = latency * factor
                    latency += penalty
                clock += latency
                if is_load:
                    # The measurement the decoder labels: latency and
                    # timestamp as the program's OpResult carries them
                    # (timeshare penalty included).
                    self.load_latency = latency
                    self.load_timestamp = clock
                    self.load_path = path
                ops += 1
                events += 1
                if clock > global_clock:
                    global_clock = clock
                if events >= event_limit:
                    self._park(clock, latency, value, path, ops)
                    ops = 0
                    self.sim._push(thread)
                    raise SimulationError(
                        f"exceeded max_events={rt.max_events} "
                        f"(global clock {global_clock:.0f})"
                    )
                if global_clock > cycle_limit:
                    self._park(clock, latency, value, path, ops)
                    ops = 0
                    self.sim._push(thread)
                    raise SimulationError(
                        f"exceeded max_cycles={rt.max_cycles}"
                    )
                if clock >= bound:
                    self._park(clock, latency, value, path, ops)
                    ops = 0
                    return
        finally:
            rt.events = events
            rt.global_clock = global_clock
            self.state = state
            self.phase = phase
            self.polls = polls
            self.quiet = quiet
            self.next_slot = next_slot
            if ops:
                thread.clock = clock
                thread.ops_executed += ops

    def _park(self, clock: float, latency: float, value: int,
              path: Any, ops: int) -> None:
        # No pending result: rebuild() below raises, so nothing ever
        # resumes this thread's generator with one.
        thread = self.thread
        thread.clock = clock
        thread.ops_executed += ops

    def rebuild(self) -> None:
        # Unreachable by construction: the spy is a non-daemon, so a
        # run only returns once it is DONE/FAILED, and the resync
        # stand-down happens after the attempt reap killed it.  A spy
        # parked mid-slot holds its fence-bracketed measurement in
        # driver state that no generator cursor can reproduce.
        raise SimulationError(
            f"lane stand-down cannot rebuild partially-driven spy "
            f"thread {self.thread.name!r}"
        )


class _ControllerDriver:
    """Drives ``repro.channel.trojan:controller_program`` threads.

    The hold sequence is flattened into the same indexed step list the
    program builds; each step is one flush op and one delay op, with
    the shared-control mutations (``set_pair``, the sent-bit appends,
    ``stop``) applied at exactly the pop times the generator would
    apply them.
    """

    __slots__ = (
        "sim", "thread", "kernel", "control", "scenario", "params",
        "block_va", "steps", "started", "state", "index", "pending_bit",
    )

    # FSM states.
    STEP_FLUSH, STEP_DELAY, TAIL, EXIT = range(4)

    #: Defaults of controller_program's keyword-only knobs; sessions
    #: spawn the controller with a 5-tuple spec, leaving these alone.
    LEAD_IN_SLOTS = 4
    TAIL_SLOTS = 4

    def __init__(self, sim: "LaneSimulator", thread: SimThread, kernel: Any,
                 spec: Any):
        if len(spec.args) != 5 or spec.kwargs:
            raise _LaneIneligible("unexpected controller_program spec shape")
        self.sim = sim
        self.thread = thread
        self.kernel = kernel
        (self.control, self.scenario, self.params, self.block_va,
         payload) = spec.args
        scenario = self.scenario
        params = self.params
        steps: list[tuple[Any, int, int | None]] = [
            (scenario.csc, self.LEAD_IN_SLOTS, None)
        ]
        for bit in payload:
            steps.append((scenario.csb, params.cb, None))
            steps.append(
                (scenario.csc, params.c1 if bit else params.c0, bit)
            )
        steps.append((scenario.csb, params.cb, None))
        if scenario.terminator is not None:
            steps.append((scenario.terminator, params.end_run + 2, None))
        self.steps = steps
        self.started = False
        self.state = self.STEP_FLUSH
        self.index = 0
        self.pending_bit: int | None = None

    def advance(self, bound: float, rt: _Runtime) -> None:
        thread = self.thread
        kernel = self.kernel
        machine = kernel.machine
        control = self.control
        slot_cycles = self.params.slot_cycles
        steps = self.steps
        n_steps = len(steps)
        self.started = True

        process = thread.process
        va = self.block_va
        paddr = va if process is None else process.translate(va)
        core_id = thread.core_id
        mflush = machine.flush

        tid = thread.tid
        core = kernel._sched_thread_core.get(tid)
        shared = (
            core is not None and len(kernel._sched_assignments[core]) > 1
        )
        timeshare = kernel._timeshare
        sched_rng = kernel._sched_rng

        STEP_FLUSH = self.STEP_FLUSH
        STEP_DELAY = self.STEP_DELAY
        TAIL = self.TAIL

        clock = thread.clock
        events = rt.events
        global_clock = rt.global_clock
        event_limit = rt.event_limit
        cycle_limit = rt.cycle_limit
        state = self.state
        index = self.index
        ops = 0
        value = 0
        path = None
        latency = 0.0
        try:
            while True:
                is_delay = False
                if state == STEP_FLUSH:
                    # Start of step ``index``: record the previous
                    # step's bit (the program appends it at the resume
                    # after that step's delay), retarget the workers,
                    # flush B everywhere.
                    bit = self.pending_bit
                    if bit is not None:
                        control.bits_sent.append(bit)
                    pair, _slots, step_bit = steps[index]
                    control.set_pair(pair)
                    latency = mflush(core_id, paddr, clock)
                    value = 0
                    path = None
                    self.pending_bit = step_bit
                    state = STEP_DELAY
                elif state == STEP_DELAY:
                    latency = float(steps[index][1] * slot_cycles)
                    if latency < 0.0:
                        latency = 0.0
                    is_delay = True
                    value = 0
                    path = None
                    index += 1
                    state = STEP_FLUSH if index < n_steps else TAIL
                elif state == TAIL:
                    bit = self.pending_bit
                    if bit is not None:
                        control.bits_sent.append(bit)
                        self.pending_bit = None
                    control.stop()
                    latency = float(self.TAIL_SLOTS * slot_cycles)
                    if latency < 0.0:
                        latency = 0.0
                    is_delay = True
                    value = 0
                    path = None
                    state = self.EXIT
                else:  # EXIT: the program returns — no op, no event.
                    thread.state = _DONE
                    thread.result = None
                    thread._fire_exit()
                    return

                if shared:
                    factor, penalty = timeshare(tid, sched_rng)
                    if is_delay:
                        latency = latency * factor
                    latency += penalty
                clock += latency
                ops += 1
                events += 1
                if clock > global_clock:
                    global_clock = clock
                if events >= event_limit:
                    self._park(clock, latency, value, path, ops)
                    ops = 0
                    self.sim._push(thread)
                    raise SimulationError(
                        f"exceeded max_events={rt.max_events} "
                        f"(global clock {global_clock:.0f})"
                    )
                if global_clock > cycle_limit:
                    self._park(clock, latency, value, path, ops)
                    ops = 0
                    self.sim._push(thread)
                    raise SimulationError(
                        f"exceeded max_cycles={rt.max_cycles}"
                    )
                if clock >= bound:
                    self._park(clock, latency, value, path, ops)
                    ops = 0
                    return
        finally:
            rt.events = events
            rt.global_clock = global_clock
            self.state = state
            self.index = index
            if ops:
                thread.clock = clock
                thread.ops_executed += ops

    def _park(self, clock: float, latency: float, value: int,
              path: Any, ops: int) -> None:
        # No pending result: rebuild() below raises, so nothing ever
        # resumes this thread's generator with one.
        thread = self.thread
        thread.clock = clock
        thread.ops_executed += ops

    def rebuild(self) -> None:
        # Unreachable by construction: the controller is a non-daemon
        # (runs end only once it is DONE) and the resync reap kills it
        # before the stand-down.  A controller parked mid-step cannot
        # be rebuilt without re-executing its flush.
        raise SimulationError(
            f"lane stand-down cannot rebuild partially-driven controller "
            f"thread {self.thread.name!r}"
        )


#: ProgramSpec factory path -> driver class.  Only these three programs
#: are ever driven; everything else (noise workloads, ksmd, fault
#: injectors, ad-hoc programs) runs on the unchanged reference path.
_DRIVER_FACTORIES = {
    "repro.channel.trojan:worker_program": _WorkerDriver,
    "repro.channel.spy:spy_program": _SpyDriver,
    "repro.channel.trojan:controller_program": _ControllerDriver,
}


# ----------------------------------------------------------------------
# the simulator
# ----------------------------------------------------------------------

class LaneSimulator(Simulator):
    """A :class:`Simulator` that lane-drives the known channel programs.

    Drop-in compatible: threads without a recognized
    :class:`~repro.checkpoint.spec.ProgramSpec` run through the exact
    reference loop, and :meth:`lane_stand_down` converts the whole
    simulator back to the reference path mid-session.
    """

    def __init__(self, stats: Any | None = None):
        super().__init__(stats)
        self._drivers: dict[int, Any] = {}
        self._lane_down = False
        self._rt = _Runtime()
        #: Bypass/stand-down reasons recorded on this simulator (the
        #: module-level notes aggregate across sessions for the runner).
        self.lane_bypasses: list[str] = []

    # -- spawn: driver attach -------------------------------------------

    def spawn(self, name, program, core_id, executor, start_time=None,
              daemon=False, process=None, spec=None):
        thread = super().spawn(
            name, program, core_id, executor, start_time=start_time,
            daemon=daemon, process=process, spec=spec,
        )
        if spec is not None and not self._lane_down and not self.checkpointing:
            factory = _DRIVER_FACTORIES.get(getattr(spec, "fn", None))
            if factory is not None:
                kernel = _kernel_of(executor)
                if kernel is not None:
                    try:
                        self._drivers[thread.tid] = factory(
                            self, thread, kernel, spec
                        )
                    except _LaneIneligible:
                        pass
        return thread

    # -- divergence handling --------------------------------------------

    def _dynamic_bypass_reason(self) -> str | None:
        """Run-entry check for conditions the drivers do not model.

        Both only change between runs: obfuscation policies are
        installed by mitigation experiments on a built session, and
        detection monitors interpose on the machine's bound methods
        from outside the event loop.
        """
        kernel = None
        for driver in self._drivers.values():
            kernel = driver.kernel
            break
        if kernel is None:
            return None
        machine = kernel.machine
        if machine.obfuscation is not None:
            return "obfuscation"
        instance = machine.__dict__
        if "load" in instance or "store" in instance or "flush" in instance:
            return "interposition"
        return None

    def lane_stand_down(self, reason: str) -> None:
        """Fall out of the lane into the reference path permanently.

        Every partially-driven live thread is re-materialized as an
        ordinary generator at its exact park position (see
        ``_WorkerDriver.rebuild``); unstarted drivers are simply
        dropped — their generators were never touched.
        """
        if self._lane_down:
            return
        self._lane_down = True
        self.lane_bypasses.append(reason)
        note_bypass(reason)
        drivers, self._drivers = self._drivers, {}
        for driver in drivers.values():
            if driver.started and driver.thread.state is _READY:
                driver.rebuild()

    # -- the run loop ----------------------------------------------------

    def run(self, max_cycles=None, max_events=50_000_000, stop_when=None,
            kill_daemons=False, pause_at=None):
        drivers = self._drivers
        if (
            self._lane_down
            or not drivers
            or stop_when is not None
            or pause_at is not None
            or self.checkpointing
        ):
            return super().run(
                max_cycles=max_cycles, max_events=max_events,
                stop_when=stop_when, kill_daemons=kill_daemons,
                pause_at=pause_at,
            )
        reason = self._dynamic_bypass_reason()
        if reason is not None:
            self.lane_stand_down(reason)
            return super().run(
                max_cycles=max_cycles, max_events=max_events,
                stop_when=stop_when, kill_daemons=kill_daemons,
                pause_at=pause_at,
            )

        # The reference loop verbatim (see Simulator.run), with one
        # addition: a popped thread with a driver takes the inline-run
        # path instead of the generator resume.
        events = 0
        heap = self._heap
        heappop = heapq.heappop
        heappush = heapq.heappush
        seq_next = self._seq.__next__
        global_clock = self.global_clock
        op_types = SimThread._OP_TYPES
        valid_ops = SimThread._VALID_OPS
        event_limit = float("inf") if max_events is None else max_events
        cycle_limit = float("inf") if max_cycles is None else max_cycles
        rt = self._rt
        rt.event_limit = event_limit
        rt.cycle_limit = cycle_limit
        rt.max_events = max_events
        rt.max_cycles = max_cycles
        get_driver = drivers.get
        try:
            while heap:
                if self._live_count == 0:
                    break
                clock, _seq, thread = heappop(heap)
                if thread.state is not _READY:
                    drivers.pop(thread.tid, None)
                    continue
                tclock = thread.clock
                if clock < tclock:
                    heappush(heap, (tclock, seq_next(), thread))
                    continue
                driver = get_driver(thread.tid)
                if driver is not None:
                    bound = heap[0][0] if heap else _INF
                    rt.events = events
                    rt.global_clock = global_clock
                    try:
                        driver.advance(bound, rt)
                    finally:
                        events = rt.events
                        if rt.global_clock > global_clock:
                            global_clock = rt.global_clock
                            self.global_clock = global_clock
                    if thread.state is _READY:
                        heappush(heap, (thread.clock, seq_next(), thread))
                    else:
                        del drivers[thread.tid]
                    continue
                # -- reference inlined step ----------------------------
                pending = thread._pending_result
                log = thread.replay_log
                if log is not None and pending is not None:
                    log.append(pending)
                try:
                    op = thread._generator.send(pending)
                except StopIteration as stop:
                    thread.state = _DONE
                    thread.result = stop.value
                    thread._fire_exit()
                    continue
                except BaseException:
                    thread.state = _FAILED
                    thread._fire_exit()
                    raise
                if type(op) not in op_types and not isinstance(op, valid_ops):
                    thread.state = _FAILED
                    thread._fire_exit()
                    from repro.errors import ThreadProgramError

                    raise ThreadProgramError(
                        f"thread {thread.name!r} yielded {op!r}; "
                        "expected a simulator op"
                    )
                result = thread.executor(thread, op)
                tclock = result.timestamp
                thread.clock = tclock
                thread.ops_executed += 1
                thread._pending_result = result
                if tclock > global_clock:
                    global_clock = tclock
                    self.global_clock = tclock
                heappush(heap, (tclock, seq_next(), thread))
                events += 1
                if events >= event_limit:
                    raise SimulationError(
                        f"exceeded max_events={max_events} "
                        f"(global clock {global_clock:.0f})"
                    )
                if global_clock > cycle_limit:
                    raise SimulationError(
                        f"exceeded max_cycles={max_cycles}"
                    )
            else:
                if self._live_count > 0:
                    from repro.errors import DeadlockError

                    raise DeadlockError(
                        "event heap empty but non-daemon threads remain READY"
                    )
        finally:
            self._events_counter.value += events
        if kill_daemons:
            self.kill_daemons()
        return False

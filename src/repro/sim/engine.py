"""The discrete-event engine: time-ordered interleaving of threads.

The engine keeps every thread's local cycle clock and always runs the
thread with the smallest clock next.  All operations on shared state
(the cache hierarchy) are therefore applied in global time order, which
makes cross-thread timing interference — the substance of the covert
channel — causally consistent without a full cycle-accurate pipeline.

Threads never block on each other at the Python level; they communicate
only through the simulated memory system and through timing, exactly as
the paper's trojan and spy do.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable, Generator
from typing import Any

from repro.errors import DeadlockError, SimulationError
from repro.sim.events import Op
from repro.sim.stats import StatsRegistry
from repro.sim.thread import Cpu, Executor, SimThread


class Simulator:
    """Owns the thread set and drives the time-ordered event loop.

    Parameters
    ----------
    stats:
        Optional shared statistics registry; one is created if omitted.
    """

    def __init__(self, stats: StatsRegistry | None = None):
        self.stats = stats if stats is not None else StatsRegistry()
        self.threads: list[SimThread] = []
        self._heap: list[tuple[float, int, SimThread]] = []
        self._seq = itertools.count()
        self._next_tid = itertools.count()
        self.global_clock: float = 0.0

    def spawn(
        self,
        name: str,
        program: Callable[[Cpu], Generator],
        core_id: int,
        executor: Executor,
        start_time: float | None = None,
        daemon: bool = False,
        process: Any = None,
    ) -> SimThread:
        """Create a thread and schedule its first step.

        Parameters
        ----------
        name:
            Human-readable label for traces and errors.
        program:
            Generator function taking a :class:`~repro.sim.thread.Cpu`.
        core_id:
            Global core index the thread is pinned to.
        executor:
            Callable executing ops for this thread (normally supplied by
            the kernel, which closes over the process's address space).
        start_time:
            Cycle at which the thread becomes runnable; defaults to the
            current global clock.
        daemon:
            Daemon threads do not keep :meth:`run` alive; they are killed
            once every non-daemon thread has finished.
        process:
            Optional owning process object (used by the kernel layer).
        """
        thread = SimThread(
            tid=next(self._next_tid),
            name=name,
            program=program,
            core_id=core_id,
            executor=executor,
            process=process,
        )
        thread.daemon = daemon
        thread.clock = self.global_clock if start_time is None else float(start_time)
        self.threads.append(thread)
        self._push(thread)
        return thread

    def _push(self, thread: SimThread) -> None:
        heapq.heappush(self._heap, (thread.clock, next(self._seq), thread))

    def _live_non_daemon(self) -> int:
        return sum(
            1
            for t in self.threads
            if not t.done and not getattr(t, "daemon", False)
        )

    def run(
        self,
        max_cycles: float | None = None,
        max_events: int | None = 50_000_000,
        stop_when: Callable[["Simulator"], bool] | None = None,
        kill_daemons: bool = False,
    ) -> None:
        """Run until every non-daemon thread finishes.

        Parameters
        ----------
        max_cycles:
            Abort (raising :class:`SimulationError`) if the global clock
            passes this value — a guard against runaway programs.
        max_events:
            Abort after this many executed ops.
        stop_when:
            Optional predicate checked after every event; return True to
            stop early (e.g. when a decoder has seen enough samples).
        kill_daemons:
            Kill surviving daemon threads on return.  Leave False when
            daemons (noise workloads, the KSM scanner) must persist
            across multiple :meth:`run` calls on the same simulator.
        """
        events = 0
        while self._heap:
            if self._live_non_daemon() == 0:
                break
            clock, _seq, thread = heapq.heappop(self._heap)
            if thread.done:
                continue
            if clock < thread.clock:
                # Stale heap entry (thread was rescheduled); reinsert.
                self._push(thread)
                continue
            op = thread.step()
            if op is None:
                continue
            result = thread.executor(thread, op)
            thread.complete(result)
            if thread.clock > self.global_clock:
                self.global_clock = thread.clock
            self._push(thread)
            events += 1
            self.stats.incr("engine.events")
            if max_events is not None and events >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events} "
                    f"(global clock {self.global_clock:.0f})"
                )
            if max_cycles is not None and self.global_clock > max_cycles:
                raise SimulationError(
                    f"exceeded max_cycles={max_cycles}"
                )
            if stop_when is not None and stop_when(self):
                break
        else:
            if self._live_non_daemon() > 0:
                raise DeadlockError(
                    "event heap empty but non-daemon threads remain READY"
                )
        if kill_daemons:
            self.kill_daemons()

    def kill_daemons(self) -> None:
        """Kill every surviving daemon thread (final cleanup)."""
        for thread in self.threads:
            if getattr(thread, "daemon", False) and not thread.done:
                thread.kill()

    def thread_by_name(self, name: str) -> SimThread:
        """Look up a thread by its (unique) name."""
        for thread in self.threads:
            if thread.name == name:
                return thread
        raise KeyError(name)

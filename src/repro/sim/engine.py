"""The discrete-event engine: time-ordered interleaving of threads.

The engine keeps every thread's local cycle clock and always runs the
thread with the smallest clock next.  All operations on shared state
(the cache hierarchy) are therefore applied in global time order, which
makes cross-thread timing interference — the substance of the covert
channel — causally consistent without a full cycle-accurate pipeline.

Threads never block on each other at the Python level; they communicate
only through the simulated memory system and through timing, exactly as
the paper's trojan and spy do.

The inner loop is amortized O(1) per event: liveness is a counter
maintained at spawn/exit (not a scan over the thread list, which grows
with every transmission on a long-lived session), name lookup is a dict,
and the event counter is a bound handle flushed once per run.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable, Generator
from typing import Any

from repro.errors import DeadlockError, SimulationError, ThreadProgramError
from repro.sim.events import Op
from repro.sim.stats import StatsRegistry
from repro.sim.thread import Cpu, Executor, SimThread, ThreadState

_READY = ThreadState.READY
_DONE = ThreadState.DONE
_FAILED = ThreadState.FAILED


class Simulator:
    """Owns the thread set and drives the time-ordered event loop.

    Parameters
    ----------
    stats:
        Optional shared statistics registry; one is created if omitted.
    """

    def __init__(self, stats: StatsRegistry | None = None):
        self.stats = stats if stats is not None else StatsRegistry()
        self.threads: list[SimThread] = []
        self._heap: list[tuple[float, int, SimThread]] = []
        self._seq = itertools.count()
        self._next_tid = itertools.count()
        self.global_clock: float = 0.0
        #: Threads in READY state that are not daemons; maintained at
        #: spawn and thread exit so the run loop never rescans
        #: ``self.threads`` (which only ever grows).
        self._live_count = 0
        self._by_name: dict[str, SimThread] = {}
        self._events_counter = self.stats.counter_handle("engine.events")
        #: When True, every thread spawned gets a replay log so its
        #: position can be checkpointed (see :mod:`repro.checkpoint`).
        #: Off by default: the log costs one list append per event.
        self.checkpointing = False

    def spawn(
        self,
        name: str,
        program: Callable[[Cpu], Generator],
        core_id: int,
        executor: Executor,
        start_time: float | None = None,
        daemon: bool = False,
        process: Any = None,
        spec: Any = None,
    ) -> SimThread:
        """Create a thread and schedule its first step.

        Parameters
        ----------
        name:
            Label for traces and errors; must be unique among live
            threads (it indexes :meth:`thread_by_name`, which always
            resolves to the most recently spawned holder of the name).
        program:
            Generator function taking a :class:`~repro.sim.thread.Cpu`.
        core_id:
            Global core index the thread is pinned to.
        executor:
            Callable executing ops for this thread (normally supplied by
            the kernel, which closes over the process's address space).
        start_time:
            Cycle at which the thread becomes runnable; defaults to the
            current global clock.
        daemon:
            Daemon threads do not keep :meth:`run` alive; they are killed
            once every non-daemon thread has finished.
        process:
            Optional owning process object (used by the kernel layer).
        spec:
            Optional :class:`repro.checkpoint.ProgramSpec` describing
            how to rebuild *program* from plain data; threads without
            one cannot be checkpointed (a session falls back to an
            unsegmented run when any live thread lacks a spec).
        """
        existing = self._by_name.get(name)
        if existing is not None and existing.state is _READY:
            raise SimulationError(
                f"duplicate thread name {name!r}: names index thread_by_name "
                "and must be unique among live threads"
            )
        thread = SimThread(
            tid=next(self._next_tid),
            name=name,
            program=program,
            core_id=core_id,
            executor=executor,
            process=process,
        )
        thread.daemon = daemon
        thread.clock = self.global_clock if start_time is None else float(start_time)
        thread._engine_exit = self._thread_exited
        thread.program_spec = spec
        if self.checkpointing and spec is not None:
            # Only spec-bearing threads get a replay log: a thread with
            # no ProgramSpec cannot be restored anyway, and some
            # spec-less programs (fault injectors) loop without calling
            # Cpu.mark, which would grow an untruncated log unboundedly.
            thread.replay_log = []
        self.threads.append(thread)
        self._by_name[name] = thread
        if not daemon:
            self._live_count += 1
        self._push(thread)
        return thread

    def _thread_exited(self, thread: SimThread) -> None:
        """Exit hook fired exactly once per thread (done/killed/failed)."""
        if not thread.daemon:
            self._live_count -= 1

    def _push(self, thread: SimThread) -> None:
        heapq.heappush(self._heap, (thread.clock, next(self._seq), thread))

    def _live_non_daemon(self) -> int:
        """Number of runnable non-daemon threads (O(1))."""
        return self._live_count

    def run(
        self,
        max_cycles: float | None = None,
        max_events: int | None = 50_000_000,
        stop_when: Callable[["Simulator"], bool] | None = None,
        kill_daemons: bool = False,
        pause_at: float | None = None,
    ) -> bool:
        """Run until every non-daemon thread finishes.

        Returns True if the run *paused* at ``pause_at`` with work still
        outstanding, False if it ran to completion.

        Parameters
        ----------
        max_cycles:
            Abort (raising :class:`SimulationError`) if the global clock
            passes this value — a guard against runaway programs.
        max_events:
            Abort after this many executed ops.
        stop_when:
            Optional predicate checked after every event; return True to
            stop early (e.g. when a decoder has seen enough samples).
        kill_daemons:
            Kill surviving daemon threads on return.  Leave False when
            daemons (noise workloads, the KSM scanner) must persist
            across multiple :meth:`run` calls on the same simulator.
        pause_at:
            Pause (without error) once the global clock reaches this
            cycle: every thread is parked between ops, which is the
            state :func:`repro.checkpoint.capture` snapshots.  Resuming
            is just calling :meth:`run` again — the pause is invisible
            to the simulation.
        """
        events = 0
        paused = False
        # Hoisted hot-loop state: bound methods, the heap list and the
        # sequence counter are locals so each event pays zero repeated
        # attribute lookups.  The body of SimThread.step()/complete() is
        # inlined below (those methods stay as the public per-thread API
        # and must mirror any change made here): one executed op costs
        # two Python method calls total (the generator resume and the
        # executor) instead of four.
        heap = self._heap
        heappop = heapq.heappop
        heappush = heapq.heappush
        seq_next = self._seq.__next__
        global_clock = self.global_clock
        op_types = SimThread._OP_TYPES
        valid_ops = SimThread._VALID_OPS
        event_limit = float("inf") if max_events is None else max_events
        cycle_limit = float("inf") if max_cycles is None else max_cycles
        pause_limit = float("inf") if pause_at is None else pause_at
        try:
            while heap:
                if self._live_count == 0:
                    break
                clock, _seq, thread = heappop(heap)
                if thread.state is not _READY:
                    continue
                tclock = thread.clock
                if clock < tclock:
                    # Stale heap entry (thread was rescheduled); reinsert.
                    heappush(heap, (tclock, seq_next(), thread))
                    continue
                # -- inlined SimThread.step() --------------------------
                # send(None) on a fresh generator is next(), so one send
                # covers both the first and every later resume.
                pending = thread._pending_result
                log = thread.replay_log
                if log is not None and pending is not None:
                    # Checkpoint support: record the result being
                    # delivered *before* the send, so (cursor, log,
                    # pending) always re-drive a fresh generator to the
                    # thread's exact position (Cpu.mark truncates).
                    log.append(pending)
                try:
                    op = thread._generator.send(pending)
                except StopIteration as stop:
                    thread.state = _DONE
                    thread.result = stop.value
                    thread._fire_exit()
                    continue
                except BaseException:
                    thread.state = _FAILED
                    thread._fire_exit()
                    raise
                if type(op) not in op_types and not isinstance(op, valid_ops):
                    thread.state = _FAILED
                    thread._fire_exit()
                    raise ThreadProgramError(
                        f"thread {thread.name!r} yielded {op!r}; "
                        "expected a simulator op"
                    )
                result = thread.executor(thread, op)
                # -- inlined SimThread.complete() ----------------------
                tclock = result.timestamp
                thread.clock = tclock
                thread.ops_executed += 1
                thread._pending_result = result
                if tclock > global_clock:
                    # Write-through: programs may spawn threads or read
                    # the clock mid-run, so the attribute must track the
                    # hoisted local.
                    global_clock = tclock
                    self.global_clock = tclock
                heappush(heap, (tclock, seq_next(), thread))
                events += 1
                if events >= event_limit:
                    raise SimulationError(
                        f"exceeded max_events={max_events} "
                        f"(global clock {global_clock:.0f})"
                    )
                if global_clock > cycle_limit:
                    raise SimulationError(
                        f"exceeded max_cycles={max_cycles}"
                    )
                if global_clock >= pause_limit:
                    paused = True
                    break
                if stop_when is not None and stop_when(self):
                    break
            else:
                if self._live_count > 0:
                    raise DeadlockError(
                        "event heap empty but non-daemon threads remain READY"
                    )
        finally:
            self._events_counter.value += events
        if kill_daemons:
            self.kill_daemons()
        return paused

    def kill_daemons(self) -> None:
        """Kill every surviving daemon thread (final cleanup)."""
        for thread in self.threads:
            if thread.daemon and not thread.done:
                thread.kill()

    def live_run_order(self) -> list[SimThread]:
        """Live threads in the order the event loop would pop them next.

        Checkpoint support: a restored simulator respawns threads in
        exactly this order with ``start_time=thread.clock``, so the
        fresh heap's FIFO tie-breaking (its sequence counter) reproduces
        the original pop order bit-for-bit.  Simulates the run loop's
        pop-and-reinsert handling of stale entries on a copy of the
        heap; ``self._heap`` is not mutated.
        """
        heap = list(self._heap)
        heapq.heapify(heap)
        seen: set[int] = set()
        order: list[SimThread] = []
        seq_next = self._seq.__next__
        while heap:
            clock, _seq, thread = heapq.heappop(heap)
            if thread.state is not _READY or thread.tid in seen:
                continue
            if clock < thread.clock:
                # Stale entry: the run loop would reinsert it with a
                # fresh (largest) sequence number; mirror that exactly.
                heapq.heappush(heap, (thread.clock, seq_next(), thread))
                continue
            seen.add(thread.tid)
            order.append(thread)
        return order

    def thread_by_name(self, name: str) -> SimThread:
        """Look up a thread by its (unique) name."""
        return self._by_name[name]

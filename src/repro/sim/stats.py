"""Lightweight statistics collection for simulator components.

Components register named counters and latency histograms on a shared
:class:`StatsRegistry`.  The registry is intentionally simple: experiments
read it after a run; nothing in the hot path allocates beyond appending to
a list or incrementing an int.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Histogram:
    """A latency sample collector with summary statistics."""

    name: str
    samples: list[float] = field(default_factory=list)

    def record(self, value: float) -> None:
        """Append one sample."""
        self.samples.append(float(value))

    def __len__(self) -> int:
        return len(self.samples)

    def as_array(self) -> np.ndarray:
        """Return the samples as a float array (empty array if no samples)."""
        return np.asarray(self.samples, dtype=float)

    def mean(self) -> float:
        """Arithmetic mean of the samples (nan when empty)."""
        arr = self.as_array()
        return float(arr.mean()) if arr.size else float("nan")

    def percentile(self, q: float) -> float:
        """The q-th percentile of the samples (nan when empty)."""
        arr = self.as_array()
        return float(np.percentile(arr, q)) if arr.size else float("nan")

    def summary(self) -> dict[str, float]:
        """Return count/mean/p5/p50/p95 in a plain dict."""
        arr = self.as_array()
        if not arr.size:
            return {"count": 0, "mean": float("nan"), "p5": float("nan"),
                    "p50": float("nan"), "p95": float("nan")}
        return {
            "count": int(arr.size),
            "mean": float(arr.mean()),
            "p5": float(np.percentile(arr, 5)),
            "p50": float(np.percentile(arr, 50)),
            "p95": float(np.percentile(arr, 95)),
        }


class StatsRegistry:
    """Shared registry of counters and histograms.

    Counters are created implicitly on first increment; histograms on
    first :meth:`histogram` access.  Names are free-form dotted paths,
    e.g. ``"llc0.hits"`` or ``"spy.load_latency"``.
    """

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._histograms: dict[str, Histogram] = {}

    def incr(self, name: str, amount: int = 1) -> None:
        """Add *amount* to counter *name* (creating it at zero)."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name: str) -> int:
        """Current value of counter *name* (0 if never incremented)."""
        return self._counters.get(name, 0)

    def histogram(self, name: str) -> Histogram:
        """Return (creating if needed) the histogram called *name*."""
        hist = self._histograms.get(name)
        if hist is None:
            hist = Histogram(name)
            self._histograms[name] = hist
        return hist

    def counters(self) -> dict[str, int]:
        """A copy of all counters."""
        return dict(self._counters)

    def histograms(self) -> dict[str, Histogram]:
        """A copy of the histogram mapping (histograms are shared)."""
        return dict(self._histograms)

    def reset(self) -> None:
        """Clear all counters and histograms."""
        self._counters.clear()
        self._histograms.clear()

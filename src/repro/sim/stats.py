"""Lightweight statistics collection for simulator components.

Components register named counters and latency histograms on a shared
:class:`StatsRegistry`.  The registry is intentionally simple: experiments
read it after a run; nothing in the hot path allocates beyond appending to
an array or incrementing an int.

Hot components should *bind* their counters once —
``counter = registry.counter_handle("llc0.hits")`` — and then bump
``counter.value += 1`` (or call :meth:`Counter.incr`) per sample, instead
of paying a string hash + dict lookup on every event through
:meth:`StatsRegistry.incr`.  Both styles update the same underlying
object, so cold-path callers can keep using the string API.
"""

from __future__ import annotations

from array import array

import numpy as np


class Counter:
    """A bound, named event counter.

    Obtained from :meth:`StatsRegistry.counter_handle`; incrementing the
    handle is an attribute bump with no registry lookup, which is what
    the engine and the memory system do once per event.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0):
        self.name = name
        self.value = value

    def incr(self, amount: int = 1) -> None:
        """Add *amount* to the counter."""
        self.value += amount

    def __int__(self) -> int:
        return int(self.value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {self.value})"


class Histogram:
    """A latency sample collector with summary statistics.

    Samples live in a compact ``array('d')`` (one C double each, not a
    boxed Python float), so recording is an append into a flat buffer
    and :meth:`as_array` is a straight memcpy into numpy.
    """

    __slots__ = ("name", "samples")

    def __init__(self, name: str, samples=None):
        self.name = name
        self.samples: array = array("d", samples if samples is not None else ())

    def record(self, value: float) -> None:
        """Append one sample."""
        self.samples.append(value)

    def __len__(self) -> int:
        return len(self.samples)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return self.name == other.name and self.samples == other.samples

    def as_array(self) -> np.ndarray:
        """Return the samples as a float array (empty array if no samples).

        The result is a detached copy (a memcpy off the flat buffer);
        mutating it never corrupts the recorded samples.
        """
        return np.array(self.samples, dtype=float)

    def mean(self) -> float:
        """Arithmetic mean of the samples (nan when empty)."""
        arr = self.as_array()
        return float(arr.mean()) if arr.size else float("nan")

    def percentile(self, q: float) -> float:
        """The q-th percentile of the samples (nan when empty)."""
        arr = self.as_array()
        return float(np.percentile(arr, q)) if arr.size else float("nan")

    def summary(self) -> dict[str, float]:
        """Return count/mean/p5/p50/p95 in a plain dict."""
        arr = self.as_array()
        if not arr.size:
            return {"count": 0, "mean": float("nan"), "p5": float("nan"),
                    "p50": float("nan"), "p95": float("nan")}
        return {
            "count": int(arr.size),
            "mean": float(arr.mean()),
            "p5": float(np.percentile(arr, 5)),
            "p50": float(np.percentile(arr, 50)),
            "p95": float(np.percentile(arr, 95)),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, n={len(self.samples)})"


class StatsRegistry:
    """Shared registry of counters and histograms.

    Counters are created implicitly on first increment; histograms on
    first :meth:`histogram` access.  Names are free-form dotted paths,
    e.g. ``"llc0.hits"`` or ``"spy.load_latency"``.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter_handle(self, name: str) -> Counter:
        """Return (creating at zero) the bound :class:`Counter` for *name*."""
        handle = self._counters.get(name)
        if handle is None:
            handle = Counter(name)
            self._counters[name] = handle
        return handle

    def incr(self, name: str, amount: int = 1) -> None:
        """Add *amount* to counter *name* (creating it at zero)."""
        self.counter_handle(name).value += amount

    def counter(self, name: str) -> int:
        """Current value of counter *name* (0 if never incremented)."""
        handle = self._counters.get(name)
        return 0 if handle is None else handle.value

    def histogram(self, name: str) -> Histogram:
        """Return (creating if needed) the histogram called *name*.

        The returned object is itself the bound handle: keep a reference
        and call :meth:`Histogram.record` without further lookups.
        """
        hist = self._histograms.get(name)
        if hist is None:
            hist = Histogram(name)
            self._histograms[name] = hist
        return hist

    def counters(self) -> dict[str, int]:
        """A copy of all counters as plain ints."""
        return {name: c.value for name, c in self._counters.items()}

    def histograms(self) -> dict[str, Histogram]:
        """A copy of the histogram mapping (histograms are shared)."""
        return dict(self._histograms)

    def reset(self) -> None:
        """Clear all counters and histograms.

        Bound handles survive a reset: counters are zeroed and histogram
        buffers emptied *in place*, so components holding handles keep
        recording into the same (now empty) objects.
        """
        for handle in self._counters.values():
            handle.value = 0
        for hist in self._histograms.values():
            del hist.samples[:]

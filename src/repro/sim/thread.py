"""Simulated threads and the Cpu op API used by thread programs.

A *thread program* is a generator function with the signature
``def program(cpu: Cpu) -> Generator``.  It performs memory operations by
delegating to the :class:`Cpu` helpers with ``yield from``::

    def spy(cpu):
        yield from cpu.flush(addr)
        yield from cpu.delay(1000)
        result = yield from cpu.load(addr)
        print(result.latency)

Each helper yields exactly one primitive op to the engine and returns the
:class:`~repro.sim.events.OpResult`.

Hot-path notes: every class here carries ``__slots__`` (a thread executes
millions of ops, and attribute access off a dict-backed instance costs a
hash per read), and :class:`Cpu` memoizes the frozen per-address op
objects so a spy hammering one shared line allocates zero ops per sample.
"""

from __future__ import annotations

import enum
from collections.abc import Callable, Generator
from typing import Any

from repro.errors import ThreadProgramError
from repro.sim.events import (
    Burst,
    Delay,
    Fence,
    Flush,
    Load,
    Op,
    OpResult,
    Rdtsc,
    Store,
)

# An executor turns (thread, op) into an OpResult.  The kernel supplies
# one that translates virtual addresses and drives the machine model.
Executor = Callable[["SimThread", Op], OpResult]

#: Stateless ops are singletons: Fence and Rdtsc carry no payload, so
#: every issue can yield the same frozen instance.
_FENCE = Fence()
_RDTSC = Rdtsc()


class ThreadState(enum.Enum):
    """Lifecycle states of a simulated thread."""

    READY = "ready"
    DONE = "done"
    KILLED = "killed"
    FAILED = "failed"


class Cpu:
    """Per-thread handle exposing the instruction set to thread programs.

    All methods are generators meant to be invoked with ``yield from``.
    """

    __slots__ = ("_thread", "_loads", "_flushes")

    def __init__(self, thread: "SimThread"):
        self._thread = thread
        # Frozen op objects are immutable, so reissuing the same address
        # can reuse the same instance (covert-channel programs touch a
        # tiny set of addresses millions of times).
        self._loads: dict[int, Load] = {}
        self._flushes: dict[int, Flush] = {}

    @property
    def thread(self) -> "SimThread":
        """The thread this handle belongs to."""
        return self._thread

    @property
    def core_id(self) -> int:
        """Global core id the thread is pinned to."""
        return self._thread.core_id

    def load(self, vaddr: int) -> Generator[Op, OpResult, OpResult]:
        """Issue a load; returns the OpResult (latency, value, path)."""
        op = self._loads.get(vaddr)
        if op is None:
            op = self._loads[vaddr] = Load(vaddr)
        result = yield op
        return result

    def store(self, vaddr: int, value: int = 0) -> Generator[Op, OpResult, OpResult]:
        """Issue a store of *value* to the line holding *vaddr*."""
        result = yield Store(vaddr, value)
        return result

    def flush(self, vaddr: int) -> Generator[Op, OpResult, OpResult]:
        """clflush the line holding *vaddr* from all coherent caches."""
        op = self._flushes.get(vaddr)
        if op is None:
            op = self._flushes[vaddr] = Flush(vaddr)
        result = yield op
        return result

    def delay(self, cycles: float) -> Generator[Op, OpResult, OpResult]:
        """Spin for *cycles* cycles."""
        result = yield Delay(cycles)
        return result

    def rdtsc(self) -> Generator[Op, OpResult, float]:
        """Return the thread's current cycle timestamp."""
        result = yield _RDTSC
        return result.timestamp

    def fence(self) -> Generator[Op, OpResult, OpResult]:
        """Serialize (small fixed cost)."""
        result = yield _FENCE
        return result

    def timed_load(self, vaddr: int) -> Generator[Op, OpResult, OpResult]:
        """A load bracketed by fences, as the paper's rdtsc-timed loads.

        Returns the load's OpResult; its ``latency`` field is the timing
        measurement the spy records.
        """
        yield _FENCE
        op = self._loads.get(vaddr)
        if op is None:
            op = self._loads[vaddr] = Load(vaddr)
        result = yield op
        yield _FENCE
        return result

    def burst(
        self,
        vaddr: int,
        count: int,
        stride: int,
        write_ratio: float = 0.0,
        mlp: float = 1.0,
    ) -> Generator[Op, OpResult, OpResult]:
        """Issue *count* strided accesses as one batched event."""
        result = yield Burst(vaddr, count, stride, write_ratio, mlp)
        return result

    def mark(self, cursor: Any) -> None:
        """Declare a checkpoint resume point (plain call, no yield).

        A resumable program calls ``mark(cursor)`` at the top of each
        loop iteration with whatever picklable value lets a fresh copy of
        the program fast-forward back to this point (see
        :mod:`repro.checkpoint`).  The contract: re-creating the program
        with ``cursor=<this value>`` and replaying the op results
        recorded since this mark must reproduce the exact op sequence the
        original would have issued.

        Free when checkpointing is off (one attribute read and a None
        test); under checkpointing it additionally truncates the
        thread's replay log, bounding the log to one loop iteration.
        """
        thread = self._thread
        log = thread.replay_log
        if log is None:
            return
        thread.cursor = cursor
        del log[:]


class SimThread:
    """One schedulable thread inside the simulator.

    Created via :meth:`repro.sim.engine.Simulator.spawn`; not constructed
    directly by user code.
    """

    __slots__ = (
        "tid", "name", "core_id", "executor", "process", "clock", "state",
        "result", "failure", "ops_executed", "cpu", "daemon", "on_exit",
        "_exit_fired", "_engine_exit", "_generator", "_pending_result",
        "replay_log", "cursor", "program_spec",
    )

    _VALID_OPS = (Load, Store, Flush, Delay, Rdtsc, Fence, Burst)
    #: Exact-type fast path for op validation; ``isinstance`` against the
    #: 7-way union above costs more than a set probe per event.
    _OP_TYPES = frozenset(_VALID_OPS)

    def __init__(
        self,
        tid: int,
        name: str,
        program: Callable[[Cpu], Generator],
        core_id: int,
        executor: Executor,
        process: Any = None,
    ):
        self.tid = tid
        self.name = name
        self.core_id = core_id
        self.executor = executor
        self.process = process
        self.clock: float = 0.0
        self.state = ThreadState.READY
        self.result: Any = None
        self.failure: BaseException | None = None
        self.ops_executed = 0
        self.cpu = Cpu(self)
        self.daemon = False
        #: Optional callback fired exactly once when the thread leaves the
        #: READY state (finished, killed or failed).  The kernel uses it
        #: to release the scheduler slot.
        self.on_exit: Callable[["SimThread"], None] | None = None
        #: Engine-internal exit hook (live-thread accounting); fired
        #: before :attr:`on_exit`.
        self._engine_exit: Callable[["SimThread"], None] | None = None
        self._exit_fired = False
        self._generator = program(self.cpu)
        self._pending_result: OpResult | None = None
        #: Checkpoint support (see :mod:`repro.checkpoint`).  When the
        #: owning simulator runs with checkpointing enabled, the engine
        #: creates ``replay_log`` at spawn and appends every op result it
        #: delivers to the generator; :meth:`Cpu.mark` records ``cursor``
        #: and truncates the log, so (cursor, log, pending result) always
        #: suffice to re-drive a fresh program copy to this exact point.
        #: ``program_spec`` names the factory that can rebuild the
        #: program (None for programs that cannot be checkpointed).
        self.replay_log: list[OpResult] | None = None
        self.cursor: Any = None
        self.program_spec: Any = None

    @property
    def done(self) -> bool:
        """True once the thread has finished, been killed, or failed."""
        return self.state is not ThreadState.READY

    def _fire_exit(self) -> None:
        if not self._exit_fired:
            self._exit_fired = True
            if self._engine_exit is not None:
                self._engine_exit(self)
            if self.on_exit is not None:
                self.on_exit(self)

    def kill(self) -> None:
        """Stop the thread; it will never be scheduled again."""
        if self.state is ThreadState.READY:
            self.state = ThreadState.KILLED
            self._generator.close()
            self._fire_exit()

    def step(self) -> Op | None:
        """Advance the program to its next op.

        Returns the op to execute, or ``None`` if the program finished.
        Called only by the engine.
        """
        try:
            pending = self._pending_result
            if pending is None:
                op = next(self._generator)
            else:
                log = self.replay_log
                if log is not None:
                    # Record the result being delivered *before* the send
                    # so a checkpoint taken mid-iteration can re-drive a
                    # fresh generator through the same result sequence.
                    log.append(pending)
                op = self._generator.send(pending)
        except StopIteration as stop:
            self.state = ThreadState.DONE
            self.result = stop.value
            self._fire_exit()
            return None
        except BaseException:
            self.state = ThreadState.FAILED
            self._fire_exit()
            raise
        if type(op) not in self._OP_TYPES and not isinstance(op, self._VALID_OPS):
            self.state = ThreadState.FAILED
            self._fire_exit()
            raise ThreadProgramError(
                f"thread {self.name!r} yielded {op!r}; expected a simulator op"
            )
        return op

    def complete(self, result: OpResult) -> None:
        """Record the result of the last op and advance the clock."""
        self.clock = result.timestamp
        self.ops_executed += 1
        self._pending_result = result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimThread(tid={self.tid}, name={self.name!r}, "
            f"core={self.core_id}, clock={self.clock:.0f}, {self.state.value})"
        )

"""repro: a coherence-state covert-channel laboratory.

A from-scratch reproduction of Yao, Doroslovacki and Venkataramani,
*"Are Coherence Protocol States Vulnerable to Information Leakage?"*
(HPCA 2018), on a simulated dual-socket machine:

* :mod:`repro.sim` — deterministic discrete-event engine.
* :mod:`repro.mem` — caches, MESI/MESIF/MOESI coherence, latency model.
* :mod:`repro.kernel` — processes, paging, KSM dedup, scheduler, noise.
* :mod:`repro.channel` — the paper's trojan/spy channels (the core).
* :mod:`repro.mitigation` — the Section VIII-E defenses.
* :mod:`repro.analysis` — CDFs, band discovery, channel capacity.
* :mod:`repro.obs` — structured tracing and run manifests.
* :mod:`repro.experiments` — one runnable driver per paper figure/table.

Quickstart::

    from repro import run_transmission
    result = run_transmission("LExclc-LSharedb", [1, 0, 1, 1, 0])
    print(result.received, result.accuracy, result.achieved_rate_kbps)

Beyond the paper's snoop-MESI cells, :data:`repro.channel.SCENARIOS`
registers the whole (protocol x channel x topology) matrix — e.g.
``run_transmission("moesi-ostate", ...)`` for the MOESI dirty-sharer
channel or ``"dir-es"`` for the home-node directory backend; the
``leaderboard`` driver reports every cell.
"""

from repro.channel import (
    TABLE_I,
    ChannelSession,
    LatencyBands,
    MultiBitSession,
    ProtocolParams,
    ReliableChannel,
    SCENARIOS,
    Scenario,
    ScenarioSpec,
    SessionConfig,
    SymbolParams,
    TransmissionResult,
    calibrate,
    matrix_cell,
    run_transmission,
    scenario_by_name,
    scenario_spec_by_name,
)
from repro.errors import ReproError
from repro.kernel import Kernel
from repro.mem import (
    CLOCK_HZ,
    CoherenceState,
    LatencyProfile,
    Machine,
    MachineConfig,
    NoiseModel,
    check_machine,
)
from repro.obs import RunManifest, TraceRecorder
from repro.sim import RngStreams, Simulator

# 1.5.0: deterministic checkpoint/restore and segmented crash-resumable
# execution (repro.checkpoint) — the bump salts the result cache (and
# the segment identities riding in it) because spawn-time ProgramSpec
# attachment changed session construction.
__version__ = "1.5.0"

__all__ = [
    "CLOCK_HZ",
    "ChannelSession",
    "CoherenceState",
    "Kernel",
    "LatencyBands",
    "LatencyProfile",
    "Machine",
    "MachineConfig",
    "MultiBitSession",
    "NoiseModel",
    "ProtocolParams",
    "ReliableChannel",
    "ReproError",
    "RngStreams",
    "RunManifest",
    "SCENARIOS",
    "Scenario",
    "ScenarioSpec",
    "SessionConfig",
    "Simulator",
    "SymbolParams",
    "TABLE_I",
    "TraceRecorder",
    "TransmissionResult",
    "calibrate",
    "check_machine",
    "matrix_cell",
    "run_transmission",
    "scenario_by_name",
    "scenario_spec_by_name",
]

"""repro: a coherence-state covert-channel laboratory.

A from-scratch reproduction of Yao, Doroslovacki and Venkataramani,
*"Are Coherence Protocol States Vulnerable to Information Leakage?"*
(HPCA 2018), on a simulated dual-socket machine:

* :mod:`repro.sim` — deterministic discrete-event engine.
* :mod:`repro.mem` — caches, MESI/MESIF/MOESI coherence, latency model.
* :mod:`repro.kernel` — processes, paging, KSM dedup, scheduler, noise.
* :mod:`repro.channel` — the paper's trojan/spy channels (the core).
* :mod:`repro.mitigation` — the Section VIII-E defenses.
* :mod:`repro.analysis` — CDFs, band discovery, channel capacity.
* :mod:`repro.obs` — structured tracing and run manifests.
* :mod:`repro.experiments` — one runnable driver per paper figure/table.

Quickstart::

    from repro import TABLE_I, run_transmission
    result = run_transmission(TABLE_I[0], [1, 0, 1, 1, 0])
    print(result.received, result.accuracy, result.achieved_rate_kbps)
"""

from repro.channel import (
    TABLE_I,
    ChannelSession,
    LatencyBands,
    MultiBitSession,
    ProtocolParams,
    ReliableChannel,
    Scenario,
    SessionConfig,
    SymbolParams,
    TransmissionResult,
    calibrate,
    run_transmission,
    scenario_by_name,
)
from repro.errors import ReproError
from repro.kernel import Kernel
from repro.mem import (
    CLOCK_HZ,
    CoherenceState,
    LatencyProfile,
    Machine,
    MachineConfig,
    NoiseModel,
    check_machine,
)
from repro.obs import RunManifest, TraceRecorder
from repro.sim import RngStreams, Simulator

# 1.3.0: TransmissionResult grew a RunManifest attachment — the bump
# salts the result cache so pre-manifest pickles are never resurfaced.
__version__ = "1.3.0"

__all__ = [
    "CLOCK_HZ",
    "ChannelSession",
    "CoherenceState",
    "Kernel",
    "LatencyBands",
    "LatencyProfile",
    "Machine",
    "MachineConfig",
    "MultiBitSession",
    "NoiseModel",
    "ProtocolParams",
    "ReliableChannel",
    "ReproError",
    "RngStreams",
    "RunManifest",
    "Scenario",
    "SessionConfig",
    "Simulator",
    "SymbolParams",
    "TABLE_I",
    "TraceRecorder",
    "TransmissionResult",
    "calibrate",
    "check_machine",
    "run_transmission",
    "scenario_by_name",
]

"""A minimal asyncio HTTP/1.1 layer for the job API.  Stdlib only.

Just enough HTTP for the service's five routes: request-line + headers
+ ``Content-Length`` body in, status + headers + body out, one request
per connection (``Connection: close`` everywhere — clients are urllib
or curl, both of which reconnect per call).  The ``/events`` route is
the one long-lived response: headers first, then JSON-lines streamed as
the job progresses.

This is deliberately not a framework: no routing tables, no middleware
— a single ``handle`` function with explicit ``if`` arms, so the whole
attack surface is readable in one screen.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

from repro.errors import SpecError
from repro.runner.executor import FailurePolicy
from repro.runner.spec import spec_from_json

#: Sanity cap on request bodies (a 64-pt grid spec is ~20 KiB).
MAX_BODY_BYTES = 16 * 1024 * 1024

_REASONS = {
    200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    500: "Internal Server Error",
}


def _response(
    status: int, body: bytes, content_type: str = "application/json"
) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n"
        f"\r\n"
    )
    return head.encode("ascii") + body


def _json_response(status: int, payload: Any) -> bytes:
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    return _response(status, body)


async def read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, dict[str, str], bytes] | None:
    """Parse one request: ``(method, path, headers, body)`` or ``None``."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not request_line:
        return None
    try:
        method, path, _version = (
            request_line.decode("ascii").strip().split(None, 2)
        )
    except ValueError:
        return None
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if not line or line in (b"\r\n", b"\n"):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        return method, path, headers, b"\x00overflow"
    body = await reader.readexactly(length) if length else b""
    return method, path, headers, body


class HttpApi:
    """Route table for the experiment service's job API."""

    def __init__(self, manager, index):
        self.manager = manager
        self.index = index

    async def handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await read_request(reader)
            if request is None:
                return
            method, path, headers, body = request
            if body == b"\x00overflow":
                writer.write(_json_response(
                    413, {"error": "request body too large"}
                ))
                await writer.drain()
                return
            await self._route(method, path, body, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:  # surface, don't kill the server
            try:
                writer.write(_json_response(500, {"error": str(exc)}))
                await writer.drain()
            except (ConnectionError, OSError):
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(
        self,
        method: str,
        path: str,
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        path = path.split("?", 1)[0]
        parts = [p for p in path.split("/") if p]
        if method == "POST" and parts == ["jobs"]:
            writer.write(self._submit(body))
        elif method == "GET" and parts == ["jobs"]:
            writer.write(_json_response(200, {
                "jobs": [
                    {
                        "id": job.id,
                        "experiment": job.spec.experiment,
                        "status": job.status,
                        "completed": job.completed,
                        "total": job.total,
                    }
                    for job in self.manager.jobs.values()
                ],
            }))
        elif method == "GET" and len(parts) == 2 and parts[0] == "jobs":
            job = self.manager.get(parts[1])
            if job is None:
                writer.write(_json_response(404, {"error": "no such job"}))
            else:
                writer.write(_json_response(200, job.manifest()))
        elif (
            method == "GET" and len(parts) == 3
            and parts[0] == "jobs" and parts[2] == "events"
        ):
            await self._stream_events(parts[1], writer)
            return
        elif (
            method == "GET" and len(parts) == 4
            and parts[0] == "jobs" and parts[2] == "points"
        ):
            writer.write(self._point_blob(parts[1], parts[3]))
        elif method == "GET" and parts == ["stats"]:
            writer.write(_json_response(200, {
                "cache": self.index.stats(),
                "jobs": self.manager.stats(),
            }))
        elif method == "GET" and parts == ["healthz"]:
            writer.write(_json_response(200, {"status": "ok"}))
        elif parts and parts[0] in ("jobs", "stats", "healthz"):
            writer.write(_json_response(405, {"error": "method not allowed"}))
        else:
            writer.write(_json_response(404, {"error": "no such route"}))
        await writer.drain()

    # -- route bodies ----------------------------------------------------

    def _submit(self, body: bytes) -> bytes:
        try:
            payload = json.loads(body or b"{}")
        except ValueError as exc:
            return _json_response(400, {"error": f"malformed JSON: {exc}"})
        if not isinstance(payload, dict):
            return _json_response(400, {"error": "body must be an object"})
        try:
            if "spec" in payload:
                spec = spec_from_json(payload["spec"])
            elif "driver" in payload:
                spec = self._driver_spec(
                    payload["driver"], payload.get("params") or {}
                )
            else:
                return _json_response(400, {
                    "error": "body needs 'spec' or 'driver'",
                })
        except SpecError as exc:
            return _json_response(400, {"error": str(exc)})
        policy = None
        if "retries" in payload or "timeout" in payload:
            policy = FailurePolicy(
                retries=int(payload.get("retries", 0)),
                timeout=payload.get("timeout"),
                keep_going=True,
            )
        job = self.manager.submit(spec, policy=policy)
        return _json_response(201, {
            "id": job.id,
            "experiment": job.spec.experiment,
            "total": job.total,
            "status": job.status,
        })

    @staticmethod
    def _driver_spec(driver: Any, params: Any):
        from repro.experiments import REGISTRY

        if not isinstance(driver, str) or driver not in REGISTRY:
            raise SpecError(
                f"unknown driver {driver!r}; registered: "
                f"{', '.join(sorted(REGISTRY))}"
            )
        if not isinstance(params, dict):
            raise SpecError("driver params must be an object")
        try:
            return REGISTRY[driver].build_spec(**params)
        except SpecError:
            raise
        except Exception as exc:
            raise SpecError(f"driver {driver!r} rejected params: {exc}")

    def _point_blob(self, job_id: str, index_text: str) -> bytes:
        job = self.manager.get(job_id)
        if job is None:
            return _json_response(404, {"error": "no such job"})
        try:
            point_index = int(index_text)
            key = job.keys[point_index]
        except (ValueError, IndexError):
            return _json_response(404, {"error": "no such point"})
        blob = self.index.cache.lookup_blob(key)
        if blob is None:
            return _json_response(404, {
                "error": "point has no published result (pending or failed)",
            })
        return _response(200, blob, content_type="application/octet-stream")

    async def _stream_events(
        self, job_id: str, writer: asyncio.StreamWriter
    ) -> None:
        """JSON-lines: replayed history, then live events until job-end."""
        job = self.manager.get(job_id)
        if job is None:
            writer.write(_json_response(404, {"error": "no such job"}))
            await writer.drain()
            return
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n"
            b"\r\n"
        )
        await writer.drain()
        queue = self.manager.subscribe(job)
        try:
            while True:
                if queue.empty() and job.done_event.is_set():
                    break
                record = await queue.get()
                line = json.dumps(
                    record, sort_keys=True, separators=(",", ":")
                ) + "\n"
                writer.write(line.encode("utf-8"))
                await writer.drain()
                if record.get("event") == "job-end":
                    break
        except (ConnectionError, OSError):
            pass  # client went away mid-stream
        finally:
            self.manager.unsubscribe(job, queue)

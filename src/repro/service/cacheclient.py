"""The synchronous cache-server client and the Runner-facing adapter.

:class:`RemoteCache` is a drop-in for
:class:`~repro.runner.cache.ResultCache` that speaks to a running
:class:`~repro.service.cacheserver.CacheServer` instead of the local
disk.  It additionally exposes the single-flight surface
(``reserve`` / ``wait_for`` / ``release`` / ``release_all``) and sets
``single_flight = True``, which flips the
:class:`~repro.runner.Runner` into reservation mode: overlapping grids
run by *different processes* then execute each unique point exactly
once between them.

Keys and blobs are byte-identical to the local cache's (same salt, same
:func:`~repro.runner.cache.encode_entry` framing), so a value computed
through the service decodes to the same object a local run produces —
bit-identical by construction.
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Any

from repro.errors import CacheProtocolError
from repro.runner.cache import decode_entry, encode_entry, version_salt
from repro.runner.spec import Point
from repro.service.cacheserver import blob_from_wire, blob_to_wire


class CacheConnection:
    """One blocking JSON-frame connection to the cache server.

    Thread-safe per call: a lock serializes request/response pairs, so a
    single connection may be shared by a runner's main loop and a
    progress thread without interleaving frames.
    """

    def __init__(self, host: str, port: int, timeout: float | None = None):
        self.host = host
        self.port = port
        self._lock = threading.Lock()
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def close(self) -> None:
        try:
            self._file.close()
            self._sock.close()
        except OSError:
            pass

    def call(self, op: str, **operands: Any) -> dict[str, Any]:
        """One request/response round-trip; raises on transport failure."""
        frame = {"op": op, **operands}
        payload = (
            json.dumps(frame, sort_keys=True, separators=(",", ":")) + "\n"
        ).encode("utf-8")
        with self._lock:
            try:
                self._file.write(payload)
                self._file.flush()
                line = self._file.readline()
            except OSError as exc:
                raise CacheProtocolError(
                    f"cache server at {self.host}:{self.port} unreachable: "
                    f"{exc}"
                )
        if not line:
            raise CacheProtocolError(
                f"cache server at {self.host}:{self.port} closed the "
                f"connection"
            )
        try:
            response = json.loads(line)
        except ValueError as exc:
            raise CacheProtocolError(f"malformed server frame: {exc}")
        if response.get("status") == "error":
            raise CacheProtocolError(
                f"server rejected {op!r}: {response.get('error')}"
            )
        return response


class RemoteCache:
    """A :class:`ResultCache`-shaped view of the shared cache server.

    Parameters
    ----------
    host, port:
        The cache server's socket address (``CacheServer.address``).
    salt:
        Content-key salt; defaults to the installed repro version, the
        same default the local cache uses — **must** match the server's
        backing cache for keys to collide (that collision is the whole
        point).
    timeout:
        Socket-level timeout for a single round-trip.  ``wait_for``
        passes its own application-level timeout through to the server
        and pads the socket deadline past it.
    """

    #: Runner probes this to switch into reserve/wait single-flight mode.
    single_flight = True

    def __init__(self, host: str, port: int, salt: str | None = None,
                 timeout: float | None = 30.0):
        self.host = host
        self.port = port
        self.salt = salt if salt is not None else version_salt()
        self.timeout = timeout
        self.hits = 0
        self.misses = 0
        self._conn: CacheConnection | None = None

    # -- plumbing --------------------------------------------------------

    def _connection(self) -> CacheConnection:
        if self._conn is None:
            self._conn = CacheConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        """Drop the connection; owned reservations release server-side."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def key_for(self, point: Point) -> str:
        return point.key(self.salt)

    # -- the ResultCache contract ---------------------------------------

    def lookup(self, point: Point) -> tuple[bool, Any]:
        response = self._connection().call(
            "lookup", key=self.key_for(point)
        )
        blob = blob_from_wire(response.get("blob"))
        if blob is None:
            self.misses += 1
            return False, None
        try:
            value = decode_entry(blob)
        except Exception:
            # Same contract as the local cache: corrupt entry == miss.
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def store(self, point: Point, value: Any) -> None:
        """Publish *point*'s value — this is what wakes remote waiters."""
        try:
            blob = encode_entry(value)
        except Exception:
            return  # unpicklable values are simply not cached
        self._connection().call(
            "publish", key=self.key_for(point), blob=blob_to_wire(blob)
        )

    # -- the single-flight surface the Runner uses -----------------------

    def reserve(self, point: Point) -> tuple[str, Any]:
        """``("hit", value)`` / ``("own", None)`` / ``("wait", None)``."""
        response = self._connection().call(
            "reserve", key=self.key_for(point)
        )
        status = response.get("status")
        if status == "hit":
            blob = blob_from_wire(response.get("blob"))
            try:
                value = decode_entry(blob)
            except Exception:
                # A corrupt published entry must not wedge the grid:
                # treat as our own miss and recompute.
                self.misses += 1
                return "own", None
            self.hits += 1
            return "hit", value
        if status in ("own", "wait"):
            if status == "own":
                self.misses += 1
            return status, None
        raise CacheProtocolError(f"unexpected reserve status {status!r}")

    def wait_for(
        self, point: Point, timeout: float | None = None
    ) -> tuple[str, Any]:
        """``("hit", value)`` / ``("own", None)`` / ``("pending", None)``.

        The server parks this connection until the blob is published,
        this client is promoted to owner, or *timeout* elapses.  The
        socket deadline stretches past the application timeout so the
        long-poll is never cut off mid-wait by the transport.
        """
        conn = self._connection()
        stretch = None if timeout is None else timeout + 30.0
        if self.timeout is not None:
            conn._sock.settimeout(stretch)
        try:
            response = conn.call(
                "wait", key=self.key_for(point), timeout=timeout
            )
        finally:
            if self.timeout is not None:
                conn._sock.settimeout(self.timeout)
        status = response.get("status")
        if status == "hit":
            blob = blob_from_wire(response.get("blob"))
            try:
                value = decode_entry(blob)
            except Exception:
                return "own", None
            self.hits += 1
            return "hit", value
        if status in ("own", "pending"):
            return status, None
        raise CacheProtocolError(f"unexpected wait status {status!r}")

    def release(self, point: Point) -> None:
        try:
            self._connection().call("release", key=self.key_for(point))
        except CacheProtocolError:
            pass  # a dead server released us on disconnect already

    def release_all(self) -> None:
        try:
            self._connection().call("release_all")
        except CacheProtocolError:
            pass

    def server_stats(self) -> dict[str, Any]:
        """The index's global counters (the dedupe proof)."""
        response = self._connection().call("stats")
        return response.get("stats", {})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RemoteCache({self.host}:{self.port}, salt={self.salt!r}, "
            f"hits={self.hits}, misses={self.misses})"
        )

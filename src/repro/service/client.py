""":class:`ServiceClient`: the urllib caller behind ``repro submit``.

Synchronous and stdlib-only — every method is one HTTP round-trip
against a running :class:`~repro.service.server.ExperimentService`,
plus :meth:`events` (a generator over the JSON-lines stream) and
:meth:`point_value` (fetches the raw entry blob and decodes it with the
cache's own :func:`~repro.runner.cache.decode_entry`, which is how a
client proves bit-identity against a local run).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from collections.abc import Iterator
from typing import Any

from repro.errors import ServiceError
from repro.runner.cache import decode_entry
from repro.runner.spec import ExperimentSpec


class ServiceClient:
    """Talk to the job API at ``base_url`` (e.g. http://127.0.0.1:8765)."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- plumbing --------------------------------------------------------

    def _request(
        self, method: str, path: str, payload: Any = None
    ) -> tuple[int, bytes]:
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=body, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return response.status, response.read()
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read()
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"service at {self.base_url} unreachable: {exc.reason}"
            )

    def _json(self, method: str, path: str, payload: Any = None) -> Any:
        status, body = self._request(method, path, payload)
        try:
            data = json.loads(body)
        except ValueError:
            raise ServiceError(
                f"{method} {path}: non-JSON response (HTTP {status})"
            )
        if status >= 400:
            raise ServiceError(
                f"{method} {path}: HTTP {status}: "
                f"{data.get('error', 'unknown error')}"
            )
        return data

    # -- the API ---------------------------------------------------------

    def submit_spec(
        self,
        spec: ExperimentSpec,
        retries: int | None = None,
        timeout: float | None = None,
    ) -> str:
        """Submit a built grid; returns the job id."""
        payload: dict[str, Any] = {"spec": spec.to_json()}
        if retries is not None:
            payload["retries"] = retries
        if timeout is not None:
            payload["timeout"] = timeout
        return self._json("POST", "/jobs", payload)["id"]

    def submit_driver(self, driver: str, **params: Any) -> str:
        """Submit a registered driver's grid by name; returns the job id."""
        return self._json(
            "POST", "/jobs", {"driver": driver, "params": params}
        )["id"]

    def submit_job(self, payload: dict[str, Any]) -> str:
        """Submit a raw ``POST /jobs`` body; returns the job id."""
        return self._json("POST", "/jobs", payload)["id"]

    def jobs(self) -> list[dict[str, Any]]:
        return self._json("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> dict[str, Any]:
        return self._json("GET", f"/jobs/{job_id}")

    def stats(self) -> dict[str, Any]:
        return self._json("GET", "/stats")

    def events(self, job_id: str) -> Iterator[dict[str, Any]]:
        """Yield the job's JSON-lines events; returns after ``job-end``."""
        request = urllib.request.Request(
            f"{self.base_url}/jobs/{job_id}/events",
            headers={"Accept": "application/x-ndjson"},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                if response.status >= 400:
                    raise ServiceError(
                        f"events for {job_id}: HTTP {response.status}"
                    )
                for line in response:
                    line = line.strip()
                    if line:
                        yield json.loads(line)
        except urllib.error.HTTPError as exc:
            raise ServiceError(
                f"events for {job_id}: HTTP {exc.code}"
            )
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"service at {self.base_url} unreachable: {exc.reason}"
            )

    def wait(self, job_id: str, poll: float = 0.1,
             timeout: float = 600.0) -> dict[str, Any]:
        """Poll until the job leaves the running states; returns manifest."""
        deadline = time.monotonic() + timeout
        while True:
            manifest = self.job(job_id)
            if manifest["status"] in ("done", "failed"):
                return manifest
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {manifest['status']} after "
                    f"{timeout:.0f}s"
                )
            time.sleep(poll)

    def point_value(self, job_id: str, index: int) -> Any:
        """The decoded value of one finished point (raw blob fetch)."""
        status, body = self._request(
            "GET", f"/jobs/{job_id}/points/{index}"
        )
        if status >= 400:
            try:
                detail = json.loads(body).get("error", "")
            except ValueError:
                detail = ""
            raise ServiceError(
                f"point {index} of {job_id}: HTTP {status}: {detail}"
            )
        return decode_entry(body)

    def values(self, job_id: str) -> list[Any]:
        """All point values of a finished job, in grid order."""
        manifest = self.job(job_id)
        return [
            self.point_value(job_id, i) for i in range(manifest["total"])
        ]

""":class:`ExperimentService`: cache server + job manager + HTTP API.

One asyncio loop hosts all three layers, sharing a single
:class:`~repro.service.shards.ShardedIndex` — which is exactly how the
fleet-wide dedupe guarantee arises: every execution path (HTTP-submitted
jobs on the shared pool, external runners on the socket protocol) must
reserve a key in the same index before computing it.

:func:`ExperimentService.run_in_thread` hosts the whole service on a
daemon thread for tests, the ``service_sweep`` benchmark, and the CI
smoke job — the same code path ``repro serve`` runs in the foreground.
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass
from typing import Any

from repro.runner.cache import ResultCache
from repro.runner.executor import FailurePolicy
from repro.service.cacheserver import CacheServer
from repro.service.http import HttpApi
from repro.service.jobs import JobManager
from repro.service.shards import ShardedIndex


class ExperimentService:
    """The composed service; ``await start()`` then serve forever."""

    def __init__(
        self,
        cache: ResultCache | None = None,
        host: str = "127.0.0.1",
        http_port: int = 0,
        cache_port: int = 0,
        workers: int = 2,
        policy: FailurePolicy | None = None,
    ):
        self.cache = cache if cache is not None else ResultCache()
        self.index = ShardedIndex(self.cache)
        self.cache_server = CacheServer(
            self.index, host=host, port=cache_port
        )
        self.manager = JobManager(
            self.index, workers=workers, policy=policy
        )
        self.api = HttpApi(self.manager, self.index)
        self.host = host
        self.http_port = http_port
        self._http_server: asyncio.AbstractServer | None = None
        self._http_handlers: set[asyncio.Task] = set()

    async def _handle_http(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._http_handlers.add(task)
        try:
            await self.api.handle(reader, writer)
        finally:
            if task is not None:
                self._http_handlers.discard(task)

    async def start(self) -> None:
        await self.cache_server.start()
        await self.manager.start()
        self._http_server = await asyncio.start_server(
            self._handle_http, host=self.host, port=self.http_port
        )
        self.http_port = self._http_server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._http_server is not None:
            self._http_server.close()
            await self._http_server.wait_closed()
            self._http_server = None
        # A parked /events stream outlives the listening socket; cancel
        # it so the loop can close cleanly.
        for task in list(self._http_handlers):
            task.cancel()
        if self._http_handlers:
            await asyncio.gather(
                *self._http_handlers, return_exceptions=True
            )
        self._http_handlers.clear()
        await self.manager.stop()
        await self.cache_server.stop()

    async def serve_forever(self) -> None:
        await self.start()
        assert self._http_server is not None
        try:
            await self._http_server.serve_forever()
        finally:
            await self.stop()

    # -- threaded hosting (tests, bench, CI smoke) -----------------------

    def run_in_thread(self) -> "ServiceHandle":
        """Start the service on a daemon thread; returns a stop handle."""
        started = threading.Event()
        failure: list[BaseException] = []
        handle = ServiceHandle(service=self)

        def host() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            handle._loop = loop
            try:
                loop.run_until_complete(self.start())
            except BaseException as exc:  # startup failed: report it
                failure.append(exc)
                started.set()
                return
            started.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(self.stop())
                loop.close()

        thread = threading.Thread(
            target=host, name="repro-service", daemon=True
        )
        handle._thread = thread
        thread.start()
        started.wait()
        if failure:
            raise failure[0]
        return handle


@dataclass
class ServiceHandle:
    """A running threaded service: addresses plus a blocking ``stop()``."""

    service: ExperimentService
    _loop: asyncio.AbstractEventLoop | None = None
    _thread: threading.Thread | None = None

    @property
    def http_address(self) -> tuple[str, int]:
        return self.service.host, self.service.http_port

    @property
    def cache_address(self) -> tuple[str, int]:
        return self.service.cache_server.address

    @property
    def base_url(self) -> str:
        host, port = self.http_address
        return f"http://{host}:{port}"

    def stats(self) -> dict[str, Any]:
        """Thread-safe snapshot of the index counters."""
        return self.call(lambda: self.service.index.stats())

    def call(self, fn, timeout: float = 30.0):
        """Run *fn* on the service loop and return its result."""
        assert self._loop is not None
        future: "asyncio.Future[Any]" = asyncio.run_coroutine_threadsafe(
            _call_async(fn), self._loop
        )
        return future.result(timeout=timeout)

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is None or self._thread is None:
            return
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=timeout)
        self._loop = None
        self._thread = None


async def _call_async(fn):
    result = fn()
    if asyncio.iscoroutine(result):
        return await result
    return result

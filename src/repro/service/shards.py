"""The sharded single-flight index: one execution per unique key.

:class:`ShardedIndex` sits between every execution path in the service
(local job scheduler, remote socket clients) and the on-disk
:class:`~repro.runner.cache.ResultCache`.  It speaks raw content keys
and opaque entry blobs — the exact bytes the cache stores — so a blob
published by one client decodes identically for every other.

Reservations implement **single-flight**: the first caller to reserve a
missing key becomes its owner (it must execute and publish, or release);
every later caller for the same key parks on an :class:`asyncio.Future`
and receives the published blob without executing anything.  If an owner
fails or disconnects, the first waiter is *promoted* to owner — dedupe
is an optimization, never a liveness dependency.

The index is sharded by ``key[:2]`` (256 ways, matching the cache's
on-disk fan-out) so reservation state and per-shard occupancy stats stay
bounded and cheap to report.  Everything runs on one asyncio loop, so
shard access needs no locks — sharding bounds dict sizes and gives the
stats endpoint a cheap occupancy histogram, mirroring the disk layout.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any

from repro.runner.cache import ResultCache

#: Shard fan-out: first byte of the hex key, matching ``<root>/<key[:2]>/``.
SHARD_COUNT = 256


def shard_of(key: str) -> int:
    """The shard index a content *key* lands in (by ``key[:2]``)."""
    try:
        return int(key[:2], 16) % SHARD_COUNT
    except ValueError:
        return 0


@dataclass
class _Reservation:
    """One in-flight key: its owner plus the callers awaiting the blob."""

    owner: str
    #: ``(waiter_owner_token, future)`` pairs; futures resolve to
    #: ``("hit", blob)`` on publish or ``("own", None)`` on promotion.
    waiters: list[tuple[str, asyncio.Future]] = field(default_factory=list)


class ShardedIndex:
    """Sharded single-flight reservations over a :class:`ResultCache`.

    Owners are opaque string tokens (a socket connection id, a job/point
    id) so one misbehaving client's reservations can be swept with
    :meth:`release_owner` when it disconnects.
    """

    def __init__(self, cache: ResultCache):
        self.cache = cache
        self._shards: list[dict[str, _Reservation]] = [
            {} for _ in range(SHARD_COUNT)
        ]
        self.counters: dict[str, int] = {
            "hits": 0,          # reserve/lookup found the blob on disk
            "misses": 0,        # reserve had to create a reservation
            "reserved": 0,      # callers that became a key's owner
            "coalesced": 0,     # callers parked behind an existing owner
            "published": 0,     # blobs published (== unique executions)
            "failed": 0,        # owners that released without publishing
            "promoted": 0,      # waiters promoted to owner after a failure
        }

    # -- lookup / reserve ------------------------------------------------

    def lookup(self, key: str) -> bytes | None:
        """Raw blob for *key*, or ``None``; counts a hit/miss."""
        blob = self.cache.lookup_blob(key)
        if blob is None:
            self.counters["misses"] += 1
        else:
            self.counters["hits"] += 1
        return blob

    def reserve(self, key: str, owner: str) -> tuple[str, bytes | None]:
        """Claim *key* for *owner*: ``("hit", blob)``, ``("own", None)``
        or ``("wait", None)``.

        Exactly one concurrent caller per key gets ``"own"`` — that
        caller must eventually :meth:`publish` or :meth:`release`.
        Reserving a key already owned by *owner* is idempotent.
        """
        blob = self.cache.lookup_blob(key)
        if blob is not None:
            self.counters["hits"] += 1
            return "hit", blob
        shard = self._shards[shard_of(key)]
        reservation = shard.get(key)
        if reservation is None:
            shard[key] = _Reservation(owner=owner)
            self.counters["misses"] += 1
            self.counters["reserved"] += 1
            return "own", None
        if reservation.owner == owner:
            return "own", None
        self.counters["coalesced"] += 1
        return "wait", None

    async def wait(
        self, key: str, owner: str, timeout: float | None = None
    ) -> tuple[str, bytes | None]:
        """Await *key*'s blob: ``("hit", blob)``, ``("own", None)`` when
        promoted to owner, or ``("pending", None)`` on timeout.

        A caller whose wait times out keeps its claim in the queue; it
        may execute locally (takeover) and publish — publish accepts
        non-owners precisely for this recovery path.
        """
        blob = self.cache.lookup_blob(key)
        if blob is not None:
            return "hit", blob
        shard = self._shards[shard_of(key)]
        reservation = shard.get(key)
        if reservation is None:
            # The owner vanished between this caller's reserve and wait
            # (published-then-evicted is indistinguishable from failed):
            # promote the caller rather than deadlock.
            shard[key] = _Reservation(owner=owner)
            self.counters["promoted"] += 1
            return "own", None
        if reservation.owner == owner:
            return "own", None
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        reservation.waiters.append((owner, future))
        try:
            return await asyncio.wait_for(
                asyncio.shield(future), timeout=timeout
            )
        except asyncio.TimeoutError:
            if future.done():
                return future.result()
            self._discard_waiter(reservation, owner, future)
            return "pending", None
        except asyncio.CancelledError:
            if not future.done():
                self._discard_waiter(reservation, owner, future)
            raise

    @staticmethod
    def _discard_waiter(
        reservation: _Reservation, owner: str, future: asyncio.Future
    ) -> None:
        """Drop a dead waiter pair; tolerate a concurrent sweep."""
        try:
            reservation.waiters.remove((owner, future))
        except ValueError:
            pass
        future.cancel()

    # -- publish / release -----------------------------------------------

    def publish(self, key: str, blob: bytes, owner: str) -> None:
        """Persist *key*'s blob and wake every waiter with it.

        Deliberately accepts publishes from non-owners: a waiter that
        timed out and recomputed locally produces the *same* bytes (the
        grid is deterministic), so racing publishes are idempotent.
        """
        self.cache.store_blob(key, blob)
        self.counters["published"] += 1
        reservation = self._shards[shard_of(key)].pop(key, None)
        if reservation is None:
            return
        for _, future in reservation.waiters:
            if not future.done():
                future.set_result(("hit", blob))

    def release(self, key: str, owner: str) -> None:
        """Give up *owner*'s claim on *key* without publishing.

        The first live waiter is promoted to owner (its pending wait
        resolves ``("own", None)`` and it executes the point itself);
        with no waiters the reservation simply disappears.
        """
        shard = self._shards[shard_of(key)]
        reservation = shard.get(key)
        if reservation is None or reservation.owner != owner:
            return
        self.counters["failed"] += 1
        while reservation.waiters:
            waiter_owner, future = reservation.waiters.pop(0)
            if future.done():
                continue
            reservation.owner = waiter_owner
            self.counters["promoted"] += 1
            future.set_result(("own", None))
            return
        del shard[key]

    def release_owner(self, owner: str) -> int:
        """Sweep every reservation and parked wait held by *owner*.

        Called when a socket client disconnects: its owned keys hand
        over to their first waiter, and its parked waits are cancelled
        so they never leak futures.  Returns the number of owned keys
        released.
        """
        released = 0
        for shard in self._shards:
            for key, reservation in list(shard.items()):
                reservation.waiters = [
                    (who, future)
                    for who, future in reservation.waiters
                    if who != owner or future.done()
                ]
                if reservation.owner == owner:
                    released += 1
                    self.release(key, owner)
        return released

    # -- stats -----------------------------------------------------------

    def in_flight(self) -> int:
        """Active reservations across all shards."""
        return sum(len(shard) for shard in self._shards)

    def stats(self) -> dict[str, Any]:
        """Counters plus reservation occupancy (the CI smoke's proof)."""
        occupied = [i for i, shard in enumerate(self._shards) if shard]
        return {
            **self.counters,
            "in_flight": self.in_flight(),
            "occupied_shards": len(occupied),
            "cache_root": str(self.cache.root),
        }

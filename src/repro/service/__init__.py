"""repro.service: the long-running experiment service.

Many clients submitting overlapping grids collectively pay for each
unique point **once**, fleet-wide.  Three cooperating layers, all on one
asyncio event loop, all stdlib-only:

* :mod:`repro.service.shards` — :class:`ShardedIndex`, a sharded
  in-process single-flight index over the on-disk
  :class:`~repro.runner.cache.ResultCache` (same keys, same blobs;
  shards by ``key[:2]``).  ``reserve`` makes exactly one caller the
  executor of a missing key; everyone else awaits the published blob.
* :mod:`repro.service.cacheserver` / :mod:`repro.service.cacheclient` —
  the index exposed over a local socket as newline-delimited JSON
  frames, and :class:`RemoteCache`, the synchronous client that plugs
  into :class:`~repro.runner.Runner` as a drop-in cache so *external*
  runner processes join the same single-flight domain.
* :mod:`repro.service.jobs` — :class:`JobManager`, the fair-share /
  work-stealing scheduler that fans all jobs' points over one shared
  warm process pool, reusing the executor's retry / timeout / respawn
  primitives unchanged.
* :mod:`repro.service.http` + :mod:`repro.service.server` — the minimal
  HTTP/JSON job API (``POST /jobs``, ``GET /jobs/<id>``, JSON-lines
  ``/events``) and :class:`ExperimentService`, which composes the lot.
* :mod:`repro.service.client` — :class:`ServiceClient`, the urllib-based
  caller the CLI's ``repro submit`` / ``repro jobs`` use.
"""

from repro.service.cacheclient import RemoteCache
from repro.service.cacheserver import CacheServer
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import Job, JobManager
from repro.service.server import ExperimentService, ServiceHandle
from repro.service.shards import ShardedIndex

__all__ = [
    "CacheServer",
    "ExperimentService",
    "Job",
    "JobManager",
    "RemoteCache",
    "ServiceClient",
    "ServiceError",
    "ServiceHandle",
    "ShardedIndex",
]

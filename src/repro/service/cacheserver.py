"""The cache server: :class:`ShardedIndex` over a local socket.

External runner processes (and the ``service_sweep`` benchmark's
concurrent clients) join the service's single-flight domain through
this server — N worker pools and M concurrent jobs deduplicate points
globally without sharing memory.

Wire protocol: newline-delimited JSON frames over a localhost TCP
connection.  Requests carry ``op`` plus operands; blobs travel
base64-encoded (entry blobs are small, kilobytes of compressed pickle).
One response frame per request, matched by order (the client is
synchronous per connection); the long-poll ``wait`` op parks server-side
on the index's future, so the connection itself is the blocking wait.

Each connection gets an owner token (``conn-<n>``); when it drops, every
reservation it still owns is released and its first waiter promoted —
a crashed client can never wedge the fleet.
"""

from __future__ import annotations

import asyncio
import base64
import json
from typing import Any

from repro.service.shards import ShardedIndex

#: Reject absurd frames early (a blob is kilobytes; 64 MiB is a bug).
MAX_FRAME_BYTES = 64 * 1024 * 1024


def encode_frame(payload: dict[str, Any]) -> bytes:
    """One wire frame: compact JSON + newline."""
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def blob_to_wire(blob: bytes | None) -> str | None:
    return None if blob is None else base64.b64encode(blob).decode("ascii")


def blob_from_wire(text: str | None) -> bytes | None:
    return None if text is None else base64.b64decode(text)


class CacheServer:
    """Serve a :class:`ShardedIndex` on a localhost TCP socket."""

    def __init__(self, index: ShardedIndex, host: str = "127.0.0.1",
                 port: int = 0):
        self.index = index
        self.host = host
        self.port = port
        self.connections = 0
        self._server: asyncio.AbstractServer | None = None
        self._next_conn = 0
        self._handlers: set[asyncio.Task] = set()

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — resolves port 0 after start."""
        return self.host, self.port

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port,
            limit=MAX_FRAME_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Open connections park in readline()/wait() indefinitely; they
        # must be cancelled or they outlive the event loop noisily.
        for task in list(self._handlers):
            task.cancel()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)
        self._handlers.clear()

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._next_conn += 1
        self.connections += 1
        owner = f"conn-{self._next_conn}"
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.LimitOverrunError):
                    break
                if not line:
                    break
                request: Any = None
                try:
                    request = json.loads(line)
                    response = await self._dispatch(request, owner)
                except Exception as exc:  # malformed frame: report, keep conn
                    response = {"status": "error", "error": str(exc)}
                response["id"] = (
                    request.get("id") if isinstance(request, dict) else None
                )
                try:
                    writer.write(encode_frame(response))
                    await writer.drain()
                except (ConnectionError, ConnectionResetError):
                    break
        finally:
            self.connections -= 1
            if task is not None:
                self._handlers.discard(task)
            # The disconnect sweep: owned keys hand over to their first
            # waiter instead of leaking a dead reservation.
            self.index.release_owner(owner)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, RuntimeError):
                pass

    async def _dispatch(
        self, request: dict[str, Any], owner: str
    ) -> dict[str, Any]:
        op = request.get("op")
        key = request.get("key", "")
        if op == "ping":
            return {"status": "ok", "owner": owner}
        if op == "lookup":
            blob = self.index.lookup(key)
            return {
                "status": "hit" if blob is not None else "miss",
                "blob": blob_to_wire(blob),
            }
        if op == "reserve":
            status, blob = self.index.reserve(key, owner)
            return {"status": status, "blob": blob_to_wire(blob)}
        if op == "wait":
            timeout = request.get("timeout")
            status, blob = await self.index.wait(
                key, owner, timeout=timeout
            )
            return {"status": status, "blob": blob_to_wire(blob)}
        if op == "publish":
            blob = blob_from_wire(request.get("blob"))
            if blob is None:
                return {"status": "error", "error": "publish without blob"}
            self.index.publish(key, blob, owner)
            return {"status": "ok"}
        if op == "release":
            self.index.release(key, owner)
            return {"status": "ok"}
        if op == "release_all":
            released = self.index.release_owner(owner)
            return {"status": "ok", "released": released}
        if op == "stats":
            return {"status": "ok", "stats": self.index.stats()}
        return {"status": "error", "error": f"unknown op {op!r}"}

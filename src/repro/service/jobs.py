"""Job scheduling: every submitted grid shares one warm worker pool.

:class:`JobManager` is the service-side counterpart of the standalone
:class:`~repro.runner.Runner`: it deliberately reuses the executor's
primitives — :func:`~repro.runner.executor._timed_point` (SIGALRM
timeout inside the worker), :class:`~repro.runner.FailurePolicy`
(deterministic backoff via :func:`~repro.sim.rng.derive_seed`), and
pool-respawn-on-crash — so a point executes under the service with
exactly the semantics it has under ``repro fig8 --jobs N``.

What the manager adds is *cross-job* scheduling:

* **fair share** — a free worker slot goes to the job with the fewest
  points in flight, so a small grid is never starved behind a huge one;
* **work stealing** — among equally-loaded jobs, the slot goes to the
  *longest* pending queue, draining backlogs first;
* **global single-flight** — before a point is dispatched its key is
  reserved in the shared :class:`~repro.service.shards.ShardedIndex`;
  a key some other job (or a remote socket client) is already computing
  parks on an awaited future instead of burning a worker.

Every per-point lifecycle step is emitted as a JSON-plain event dict:
into the job's replayable history, to any live ``/events`` subscriber
queues, and into the :mod:`repro.obs` runner-lifecycle recorder when
tracing is enabled — one schema (see
:func:`repro.runner.progress.outcome_record`) across progress lines,
trace events, and the service stream.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import sys
import time
from collections import deque
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any

from repro.errors import PointExecutionError
from repro.obs.recorder import runner_now, runner_recorder
from repro.runner.cache import encode_entry
from repro.runner.executor import (
    FailurePolicy,
    PointOutcome,
    _timed_point,
)
from repro.runner.progress import outcome_record
from repro.runner.spec import ExperimentSpec

#: Default single-flight wait before a waiter takes a point over.
DEFAULT_WAIT_TIMEOUT = 600.0


def _pool_context() -> multiprocessing.context.BaseContext:
    """A fork+exec start method for the shared pool.

    The service process holds accepted HTTP and cache-protocol sockets.
    Plain ``fork`` duplicates those descriptors into every pool worker,
    so closing a connection on the service side never delivers EOF while
    a worker lives — a client following ``/jobs/<id>/events`` hangs
    after ``job-end`` instead of seeing the stream end.  ``forkserver``
    and ``spawn`` start workers via fork+exec, which drops the sockets
    (they are non-inheritable per PEP 446).
    """
    main = sys.modules.get("__main__")
    main_file = getattr(main, "__file__", None)
    if (
        getattr(main, "__spec__", None) is None
        and main_file is not None
        and not os.path.exists(main_file)
    ):
        # A fork+exec child re-runs ``__main__``; a parent started from
        # stdin (``python - <<script``) has no re-importable main, so
        # fall back to plain fork there rather than crash at startup.
        try:
            return multiprocessing.get_context("fork")
        except ValueError:
            pass
    try:
        return multiprocessing.get_context("forkserver")
    except ValueError:  # platform without forkserver (e.g. Windows)
        return multiprocessing.get_context("spawn")


def _warm_worker() -> None:
    """No-op task submitted once per slot to force worker creation."""
    return None


@dataclass
class Job:
    """One submitted grid and everything observable about it."""

    id: str
    spec: ExperimentSpec
    policy: FailurePolicy
    keys: list[str]
    status: str = "queued"  # queued | running | done | failed
    pending: deque = field(default_factory=deque)
    in_flight: int = 0
    completed: int = 0
    executed: int = 0
    cache_hits: int = 0
    deduped: int = 0
    failed: int = 0
    submitted_at: float = field(default_factory=time.monotonic)
    wall_seconds: float = 0.0
    points: list[dict[str, Any] | None] = field(default_factory=list)
    events: list[dict[str, Any]] = field(default_factory=list)
    subscribers: set = field(default_factory=set)
    done_event: asyncio.Event = field(default_factory=asyncio.Event)

    @property
    def total(self) -> int:
        return len(self.spec.points)

    @property
    def finished(self) -> bool:
        return self.completed >= self.total

    def manifest(self) -> dict[str, Any]:
        """The ``GET /jobs/<id>`` body: status, counters, per-point rows."""
        return {
            "id": self.id,
            "experiment": self.spec.experiment,
            "status": self.status,
            "total": self.total,
            "completed": self.completed,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "deduped": self.deduped,
            "failed": self.failed,
            "wall_seconds": round(self.wall_seconds, 6),
            "keys": list(self.keys),
            "points": [
                row if row is not None else {"status": "pending"}
                for row in self.points
            ],
        }


class JobManager:
    """Schedule all submitted jobs over one shared process pool."""

    def __init__(
        self,
        index,
        workers: int = 2,
        policy: FailurePolicy | None = None,
        wait_timeout: float = DEFAULT_WAIT_TIMEOUT,
    ):
        self.index = index
        self.workers = max(1, int(workers))
        self.policy = policy if policy is not None else FailurePolicy()
        self.wait_timeout = wait_timeout
        self.jobs: dict[str, Job] = {}
        self.pool_respawns = 0
        self._next_job = 0
        self._pool: ProcessPoolExecutor | None = None
        self._pool_generation = 0
        self._slots = asyncio.Semaphore(self.workers)
        self._wake = asyncio.Event()
        self._tasks: set[asyncio.Task] = set()
        self._scheduler: asyncio.Task | None = None
        self._stopping = False
        self._recorder = runner_recorder()

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        if self._pool is None:
            self._pool = self._new_pool()
            # Spawn every worker now, before the service accepts any
            # connection, so process creation never races a live stream.
            loop = asyncio.get_running_loop()
            await asyncio.gather(*(
                loop.run_in_executor(self._pool, _warm_worker)
                for _ in range(self.workers)
            ))
        if self._scheduler is None:
            self._scheduler = asyncio.ensure_future(self._schedule())

    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.workers, mp_context=_pool_context()
        )

    async def stop(self) -> None:
        self._stopping = True
        self._wake.set()
        if self._scheduler is not None:
            self._scheduler.cancel()
            try:
                await self._scheduler
            except asyncio.CancelledError:
                pass
            self._scheduler = None
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    # -- submission ------------------------------------------------------

    def submit(
        self, spec: ExperimentSpec, policy: FailurePolicy | None = None
    ) -> Job:
        """Queue *spec*; returns the job immediately (execution is async)."""
        self._next_job += 1
        job = Job(
            id=f"job-{self._next_job}",
            spec=spec,
            policy=policy if policy is not None else self.policy,
            keys=[
                point.key(self.index.cache.salt) for point in spec.points
            ],
        )
        job.points = [None] * job.total
        job.pending = deque(range(job.total))
        self.jobs[job.id] = job
        self._emit(job, {
            "event": "job-queued", "job": job.id,
            "experiment": spec.experiment, "total": job.total,
        })
        self._wake.set()
        return job

    def get(self, job_id: str) -> Job | None:
        return self.jobs.get(job_id)

    def stats(self) -> dict[str, Any]:
        return {
            "jobs": len(self.jobs),
            "running": sum(
                1 for j in self.jobs.values() if j.status == "running"
            ),
            "workers": self.workers,
            "pool_respawns": self.pool_respawns,
        }

    # -- events ----------------------------------------------------------

    def _emit(self, job: Job, record: dict[str, Any]) -> None:
        record.setdefault("job", job.id)
        job.events.append(record)
        for queue in list(job.subscribers):
            try:
                queue.put_nowait(record)
            except asyncio.QueueFull:  # pragma: no cover - unbounded
                pass
        if self._recorder is not None:
            self._recorder.emit(
                runner_now(), "runner", record.get("event", "service"),
                dict(record),
            )

    def subscribe(self, job: Job) -> asyncio.Queue:
        """A live event queue, pre-loaded with the job's history."""
        queue: asyncio.Queue = asyncio.Queue()
        for record in job.events:
            queue.put_nowait(record)
        job.subscribers.add(queue)
        return queue

    def unsubscribe(self, job: Job, queue: asyncio.Queue) -> None:
        job.subscribers.discard(queue)

    # -- scheduling ------------------------------------------------------

    def _pick(self) -> Job | None:
        """Fair share with stealing: least in flight, then longest queue."""
        candidates = [j for j in self.jobs.values() if j.pending]
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda j: (j.in_flight, -len(j.pending), j.submitted_at),
        )

    async def _schedule(self) -> None:
        while not self._stopping:
            await self._slots.acquire()
            job = self._pick()
            while job is None:
                self._slots.release()
                self._wake.clear()
                await self._wake.wait()
                if self._stopping:
                    return
                await self._slots.acquire()
                job = self._pick()
            index = job.pending.popleft()
            if job.status == "queued":
                job.status = "running"
                self._emit(job, {"event": "job-start"})
            self._claim(job, index)

    def _claim(self, job: Job, point_index: int) -> None:
        """Reserve the point's key and route it: record / await / execute.

        Called holding one worker slot; every path either consumes the
        slot (execution) or releases it (hit, dedupe wait).
        """
        key = job.keys[point_index]
        owner = f"{job.id}/{point_index}"
        status, blob = self.index.reserve(key, owner)
        if status == "hit":
            self._slots.release()
            job.cache_hits += 1
            self._record(job, point_index, cached=True)
            return
        if status == "wait":
            self._slots.release()
            self._emit(job, {"event": "cache-wait", "index": point_index})
            self._spawn(self._await_point(job, point_index, key, owner))
            return
        self._spawn(self._execute(job, point_index, key, owner))

    def _spawn(self, coro) -> None:
        task = asyncio.ensure_future(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _await_point(
        self, job: Job, point_index: int, key: str, owner: str
    ) -> None:
        """Park on another executor's reservation; take over if it dies."""
        job.in_flight += 1
        try:
            status, blob = await self.index.wait(
                key, owner, timeout=self.wait_timeout
            )
        finally:
            job.in_flight -= 1
        if status == "hit":
            job.deduped += 1
            self._record(job, point_index, cached=True, deduped=True)
            return
        # Promoted to owner ("own") or timed out ("pending"): the point
        # now executes here, against a real worker slot.
        self._emit(job, {
            "event": "dedup-takeover", "index": point_index,
            "status": status,
        })
        await self._slots.acquire()
        await self._execute(job, point_index, key, owner)

    async def _execute(
        self, job: Job, point_index: int, key: str, owner: str
    ) -> None:
        """Run one point on the shared pool; holds one worker slot."""
        job.in_flight += 1
        point = job.spec.points[point_index]
        policy = job.policy
        attempts = 0
        try:
            while True:
                attempts += 1
                self._emit(job, {
                    "event": "dispatch", "index": point_index,
                    "attempt": attempts,
                })
                generation = self._pool_generation
                loop = asyncio.get_running_loop()
                try:
                    value, seconds = await loop.run_in_executor(
                        self._pool, _timed_point,
                        point.fn, dict(point.params), policy.timeout, None,
                    )
                except asyncio.CancelledError:
                    self.index.release(key, owner)
                    raise
                except BrokenExecutor:
                    self._respawn(generation)
                    if attempts <= policy.retries:
                        self._emit(job, {
                            "event": "retry", "index": point_index,
                            "attempt": attempts, "error": "WorkerCrashError",
                        })
                        continue
                    self.index.release(key, owner)
                    self._record(
                        job, point_index, attempts=attempts,
                        error="WorkerCrashError",
                        message="pool worker died while executing point",
                    )
                    return
                except Exception as exc:
                    if attempts <= policy.retries:
                        self._emit(job, {
                            "event": "retry", "index": point_index,
                            "attempt": attempts,
                            "error": type(exc).__name__,
                        })
                        await asyncio.sleep(policy.backoff_seconds(
                            point.describe(), attempts
                        ))
                        continue
                    self.index.release(key, owner)
                    cause = exc
                    if isinstance(exc, PointExecutionError):
                        cause = exc.__cause__ or exc
                    self._record(
                        job, point_index, attempts=attempts,
                        error=type(cause).__name__, message=str(cause),
                    )
                    return
                blob = None
                try:
                    blob = encode_entry(value)
                except Exception:
                    pass  # unpicklable: still a success, just uncached
                if blob is not None:
                    self.index.publish(key, blob, owner)
                else:
                    self.index.release(key, owner)
                job.executed += 1
                self._record(
                    job, point_index, seconds=seconds, attempts=attempts,
                )
                return
        finally:
            job.in_flight -= 1
            self._slots.release()
            self._wake.set()

    def _respawn(self, generation: int) -> None:
        """Replace a broken pool exactly once per crash."""
        if generation != self._pool_generation:
            return  # a concurrent point already respawned it
        self._pool_generation += 1
        self.pool_respawns += 1
        broken = self._pool
        self._pool = self._new_pool()
        if broken is not None:
            broken.shutdown(wait=False)

    # -- completion ------------------------------------------------------

    def _record(
        self,
        job: Job,
        point_index: int,
        cached: bool = False,
        deduped: bool = False,
        seconds: float = 0.0,
        attempts: int = 1,
        error: str | None = None,
        message: str | None = None,
    ) -> None:
        """File one finished point and emit its event record."""
        point = job.spec.points[point_index]
        row: dict[str, Any] = {
            "status": "failed" if error else "ok",
            "label": point.describe(),
            "key": job.keys[point_index],
            "cached": cached,
            "deduped": deduped,
            "attempts": attempts,
            "seconds": round(seconds, 6),
        }
        if error:
            row["error"] = error
            row["message"] = message or ""
            job.failed += 1
        job.points[point_index] = row
        job.completed += 1
        # The event payload is the progress module's wire schema —
        # synthesized through a real PointOutcome so the two can never
        # drift apart.
        failure = None
        if error:
            failure = PointExecutionError(
                point.describe(), RuntimeError(message or error)
            )
        outcome = PointOutcome(
            index=point_index, total=job.total, point=point, value=None,
            seconds=seconds, cached=cached, attempts=attempts,
            error=failure, deduped=deduped,
        )
        record = outcome_record(job.spec.experiment, outcome)
        if error:
            record["error"] = error  # keep the worker-side type name
            record["message"] = message or ""
        self._emit(job, record)
        if job.finished:
            job.wall_seconds = time.monotonic() - job.submitted_at
            job.status = "failed" if job.failed else "done"
            self._emit(job, {
                "event": "job-end", "status": job.status,
                "executed": job.executed, "cache_hits": job.cache_hits,
                "deduped": job.deduped, "failed": job.failed,
                "wall_seconds": round(job.wall_seconds, 6),
            })
            job.done_event.set()
        self._wake.set()

"""Plain-data descriptions of how to rebuild a running thread program.

Generators cannot be pickled, so a checkpoint never stores a live
program.  Instead every checkpointable thread carries a
:class:`ProgramSpec` naming the *factory* that built its program plus
the arguments it was built with; restore calls the factory again with
``cursor=<the thread's last mark>`` and re-drives the fresh generator
through the recorded op results (see :mod:`repro.checkpoint.core`).

Factory protocol::

    def factory(*args, cursor=None, **kwargs) -> program
    def program(cpu) -> Generator

Arguments may be live objects (a shared TrojanControl, a SpyResult, a
decoder); they are pickled inside the checkpoint's single object graph,
so identity sharing between threads survives the round trip.  The one
exception is ``numpy`` generators: RNG streams are snapshotted by name
through :class:`repro.sim.rng.RngStreams`, so an argument that is an RNG
is recorded as an :class:`RngRef` placeholder and swapped for the
restored registry's stream at rebuild time.

This module is import-light on purpose: the kernel and channel layers
import it at module scope, while the heavyweight capture/restore logic
lives in :mod:`repro.checkpoint.core`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class RngRef:
    """Placeholder for an RNG-stream argument, resolved at restore.

    ``RngRef("workload.kbuild.0")`` stands for
    ``rng_streams.get("workload.kbuild.0")`` — the *name* round-trips,
    the generator object (with its restored bit state) is looked up from
    the checkpoint's own restored :class:`~repro.sim.rng.RngStreams`.
    """

    stream: str


@dataclass
class TransmitContext:
    """Live state of one in-flight transmission attempt.

    Created by ``ChannelSession._transmit_once`` and carried inside the
    checkpoint pickle graph: its ``control``/``decoder``/``spy_result``
    are the *same objects* the thread :class:`ProgramSpec` args name, so
    a restored session's re-driven threads and its resumed
    ``transmit(..., _resume=ctx)`` call share state exactly as the
    original did.
    """

    payload: list
    tag: int
    attempt: int
    label: str
    control: Any
    decoder: Any
    spy_result: Any


@dataclass
class ProgramSpec:
    """How to rebuild one thread's program from plain data.

    Parameters
    ----------
    fn:
        Dotted factory path, ``"package.module:factory"`` — resolved
        with :func:`repro.runner.spec.resolve_callable`.
    args / kwargs:
        The factory's build arguments.  May contain live objects (they
        ride the checkpoint pickle graph) and :class:`RngRef`
        placeholders (swapped for restored streams at rebuild time).
    """

    fn: str
    args: tuple = ()
    kwargs: dict[str, Any] = field(default_factory=dict)

    def build(self, resolve: Any, cursor: Any = None) -> Any:
        """Call the factory with RngRefs resolved via *resolve*.

        *resolve* maps an :class:`RngRef` to a live generator (normally
        ``lambda ref: rng_streams.get(ref.stream)``).
        """
        args = tuple(
            resolve(a) if isinstance(a, RngRef) else a for a in self.args
        )
        kwargs = {
            k: resolve(v) if isinstance(v, RngRef) else v
            for k, v in self.kwargs.items()
        }
        from repro.runner.spec import resolve_callable

        factory = resolve_callable(self.fn)
        return factory(*args, cursor=cursor, **kwargs)

"""Deterministic checkpoint/restore for running sessions.

Public surface:

* :class:`ProgramSpec` / :class:`RngRef` — plain-data thread rebuild
  descriptions (import-light; the kernel and channel layers use them at
  module scope).
* :func:`capture` / :func:`restore` / :class:`Checkpoint` — whole-session
  snapshot and resume (:mod:`repro.checkpoint.core`).
* :class:`SegmentStore` / :func:`segment` — segment-granular caching of
  long transmissions through the result cache
  (:mod:`repro.checkpoint.segments`).

The heavyweight modules import the session/kernel layers, which in turn
import :mod:`repro.checkpoint.spec`; loading them lazily here keeps the
package cycle-free.
"""

from __future__ import annotations

from repro.checkpoint.spec import ProgramSpec, RngRef, TransmitContext

__all__ = [
    "ProgramSpec",
    "RngRef",
    "TransmitContext",
    "Checkpoint",
    "CheckpointError",
    "CHECKPOINT_VERSION",
    "capture",
    "restore",
    "inspect_blob",
    "SegmentStore",
    "segment",
    "segments_enabled",
    "segment_cycles",
]

_CORE = (
    "Checkpoint", "CheckpointError", "CHECKPOINT_VERSION",
    "capture", "restore", "inspect_blob",
)
_SEGMENTS = ("SegmentStore", "segment", "segments_enabled", "segment_cycles")


def __getattr__(name: str):
    if name in _CORE:
        from repro.checkpoint import core

        return getattr(core, name)
    if name in _SEGMENTS:
        from repro.checkpoint import segments

        return getattr(segments, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

"""Whole-session capture and restore.

A checkpoint freezes a running :class:`~repro.channel.session.
ChannelSession` between engine events: the machine (caches, coherence
directories, interconnect windows, stats), the kernel (frame pool, KSM
stable tree, processes, scheduler-visible threads), every RNG stream,
the engine clock, and — the hard part — each live thread's *position*
inside its generator program.

Generators cannot be pickled, so positions are stored as re-drivable
triples ``(cursor, replay_log, pending_result)`` per thread (see
:meth:`repro.sim.thread.Cpu.mark`): restore rebuilds each program from
its :class:`~repro.checkpoint.spec.ProgramSpec` with ``cursor=`` and
re-sends the recorded op results, landing the fresh generator on the
exact yield the original was parked at.  Threads are respawned in
:meth:`~repro.sim.engine.Simulator.live_run_order` with
``start_time=thread.clock`` so the fresh heap's FIFO tie-breaking
reproduces the original pop order — the resumed run is bit-identical to
one that never paused (locked by the golden-determinism digests).

Everything rides ONE pickle graph, so identity sharing survives: the
trojan workers' shared :class:`TrojanControl`, the spy's result/decoder,
the KSM daemon named by the ksmd thread's spec, and the processes the
kernel owns all come back as single shared objects.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass, field
from typing import Any

from repro.checkpoint.spec import ProgramSpec, RngRef, TransmitContext
from repro.errors import CheckpointError

#: Bump when the blob layout or the re-drive protocol changes; restore
#: refuses blobs from other versions (state formats are not migrated).
CHECKPOINT_VERSION = 1

#: Magic prefix identifying an exported checkpoint blob on disk.
BLOB_MAGIC = b"RCKP"


@dataclass
class _ThreadRecord:
    """Plain-data position of one live thread (rides the pickle graph)."""

    name: str
    core_id: int
    daemon: bool
    process: Any
    clock: float
    cursor: Any
    replay_log: list
    pending: Any
    spec: ProgramSpec
    #: Whether the thread held a scheduler core slot (kernel.spawn) or
    #: ran unscheduled (sim.spawn / spawn_kernel_thread).
    scheduled: bool


@dataclass
class Checkpoint:
    """A versioned, integrity-digested session snapshot.

    ``state`` is the inner pickle (the one shared object graph);
    ``digest`` is its SHA-256, verified on load so a torn or corrupted
    blob fails loudly instead of restoring garbage.  ``manifest`` is a
    small plain dict readable without unpickling the state
    (:func:`inspect_blob`).
    """

    manifest: dict
    state: bytes
    version: int = CHECKPOINT_VERSION
    digest: str = field(default="")

    def __post_init__(self) -> None:
        if not self.digest:
            self.digest = hashlib.sha256(self.state).hexdigest()

    def to_bytes(self) -> bytes:
        """Serialize to a self-describing blob (magic + outer pickle)."""
        outer = {
            "version": self.version,
            "manifest": self.manifest,
            "digest": self.digest,
            "state": self.state,
        }
        return BLOB_MAGIC + pickle.dumps(outer, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Checkpoint":
        """Parse and integrity-check a :meth:`to_bytes` blob."""
        outer = _parse_blob(blob)
        digest = hashlib.sha256(outer["state"]).hexdigest()
        if digest != outer["digest"]:
            raise CheckpointError(
                f"checkpoint digest mismatch: blob says {outer['digest'][:12]}..., "
                f"state hashes to {digest[:12]}... (torn or corrupted blob)"
            )
        return cls(
            manifest=outer["manifest"],
            state=outer["state"],
            version=outer["version"],
            digest=outer["digest"],
        )


def _parse_blob(blob: bytes) -> dict:
    if not isinstance(blob, (bytes, bytearray)) or not bytes(blob).startswith(
        BLOB_MAGIC
    ):
        raise CheckpointError("not a checkpoint blob (bad magic)")
    try:
        outer = pickle.loads(bytes(blob)[len(BLOB_MAGIC):])
    except Exception as exc:
        raise CheckpointError(f"unreadable checkpoint blob: {exc}")
    if not isinstance(outer, dict) or "version" not in outer:
        raise CheckpointError("malformed checkpoint blob")
    if outer["version"] != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint version {outer['version']} is not supported "
            f"(this build reads version {CHECKPOINT_VERSION})"
        )
    return outer


def inspect_blob(blob: bytes) -> dict:
    """The manifest of a checkpoint blob, without unpickling its state.

    Cheap and safe on untrusted-size blobs: only the small outer
    envelope is decoded; the (potentially large) session state stays a
    byte string.  Adds the state size and digest for display.
    """
    outer = _parse_blob(blob)
    manifest = dict(outer["manifest"])
    manifest["version"] = outer["version"]
    manifest["state_bytes"] = len(outer["state"])
    manifest["digest"] = outer["digest"]
    return manifest


# ----------------------------------------------------------------------
# capture
# ----------------------------------------------------------------------

def capture(session, ctx: TransmitContext | None = None,
            info: dict | None = None) -> Checkpoint:
    """Snapshot *session* between engine events.

    The session must be parked: every thread between ops (which is
    exactly where ``Simulator.run(pause_at=...)`` leaves them).  Raises
    :class:`CheckpointError` when any live thread has no
    :class:`ProgramSpec` (it could never be rebuilt) and
    :class:`~repro.errors.ConfigError` when the machine is instrumented
    (obfuscation) — sessions gate both via ``_segmentable()`` before
    segmenting, so hitting either here indicates a caller bug.

    *info* merges extra fields (segment index, transmission tag) into
    the manifest.
    """
    sim = session.sim
    records = []
    for thread in sim.live_run_order():
        spec = thread.program_spec
        if spec is None:
            raise CheckpointError(
                f"live thread {thread.name!r} has no ProgramSpec and "
                "cannot be checkpointed"
            )
        if thread._pending_result is not None and thread.replay_log is None:
            raise CheckpointError(
                f"live thread {thread.name!r} has no replay log "
                "(simulator was not run with checkpointing enabled)"
            )
        records.append(_ThreadRecord(
            name=thread.name,
            core_id=thread.core_id,
            daemon=thread.daemon,
            process=thread.process,
            clock=thread.clock,
            cursor=thread.cursor,
            replay_log=list(thread.replay_log or ()),
            pending=thread._pending_result,
            spec=spec,
            scheduled=thread.tid in session.kernel.scheduler._thread_core,
        ))
    kernel = session.kernel
    state = {
        "config": session.config,
        "machine": session.machine.snapshot_state(),
        "rng": session.rng.snapshot(),
        "clock": sim.global_clock,
        "kernel": {
            "phys": kernel.phys,
            "ksm": kernel.ksm,
            "processes": kernel.processes,
            "next_pid": kernel._next_pid,
        },
        "session": {
            "trojan_proc": session.trojan_proc,
            "spy_proc": session.spy_proc,
            "bands": session.bands,
            "trojan_va": session.trojan_va,
            "spy_va": session.spy_va,
            "local_cores": list(session.local_cores),
            "remote_cores": list(session.remote_cores),
            "eviction_set": list(session.eviction_set),
            "transmissions": session._transmissions,
            "resyncs": session.resyncs,
            "faults_installed": session._faults_installed,
        },
        "threads": records,
        "ctx": ctx,
    }
    try:
        state_pickle = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise CheckpointError(f"session state is not picklable: {exc}")
    from repro import __version__

    cfg = session.config
    manifest = {
        "repro_version": __version__,
        "machine_fingerprint": cfg.machine.fingerprint(),
        "seed": cfg.seed,
        "scenario": cfg.scenario.name if cfg.scenario is not None else None,
        "clock": sim.global_clock,
        "threads": len(records),
        "transmissions": session._transmissions,
    }
    if ctx is not None:
        manifest["tag"] = ctx.tag
        manifest["label"] = ctx.label
        manifest["attempt"] = ctx.attempt
        manifest["payload_bits"] = len(ctx.payload)
    if info:
        manifest.update(info)
    return Checkpoint(manifest=manifest, state=state_pickle)


# ----------------------------------------------------------------------
# restore
# ----------------------------------------------------------------------

def restore(blob: bytes | Checkpoint):
    """Rebuild a live session from a checkpoint.

    Returns ``(session, ctx)`` — a :class:`~repro.channel.session.
    ChannelSession` whose simulated world is bit-identical to the
    captured one, and the :class:`TransmitContext` of the in-flight
    transmission (``None`` for a quiescent snapshot).  Continue the
    transmission with ``session.transmit(ctx.payload, _resume=ctx,
    _label=ctx.label)``.
    """
    from repro.channel.session import (
        ChannelSession,
        _acquire_machine,
        warm_workers_enabled,
    )
    from repro.kernel.syscalls import Kernel
    from repro.mem.hierarchy import Machine
    from repro.sim.engine import Simulator
    from repro.sim.rng import RngStreams

    ckpt = blob if isinstance(blob, Checkpoint) else Checkpoint.from_bytes(blob)
    try:
        state = pickle.loads(ckpt.state)
    except Exception as exc:
        raise CheckpointError(f"cannot unpickle checkpoint state: {exc}")
    config = state["config"]

    # RNG first: every stream is created (or fetched) with its captured
    # bit state, and all later consumers (machine jitter, scheduler,
    # burst, workload streams) bind to these same generator objects.
    rng = RngStreams(config.seed)
    rng.restore(state["rng"])

    if config.reuse_machine and warm_workers_enabled():
        machine = _acquire_machine(config.machine, rng)
    else:
        machine = Machine(config.machine, rng)
    machine.restore_state(state["machine"])

    sim = Simulator(machine.stats)
    sim.checkpointing = True
    sim.global_clock = state["clock"]

    kernel = Kernel(machine, sim, rng)
    k = state["kernel"]
    kernel.phys = k["phys"]
    kernel.ksm = k["ksm"]
    kernel.processes = k["processes"]
    kernel._next_pid = k["next_pid"]

    s = state["session"]
    session = ChannelSession.__new__(ChannelSession)
    session.config = config
    session.recorder = None
    session.tap = None
    session.rng = rng
    session.machine = machine
    session.sim = sim
    session.kernel = kernel
    session.trojan_proc = s["trojan_proc"]
    session.spy_proc = s["spy_proc"]
    session.bands = s["bands"]
    session.trojan_va = s["trojan_va"]
    session.spy_va = s["spy_va"]
    session.local_cores = s["local_cores"]
    session.remote_cores = s["remote_cores"]
    session.eviction_set = s["eviction_set"]
    session.noise_threads = []
    session._transmissions = s["transmissions"]
    session.resyncs = s["resyncs"]
    session.fault_threads = []
    session._faults_installed = s["faults_installed"]
    session.segments = None

    resolve = lambda ref: rng.get(ref.stream)  # noqa: E731
    for rec in state["threads"]:
        _respawn(session, rec, resolve)
    return session, state["ctx"]


def _respawn(session, rec: _ThreadRecord, resolve) -> None:
    """Spawn one recorded thread and re-drive it to its parked yield."""
    started = rec.pending is not None
    program = rec.spec.build(resolve, cursor=rec.cursor if started else None)
    if rec.scheduled:
        thread = session.kernel.spawn(
            rec.process, rec.name, program, rec.core_id,
            daemon=rec.daemon, start_time=rec.clock, spec=rec.spec,
        )
    else:
        thread = session.sim.spawn(
            name=rec.name, program=program, core_id=rec.core_id,
            executor=session.kernel._execute, start_time=rec.clock,
            daemon=rec.daemon, process=rec.process, spec=rec.spec,
        )
    if not started:
        # Never stepped: the engine will next(thread) normally.
        return
    # Re-drive: run to the first yield after the mark, then feed the
    # recorded results.  Mirrors the engine's protocol exactly —
    # including appending each result to the live replay log *before*
    # the send — so a later checkpoint of this thread is again valid.
    gen = thread._generator
    try:
        gen.send(None)  # first post-mark op; the result is in the log
        log = thread.replay_log
        for result in rec.replay_log:
            log.append(result)
            gen.send(result)
    except StopIteration:
        raise CheckpointError(
            f"thread {rec.name!r} finished during re-drive "
            "(program/cursor mismatch)"
        )
    except Exception as exc:
        raise CheckpointError(
            f"thread {rec.name!r} failed during re-drive: {exc!r}"
        ) from exc
    thread._pending_result = rec.pending
    thread.cursor = rec.cursor

"""Segment-granular caching of long transmissions.

A segmented session pauses its engine every ``REPRO_SEGMENT_CYCLES``
simulated cycles and stores a :mod:`repro.checkpoint.core` snapshot in
the shared :class:`~repro.runner.cache.ResultCache` under a synthetic
cache point keyed by the *point identity* — a content hash of the
``execute_point`` keyword arguments, salted like every other cache
entry.  A later run of the same point (a crash-retried pool worker, a
re-invoked CLI) finds the newest segment through the identity's index
entry and resumes from it instead of replaying from cycle zero; the
resumed run is bit-identical to an uninterrupted one.

The same primitive warm-starts a grid from a common prefix: a point may
:meth:`~SegmentStore.adopt_prefix` another identity's *warmup*
checkpoint when everything up to the end of the warmup transmission
(seed, scenario, machine, noise, warmup payload) matches, and pay only
for its own main transmission.

Environment knobs:

* ``REPRO_SEGMENT_CYCLES`` — segment length in simulated cycles; unset
  or ``0`` disables segmentation entirely (today's behavior).
* ``REPRO_SEGMENTS=0`` — kill switch: segmentation stays off even when
  a segment length is configured.
* ``REPRO_KILL_AT_SEGMENT=N`` — crash-injection hook: the process
  SIGKILLs itself after storing its N-th segment (CI crash-resume).
* ``REPRO_CHECKPOINT_EXPORT=path`` — additionally write the newest
  checkpoint blob to *path* (CI artifact; ``repro checkpoint inspect``
  reads it).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import math
import os
import signal
from collections.abc import Mapping
from pathlib import Path
from typing import Any

from repro.errors import CheckpointError

#: The synthetic point ``fn`` segment entries are stored under.  It
#: resolves (to :func:`segment` below) so cache tooling that walks
#: entries never hits a dangling path, but it is a cache artifact, not
#: an executable grid point.
SEGMENT_FN = "repro.checkpoint.segments:segment"


def segment(**params) -> None:
    """Placeholder target of :data:`SEGMENT_FN`; never executed."""
    raise CheckpointError(
        "segment cache entries are checkpoint artifacts, not executable "
        f"grid points (params: {sorted(params)})"
    )


def segment_cycles() -> float:
    """The configured segment length in cycles (0.0 = disabled)."""
    raw = os.environ.get("REPRO_SEGMENT_CYCLES", "")
    try:
        value = float(raw) if raw else 0.0
    except ValueError:
        return 0.0
    return value if value > 0 else 0.0


def segments_enabled() -> bool:
    """Whether segmented execution is active for new sessions.

    Requires a positive ``REPRO_SEGMENT_CYCLES`` and survives the
    ``REPRO_SEGMENTS=0`` kill switch, which restores the unsegmented
    behavior exactly regardless of other settings.
    """
    if os.environ.get("REPRO_SEGMENTS", "1") == "0":
        return False
    return segment_cycles() > 0


# ----------------------------------------------------------------------
# point identity
# ----------------------------------------------------------------------

def _plain(value: Any) -> Any:
    """Canonicalize *value* into JSON-safe plain data for hashing.

    Dataclasses (ProtocolParams, MachineConfig, ScenarioSpec, fault
    plans) flatten to tagged dicts, enums to their values; anything
    exotic falls back to ``repr`` — the identity only has to be *stable*
    across processes, not invertible.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, enum.Enum):
        return {"__enum__": type(value).__name__, "value": _plain(value.value)}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        out: dict = {"__dataclass__": type(value).__name__}
        for f in dataclasses.fields(value):
            out[f.name] = _plain(getattr(value, f.name))
        return out
    return repr(value)


def point_identity(params: Mapping[str, Any]) -> str:
    """Content hash identifying one ``execute_point`` invocation.

    Two calls with equal (canonicalized) keyword arguments under the
    same package version share an identity — and therefore share
    segment checkpoints.  The version salt rides inside the hash so a
    version bump orphans old segments even before the cache GC runs.
    """
    from repro.runner.cache import version_salt
    from repro.runner.spec import canonical_json

    payload = canonical_json({
        "fn": "repro.channel.session:execute_point",
        "salt": version_salt(),
        "params": _plain(dict(params)),
    })
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# crash-injection hook
# ----------------------------------------------------------------------

#: Segments stored by this process, ever (compared against the
#: ``REPRO_KILL_AT_SEGMENT`` environment arming).
_total_stored = 0
#: Programmatic arming (:func:`arm_kill_after`): kill threshold and the
#: count of segments stored since arming.
_kill_after: int | None = None
_stored_since_arm = 0


def arm_kill_after(n: int) -> None:
    """Arm the crash hook: SIGKILL this process after *n* more segments.

    Used by the harness fault plane (``worker_kill`` with a positive
    magnitude) to kill a pool worker *mid-run*, after it has durably
    stored some segments — the scenario the crash-resume CI job proves
    recoverable.
    """
    global _kill_after, _stored_since_arm
    _kill_after = max(1, int(n))
    _stored_since_arm = 0


def _count_store_and_maybe_kill() -> None:
    global _total_stored, _stored_since_arm
    _total_stored += 1
    _stored_since_arm += 1
    threshold = None
    count = 0
    if _kill_after is not None:
        threshold, count = _kill_after, _stored_since_arm
    else:
        raw = os.environ.get("REPRO_KILL_AT_SEGMENT", "")
        if raw:
            try:
                threshold, count = int(raw), _total_stored
            except ValueError:
                threshold = None
    if threshold is not None and count >= threshold:
        # A hard, unannounced death — the exact failure mode (OOM kill,
        # preempted spot instance) segmented runs exist to survive.
        os.kill(os.getpid(), signal.SIGKILL)


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------

class SegmentStore:
    """Checkpoint segments of one point identity in a result cache.

    Parameters
    ----------
    identity:
        The :func:`point_identity` hash the segments belong to.
    cache:
        The :class:`~repro.runner.cache.ResultCache` to store into; the
        default shares the normal results cache (and its salt), so the
        ``repro cache`` tooling sees segments as first-class entries.
    cycles:
        Segment length; defaults to :func:`segment_cycles`.
    """

    def __init__(self, identity: str, cache=None, cycles: float | None = None):
        if cache is None:
            from repro.runner.cache import ResultCache

            cache = ResultCache()
        self.identity = identity
        self.cache = cache
        self.cycles = float(cycles) if cycles else segment_cycles()
        if self.cycles <= 0:
            raise CheckpointError("SegmentStore needs a positive segment length")
        #: Segments this store wrote (manifest bookkeeping).
        self.segments_stored = 0
        #: Segment index this run resumed from, or None for a cold run.
        self.resumed_from: int | None = None

    @classmethod
    def for_point(cls, params: Mapping[str, Any]) -> "SegmentStore | None":
        """A store for one ``execute_point`` call, or None when disabled."""
        if not segments_enabled():
            return None
        return cls(point_identity(params))

    # -- cache addressing ----------------------------------------------

    def _segment_point(self, tag: int, segment_index: int):
        from repro.runner.spec import Point

        return Point(fn=SEGMENT_FN, params={
            "identity": self.identity,
            "tag": int(tag),
            "segment": int(segment_index),
        })

    def _index_point(self):
        from repro.runner.spec import Point

        return Point(fn=SEGMENT_FN, params={
            "identity": self.identity,
            "kind": "index",
        })

    # -- segmentation --------------------------------------------------

    def next_boundary(self, clock: float) -> float:
        """The first segment boundary strictly after *clock*."""
        return (math.floor(clock / self.cycles) + 1) * self.cycles

    def record_segment(self, session, ctx) -> int:
        """Capture *session* and store it as the newest segment.

        Returns the segment index (the boundary number the clock has
        reached).  Also refreshes the identity's index entry, honors the
        export hook, and fires the crash-injection hook last — so a
        killed process has always durably stored the segment it died on.
        """
        from repro.checkpoint.core import capture

        seg = int(session.sim.global_clock // self.cycles)
        ckpt = capture(session, ctx, info={
            "identity": self.identity,
            "segment": seg,
            "segment_cycles": self.cycles,
        })
        blob = ckpt.to_bytes()
        self.cache.store(self._segment_point(ctx.tag, seg), blob)
        self.cache.store(self._index_point(), {
            "tag": ctx.tag,
            "segment": seg,
            "label": ctx.label,
            "clock": session.sim.global_clock,
        })
        self.segments_stored += 1
        export = os.environ.get("REPRO_CHECKPOINT_EXPORT")
        if export:
            try:
                Path(export).write_bytes(blob)
            except OSError:
                pass
        _count_store_and_maybe_kill()
        return seg

    def latest(self) -> bytes | None:
        """The newest stored checkpoint blob for this identity, if any."""
        hit, index = self.cache.lookup(self._index_point())
        if not hit or not isinstance(index, dict):
            return None
        hit, blob = self.cache.lookup(
            self._segment_point(index.get("tag", 0), index.get("segment", 0))
        )
        if not hit or not isinstance(blob, (bytes, bytearray)):
            return None
        self.resumed_from = int(index.get("segment", 0))
        return bytes(blob)

    def adopt_prefix(self, donor_identity: str) -> bool:
        """Warm-start: copy another identity's warmup checkpoint here.

        Only a *warmup*-labelled checkpoint is adoptable — the shared
        prefix ends where the warmup transmission does, and the adopting
        point's own main transmission runs from there.  The caller is
        responsible for the donor actually being a prefix-equivalent
        point (same seed, scenario, machine, noise and warmup payload);
        adopted state is bit-exact, so a mismatched donor produces a
        *different* result, not a subtly wrong one.  Returns whether a
        checkpoint was adopted.
        """
        donor = SegmentStore(
            donor_identity, cache=self.cache, cycles=self.cycles
        )
        hit, index = self.cache.lookup(donor._index_point())
        if not hit or not isinstance(index, dict):
            return False
        if index.get("label") != "warmup":
            return False
        hit, blob = self.cache.lookup(
            donor._segment_point(index.get("tag", 0), index.get("segment", 0))
        )
        if not hit:
            return False
        self.cache.store(
            self._segment_point(index.get("tag", 0), index.get("segment", 0)),
            blob,
        )
        self.cache.store(self._index_point(), dict(index))
        return True

"""Defenses against coherence-state covert channels (Section VIII-E)."""

from repro.mitigation.hardware import attach_obfuscator, hardened_machine_config
from repro.mitigation.ksm_policy import (
    KsmTimeoutPolicy,
    deploy_ksm_timeout,
    ksm_timeout_program,
)
from repro.mitigation.noise_injector import (
    deploy_noise_injector,
    noise_injector_program,
)

__all__ = [
    "KsmTimeoutPolicy",
    "attach_obfuscator",
    "deploy_ksm_timeout",
    "deploy_noise_injector",
    "hardened_machine_config",
    "ksm_timeout_program",
    "noise_injector_program",
]

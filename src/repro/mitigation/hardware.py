"""Mitigations 3 and 4 (Section VIII-E): hardware-level changes.

* **LLC direct E-response**: the LLC is notified of E->M transitions, so
  it can answer reads to E-state lines itself; E- and S-band latencies
  become identical and the channel's signal disappears.  This is a
  :class:`~repro.mem.hierarchy.MachineConfig` flag; the helpers here
  express the experiment.
* **Timing obfuscation**: for suspicious cores, coherence-band load
  latencies are replaced with draws indistinguishable across
  local/remote and E/S, implemented by
  :class:`~repro.mem.latency.ObfuscationPolicy`.
"""

from __future__ import annotations

from repro.mem.hierarchy import Machine, MachineConfig
from repro.mem.latency import ObfuscationPolicy


def hardened_machine_config(
    base: MachineConfig | None = None,
) -> MachineConfig:
    """A machine config with the LLC-direct-E-response fix enabled."""
    base = base if base is not None else MachineConfig()
    return base.with_updates(llc_direct_e_response=True)


def attach_obfuscator(
    machine: Machine,
    suspicious_cores: set[int],
    lo: float | None = None,
    hi: float | None = None,
) -> ObfuscationPolicy:
    """Enable timing obfuscation for *suspicious_cores* on *machine*.

    The default obfuscation range spans the full coherence-band spread
    of the machine's latency profile, so a timed load tells the observer
    nothing about location or state.
    """
    profile = machine.config.latency
    policy = ObfuscationPolicy(
        suspicious_cores=set(suspicious_cores),
        lo=lo if lo is not None else profile.local_shared - 10.0,
        hi=hi if hi is not None else profile.remote_excl + 20.0,
    )
    machine.obfuscation = policy
    return policy

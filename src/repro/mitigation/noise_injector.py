"""Mitigation 1 (Section VIII-E): targeted noise on shared pages.

A defender-controlled monitor thread watches shared memory pages and
issues additional loads to them.  Every injected load adds the monitor
as a sharer, converting E-state blocks to S and destroying the state
distinction the trojan is modulating — the spy's timing values collapse
into a single band.
"""

from __future__ import annotations

from collections.abc import Callable, Generator

from repro.kernel.syscalls import Kernel
from repro.mem.cacheline import LINE_SIZE
from repro.sim.thread import Cpu, SimThread


def noise_injector_program(
    paddr: int,
    n_lines: int = 1,
    period: float = 400.0,
) -> Callable[[Cpu], Generator]:
    """A monitor that re-loads the watched physical lines every *period*.

    Runs in kernel context (physical addressing) so it can target any
    shared page regardless of which processes map it.
    """

    def program(cpu: Cpu) -> Generator:
        while True:
            for i in range(n_lines):
                yield from cpu.load(paddr + i * LINE_SIZE)
            yield from cpu.delay(period)

    return program


def deploy_noise_injector(
    kernel: Kernel,
    paddr: int,
    core_id: int,
    n_lines: int = 1,
    period: float = 400.0,
) -> SimThread:
    """Start the monitor thread watching the page at *paddr*.

    Returns the daemon thread.  ``period`` should be shorter than the
    suspected channel's sampling slot for full disruption; even a lazy
    monitor (a few injected loads per slot) degrades the channel badly
    because a single extra sharer flips E to S.
    """
    return kernel.spawn_kernel_thread(
        f"noise-injector@{paddr:#x}",
        noise_injector_program(paddr, n_lines=n_lines, period=period),
        core_id=core_id,
        daemon=True,
    )

"""Mitigation 2 (Section VIII-E): KSM timeout on suspicious pages.

The OS watches flush activity (clflush generates visible coherence
traffic); when the flush rate spikes above a threshold, merged pages are
forcibly un-merged, tearing the shared physical page out from under the
trojan/spy pair mid-transmission.
"""

from __future__ import annotations

from collections.abc import Callable, Generator
from dataclasses import dataclass

from repro.kernel.ksm import KsmDaemon
from repro.kernel.syscalls import Kernel
from repro.sim.thread import Cpu, SimThread


@dataclass
class KsmTimeoutPolicy:
    """Un-merge shared pages when flush activity looks like an attack.

    Attributes
    ----------
    check_interval:
        Cycles between policy evaluations.
    flush_rate_threshold:
        Flushes per million cycles above which sharing is deemed
        suspicious.  Benign workloads flush rarely; a covert channel
        flushes once per sampling slot (hundreds of thousands per
        second).
    """

    check_interval: float = 200_000.0
    flush_rate_threshold: float = 50.0
    triggered: bool = False
    unmerged_pages: int = 0

    def evaluate(self, kernel: Kernel, flushes_delta: int) -> int:
        """Apply the policy once; returns pages un-merged this round."""
        rate_per_mcycle = flushes_delta / self.check_interval * 1e6
        if rate_per_mcycle < self.flush_rate_threshold:
            return 0
        self.triggered = True
        broken = 0
        ksm: KsmDaemon = kernel.ksm
        for record in list(ksm.shared_frames()):
            for pid, vpn in list(record.mappers):
                process = next(
                    (p for p in kernel.processes if p.pid == pid), None
                )
                if process is None:
                    continue
                pte = process.page_table.get(vpn)
                if pte is None or not pte.merged:
                    continue
                old_pfn = pte.pfn
                ksm.unmerge(process, vpn)
                kernel._purge_frame_from_caches(old_pfn)
                broken += 1
        self.unmerged_pages += broken
        return broken


def ksm_timeout_program(
    kernel: Kernel, policy: KsmTimeoutPolicy
) -> Callable[[Cpu], Generator]:
    """Kernel-thread body evaluating the policy periodically."""

    def program(cpu: Cpu) -> Generator:
        last_flushes = kernel.stats.counter("machine.flush")
        while True:
            yield from cpu.delay(policy.check_interval)
            flushes = kernel.stats.counter("machine.flush")
            policy.evaluate(kernel, flushes - last_flushes)
            last_flushes = flushes

    return program


def deploy_ksm_timeout(
    kernel: Kernel, policy: KsmTimeoutPolicy | None = None
) -> tuple[SimThread, KsmTimeoutPolicy]:
    """Start the watchdog; returns (thread, policy) for inspection."""
    policy = policy if policy is not None else KsmTimeoutPolicy()
    thread = kernel.spawn_kernel_thread(
        "ksm-timeout", ksm_timeout_program(kernel, policy), daemon=True
    )
    return thread, policy

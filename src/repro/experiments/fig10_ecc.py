"""Figure 10: effective rate with parity + NACK retransmission.

For each scenario, transfers a payload through the
:class:`~repro.channel.ecc.ReliableChannel` (64-byte packets, 16 parity
bits, NACK role-reversal) under no noise, medium noise (4 kernel-build
threads) and high noise (8 threads).  The shape to reproduce: the scheme
costs little at low noise and bounded throughput loss at high noise
(paper: <10% reduction typical, 24% worst case) in exchange for 100%
delivery.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.analysis.reporting import ascii_table
from repro.channel.config import TABLE_I, ProtocolParams
from repro.channel.ecc import ReliableChannel
from repro.experiments.common import (
    FIG10_NOISE,
    scenario_argument,
    selected_scenarios,
)

#: Transmission rate the reliable transfer runs at.
FIG10_RATE_KBPS = 350

#: Packet size used by the driver.  The paper uses 64-byte packets; our
#: simulated noise produces a raw bit-error rate orders of magnitude
#: above what the paper's Figure 10 implies (see EXPERIMENTS.md), so the
#: driver defaults to short packets to keep per-packet failure in the
#: retransmission protocol's operating regime.
FIG10_PACKET_BYTES = 4


def run(
    seed: int = 0,
    payload_bytes: int = 32,
    packet_bytes: int = FIG10_PACKET_BYTES,
    scenarios=None,
    noise=FIG10_NOISE,
    rate_kbps: float = FIG10_RATE_KBPS,
) -> dict:
    """Effective information rate per (scenario, noise level)."""
    scenarios = scenarios if scenarios is not None else list(TABLE_I)
    rng = np.random.default_rng(seed)
    payload = bytes(rng.integers(0, 256, payload_bytes, dtype=np.uint8))
    params = ProtocolParams().at_rate(rate_kbps)
    table: dict[str, dict[str, dict]] = {}
    for scenario in scenarios:
        per_noise = {}
        for label, threads in noise.items():
            channel = ReliableChannel(
                scenario,
                params=params,
                seed=seed,
                noise_threads=threads,
                packet_bytes=packet_bytes,
                max_attempts=80,
                checksum="crc16",
            )
            result = channel.send(payload)
            per_noise[label] = {
                "effective_kbps": result.effective_rate_kbps,
                "transmissions": result.transmissions,
                "nacks": result.nacks,
                "intact": result.intact,
            }
        table[scenario.name] = per_noise
    return {"table": table, "payload_bytes": payload_bytes}


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--payload-bytes", type=int, default=32)
    parser.add_argument("--packet-bytes", type=int, default=FIG10_PACKET_BYTES)
    parser.add_argument("--rate", type=float, default=FIG10_RATE_KBPS)
    scenario_argument(parser)
    args = parser.parse_args(argv)

    outcome = run(
        seed=args.seed,
        payload_bytes=args.payload_bytes,
        packet_bytes=args.packet_bytes,
        scenarios=selected_scenarios(args.scenario),
        rate_kbps=args.rate,
    )
    rows = []
    for name, per_noise in outcome["table"].items():
        base = per_noise["no-noise"]["effective_kbps"]
        row = [name]
        for label in FIG10_NOISE:
            cell = per_noise[label]
            drop = (1 - cell["effective_kbps"] / base) * 100 if base else 0.0
            row.append(
                f"{cell['effective_kbps']:.0f}K"
                + (f" (-{drop:.0f}%)" if label != "no-noise" else "")
                + ("" if cell["intact"] else " [CORRUPT]")
            )
        rows.append(row)
    print(ascii_table(
        ["scenario", *FIG10_NOISE],
        rows,
        title=(
            "Figure 10: effective information rate with parity+NACK "
            "(all transfers delivered intact)"
        ),
    ))


if __name__ == "__main__":
    main()

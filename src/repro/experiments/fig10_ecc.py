"""Figure 10: effective rate with parity + NACK retransmission.

For each scenario, transfers a payload through the
:class:`~repro.channel.ecc.ReliableChannel` (64-byte packets, 16 parity
bits, NACK role-reversal) under no noise, medium noise (4 kernel-build
threads) and high noise (8 threads).  The shape to reproduce: the scheme
costs little at low noise and bounded throughput loss at high noise
(paper: <10% reduction typical, 24% worst case) in exchange for 100%
delivery.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.analysis.reporting import ascii_table
from repro.channel.config import TABLE_I, ProtocolParams, scenario_by_name
from repro.channel.ecc import ReliableChannel
from repro.experiments.common import (
    FIG10_NOISE,
    execute_from_args,
    runner_arguments,
    scenario_argument,
    selected_scenarios,
    warn_legacy_run,
)
from repro.runner import ExperimentSpec, Point, execute

NAME = "fig10"
SUMMARY = "Figure 10 parity+NACK effective rates"
POINT_FN = "repro.experiments.fig10_ecc:point"

#: Transmission rate the reliable transfer runs at.
FIG10_RATE_KBPS = 350

#: Packet size used by the driver.  The paper uses 64-byte packets; our
#: simulated noise produces a raw bit-error rate orders of magnitude
#: above what the paper's Figure 10 implies (see EXPERIMENTS.md), so the
#: driver defaults to short packets to keep per-packet failure in the
#: retransmission protocol's operating regime.
FIG10_PACKET_BYTES = 4


def point(*, scenario: str, noise_threads: int, seed: int,
          payload_bytes: int, packet_bytes: int, rate: float) -> dict:
    """One reliable transfer at one (scenario, noise) operating point."""
    rng = np.random.default_rng(seed)
    payload = bytes(rng.integers(0, 256, payload_bytes, dtype=np.uint8))
    channel = ReliableChannel(
        scenario_by_name(scenario),
        params=ProtocolParams().at_rate(rate),
        seed=seed,
        noise_threads=noise_threads,
        packet_bytes=packet_bytes,
        max_attempts=80,
        checksum="crc16",
    )
    result = channel.send(payload)
    return {
        "effective_kbps": result.effective_rate_kbps,
        "transmissions": result.transmissions,
        "nacks": result.nacks,
        "intact": result.intact,
    }


def build_spec(
    seed: int = 0,
    payload_bytes: int = 32,
    packet_bytes: int = FIG10_PACKET_BYTES,
    scenarios=None,
    noise=FIG10_NOISE,
    rate_kbps: float = FIG10_RATE_KBPS,
) -> ExperimentSpec:
    """The scenario × noise-label grid of Figure 10."""
    names = [
        s if isinstance(s, str) else s.name
        for s in (scenarios if scenarios is not None else TABLE_I)
    ]
    noise = dict(noise)
    points = tuple(
        Point(
            fn=POINT_FN,
            params={
                "scenario": name,
                "noise_threads": int(threads),
                "seed": seed,
                "payload_bytes": payload_bytes,
                "packet_bytes": packet_bytes,
                "rate": float(rate_kbps),
            },
            label=f"{name} {label}",
        )
        for name in names
        for label, threads in noise.items()
    )
    return ExperimentSpec(
        experiment=NAME,
        points=points,
        meta={
            "scenarios": names,
            "noise_labels": list(noise),
            "payload_bytes": payload_bytes,
        },
    )


def collect(spec: ExperimentSpec, values: list) -> dict:
    labels = spec.meta["noise_labels"]
    it = iter(values)
    table = {
        name: {label: next(it) for label in labels}
        for name in spec.meta["scenarios"]
    }
    return {"table": table, "payload_bytes": spec.meta["payload_bytes"]}


def run(spec: ExperimentSpec | None = None, **legacy) -> dict:
    """Effective information rate per (scenario, noise level).

    Pass an :class:`ExperimentSpec` from :func:`build_spec`; the old
    ``run(seed=..., payload_bytes=..., packet_bytes=..., scenarios=...,
    noise=..., rate_kbps=...)`` keyword form warns but still works.
    """
    if not isinstance(spec, ExperimentSpec):
        if spec is not None:
            legacy.setdefault("seed", spec)
        warn_legacy_run(__name__)
        spec = build_spec(**legacy)
    return collect(spec, execute(spec))


def render(result: dict) -> str:
    labels = list(next(iter(result["table"].values()), {}))
    rows = []
    for name, per_noise in result["table"].items():
        base = per_noise[labels[0]]["effective_kbps"] if labels else 0.0
        row = [name]
        for index, label in enumerate(labels):
            cell = per_noise[label]
            drop = (1 - cell["effective_kbps"] / base) * 100 if base else 0.0
            row.append(
                f"{cell['effective_kbps']:.0f}K"
                + (f" (-{drop:.0f}%)" if index else "")
                + ("" if cell["intact"] else " [CORRUPT]")
            )
        rows.append(row)
    return ascii_table(
        ["scenario", *labels],
        rows,
        title=(
            "Figure 10: effective information rate with parity+NACK "
            "(all transfers delivered intact)"
        ),
    )


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--payload-bytes", type=int, default=32)
    parser.add_argument("--packet-bytes", type=int, default=FIG10_PACKET_BYTES)
    parser.add_argument("--rate", type=float, default=FIG10_RATE_KBPS)
    scenario_argument(parser)


def spec_from_args(args: argparse.Namespace) -> ExperimentSpec:
    return build_spec(
        seed=args.seed,
        payload_bytes=args.payload_bytes,
        packet_bytes=args.packet_bytes,
        scenarios=selected_scenarios(args.scenario),
        rate_kbps=args.rate,
    )


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    add_arguments(parser)
    runner_arguments(parser)
    args = parser.parse_args(argv)

    spec = spec_from_args(args)
    values = execute_from_args(spec, args)
    print(render(collect(spec, values)))


if __name__ == "__main__":
    main()

"""Figure 11 / Section VIII-D: 2-bit symbols over four latency bands.

The trojan encodes two bits per symbol using all four (location, state)
combinations; the spy distinguishes four latency bands per timed load.
The paper's headline: ~1.1 Mbps peak versus ~700 Kbps for the best
binary configuration.  The driver transmits a pattern whose first nine
symbols exercise all four symbol values (as the paper's magnified view
does) and sweeps the symbol rate to find the peak accurate rate.
"""

from __future__ import annotations

import argparse

from repro.analysis.reporting import ascii_table, bitstring
from repro.channel.symbols import MultiBitSession, SymbolParams
from repro.experiments.common import payload_bits

#: The 18-bit prefix of Figure 11's magnified view: all four symbols.
FIG11_PREFIX = [1, 0, 0, 1, 0, 1, 0, 0, 0, 1, 1, 0, 0, 1, 1, 0, 1, 1]


def run(
    seed: int = 0,
    bits: int = 120,
    rates=(700, 900, 1100, 1300),
) -> dict:
    """Accuracy/rate of the multi-bit channel across symbol rates."""
    payload = FIG11_PREFIX + payload_bits(bits - len(FIG11_PREFIX))
    if len(payload) % 2:
        payload.append(0)
    points = []
    trace = None
    for rate in rates:
        session = MultiBitSession(
            symbol_params=SymbolParams().at_rate(rate), seed=seed
        )
        result = session.transmit(payload)
        points.append({
            "rate_kbps": float(rate),
            "achieved_kbps": result.achieved_rate_kbps,
            "accuracy": result.accuracy,
        })
        if trace is None:
            trace = result
    return {"points": points, "payload": payload, "trace": trace}


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--bits", type=int, default=120)
    args = parser.parse_args(argv)

    outcome = run(seed=args.seed, bits=args.bits)
    rows = [
        (f"{p['rate_kbps']:.0f}", f"{p['achieved_kbps']:.0f}",
         f"{p['accuracy'] * 100:.1f}%")
        for p in outcome["points"]
    ]
    print(ascii_table(
        ("nominal rate (Kbps)", "achieved (Kbps)", "bit accuracy"),
        rows,
        title=(
            "Figure 11 / Sec VIII-D: 2-bit symbol channel "
            "(paper peak ~1100 Kbps vs ~700 Kbps binary)"
        ),
    ))
    trace = outcome["trace"]
    print()
    print("Magnified view: first 9 symbols (18 bits "
          + bitstring(outcome["payload"][:18], group=2) + ")")
    for sample in trace.samples[:30]:
        print(
            f"  t={sample.timestamp:12.0f}  latency={sample.latency:7.1f}"
            f"  symbol={sample.label}"
        )


if __name__ == "__main__":
    main()

"""Figure 11 / Section VIII-D: 2-bit symbols over four latency bands.

The trojan encodes two bits per symbol using all four (location, state)
combinations; the spy distinguishes four latency bands per timed load.
The paper's headline: ~1.1 Mbps peak versus ~700 Kbps for the best
binary configuration.  The driver transmits a pattern whose first nine
symbols exercise all four symbol values (as the paper's magnified view
does) and sweeps the symbol rate to find the peak accurate rate.
"""

from __future__ import annotations

import argparse

from repro.analysis.reporting import ascii_table, bitstring
from repro.channel.symbols import MultiBitSession, SymbolParams
from repro.experiments.common import (
    execute_from_args,
    payload_bits,
    runner_arguments,
    warn_legacy_run,
)
from repro.runner import ExperimentSpec, Point, execute

NAME = "fig11"
SUMMARY = "Figure 11 2-bit symbol channel"
POINT_FN = "repro.experiments.fig11_multibit:point"

#: The 18-bit prefix of Figure 11's magnified view: all four symbols.
FIG11_PREFIX = [1, 0, 0, 1, 0, 1, 0, 0, 0, 1, 1, 0, 0, 1, 1, 0, 1, 1]

#: Symbol rates swept by default (Kbits/s).
FIG11_RATES = (700, 900, 1100, 1300)


def _payload(bits: int) -> list[int]:
    payload = FIG11_PREFIX + payload_bits(bits - len(FIG11_PREFIX))
    if len(payload) % 2:
        payload.append(0)
    return payload


def point(*, rate: float, seed: int, bits: int) -> dict:
    """One symbol-rate point; keeps the full trace for the first rate."""
    session = MultiBitSession(
        symbol_params=SymbolParams().at_rate(rate), seed=seed
    )
    result = session.transmit(_payload(bits))
    return {
        "rate_kbps": float(rate),
        "achieved_kbps": result.achieved_rate_kbps,
        "accuracy": result.accuracy,
        "result": result,
    }


def build_spec(
    seed: int = 0, bits: int = 120, rates=FIG11_RATES
) -> ExperimentSpec:
    """One point per swept symbol rate."""
    points = tuple(
        Point(
            fn=POINT_FN,
            params={"rate": float(rate), "seed": seed, "bits": bits},
            label=f"{rate:g}K",
        )
        for rate in rates
    )
    return ExperimentSpec(
        experiment=NAME, points=points, meta={"bits": bits},
    )


def collect(spec: ExperimentSpec, values: list) -> dict:
    points = [
        {k: v for k, v in value.items() if k != "result"} for value in values
    ]
    trace = values[0]["result"] if values else None
    return {
        "points": points,
        "payload": _payload(spec.meta["bits"]),
        "trace": trace,
    }


def run(spec: ExperimentSpec | None = None, **legacy) -> dict:
    """Accuracy/rate of the multi-bit channel across symbol rates.

    Pass an :class:`ExperimentSpec` from :func:`build_spec`; the old
    ``run(seed=..., bits=..., rates=...)`` keyword form warns but still
    works.
    """
    if not isinstance(spec, ExperimentSpec):
        if spec is not None:
            legacy.setdefault("seed", spec)
        warn_legacy_run(__name__)
        spec = build_spec(**legacy)
    return collect(spec, execute(spec))


def render(result: dict) -> str:
    rows = [
        (f"{p['rate_kbps']:.0f}", f"{p['achieved_kbps']:.0f}",
         f"{p['accuracy'] * 100:.1f}%")
        for p in result["points"]
    ]
    parts = [ascii_table(
        ("nominal rate (Kbps)", "achieved (Kbps)", "bit accuracy"),
        rows,
        title=(
            "Figure 11 / Sec VIII-D: 2-bit symbol channel "
            "(paper peak ~1100 Kbps vs ~700 Kbps binary)"
        ),
    )]
    trace = result["trace"]
    parts.append("")
    parts.append("Magnified view: first 9 symbols (18 bits "
                 + bitstring(result["payload"][:18], group=2) + ")")
    for sample in trace.samples[:30]:
        parts.append(
            f"  t={sample.timestamp:12.0f}  latency={sample.latency:7.1f}"
            f"  symbol={sample.label}"
        )
    return "\n".join(parts)


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--bits", type=int, default=120)


def spec_from_args(args: argparse.Namespace) -> ExperimentSpec:
    return build_spec(seed=args.seed, bits=args.bits)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    add_arguments(parser)
    runner_arguments(parser)
    args = parser.parse_args(argv)

    spec = spec_from_args(args)
    values = execute_from_args(spec, args)
    print(render(collect(spec, values)))


if __name__ == "__main__":
    main()

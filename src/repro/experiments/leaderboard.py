"""Scenario-matrix leaderboard: every (protocol x channel) cell scored.

Runs one transmission workload per registered cell of the scenario
matrix (:func:`repro.channel.scenarios.matrix_cell`) — the snoop
protocols MESI/MESIF/MOESI plus the home-node directory topology row,
against the E-S, O-state and LRU channel families — and reports, per
cell:

* raw decode **accuracy** and the achieved **rate**;
* **capacity**, the binary-symmetric-channel bound
  ``(1 - H2(ber)) * rate``;
* **noise robustness**, accuracy with co-located kernel-build threads.

Cells are expected to differ in kind, and the differences are the
result: MESI/MESIF x O-state is *deterministically dead* (no O state,
so calibration refuses the overlapping bands — reported as ``dead``),
and directory x LRU is undefined (the home directory has no
set-associative replacement state to probe — reported as ``n/a``).
"""

from __future__ import annotations

import argparse
import math

from repro.analysis.reporting import ascii_table
from repro.channel.scenarios import MATRIX_COLS, MATRIX_ROWS, matrix_cell
from repro.channel.session import execute_point
from repro.errors import CalibrationError, ChannelError, SyncTimeoutError
from repro.experiments.common import (
    execute_from_args,
    payload_bits,
    runner_arguments,
)
from repro.runner import ExperimentSpec, Point, execute

NAME = "leaderboard"
SUMMARY = "scenario-matrix leaderboard (protocol x channel x topology)"
POINT_FN = "repro.experiments.leaderboard:point"

#: Noise level (co-located kernel-build threads) of the robustness leg.
NOISE_THREADS = 4

#: Warm-up prefix before the noisy measurement (steady-state regime).
NOISE_WARMUP_BITS = 16


def _h2(p: float) -> float:
    """Binary entropy, safe at the endpoints."""
    if p <= 0.0 or p >= 1.0:
        return 0.0
    return -p * math.log2(p) - (1.0 - p) * math.log2(1.0 - p)


def capacity_kbps(accuracy: float, rate_kbps: float) -> float:
    """BSC capacity bound at the measured raw bit-error rate."""
    ber = min(max(1.0 - accuracy, 0.0), 0.5)
    return (1.0 - _h2(ber)) * rate_kbps


def point(*, cell: str, seed: int, bits: int, noise: bool = True) -> dict:
    """Score one matrix cell; never raises for expected dead cells."""
    payload = payload_bits(bits)
    try:
        clean = execute_point(spec=cell, payload=payload, seed=seed)
    except CalibrationError as exc:
        # The cell's two symbols occupy overlapping latency bands under
        # this protocol: the channel cannot exist.  This is a result
        # (e.g. the O channel needs MOESI), not a failure.
        return {"cell": cell, "status": "dead", "detail": str(exc)}
    except SyncTimeoutError as exc:
        return {"cell": cell, "status": "no-sync", "detail": str(exc)}
    except ChannelError as exc:
        return {"cell": cell, "status": "error", "detail": str(exc)}
    row = {
        "cell": cell,
        "status": "ok",
        "accuracy": clean.accuracy,
        "rate_kbps": clean.achieved_rate_kbps,
        "capacity_kbps": capacity_kbps(
            clean.accuracy, clean.achieved_rate_kbps
        ),
    }
    if noise:
        try:
            noisy = execute_point(
                spec=cell, payload=payload, seed=seed,
                noise_threads=NOISE_THREADS,
                warmup_bits=min(NOISE_WARMUP_BITS, bits),
            )
            row["noise_accuracy"] = noisy.accuracy
        except (SyncTimeoutError, ChannelError) as exc:
            row["noise_accuracy"] = 0.0
            row["noise_detail"] = str(exc)
    return row


def build_spec(seed: int = 0, bits: int = 40,
               noise: bool = True) -> ExperimentSpec:
    """One point per *defined* matrix cell (undefined cells get none)."""
    cells = []
    for row in MATRIX_ROWS:
        for channel in MATRIX_COLS:
            spec = matrix_cell(row, channel)
            if spec is not None:
                cells.append(spec.name)
    points = tuple(
        Point(
            fn=POINT_FN,
            params={"cell": name, "seed": seed, "bits": bits,
                    "noise": noise},
            label=name,
        )
        for name in cells
    )
    return ExperimentSpec(
        experiment=NAME,
        points=points,
        meta={"cells": cells, "bits": bits, "noise": noise},
    )


def collect(spec: ExperimentSpec, values: list) -> dict:
    rows = {row["cell"]: row for row in values}
    return {
        "cells": rows,
        "bits": spec.meta["bits"],
        "noise": spec.meta["noise"],
    }


def run(spec: ExperimentSpec | None = None, **kwargs) -> dict:
    """Score the whole matrix; returns per-cell rows keyed by name."""
    if not isinstance(spec, ExperimentSpec):
        spec = build_spec(**kwargs)
    return collect(spec, execute(spec))


def _cell_summary(row: dict | None) -> str:
    if row is None:
        return "n/a"
    if row["status"] == "dead":
        return "dead"
    if row["status"] != "ok":
        return row["status"]
    return f"{row['accuracy'] * 100:.0f}% {row['capacity_kbps']:.0f}K"


def render(result: dict) -> str:
    cells = result["cells"]
    headers = ["protocol \\ channel"] + list(MATRIX_COLS)
    grid_rows = []
    populated = 0
    for row in MATRIX_ROWS:
        line = [row]
        for channel in MATRIX_COLS:
            spec = matrix_cell(row, channel)
            cell_row = cells.get(spec.name) if spec is not None else None
            if cell_row is not None and cell_row["status"] == "ok":
                populated += 1
            line.append(_cell_summary(cell_row))
        grid_rows.append(line)
    parts = [ascii_table(
        headers, grid_rows,
        title=(f"Scenario-matrix leaderboard: accuracy + BSC capacity "
               f"({result['bits']}-bit payloads; {populated} live cells)"),
    )]
    detail = []
    for name, row in sorted(
        cells.items(),
        key=lambda kv: -kv[1].get("capacity_kbps", -1.0),
    ):
        if row["status"] != "ok":
            detail.append((name, row["status"], "-", "-", "-"))
            continue
        noise_acc = row.get("noise_accuracy")
        detail.append((
            name,
            f"{row['accuracy'] * 100:.1f}%",
            f"{row['rate_kbps']:.0f}",
            f"{row['capacity_kbps']:.0f}",
            "-" if noise_acc is None else f"{noise_acc * 100:.1f}%",
        ))
    parts.append("")
    parts.append(ascii_table(
        ("cell", "accuracy", "rate (Kbps)", "capacity (Kbps)",
         f"accuracy @ {NOISE_THREADS} noise threads"),
        detail,
        title="Per-cell detail (capacity-ranked)",
    ))
    parts.append("")
    parts.append(
        "dead = bands overlap under this protocol (expected for "
        "mesi/mesif x ostate); n/a = undefined cell (directory x lru)"
    )
    return "\n".join(parts)


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--bits", type=int, default=40)
    parser.add_argument(
        "--smoke", action="store_true",
        help="fast CI mode: 16-bit payloads, no noise-robustness leg",
    )


def spec_from_args(args: argparse.Namespace) -> ExperimentSpec:
    if args.smoke:
        return build_spec(seed=args.seed, bits=16, noise=False)
    return build_spec(seed=args.seed, bits=args.bits)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    add_arguments(parser)
    runner_arguments(parser)
    args = parser.parse_args(argv)

    spec = spec_from_args(args)
    values = execute_from_args(spec, args)
    print(render(collect(spec, values)))


if __name__ == "__main__":
    main()

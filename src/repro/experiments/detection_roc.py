"""Detection extension: can a defender spot the channel in telemetry?

The paper motivates defenses against coherence-protocol exploits; this
driver evaluates the :mod:`repro.detection` subsystem: it runs (a) covert
transmissions on every Table I scenario and (b) benign workloads
(kernel-build noise, a producer/consumer app), feeds both through the
coherence-event monitor, and reports detection and false-positive
outcomes.
"""

from __future__ import annotations

import argparse

from repro.analysis.reporting import ascii_table
from repro.channel.config import TABLE_I
from repro.channel.session import ChannelSession, SessionConfig
from repro.detection import ChannelDetector, EventMonitor, OnlineRoc
from repro.experiments.common import (
    execute_from_args,
    payload_bits,
    runner_arguments,
    warn_legacy_run,
)
from repro.kernel.syscalls import Kernel
from repro.kernel.workloads import spawn_kernel_build
from repro.mem.cacheline import LINE_SIZE
from repro.mem.hierarchy import Machine, MachineConfig
from repro.runner import ExperimentSpec, Point, execute
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams

NAME = "detect"
SUMMARY = "extension: covert-channel detection"
POINT_FN = "repro.experiments.detection_roc:point"

BENIGN_WORKLOADS = ("kernel-build", "producer-consumer")


def point(*, workload: str, seed: int, bits: int = 40) -> dict:
    """Run one monitored workload; returns its detection verdict row."""
    kind, _, detail = workload.partition(":")
    if kind == "attack":
        return _attack_point(detail, seed, bits)
    if kind == "benign" and detail == "kernel-build":
        return _benign_kernel_build(seed)
    if kind == "benign" and detail == "producer-consumer":
        return _benign_producer_consumer(seed)
    raise ValueError(f"unknown workload {workload!r}")


def _attack_point(scenario: str, seed: int, bits: int) -> dict:
    session = ChannelSession(SessionConfig(
        spec=scenario, seed=seed,
        calibration_samples=200,
    ))
    monitor = EventMonitor(session.machine)
    monitor.attach()
    session.transmit(payload_bits(bits))
    detector = ChannelDetector(monitor)
    detections = detector.scan(session.sim.global_clock)
    covert_line = (
        session.spy_proc.translate(session.spy_va) & ~(LINE_SIZE - 1)
    )
    hit = any(d.line == covert_line for d in detections)
    top = detections[0] if detections else None
    return {
        "workload": f"attack:{scenario}",
        "detected": hit,
        "score": top.score if top else 0.0,
        "reasons": list(top.reasons) if top else [],
    }


def _benign_kernel_build(seed: int) -> dict:
    rng = RngStreams(seed)
    machine = Machine(MachineConfig(), rng)
    sim = Simulator(machine.stats)
    kernel = Kernel(machine, sim, rng)
    monitor = EventMonitor(machine)
    monitor.attach()
    spawn_kernel_build(kernel, 6, avoid_cores={0})
    process = kernel.create_process("w")

    def waiter(cpu):
        yield from cpu.delay(800_000)

    kernel.spawn(process, "w", waiter, core_id=0)
    sim.run()
    detections = ChannelDetector(monitor).scan(sim.global_clock)
    return {
        "workload": "benign:kernel-build x6",
        "detected": bool(detections),
        "score": detections[0].score if detections else 0.0,
        "reasons": list(detections[0].reasons) if detections else [],
    }


def _benign_producer_consumer(seed: int) -> dict:
    rng = RngStreams(seed)
    machine = Machine(MachineConfig(), rng)
    sim = Simulator(machine.stats)
    kernel = Kernel(machine, sim, rng)
    monitor = EventMonitor(machine)
    monitor.attach()
    app = kernel.create_process("app")
    buf = app.mmap(1)

    def producer(cpu):
        for i in range(400):
            yield from cpu.store(buf, i)
            yield from cpu.delay(700)

    def consumer(cpu):
        for _ in range(400):
            yield from cpu.load(buf)
            yield from cpu.delay(700)

    kernel.spawn(app, "prod", producer, core_id=1)
    kernel.spawn(app, "cons", consumer, core_id=2)
    sim.run()
    detections = ChannelDetector(monitor).scan(sim.global_clock)
    return {
        "workload": "benign:producer/consumer",
        "detected": bool(detections),
        "score": detections[0].score if detections else 0.0,
        "reasons": list(detections[0].reasons) if detections else [],
    }


def run_attacks(seed: int = 0, bits: int = 40) -> list[dict]:
    """Run each scenario under monitoring; report detection outcomes."""
    return [
        point(workload=f"attack:{scenario.name}", seed=seed, bits=bits)
        for scenario in TABLE_I
    ]


def run_benign(seed: int = 0) -> list[dict]:
    """Run benign workloads under monitoring; count false positives."""
    return [
        point(workload="benign:kernel-build", seed=seed),
        point(workload="benign:producer-consumer", seed=seed + 1),
    ]


def build_spec(seed: int = 0, bits: int = 40) -> ExperimentSpec:
    """Attack points (one per scenario) plus the benign workloads."""
    points = [
        Point(
            fn=POINT_FN,
            params={"workload": f"attack:{s.name}", "seed": seed,
                    "bits": bits},
            label=f"attack:{s.name}",
        )
        for s in TABLE_I
    ]
    points.append(Point(
        fn=POINT_FN,
        params={"workload": "benign:kernel-build", "seed": seed},
        label="benign:kernel-build",
    ))
    points.append(Point(
        fn=POINT_FN,
        params={"workload": "benign:producer-consumer", "seed": seed + 1},
        label="benign:producer-consumer",
    ))
    return ExperimentSpec(
        experiment=NAME,
        points=tuple(points),
        meta={"attacks": len(TABLE_I), "benign": 2},
    )


def collect(spec: ExperimentSpec, values: list) -> dict:
    n_attacks = spec.meta["attacks"]
    attacks, benign = values[:n_attacks], values[n_attacks:]
    # The offline ROC over workload scores, via the same fixed-bin
    # histogram the streaming path accumulates online — the two are
    # identical by construction (asserted in
    # tests/test_streaming_detection.py).
    roc = OnlineRoc.from_samples(
        [(r["score"], True) for r in attacks]
        + [(r["score"], False) for r in benign]
    )
    return {
        "rows": attacks + benign,
        "true_positives": sum(1 for r in attacks if r["detected"]),
        "attacks": len(attacks),
        "false_positives": sum(1 for r in benign if r["detected"]),
        "benign": len(benign),
        "roc_points": [list(p) for p in roc.points()],
        "auc": roc.auc(),
    }


def run(spec: ExperimentSpec | None = None, **legacy) -> dict:
    """Full sweep: attacks must be flagged, benign workloads must not.

    Pass an :class:`ExperimentSpec` from :func:`build_spec`; the old
    ``run(seed=..., bits=...)`` keyword form warns but still works.
    """
    if not isinstance(spec, ExperimentSpec):
        if spec is not None:
            legacy.setdefault("seed", spec)
        warn_legacy_run(__name__)
        spec = build_spec(**legacy)
    return collect(spec, execute(spec))


def render(result: dict) -> str:
    rows = [
        (r["workload"], "FLAGGED" if r["detected"] else "clear",
         f"{r['score']:.2f}", "; ".join(r["reasons"])[:60])
        for r in result["rows"]
    ]
    table = ascii_table(
        ("workload", "verdict", "score", "signatures"),
        rows,
        title="Coherence covert-channel detection (extension experiment)",
    )
    return (
        f"{table}\n\ndetected {result['true_positives']}/"
        f"{result['attacks']} attacks, {result['false_positives']}/"
        f"{result['benign']} false positives"
        f" (AUC {result['auc']:.2f})"
    )


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--bits", type=int, default=40)


def spec_from_args(args: argparse.Namespace) -> ExperimentSpec:
    return build_spec(seed=args.seed, bits=args.bits)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    add_arguments(parser)
    runner_arguments(parser)
    args = parser.parse_args(argv)

    spec = spec_from_args(args)
    values = execute_from_args(spec, args)
    print(render(collect(spec, values)))


if __name__ == "__main__":
    main()

"""Detection extension: can a defender spot the channel in telemetry?

The paper motivates defenses against coherence-protocol exploits; this
driver evaluates the :mod:`repro.detection` subsystem: it runs (a) covert
transmissions on every Table I scenario and (b) benign workloads
(kernel-build noise, a producer/consumer app), feeds both through the
coherence-event monitor, and reports detection and false-positive
outcomes.
"""

from __future__ import annotations

import argparse

from repro.analysis.reporting import ascii_table
from repro.channel.config import TABLE_I
from repro.channel.session import ChannelSession, SessionConfig
from repro.detection import ChannelDetector, EventMonitor
from repro.experiments.common import payload_bits
from repro.kernel.syscalls import Kernel
from repro.kernel.workloads import spawn_kernel_build
from repro.mem.cacheline import LINE_SIZE
from repro.mem.hierarchy import Machine, MachineConfig
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams


def run_attacks(seed: int = 0, bits: int = 40) -> list[dict]:
    """Run each scenario under monitoring; report detection outcomes."""
    rows = []
    payload = payload_bits(bits)
    for scenario in TABLE_I:
        session = ChannelSession(SessionConfig(
            scenario=scenario, seed=seed, calibration_samples=200,
        ))
        monitor = EventMonitor(session.machine)
        monitor.attach()
        session.transmit(payload)
        detector = ChannelDetector(monitor)
        detections = detector.scan(session.sim.global_clock)
        covert_line = (
            session.spy_proc.translate(session.spy_va) & ~(LINE_SIZE - 1)
        )
        hit = any(d.line == covert_line for d in detections)
        top = detections[0] if detections else None
        rows.append({
            "workload": f"attack:{scenario.name}",
            "detected": hit,
            "score": top.score if top else 0.0,
            "reasons": list(top.reasons) if top else [],
        })
    return rows


def run_benign(seed: int = 0) -> list[dict]:
    """Run benign workloads under monitoring; count false positives."""
    rows = []

    # Benign 1: kernel-build compile noise.
    rng = RngStreams(seed)
    machine = Machine(MachineConfig(), rng)
    sim = Simulator(machine.stats)
    kernel = Kernel(machine, sim, rng)
    monitor = EventMonitor(machine)
    monitor.attach()
    spawn_kernel_build(kernel, 6, avoid_cores={0})
    process = kernel.create_process("w")

    def waiter(cpu):
        yield from cpu.delay(800_000)

    kernel.spawn(process, "w", waiter, core_id=0)
    sim.run()
    detections = ChannelDetector(monitor).scan(sim.global_clock)
    rows.append({
        "workload": "benign:kernel-build x6",
        "detected": bool(detections),
        "score": detections[0].score if detections else 0.0,
        "reasons": list(detections[0].reasons) if detections else [],
    })

    # Benign 2: shared-memory producer/consumer.
    rng = RngStreams(seed + 1)
    machine = Machine(MachineConfig(), rng)
    sim = Simulator(machine.stats)
    kernel = Kernel(machine, sim, rng)
    monitor = EventMonitor(machine)
    monitor.attach()
    app = kernel.create_process("app")
    buf = app.mmap(1)

    def producer(cpu):
        for i in range(400):
            yield from cpu.store(buf, i)
            yield from cpu.delay(700)

    def consumer(cpu):
        for _ in range(400):
            yield from cpu.load(buf)
            yield from cpu.delay(700)

    kernel.spawn(app, "prod", producer, core_id=1)
    kernel.spawn(app, "cons", consumer, core_id=2)
    sim.run()
    detections = ChannelDetector(monitor).scan(sim.global_clock)
    rows.append({
        "workload": "benign:producer/consumer",
        "detected": bool(detections),
        "score": detections[0].score if detections else 0.0,
        "reasons": list(detections[0].reasons) if detections else [],
    })
    return rows


def run(seed: int = 0, bits: int = 40) -> dict:
    """Full sweep: attacks must be flagged, benign workloads must not."""
    attacks = run_attacks(seed=seed, bits=bits)
    benign = run_benign(seed=seed)
    return {
        "rows": attacks + benign,
        "true_positives": sum(1 for r in attacks if r["detected"]),
        "attacks": len(attacks),
        "false_positives": sum(1 for r in benign if r["detected"]),
        "benign": len(benign),
    }


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--bits", type=int, default=40)
    args = parser.parse_args(argv)

    outcome = run(seed=args.seed, bits=args.bits)
    rows = [
        (r["workload"], "FLAGGED" if r["detected"] else "clear",
         f"{r['score']:.2f}", "; ".join(r["reasons"])[:60])
        for r in outcome["rows"]
    ]
    print(ascii_table(
        ("workload", "verdict", "score", "signatures"),
        rows,
        title="Coherence covert-channel detection (extension experiment)",
    ))
    print(f"\ndetected {outcome['true_positives']}/{outcome['attacks']} "
          f"attacks, {outcome['false_positives']}/{outcome['benign']} "
          "false positives")


if __name__ == "__main__":
    main()

"""Figure 2 + Section V: load-latency CDFs per (location, state) pair.

Reproduces the measurement loop of Section V: 1,000 timed loads per
combination pair on the dual-socket machine, reported as CDF quantiles
and band summaries.  The paper's reference points: a local S-state block
reads in ~98 cycles and a local E-state block in ~124; remote variants
sit higher, and all four bands are distinct and narrow.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.analysis.cdf import band_separation
from repro.analysis.reporting import ascii_cdf, ascii_table
from repro.channel.calibration import calibrate
from repro.experiments.common import (
    execute_from_args,
    protocol_argument,
    runner_arguments,
    warn_legacy_run,
)
from repro.mem.hierarchy import Machine, MachineConfig
from repro.runner import ExperimentSpec, Point, execute
from repro.sim.rng import RngStreams

NAME = "fig2"
SUMMARY = "Figure 2 + Section V latency reference points"
POINT_FN = "repro.experiments.fig2_latency_cdf:point"


def point(*, samples: int, seed: int, protocol: str | None = None) -> dict:
    """The whole calibration sweep is one (heavy) grid point."""
    machine = Machine(
        MachineConfig(protocol=protocol or "mesi"), RngStreams(seed)
    )
    # MOESI exposes a fifth band — the dirty-owner service latency the
    # O-state channel communicates through.
    extra = ()
    if protocol == "moesi":
        from repro.channel.config import LOWNED

        extra = (LOWNED,)
    bands, raw = calibrate(machine, samples=samples, extra_pairs=extra)
    medians = {k: float(np.median(v)) for k, v in raw.items()}
    order = ["LShared", "LOwned", "LExcl", "RShared", "RExcl", "dram"]
    separations = {}
    for first, second in zip(order[:-1], order[1:]):
        if first in raw and second in raw:
            separations[f"{first}/{second}"] = band_separation(
                raw[first], raw[second]
            )
    return {
        "raw": raw,
        "medians": medians,
        "separations": separations,
        "bands": bands,
    }


def build_spec(samples: int = 1000, seed: int = 0,
               protocol: str | None = None) -> ExperimentSpec:
    """A single-point grid: one full band calibration."""
    extra = {"protocol": protocol} if protocol else {}
    return ExperimentSpec(
        experiment=NAME,
        points=(Point(
            fn=POINT_FN,
            params={"samples": samples, "seed": seed, **extra},
            label=f"calibrate x{samples}",
        ),),
    )


def collect(spec: ExperimentSpec, values: list) -> dict:
    return values[0]


def run(spec: ExperimentSpec | None = None, **legacy) -> dict:
    """Measure all bands; returns raw samples, medians and separations.

    Pass an :class:`ExperimentSpec` from :func:`build_spec`; the old
    ``run(samples=..., seed=...)`` keyword form warns but still works.
    """
    if not isinstance(spec, ExperimentSpec):
        if spec is not None:
            legacy.setdefault("samples", spec)
        warn_legacy_run(__name__)
        spec = build_spec(**legacy)
    return collect(spec, execute(spec))


def render(result: dict) -> str:
    parts = [ascii_cdf(result["raw"],
                       title="Figure 2: load-latency CDFs (cycles)"), ""]
    rows = [
        (name, f"{median:.1f}")
        for name, median in sorted(result["medians"].items(),
                                   key=lambda kv: kv[1])
    ]
    parts.append(ascii_table(
        ("combination", "median latency (cycles)"), rows,
        title="Section V reference points (paper: LShared~98, LExcl~124)",
    ))
    parts.append("")
    rows = [
        (pair, f"{sep:.2f}") for pair, sep in result["separations"].items()
    ]
    parts.append(ascii_table(
        ("adjacent bands", "separation (pooled sigma)"), rows,
        title="Band separations (all should be positive)",
    ))
    return "\n".join(parts)


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--samples", type=int, default=1000)
    parser.add_argument("--seed", type=int, default=0)
    protocol_argument(parser)


def spec_from_args(args: argparse.Namespace) -> ExperimentSpec:
    return build_spec(samples=args.samples, seed=args.seed,
                      protocol=args.protocol)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    add_arguments(parser)
    runner_arguments(parser)
    args = parser.parse_args(argv)

    spec = spec_from_args(args)
    values = execute_from_args(spec, args)
    print(render(collect(spec, values)))


if __name__ == "__main__":
    main()

"""Figure 2 + Section V: load-latency CDFs per (location, state) pair.

Reproduces the measurement loop of Section V: 1,000 timed loads per
combination pair on the dual-socket machine, reported as CDF quantiles
and band summaries.  The paper's reference points: a local S-state block
reads in ~98 cycles and a local E-state block in ~124; remote variants
sit higher, and all four bands are distinct and narrow.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.analysis.cdf import band_separation
from repro.analysis.reporting import ascii_cdf, ascii_table
from repro.channel.calibration import calibrate
from repro.mem.hierarchy import Machine, MachineConfig
from repro.sim.rng import RngStreams


def run(samples: int = 1000, seed: int = 0) -> dict:
    """Measure all bands; returns raw samples, medians and separations."""
    machine = Machine(MachineConfig(), RngStreams(seed))
    bands, raw = calibrate(machine, samples=samples)
    medians = {k: float(np.median(v)) for k, v in raw.items()}
    order = ["LShared", "LExcl", "RShared", "RExcl", "dram"]
    separations = {}
    for first, second in zip(order[:-1], order[1:]):
        if first in raw and second in raw:
            separations[f"{first}/{second}"] = band_separation(
                raw[first], raw[second]
            )
    return {
        "raw": raw,
        "medians": medians,
        "separations": separations,
        "bands": bands,
    }


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--samples", type=int, default=1000)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    result = run(samples=args.samples, seed=args.seed)
    print(ascii_cdf(result["raw"], title="Figure 2: load-latency CDFs (cycles)"))
    print()
    rows = [
        (name, f"{median:.1f}")
        for name, median in sorted(result["medians"].items(),
                                   key=lambda kv: kv[1])
    ]
    print(ascii_table(
        ("combination", "median latency (cycles)"), rows,
        title="Section V reference points (paper: LShared~98, LExcl~124)",
    ))
    print()
    rows = [
        (pair, f"{sep:.2f}") for pair, sep in result["separations"].items()
    ]
    print(ascii_table(
        ("adjacent bands", "separation (pooled sigma)"), rows,
        title="Band separations (all should be positive)",
    ))


if __name__ == "__main__":
    main()

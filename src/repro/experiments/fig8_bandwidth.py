"""Figure 8: raw-bit accuracy versus transmission rate.

Sweeps the nominal bit rate from 100 Kbps to 1 Mbps per scenario by
shrinking the sampling slot (the paper's knob: reducing Ts and the
consecutive-caching counts).  The shape to reproduce: accuracy stays
near 100% up to a knee, then rolls off; the two widest-band-gap
scenarios — RExclc-LExclb and RExclc-LSharedb — stay accurate the
longest (the paper cites 96% at 800 Kbps for RExclc-LSharedb).
"""

from __future__ import annotations

import argparse

from repro.analysis.reporting import ascii_table
from repro.channel.config import TABLE_I
from repro.channel.session import ChannelSession, SessionConfig
from repro.experiments.common import (
    FIG8_RATES,
    common_arguments,
    default_params,
    payload_bits,
    scenario_argument,
    selected_scenarios,
)


def run(
    seed: int = 0,
    bits: int = 100,
    rates=FIG8_RATES,
    scenarios=None,
) -> dict:
    """Accuracy at each rate per scenario."""
    scenarios = scenarios if scenarios is not None else list(TABLE_I)
    payload = payload_bits(bits)
    base = default_params()
    curves: dict[str, list[tuple[float, float]]] = {}
    for scenario in scenarios:
        points = []
        for rate in rates:
            session = ChannelSession(SessionConfig(
                scenario=scenario,
                params=base.at_rate(rate),
                seed=seed,
            ))
            result = session.transmit(payload)
            points.append((float(rate), result.accuracy))
        curves[scenario.name] = points
    return {"curves": curves, "rates": list(rates)}


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    common_arguments(parser)
    scenario_argument(parser)
    args = parser.parse_args(argv)

    outcome = run(
        seed=args.seed,
        bits=args.bits,
        scenarios=selected_scenarios(args.scenario),
    )
    headers = ["scenario"] + [f"{r}K" for r in outcome["rates"]]
    rows = []
    for name, points in outcome["curves"].items():
        rows.append([name] + [f"{acc * 100:.0f}%" for _r, acc in points])
    print(ascii_table(
        headers, rows,
        title="Figure 8: raw-bit accuracy vs transmission rate",
    ))


if __name__ == "__main__":
    main()

"""Figure 8: raw-bit accuracy versus transmission rate.

Sweeps the nominal bit rate from 100 Kbps to 1 Mbps per scenario by
shrinking the sampling slot (the paper's knob: reducing Ts and the
consecutive-caching counts).  The shape to reproduce: accuracy stays
near 100% up to a knee, then rolls off; the two widest-band-gap
scenarios — RExclc-LExclb and RExclc-LSharedb — stay accurate the
longest (the paper cites 96% at 800 Kbps for RExclc-LSharedb).
"""

from __future__ import annotations

import argparse

from repro.analysis.reporting import ascii_table
from repro.channel.config import TABLE_I
from repro.channel.session import execute_point
from repro.experiments.common import (
    FIG8_RATES,
    common_arguments,
    execute_from_args,
    payload_bits,
    runner_arguments,
    scenario_argument,
    selected_scenarios,
    warn_legacy_run,
)
from repro.runner import ExperimentSpec, Point, execute

NAME = "fig8"
SUMMARY = "Figure 8 accuracy-vs-rate sweep"
POINT_FN = "repro.experiments.fig8_bandwidth:point"


def point(*, scenario: str, rate: float, seed: int, bits: int,
          protocol: str | None = None) -> float:
    """One grid point: decode accuracy of *scenario* at *rate* Kbps."""
    result = execute_point(
        scenario=scenario,
        payload=payload_bits(bits),
        rate_kbps=rate,
        seed=seed,
        protocol=protocol,
    )
    return result.accuracy


def build_spec(
    seed: int = 0,
    bits: int = 100,
    rates=FIG8_RATES,
    scenarios=None,
    protocol: str | None = None,
) -> ExperimentSpec:
    """The scenario × rate grid of Figure 8."""
    names = [
        s if isinstance(s, str) else s.name
        for s in (scenarios if scenarios is not None else TABLE_I)
    ]
    extra = {"protocol": protocol} if protocol else {}
    points = tuple(
        Point(
            fn=POINT_FN,
            params={"scenario": name, "rate": float(rate),
                    "seed": seed, "bits": bits, **extra},
            label=f"{name}@{rate:g}K",
        )
        for name in names
        for rate in rates
    )
    return ExperimentSpec(
        experiment=NAME,
        points=points,
        meta={"rates": list(rates), "scenarios": names},
    )


def collect(spec: ExperimentSpec, values: list) -> dict:
    """Reassemble point accuracies into the per-scenario rate curves."""
    rates = spec.meta["rates"]
    it = iter(values)
    curves = {
        name: [(float(rate), next(it)) for rate in rates]
        for name in spec.meta["scenarios"]
    }
    return {"curves": curves, "rates": list(rates)}


def run(spec: ExperimentSpec | None = None, **legacy) -> dict:
    """Accuracy at each rate per scenario.

    Pass an :class:`ExperimentSpec` from :func:`build_spec`.  The old
    ``run(seed=..., bits=..., rates=..., scenarios=...)`` keyword form
    still works but warns with :class:`DeprecationWarning`.
    """
    if not isinstance(spec, ExperimentSpec):
        if spec is not None:
            legacy.setdefault("seed", spec)
        warn_legacy_run(__name__)
        spec = build_spec(**legacy)
    return collect(spec, execute(spec))


def render(result: dict) -> str:
    """The Figure 8 accuracy table as text."""
    headers = ["scenario"] + [f"{r}K" for r in result["rates"]]
    rows = []
    for name, points in result["curves"].items():
        rows.append([name] + [f"{acc * 100:.0f}%" for _r, acc in points])
    return ascii_table(
        headers, rows,
        title="Figure 8: raw-bit accuracy vs transmission rate",
    )


def add_arguments(parser: argparse.ArgumentParser) -> None:
    common_arguments(parser)
    scenario_argument(parser)


def spec_from_args(args: argparse.Namespace) -> ExperimentSpec:
    return build_spec(
        seed=args.seed,
        bits=args.bits,
        scenarios=selected_scenarios(args.scenario),
        protocol=args.protocol,
    )


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    add_arguments(parser)
    runner_arguments(parser)
    args = parser.parse_args(argv)

    spec = spec_from_args(args)
    values = execute_from_args(spec, args)
    print(render(collect(spec, values)))


if __name__ == "__main__":
    main()

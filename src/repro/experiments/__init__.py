"""Experiment drivers: one runnable module per paper figure/table.

Run any driver as a module, e.g.::

    python -m repro.experiments.fig2_latency_cdf
    python -m repro.experiments.fig8_bandwidth --scenario RExclc-LSharedb

| Module              | Paper artifact                               |
|---------------------|----------------------------------------------|
| fig2_latency_cdf    | Figure 2 + Section V latency reference points |
| table1_scenarios    | Table I scenario/thread-placement check      |
| fig7_reception      | Figures 6-7 transmission + reception traces  |
| fig8_bandwidth      | Figure 8 accuracy-vs-rate sweep              |
| fig9_noise          | Figure 9 kernel-build noise sweep            |
| fig10_ecc           | Figure 10 parity+NACK effective rates        |
| fig11_multibit      | Figure 11 2-bit symbol channel               |
| sync_handshake      | Section VII-A synchronization timing         |
| mitigations         | Section VIII-E defenses                      |
| ablations           | DESIGN.md design-choice ablations            |
| detection_roc       | extension: covert-channel detection          |
| capacity_analysis   | extension: information-theoretic capacity    |
"""

# Drivers are imported lazily (``python -m`` would otherwise warn about
# the module being pre-imported through the package).
__all__ = [
    "ablations",
    "capacity_analysis",
    "common",
    "detection_roc",
    "fig2_latency_cdf",
    "fig7_reception",
    "fig8_bandwidth",
    "fig9_noise",
    "fig10_ecc",
    "fig11_multibit",
    "mitigations",
    "sync_handshake",
    "table1_scenarios",
]

"""Experiment drivers: one runnable module per paper figure/table.

Run any driver as a module, e.g.::

    python -m repro.experiments.fig2_latency_cdf
    python -m repro.experiments.fig8_bandwidth --scenario RExclc-LSharedb

or through the unified CLI (``python -m repro <name>``), which adds the
shared runner options (``--jobs``, ``--no-cache``, ``--cache-dir``).

Every driver self-describes through :data:`REGISTRY`: it exposes
``build_spec(...)`` / ``spec_from_args(args)`` returning an
:class:`~repro.runner.ExperimentSpec`, ``run(spec)``, ``collect(spec,
values)``, ``render(result)`` and ``main(argv)``; see
:mod:`repro.experiments.common` for the contract.
"""

from __future__ import annotations

import argparse
import importlib
from dataclasses import dataclass
from types import ModuleType
from typing import Any

# Drivers are imported lazily (``python -m`` would otherwise warn about
# the module being pre-imported through the package, and ``repro list``
# should not pay for importing every driver).
__all__ = [
    "REGISTRY",
    "ExperimentInfo",
    "ablations",
    "arena",
    "capacity_analysis",
    "common",
    "detection_roc",
    "fault_sweep",
    "fig2_latency_cdf",
    "fig7_reception",
    "fig8_bandwidth",
    "fig9_noise",
    "fig10_ecc",
    "fig11_multibit",
    "leaderboard",
    "mitigations",
    "sync_handshake",
    "table1_scenarios",
]


@dataclass(frozen=True)
class ExperimentInfo:
    """One registry row: a driver described without importing it."""

    name: str
    module: str
    summary: str

    def load(self) -> ModuleType:
        """Import and return the driver module."""
        return importlib.import_module(f"repro.experiments.{self.module}")

    def build_spec(self, args: argparse.Namespace | None = None, **kwargs):
        """The driver's grid: from parsed CLI args or from kwargs."""
        module = self.load()
        if args is not None:
            return module.spec_from_args(args)
        return module.build_spec(**kwargs)

    def run(self, spec) -> dict:
        return self.load().run(spec)

    def collect(self, spec, values: list) -> dict:
        return self.load().collect(spec, values)

    def render(self, result: dict) -> str:
        return self.load().render(result)

    def main(self, argv: list[str] | None = None) -> Any:
        return self.load().main(argv)


#: Short CLI name -> self-describing driver entry (paper order).
REGISTRY: dict[str, ExperimentInfo] = {
    info.name: info
    for info in (
        ExperimentInfo(
            "fig2", "fig2_latency_cdf",
            "Figure 2 + Section V latency reference points",
        ),
        ExperimentInfo(
            "table1", "table1_scenarios",
            "Table I scenario/thread-placement check",
        ),
        ExperimentInfo(
            "fig7", "fig7_reception",
            "Figures 6-7 transmission + reception traces",
        ),
        ExperimentInfo(
            "fig8", "fig8_bandwidth",
            "Figure 8 accuracy-vs-rate sweep",
        ),
        ExperimentInfo(
            "fig9", "fig9_noise",
            "Figure 9 kernel-build noise sweep",
        ),
        ExperimentInfo(
            "fig10", "fig10_ecc",
            "Figure 10 parity+NACK effective rates",
        ),
        ExperimentInfo(
            "fig11", "fig11_multibit",
            "Figure 11 2-bit symbol channel",
        ),
        ExperimentInfo(
            "sync", "sync_handshake",
            "Section VII-A synchronization timing",
        ),
        ExperimentInfo(
            "mitigations", "mitigations",
            "Section VIII-E defenses",
        ),
        ExperimentInfo(
            "ablations", "ablations",
            "DESIGN.md design-choice ablations",
        ),
        ExperimentInfo(
            "detect", "detection_roc",
            "extension: covert-channel detection",
        ),
        ExperimentInfo(
            "capacity", "capacity_analysis",
            "extension: information-theoretic capacity",
        ),
        ExperimentInfo(
            "faults", "fault_sweep",
            "robustness: accuracy vs injected fault rate",
        ),
        ExperimentInfo(
            "leaderboard", "leaderboard",
            "scenario-matrix leaderboard: every (protocol x channel) cell",
        ),
        ExperimentInfo(
            "arena", "arena",
            "extension: detection-vs-evasion arena on live traces",
        ),
    )
}

"""Section VIII-E: the proposed mitigations, evaluated as ablations.

Runs the same transmission four ways — undefended, with the targeted
noise injector, with the LLC-direct-E-response hardware fix, and with
per-core timing obfuscation — plus the KSM-timeout watchdog, and
reports how far each defense drives the channel's accuracy down.
"""

from __future__ import annotations

import argparse

from repro.analysis.reporting import ascii_table
from repro.channel.config import TABLE_I, ProtocolParams
from repro.channel.session import ChannelSession, SessionConfig
from repro.errors import CalibrationError, ChannelError, SyncTimeoutError
from repro.experiments.common import (
    execute_from_args,
    payload_bits,
    runner_arguments,
    warn_legacy_run,
)
from repro.mitigation.hardware import attach_obfuscator, hardened_machine_config
from repro.mitigation.ksm_policy import deploy_ksm_timeout
from repro.mitigation.noise_injector import deploy_noise_injector
from repro.runner import ExperimentSpec, Point, execute

NAME = "mitigations"
SUMMARY = "Section VIII-E defenses"
POINT_FN = "repro.experiments.mitigations:point"

#: Grid order of the defense points; collect() preserves it.
DEFENSES = (
    "undefended",
    "noise-injector",
    "ksm-timeout",
    "llc-direct-e",
    "timing-obfuscation",
)


def _safe_transmit(session: ChannelSession, payload: list[int]) -> float:
    try:
        return session.transmit(payload).accuracy
    except (SyncTimeoutError, ChannelError):
        # The defense prevented the spy from ever locking on: the channel
        # is fully closed.
        return 0.0


def point(*, defense: str, scenario: str, seed: int, bits: int):
    """Channel quality under one defense, on a fresh session."""
    payload = payload_bits(bits)
    # Bound reception so defenses that keep the block permanently cached
    # cannot hang the spy.
    params = ProtocolParams(max_reception_slots=3_000)

    def fresh_session(**kwargs) -> ChannelSession:
        return ChannelSession(SessionConfig(
            spec=scenario, seed=seed, params=params, **kwargs
        ))

    if defense == "undefended":
        return _safe_transmit(fresh_session(), payload)

    if defense == "noise-injector":
        session = fresh_session()
        paddr = session.spy_proc.translate(session.spy_va)
        monitor_core = session.local_cores[-1] + 1 \
            if session.local_cores[-1] + 1 \
            < session.config.machine.cores_per_socket else 3
        deploy_noise_injector(
            session.kernel, paddr, core_id=monitor_core,
            period=session.config.params.slot_cycles / 4,
        )
        return _safe_transmit(session, payload)

    if defense == "ksm-timeout":
        session = fresh_session()
        _thread, policy = deploy_ksm_timeout(session.kernel)
        accuracy = _safe_transmit(session, payload)
        return {"accuracy": accuracy, "triggered": policy.triggered}

    if defense == "llc-direct-e":
        try:
            session = fresh_session(machine=hardened_machine_config())
            return _safe_transmit(session, payload)
        except CalibrationError:
            # The E and S bands merged: the channel cannot even calibrate.
            return 0.0

    if defense == "timing-obfuscation":
        try:
            session = fresh_session()
            attach_obfuscator(session.machine, {session.config.spy_core})
            # Re-calibrate under obfuscation, as the spy would.
            session.bands = session._calibrate()
            return _safe_transmit(session, payload)
        except CalibrationError:
            return 0.0

    raise ValueError(f"unknown defense {defense!r}")


def build_spec(
    seed: int = 0, bits: int = 60, scenario=None
) -> ExperimentSpec:
    """One point per defense configuration."""
    name = (
        TABLE_I[0].name if scenario is None
        else scenario if isinstance(scenario, str)
        else scenario.name
    )
    points = tuple(
        Point(
            fn=POINT_FN,
            params={"defense": defense, "scenario": name,
                    "seed": seed, "bits": bits},
            label=defense,
        )
        for defense in DEFENSES
    )
    return ExperimentSpec(
        experiment=NAME, points=points, meta={"scenario": name},
    )


def collect(spec: ExperimentSpec, values: list) -> dict:
    """Reassemble the per-defense values into the legacy outcome dict."""
    by_defense = dict(zip(DEFENSES, values))
    ksm = by_defense["ksm-timeout"]
    outcomes = {
        "undefended": by_defense["undefended"],
        "noise injector": by_defense["noise-injector"],
        "ksm timeout": ksm["accuracy"],
        "ksm timeout triggered": ksm["triggered"],
        "llc direct E response": by_defense["llc-direct-e"],
        "timing obfuscation": by_defense["timing-obfuscation"],
    }
    return {"scenario": spec.meta["scenario"], "outcomes": outcomes}


def run(spec: ExperimentSpec | None = None, **legacy) -> dict:
    """Accuracy of the channel under each defense.

    Pass an :class:`ExperimentSpec` from :func:`build_spec`; the old
    ``run(seed=..., bits=..., scenario=...)`` keyword form warns but
    still works.
    """
    if not isinstance(spec, ExperimentSpec):
        if spec is not None:
            legacy.setdefault("seed", spec)
        warn_legacy_run(__name__)
        spec = build_spec(**legacy)
    return collect(spec, execute(spec))


def render(result: dict) -> str:
    rows = []
    for name, value in result["outcomes"].items():
        if isinstance(value, bool):
            rows.append((name, str(value)))
        else:
            rows.append((name, f"{value * 100:.1f}% accuracy"))
    return ascii_table(
        ("configuration", "channel quality"),
        rows,
        title=f"Section VIII-E mitigations ({result['scenario']})",
    )


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--bits", type=int, default=60)


def spec_from_args(args: argparse.Namespace) -> ExperimentSpec:
    return build_spec(seed=args.seed, bits=args.bits)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    add_arguments(parser)
    runner_arguments(parser)
    args = parser.parse_args(argv)

    spec = spec_from_args(args)
    values = execute_from_args(spec, args)
    print(render(collect(spec, values)))


if __name__ == "__main__":
    main()

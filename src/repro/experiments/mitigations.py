"""Section VIII-E: the proposed mitigations, evaluated as ablations.

Runs the same transmission four ways — undefended, with the targeted
noise injector, with the LLC-direct-E-response hardware fix, and with
per-core timing obfuscation — plus the KSM-timeout watchdog, and
reports how far each defense drives the channel's accuracy down.
"""

from __future__ import annotations

import argparse

from repro.analysis.reporting import ascii_table
from repro.channel.config import TABLE_I, ProtocolParams, Scenario
from repro.channel.session import ChannelSession, SessionConfig
from repro.errors import CalibrationError, ChannelError, SyncTimeoutError
from repro.experiments.common import payload_bits
from repro.mitigation.hardware import attach_obfuscator, hardened_machine_config
from repro.mitigation.ksm_policy import deploy_ksm_timeout
from repro.mitigation.noise_injector import deploy_noise_injector


def _safe_transmit(session: ChannelSession, payload: list[int]) -> float:
    try:
        return session.transmit(payload).accuracy
    except (SyncTimeoutError, ChannelError):
        # The defense prevented the spy from ever locking on: the channel
        # is fully closed.
        return 0.0


def run(
    seed: int = 0, bits: int = 60, scenario: Scenario | None = None
) -> dict:
    """Accuracy of the channel under each defense."""
    scenario = scenario if scenario is not None else TABLE_I[0]
    payload = payload_bits(bits)
    outcomes = {}
    # Bound reception so defenses that keep the block permanently cached
    # cannot hang the spy.
    params = ProtocolParams(max_reception_slots=3_000)

    # Baseline: no defense.
    session = ChannelSession(SessionConfig(scenario=scenario, seed=seed,
                                           params=params))
    outcomes["undefended"] = _safe_transmit(session, payload)

    # Defense 1: targeted noise injection on the shared page.
    session = ChannelSession(SessionConfig(scenario=scenario, seed=seed,
                                           params=params))
    paddr = session.spy_proc.translate(session.spy_va)
    monitor_core = session.local_cores[-1] + 1 \
        if session.local_cores[-1] + 1 < session.config.machine.cores_per_socket \
        else 3
    deploy_noise_injector(session.kernel, paddr, core_id=monitor_core,
                          period=session.config.params.slot_cycles / 4)
    outcomes["noise injector"] = _safe_transmit(session, payload)

    # Defense 2: KSM timeout on suspicious flush activity.
    session = ChannelSession(SessionConfig(scenario=scenario, seed=seed,
                                           params=params))
    _thread, policy = deploy_ksm_timeout(session.kernel)
    outcomes["ksm timeout"] = _safe_transmit(session, payload)
    outcomes["ksm timeout triggered"] = policy.triggered

    # Defense 3: LLC answers E-state reads directly (hardware change).
    try:
        session = ChannelSession(SessionConfig(
            scenario=scenario, seed=seed, params=params,
            machine=hardened_machine_config(),
        ))
        outcomes["llc direct E response"] = _safe_transmit(session, payload)
    except CalibrationError:
        # The E and S bands merged: the channel cannot even calibrate.
        outcomes["llc direct E response"] = 0.0

    # Defense 4: timing obfuscation for the (suspicious) spy core.
    try:
        session = ChannelSession(SessionConfig(scenario=scenario, seed=seed,
                                               params=params))
        attach_obfuscator(session.machine, {session.config.spy_core})
        # Re-calibrate under obfuscation, as the spy would.
        session.bands = session._calibrate()
        outcomes["timing obfuscation"] = _safe_transmit(session, payload)
    except CalibrationError:
        outcomes["timing obfuscation"] = 0.0

    return {"scenario": scenario.name, "outcomes": outcomes}


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--bits", type=int, default=60)
    args = parser.parse_args(argv)

    outcome = run(seed=args.seed, bits=args.bits)
    rows = []
    for name, value in outcome["outcomes"].items():
        if isinstance(value, bool):
            rows.append((name, str(value)))
        else:
            rows.append((name, f"{value * 100:.1f}% accuracy"))
    print(ascii_table(
        ("configuration", "channel quality"),
        rows,
        title=f"Section VIII-E mitigations ({outcome['scenario']})",
    ))


if __name__ == "__main__":
    main()

"""Table I: the six covert-channel scenarios and trojan thread placement.

Verifies, by construction and by live transmission, that each scenario
uses exactly the thread complement the paper's Table I lists, and that
the spy's observed service paths match the intended (location, state)
combinations.
"""

from __future__ import annotations

import argparse
from collections import Counter

from repro.analysis.reporting import ascii_table
from repro.channel.config import TABLE_I
from repro.channel.session import execute_point, resolve_spec
from repro.experiments.common import (
    execute_from_args,
    payload_bits,
    protocol_argument,
    runner_arguments,
    warn_legacy_run,
)
from repro.runner import ExperimentSpec, Point, execute

NAME = "table1"
SUMMARY = "Table I scenario/thread-placement check"
POINT_FN = "repro.experiments.table1_scenarios:point"

#: The paper's Table I thread columns, for cross-checking.
PAPER_TABLE_I = {
    "LExclc-LSharedb": (2, 2, 0),
    "RExclc-RSharedb": (2, 0, 2),
    "RExclc-LExclb": (2, 1, 1),
    "RExclc-LSharedb": (3, 2, 1),
    "RSharedc-LExclb": (3, 1, 2),
    "RSharedc-LSharedb": (4, 2, 2),
}


def point(*, scenario: str, seed: int, bits: int,
          protocol: str | None = None) -> dict:
    """Short transmission on one scenario: placement + live accuracy."""
    spec = resolve_spec(scenario, protocol=protocol)
    obj = spec.scenario
    result = execute_point(
        spec=spec, payload=payload_bits(bits), seed=seed
    )
    label_counts = Counter(s.label for s in result.samples)
    return {
        "scenario": obj.name,
        "total_threads": obj.total_threads,
        "local_threads": obj.local_threads,
        "remote_threads": obj.remote_threads,
        "accuracy": result.accuracy,
        "labels": dict(label_counts),
    }


def build_spec(seed: int = 0, bits: int = 24,
               protocol: str | None = None) -> ExperimentSpec:
    """One point per Table I scenario."""
    extra = {"protocol": protocol} if protocol else {}
    points = tuple(
        Point(
            fn=POINT_FN,
            params={"scenario": s.name, "seed": seed, "bits": bits, **extra},
            label=s.name,
        )
        for s in TABLE_I
    )
    return ExperimentSpec(experiment=NAME, points=points)


def collect(spec: ExperimentSpec, values: list) -> dict:
    return {"rows": list(values)}


def run(spec: ExperimentSpec | None = None, **legacy) -> dict:
    """Run a short transmission per scenario; returns placement + accuracy.

    Pass an :class:`ExperimentSpec` from :func:`build_spec`; the old
    ``run(seed=..., bits=...)`` keyword form warns but still works.
    """
    if not isinstance(spec, ExperimentSpec):
        if spec is not None:
            legacy.setdefault("seed", spec)
        warn_legacy_run(__name__)
        spec = build_spec(**legacy)
    return collect(spec, execute(spec))


def render(result: dict) -> str:
    rows = []
    for row in result["rows"]:
        paper = PAPER_TABLE_I[row["scenario"]]
        ours = (row["total_threads"], row["local_threads"],
                row["remote_threads"])
        rows.append((
            row["scenario"],
            f"{ours[0]} ({ours[1]} local, {ours[2]} remote)",
            f"{paper[0]} ({paper[1]} local, {paper[2]} remote)",
            "OK" if ours == paper else "MISMATCH",
            f"{row['accuracy'] * 100:.0f}%",
        ))
    return ascii_table(
        ("scenario", "our trojan threads", "paper Table I", "check",
         "live accuracy"),
        rows,
        title="Table I: scenarios and trojan thread placement",
    )


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--bits", type=int, default=24)
    protocol_argument(parser)


def spec_from_args(args: argparse.Namespace) -> ExperimentSpec:
    return build_spec(seed=args.seed, bits=args.bits,
                      protocol=args.protocol)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    add_arguments(parser)
    runner_arguments(parser)
    args = parser.parse_args(argv)

    spec = spec_from_args(args)
    values = execute_from_args(spec, args)
    print(render(collect(spec, values)))


if __name__ == "__main__":
    main()

"""Table I: the six covert-channel scenarios and trojan thread placement.

Verifies, by construction and by live transmission, that each scenario
uses exactly the thread complement the paper's Table I lists, and that
the spy's observed service paths match the intended (location, state)
combinations.
"""

from __future__ import annotations

import argparse
from collections import Counter

from repro.analysis.reporting import ascii_table
from repro.channel.config import TABLE_I
from repro.channel.session import ChannelSession, SessionConfig
from repro.experiments.common import payload_bits


def run(seed: int = 0, bits: int = 24) -> dict:
    """Run a short transmission per scenario; returns placement + accuracy."""
    payload = payload_bits(bits)
    rows = []
    for scenario in TABLE_I:
        session = ChannelSession(SessionConfig(scenario=scenario, seed=seed))
        result = session.transmit(payload)
        label_counts = Counter(s.label for s in result.samples)
        rows.append({
            "scenario": scenario.name,
            "total_threads": scenario.total_threads,
            "local_threads": scenario.local_threads,
            "remote_threads": scenario.remote_threads,
            "accuracy": result.accuracy,
            "labels": dict(label_counts),
        })
    return {"rows": rows}


#: The paper's Table I thread columns, for cross-checking.
PAPER_TABLE_I = {
    "LExclc-LSharedb": (2, 2, 0),
    "RExclc-RSharedb": (2, 0, 2),
    "RExclc-LExclb": (2, 1, 1),
    "RExclc-LSharedb": (3, 2, 1),
    "RSharedc-LExclb": (3, 1, 2),
    "RSharedc-LSharedb": (4, 2, 2),
}


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--bits", type=int, default=24)
    args = parser.parse_args(argv)

    result = run(seed=args.seed, bits=args.bits)
    rows = []
    for row in result["rows"]:
        paper = PAPER_TABLE_I[row["scenario"]]
        ours = (row["total_threads"], row["local_threads"], row["remote_threads"])
        rows.append((
            row["scenario"],
            f"{ours[0]} ({ours[1]} local, {ours[2]} remote)",
            f"{paper[0]} ({paper[1]} local, {paper[2]} remote)",
            "OK" if ours == paper else "MISMATCH",
            f"{row['accuracy'] * 100:.0f}%",
        ))
    print(ascii_table(
        ("scenario", "our trojan threads", "paper Table I", "check",
         "live accuracy"),
        rows,
        title="Table I: scenarios and trojan thread placement",
    ))


if __name__ == "__main__":
    main()

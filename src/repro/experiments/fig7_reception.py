"""Figures 6 and 7: the transmitted pattern and the spy's reception.

The trojan covertly transmits a fixed 100-bit pattern (Figure 6); the
spy's timed loads fall into the Tc/Tb bands whose run lengths encode the
bits (Figure 7).  The driver prints the pattern, the reception trace of
the first bits (the "magnified view"), and the per-scenario decode
accuracy — the paper reports 100% for all six scenarios at the base
rate.
"""

from __future__ import annotations

import argparse

from repro.analysis.reporting import ascii_table, bitstring
from repro.channel.config import TABLE_I
from repro.channel.session import execute_point
from repro.experiments.common import (
    common_arguments,
    execute_from_args,
    payload_bits,
    runner_arguments,
    scenario_argument,
    selected_scenarios,
    warn_legacy_run,
)
from repro.runner import ExperimentSpec, Point, execute

NAME = "fig7"
SUMMARY = "Figures 6-7 transmission + reception traces"
POINT_FN = "repro.experiments.fig7_reception:point"


def point(*, scenario: str, seed: int, bits: int,
          protocol: str | None = None):
    """Transmit the Figure 6 pattern on one scenario; keep the trace."""
    return execute_point(
        scenario=scenario, payload=payload_bits(bits), seed=seed,
        protocol=protocol,
    )


def build_spec(seed: int = 0, bits: int = 100, scenarios=None,
               protocol: str | None = None) -> ExperimentSpec:
    """One point (full reception trace) per scenario."""
    names = [
        s if isinstance(s, str) else s.name
        for s in (scenarios if scenarios is not None else TABLE_I)
    ]
    # Only non-default overrides enter point params, so cache keys for
    # historical (MESI) runs are unchanged.
    extra = {"protocol": protocol} if protocol else {}
    points = tuple(
        Point(
            fn=POINT_FN,
            params={"scenario": name, "seed": seed, "bits": bits, **extra},
            label=name,
        )
        for name in names
    )
    return ExperimentSpec(
        experiment=NAME, points=points,
        meta={"scenarios": names, "bits": bits},
    )


def collect(spec: ExperimentSpec, values: list) -> dict:
    outcomes = dict(zip(spec.meta["scenarios"], values))
    return {"payload": payload_bits(spec.meta["bits"]), "results": outcomes}


def run(spec: ExperimentSpec | None = None, **legacy) -> dict:
    """Transmit the Figure 6 pattern on each scenario; keep the traces.

    Pass an :class:`ExperimentSpec` from :func:`build_spec`; the old
    ``run(seed=..., bits=..., scenarios=...)`` keyword form warns but
    still works.
    """
    if not isinstance(spec, ExperimentSpec):
        if spec is not None:
            legacy.setdefault("seed", spec)
        warn_legacy_run(__name__)
        spec = build_spec(**legacy)
    return collect(spec, execute(spec))


def render(result: dict, trace_samples: int = 40) -> str:
    parts = ["Figure 6: bit pattern covertly transmitted by the trojan",
             bitstring(result["payload"]), ""]
    rows = []
    for name, outcome in result["results"].items():
        rows.append((
            name,
            f"{outcome.accuracy * 100:.1f}%",
            f"{outcome.achieved_rate_kbps:.0f}",
            len(outcome.samples),
        ))
    parts.append(ascii_table(
        ("scenario", "decode accuracy", "rate (Kbps)", "spy samples"),
        rows,
        title="Figure 7: spy reception summary (paper: 100% for all six)",
    ))
    name, outcome = next(iter(result["results"].items()))
    parts.append("")
    parts.append(
        f"Magnified view ({name}): first {trace_samples} timed loads"
    )
    for sample in outcome.samples[:trace_samples]:
        marker = {"c": "*", "b": ".", "x": "?"}[sample.label]
        parts.append(
            f"  t={sample.timestamp:12.0f}  latency={sample.latency:7.1f}"
            f"  [{sample.label}] {marker * int(sample.latency / 12)}"
        )
    return "\n".join(parts)


def add_arguments(parser: argparse.ArgumentParser) -> None:
    common_arguments(parser)
    scenario_argument(parser)
    parser.add_argument(
        "--trace-samples", type=int, default=40,
        help="reception samples shown in the magnified view",
    )


def spec_from_args(args: argparse.Namespace) -> ExperimentSpec:
    return build_spec(
        seed=args.seed,
        bits=args.bits,
        scenarios=selected_scenarios(args.scenario),
        protocol=args.protocol,
    )


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    add_arguments(parser)
    runner_arguments(parser)
    args = parser.parse_args(argv)

    spec = spec_from_args(args)
    values = execute_from_args(spec, args)
    print(render(collect(spec, values), trace_samples=args.trace_samples))


if __name__ == "__main__":
    main()

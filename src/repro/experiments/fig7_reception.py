"""Figures 6 and 7: the transmitted pattern and the spy's reception.

The trojan covertly transmits a fixed 100-bit pattern (Figure 6); the
spy's timed loads fall into the Tc/Tb bands whose run lengths encode the
bits (Figure 7).  The driver prints the pattern, the reception trace of
the first bits (the "magnified view"), and the per-scenario decode
accuracy — the paper reports 100% for all six scenarios at the base
rate.
"""

from __future__ import annotations

import argparse

from repro.analysis.reporting import ascii_table, bitstring
from repro.channel.config import TABLE_I
from repro.channel.session import ChannelSession, SessionConfig
from repro.experiments.common import (
    common_arguments,
    default_params,
    payload_bits,
    scenario_argument,
    selected_scenarios,
)


def run(seed: int = 0, bits: int = 100, scenarios=None) -> dict:
    """Transmit the Figure 6 pattern on each scenario; keep the traces."""
    scenarios = scenarios if scenarios is not None else list(TABLE_I)
    payload = payload_bits(bits)
    params = default_params()
    outcomes = {}
    for scenario in scenarios:
        session = ChannelSession(
            SessionConfig(scenario=scenario, params=params, seed=seed)
        )
        result = session.transmit(payload)
        outcomes[scenario.name] = result
    return {"payload": payload, "results": outcomes}


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    common_arguments(parser)
    scenario_argument(parser)
    parser.add_argument(
        "--trace-samples", type=int, default=40,
        help="reception samples shown in the magnified view",
    )
    args = parser.parse_args(argv)

    outcome = run(
        seed=args.seed,
        bits=args.bits,
        scenarios=selected_scenarios(args.scenario),
    )
    print("Figure 6: bit pattern covertly transmitted by the trojan")
    print(bitstring(outcome["payload"]))
    print()
    rows = []
    for name, result in outcome["results"].items():
        rows.append((
            name,
            f"{result.accuracy * 100:.1f}%",
            f"{result.achieved_rate_kbps:.0f}",
            len(result.samples),
        ))
    print(ascii_table(
        ("scenario", "decode accuracy", "rate (Kbps)", "spy samples"),
        rows,
        title="Figure 7: spy reception summary (paper: 100% for all six)",
    ))
    name, result = next(iter(outcome["results"].items()))
    print()
    print(f"Magnified view ({name}): first {args.trace_samples} timed loads")
    for sample in result.samples[: args.trace_samples]:
        marker = {"c": "*", "b": ".", "x": "?"}[sample.label]
        print(
            f"  t={sample.timestamp:12.0f}  latency={sample.latency:7.1f}"
            f"  [{sample.label}] {marker * int(sample.latency / 12)}"
        )


if __name__ == "__main__":
    main()

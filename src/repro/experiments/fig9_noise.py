"""Figure 9: raw-bit accuracy with co-located kernel-build noise.

Runs each scenario alongside 0-8 kernel-build worker threads (the
paper's kcbench stress test).  The shape to reproduce: accuracy stays
high through ~6 background threads and degrades visibly at 8, with the
remote-exclusive scenarios hit hardest (the paper notes E-state loads
from remote caches vary most under bus saturation).
"""

from __future__ import annotations

import argparse

from repro.analysis.reporting import ascii_table
from repro.channel.config import TABLE_I, ProtocolParams
from repro.channel.session import ChannelSession, SessionConfig
from repro.experiments.common import (
    FIG9_NOISE_LEVELS,
    common_arguments,
    payload_bits,
    scenario_argument,
    selected_scenarios,
)

#: Figure 9 is measured at a moderate transmission rate.
FIG9_RATE_KBPS = 500


def run(
    seed: int = 0,
    bits: int = 100,
    noise_levels=FIG9_NOISE_LEVELS,
    scenarios=None,
    rate_kbps: float = FIG9_RATE_KBPS,
    trials: int = 2,
) -> dict:
    """Accuracy per (scenario, noise level), averaged over *trials* seeds.

    Each trial warms the machine up with a short transmission first so
    the noise workload's cache footprint is in steady state before the
    measured payload — the regime Figure 9 reports.
    """
    scenarios = scenarios if scenarios is not None else list(TABLE_I)
    payload = payload_bits(bits)
    params = ProtocolParams().at_rate(rate_kbps)
    curves: dict[str, list[tuple[int, float]]] = {}
    for scenario in scenarios:
        points = []
        for level in noise_levels:
            accs = []
            for trial in range(max(1, trials)):
                session = ChannelSession(SessionConfig(
                    scenario=scenario,
                    params=params,
                    seed=seed + 101 * trial,
                    noise_threads=level,
                ))
                session.transmit(payload[:24])  # steady-state warm-up
                accs.append(session.transmit(payload).accuracy)
            points.append((int(level), sum(accs) / len(accs)))
        curves[scenario.name] = points
    return {"curves": curves, "noise_levels": list(noise_levels)}


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    common_arguments(parser)
    scenario_argument(parser)
    parser.add_argument("--rate", type=float, default=FIG9_RATE_KBPS)
    args = parser.parse_args(argv)

    outcome = run(
        seed=args.seed,
        bits=args.bits,
        scenarios=selected_scenarios(args.scenario),
        rate_kbps=args.rate,
    )
    headers = ["scenario"] + [
        f"{n} kbuild" for n in outcome["noise_levels"]
    ]
    rows = []
    for name, points in outcome["curves"].items():
        rows.append([name] + [f"{acc * 100:.0f}%" for _n, acc in points])
    print(ascii_table(
        headers, rows,
        title="Figure 9: raw-bit accuracy under kernel-build noise",
    ))


if __name__ == "__main__":
    main()

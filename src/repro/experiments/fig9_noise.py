"""Figure 9: raw-bit accuracy with co-located kernel-build noise.

Runs each scenario alongside 0-8 kernel-build worker threads (the
paper's kcbench stress test).  The shape to reproduce: accuracy stays
high through ~6 background threads and degrades visibly at 8, with the
remote-exclusive scenarios hit hardest (the paper notes E-state loads
from remote caches vary most under bus saturation).
"""

from __future__ import annotations

import argparse

from repro.analysis.reporting import ascii_table
from repro.channel.config import TABLE_I
from repro.channel.session import execute_point
from repro.experiments.common import (
    FIG9_NOISE_LEVELS,
    common_arguments,
    execute_from_args,
    payload_bits,
    runner_arguments,
    scenario_argument,
    selected_scenarios,
    warn_legacy_run,
)
from repro.runner import ExperimentSpec, Point, execute

NAME = "fig9"
SUMMARY = "Figure 9 kernel-build noise sweep"
POINT_FN = "repro.experiments.fig9_noise:point"

#: Figure 9 is measured at a moderate transmission rate.
FIG9_RATE_KBPS = 500

#: Warm-up prefix transmitted before the measured payload so the noise
#: workload's cache footprint reaches steady state (Figure 9's regime).
WARMUP_BITS = 24


def point(*, scenario: str, level: int, seed: int, rate: float,
          bits: int, protocol: str | None = None) -> float:
    """One (scenario, noise level, trial): steady-state accuracy."""
    result = execute_point(
        scenario=scenario,
        payload=payload_bits(bits),
        rate_kbps=rate,
        seed=seed,
        noise_threads=level,
        warmup_bits=WARMUP_BITS,
        protocol=protocol,
    )
    return result.accuracy


def build_spec(
    seed: int = 0,
    bits: int = 100,
    noise_levels=FIG9_NOISE_LEVELS,
    scenarios=None,
    rate_kbps: float = FIG9_RATE_KBPS,
    trials: int = 2,
    protocol: str | None = None,
) -> ExperimentSpec:
    """The scenario × noise-level × trial grid of Figure 9.

    Per-trial seeds stay on the historical ``seed + 101 * trial``
    derivation so results are bit-compatible with the serial driver.
    """
    names = [
        s if isinstance(s, str) else s.name
        for s in (scenarios if scenarios is not None else TABLE_I)
    ]
    trials = max(1, trials)
    extra = {"protocol": protocol} if protocol else {}
    points = tuple(
        Point(
            fn=POINT_FN,
            params={
                "scenario": name,
                "level": int(level),
                "seed": seed + 101 * trial,
                "rate": float(rate_kbps),
                "bits": bits,
                **extra,
            },
            label=f"{name} x{level}kbuild t{trial}",
        )
        for name in names
        for level in noise_levels
        for trial in range(trials)
    )
    return ExperimentSpec(
        experiment=NAME,
        points=points,
        meta={
            "scenarios": names,
            "noise_levels": [int(n) for n in noise_levels],
            "trials": trials,
        },
    )


def collect(spec: ExperimentSpec, values: list) -> dict:
    """Average the trials back into per-scenario noise curves."""
    trials = spec.meta["trials"]
    levels = spec.meta["noise_levels"]
    it = iter(values)
    curves: dict[str, list[tuple[int, float]]] = {}
    for name in spec.meta["scenarios"]:
        points = []
        for level in levels:
            accs = [next(it) for _ in range(trials)]
            points.append((int(level), sum(accs) / len(accs)))
        curves[name] = points
    return {"curves": curves, "noise_levels": list(levels)}


def run(spec: ExperimentSpec | None = None, **legacy) -> dict:
    """Accuracy per (scenario, noise level), averaged over the trials.

    Pass an :class:`ExperimentSpec` from :func:`build_spec`; the old
    ``run(seed=..., bits=..., noise_levels=..., scenarios=...,
    rate_kbps=..., trials=...)`` keyword form warns but still works.
    """
    if not isinstance(spec, ExperimentSpec):
        if spec is not None:
            legacy.setdefault("seed", spec)
        warn_legacy_run(__name__)
        spec = build_spec(**legacy)
    return collect(spec, execute(spec))


def render(result: dict) -> str:
    headers = ["scenario"] + [
        f"{n} kbuild" for n in result["noise_levels"]
    ]
    rows = []
    for name, points in result["curves"].items():
        rows.append([name] + [f"{acc * 100:.0f}%" for _n, acc in points])
    return ascii_table(
        headers, rows,
        title="Figure 9: raw-bit accuracy under kernel-build noise",
    )


def add_arguments(parser: argparse.ArgumentParser) -> None:
    common_arguments(parser)
    scenario_argument(parser)
    parser.add_argument("--rate", type=float, default=FIG9_RATE_KBPS)
    parser.add_argument("--trials", type=int, default=2)


def spec_from_args(args: argparse.Namespace) -> ExperimentSpec:
    return build_spec(
        seed=args.seed,
        bits=args.bits,
        scenarios=selected_scenarios(args.scenario),
        rate_kbps=args.rate,
        trials=args.trials,
        protocol=args.protocol,
    )


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    add_arguments(parser)
    runner_arguments(parser)
    args = parser.parse_args(argv)

    spec = spec_from_args(args)
    values = execute_from_args(spec, args)
    print(render(collect(spec, values)))


if __name__ == "__main__":
    main()

"""Section VII-A: trojan/spy pre-transmission synchronization.

Measures the timing handshake that precedes the first bit (and follows
any context switch involving either party).  The paper reports ~90 ms
on average; the driver reports the measured handshake duration and the
latency sequences both parties observed.
"""

from __future__ import annotations

import argparse

from repro.analysis.reporting import ascii_table
from repro.channel.config import TABLE_I
from repro.channel.session import ChannelSession, SessionConfig
from repro.channel.sync import SyncParams, run_synchronization


def run(seed: int = 0, params: SyncParams | None = None) -> dict:
    """Run the handshake on a fresh session; returns durations."""
    session = ChannelSession(SessionConfig(scenario=TABLE_I[0], seed=seed))
    result = run_synchronization(
        session.kernel,
        session.bands,
        session.trojan_proc,
        session.spy_proc,
        session.trojan_va,
        session.spy_va,
        trojan_core=session.local_cores[0],
        spy_core=session.config.spy_core,
        params=params,
    )
    return {
        "synced": result.synced,
        "duration_ms": result.duration_ms,
        "trojan_ms": result.trojan_cycles / 2.67e6,
        "spy_ms": result.spy_cycles / 2.67e6,
        "spy_latencies": result.spy_latencies,
        "trojan_latencies": result.trojan_latencies,
    }


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    outcome = run(seed=args.seed)
    print(ascii_table(
        ("metric", "value"),
        [
            ("synchronized", outcome["synced"]),
            ("handshake duration", f"{outcome['duration_ms']:.1f} ms"),
            ("trojan side", f"{outcome['trojan_ms']:.1f} ms"),
            ("spy side", f"{outcome['spy_ms']:.1f} ms"),
            ("paper reference", "~90 ms average"),
        ],
        title="Section VII-A: pre-transmission synchronization",
    ))


if __name__ == "__main__":
    main()

"""Section VII-A: trojan/spy pre-transmission synchronization.

Measures the timing handshake that precedes the first bit (and follows
any context switch involving either party).  The paper reports ~90 ms
on average; the driver reports the measured handshake duration and the
latency sequences both parties observed.
"""

from __future__ import annotations

import argparse
from dataclasses import asdict

from repro.analysis.reporting import ascii_table
from repro.channel.config import TABLE_I
from repro.channel.session import ChannelSession, SessionConfig
from repro.channel.sync import SyncParams, run_synchronization
from repro.experiments.common import (
    execute_from_args,
    runner_arguments,
    warn_legacy_run,
)
from repro.runner import ExperimentSpec, Point, execute

NAME = "sync"
SUMMARY = "Section VII-A synchronization timing"
POINT_FN = "repro.experiments.sync_handshake:point"


def point(*, seed: int, params: dict | None = None) -> dict:
    """Run the handshake on a fresh session; returns durations."""
    session = ChannelSession(SessionConfig(spec=TABLE_I[0].name, seed=seed))
    result = run_synchronization(
        session.kernel,
        session.bands,
        session.trojan_proc,
        session.spy_proc,
        session.trojan_va,
        session.spy_va,
        trojan_core=session.local_cores[0],
        spy_core=session.config.spy_core,
        params=SyncParams(**params) if params is not None else None,
    )
    return {
        "synced": result.synced,
        "duration_ms": result.duration_ms,
        "trojan_ms": result.trojan_cycles / 2.67e6,
        "spy_ms": result.spy_cycles / 2.67e6,
        "spy_latencies": result.spy_latencies,
        "trojan_latencies": result.trojan_latencies,
    }


def build_spec(
    seed: int = 0, params: SyncParams | dict | None = None
) -> ExperimentSpec:
    """A single-point grid: one handshake measurement."""
    if isinstance(params, SyncParams):
        params = asdict(params)
    return ExperimentSpec(
        experiment=NAME,
        points=(Point(
            fn=POINT_FN,
            params={"seed": seed, "params": params},
            label="handshake",
        ),),
    )


def collect(spec: ExperimentSpec, values: list) -> dict:
    return values[0]


def run(spec: ExperimentSpec | None = None, **legacy) -> dict:
    """Run the handshake on a fresh session; returns durations.

    Pass an :class:`ExperimentSpec` from :func:`build_spec`; the old
    ``run(seed=..., params=...)`` keyword form warns but still works.
    """
    if not isinstance(spec, ExperimentSpec):
        if spec is not None:
            legacy.setdefault("seed", spec)
        warn_legacy_run(__name__)
        spec = build_spec(**legacy)
    return collect(spec, execute(spec))


def render(result: dict) -> str:
    return ascii_table(
        ("metric", "value"),
        [
            ("synchronized", result["synced"]),
            ("handshake duration", f"{result['duration_ms']:.1f} ms"),
            ("trojan side", f"{result['trojan_ms']:.1f} ms"),
            ("spy side", f"{result['spy_ms']:.1f} ms"),
            ("paper reference", "~90 ms average"),
        ],
        title="Section VII-A: pre-transmission synchronization",
    )


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0)


def spec_from_args(args: argparse.Namespace) -> ExperimentSpec:
    return build_spec(seed=args.seed)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    add_arguments(parser)
    runner_arguments(parser)
    args = parser.parse_args(argv)

    spec = spec_from_args(args)
    values = execute_from_args(spec, args)
    print(render(collect(spec, values)))


if __name__ == "__main__":
    main()

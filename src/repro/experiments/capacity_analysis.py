"""Information-theoretic extension: measured channel capacity.

Goes beyond the paper's raw accuracy numbers: builds empirical confusion
matrices from transmitted vs received symbols, computes mutual
information, and runs Blahut-Arimoto for the capacity-achieving input
distribution — for the binary channel at several rates and for the 2-bit
symbol channel, clean and under noise.
"""

from __future__ import annotations

import argparse

from repro.analysis.capacity import (
    blahut_arimoto,
    confusion_matrix,
    mutual_information,
)
from repro.analysis.reporting import ascii_table
from repro.channel.config import ProtocolParams
from repro.channel.session import ChannelSession, SessionConfig
from repro.channel.symbols import MultiBitSession, SymbolParams
from repro.experiments.common import (
    execute_from_args,
    payload_bits,
    runner_arguments,
    warn_legacy_run,
)
from repro.mem.latency import CLOCK_HZ
from repro.runner import ExperimentSpec, Point, execute

NAME = "capacity"
SUMMARY = "extension: information-theoretic capacity"
POINT_FN = "repro.experiments.capacity_analysis:point"

#: The operating points of the capacity table: (kind, rate, noise).
OPERATING_POINTS = (
    ("binary", 400.0, 0),
    ("binary", 1000.0, 0),
    ("binary", 400.0, 4),
    ("multibit", 800.0, 0),
    ("multibit", 1100.0, 0),
)


def point(*, kind: str, rate: float, noise: int, seed: int,
          bits: int) -> dict:
    """Capacity measurement at one operating point."""
    if kind == "binary":
        return _binary_point(rate, noise, seed, bits)
    if kind == "multibit":
        return _multibit_point(rate, seed, bits)
    raise ValueError(f"unknown operating-point kind {kind!r}")


def _binary_point(rate: float, noise: int, seed: int, bits: int) -> dict:
    session = ChannelSession(SessionConfig(
        spec="RExclc-LSharedb",
        params=ProtocolParams().at_rate(rate),
        seed=seed,
        noise_threads=noise,
        calibration_samples=300,
    ))
    payload = payload_bits(bits)
    if noise:
        session.transmit(payload[:24])  # steady state
    result = session.transmit(payload)
    n = min(len(result.sent), len(result.received))
    channel = confusion_matrix(result.sent[:n], result.received[:n], 2)
    capacity, _dist = blahut_arimoto(channel)
    symbol_rate = result.achieved_rate_kbps * 1e3  # 1 bit per symbol
    return {
        "label": f"binary@{rate:.0f}K noise={noise}",
        "accuracy": result.accuracy,
        "mutual_information": mutual_information(channel),
        "capacity_bits": capacity,
        "capacity_kbps": capacity * symbol_rate / 1e3,
    }


def _multibit_point(rate: float, seed: int, bits: int) -> dict:
    session = MultiBitSession(
        symbol_params=SymbolParams().at_rate(rate), seed=seed,
        calibration_samples=300,
    )
    payload = payload_bits(bits if bits % 2 == 0 else bits + 1)
    result = session.transmit(payload)
    sent = result.sent_symbols
    received = result.received_symbols
    n = min(len(sent), len(received))
    channel = confusion_matrix(sent[:n], received[:n], 4)
    capacity, _dist = blahut_arimoto(channel)
    cycles_per_symbol = (
        session.symbol_params.slots_per_symbol
        * session.symbol_params.slot_cycles
    )
    symbol_rate = CLOCK_HZ / cycles_per_symbol
    return {
        "label": f"2-bit symbols@{rate:.0f}K",
        "accuracy": result.accuracy,
        "mutual_information": mutual_information(channel),
        "capacity_bits": capacity,
        "capacity_kbps": capacity * symbol_rate / 1e3,
    }


def build_spec(seed: int = 0, bits: int = 200) -> ExperimentSpec:
    """One point per capacity operating point."""
    points = tuple(
        Point(
            fn=POINT_FN,
            params={"kind": kind, "rate": rate, "noise": noise,
                    "seed": seed, "bits": bits},
            label=f"{kind}@{rate:g}K noise={noise}",
        )
        for kind, rate, noise in OPERATING_POINTS
    )
    return ExperimentSpec(experiment=NAME, points=points)


def collect(spec: ExperimentSpec, values: list) -> dict:
    return {"points": list(values)}


def run(spec: ExperimentSpec | None = None, **legacy) -> dict:
    """Capacity table across operating points.

    Pass an :class:`ExperimentSpec` from :func:`build_spec`; the old
    ``run(seed=..., bits=...)`` keyword form warns but still works.
    """
    if not isinstance(spec, ExperimentSpec):
        if spec is not None:
            legacy.setdefault("seed", spec)
        warn_legacy_run(__name__)
        spec = build_spec(**legacy)
    return collect(spec, execute(spec))


def render(result: dict) -> str:
    rows = [
        (p["label"], f"{p['accuracy'] * 100:.1f}%",
         f"{p['mutual_information']:.3f}",
         f"{p['capacity_bits']:.3f}",
         f"{p['capacity_kbps']:.0f}")
        for p in result["points"]
    ]
    return ascii_table(
        ("operating point", "accuracy", "I(X;Y) bits/sym",
         "capacity bits/sym", "capacity Kbit/s"),
        rows,
        title="Channel capacity (extension experiment)",
    )


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--bits", type=int, default=200)


def spec_from_args(args: argparse.Namespace) -> ExperimentSpec:
    return build_spec(seed=args.seed, bits=args.bits)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    add_arguments(parser)
    runner_arguments(parser)
    args = parser.parse_args(argv)

    spec = spec_from_args(args)
    values = execute_from_args(spec, args)
    print(render(collect(spec, values)))


if __name__ == "__main__":
    main()

"""Information-theoretic extension: measured channel capacity.

Goes beyond the paper's raw accuracy numbers: builds empirical confusion
matrices from transmitted vs received symbols, computes mutual
information, and runs Blahut-Arimoto for the capacity-achieving input
distribution — for the binary channel at several rates and for the 2-bit
symbol channel, clean and under noise.
"""

from __future__ import annotations

import argparse

from repro.analysis.capacity import (
    blahut_arimoto,
    confusion_matrix,
    mutual_information,
)
from repro.analysis.reporting import ascii_table
from repro.channel.config import ProtocolParams, scenario_by_name
from repro.channel.session import ChannelSession, SessionConfig
from repro.channel.symbols import MultiBitSession, SymbolParams
from repro.experiments.common import payload_bits
from repro.mem.latency import CLOCK_HZ


def _binary_point(rate: float, noise: int, seed: int, bits: int) -> dict:
    session = ChannelSession(SessionConfig(
        scenario=scenario_by_name("RExclc-LSharedb"),
        params=ProtocolParams().at_rate(rate),
        seed=seed,
        noise_threads=noise,
        calibration_samples=300,
    ))
    payload = payload_bits(bits)
    if noise:
        session.transmit(payload[:24])  # steady state
    result = session.transmit(payload)
    n = min(len(result.sent), len(result.received))
    channel = confusion_matrix(result.sent[:n], result.received[:n], 2)
    capacity, _dist = blahut_arimoto(channel)
    symbol_rate = result.achieved_rate_kbps * 1e3  # 1 bit per symbol
    return {
        "label": f"binary@{rate:.0f}K noise={noise}",
        "accuracy": result.accuracy,
        "mutual_information": mutual_information(channel),
        "capacity_bits": capacity,
        "capacity_kbps": capacity * symbol_rate / 1e3,
    }


def _multibit_point(rate: float, seed: int, bits: int) -> dict:
    session = MultiBitSession(
        symbol_params=SymbolParams().at_rate(rate), seed=seed,
        calibration_samples=300,
    )
    payload = payload_bits(bits if bits % 2 == 0 else bits + 1)
    result = session.transmit(payload)
    sent = result.sent_symbols
    received = result.received_symbols
    n = min(len(sent), len(received))
    channel = confusion_matrix(sent[:n], received[:n], 4)
    capacity, _dist = blahut_arimoto(channel)
    cycles_per_symbol = (
        session.symbol_params.slots_per_symbol
        * session.symbol_params.slot_cycles
    )
    symbol_rate = CLOCK_HZ / cycles_per_symbol
    return {
        "label": f"2-bit symbols@{rate:.0f}K",
        "accuracy": result.accuracy,
        "mutual_information": mutual_information(channel),
        "capacity_bits": capacity,
        "capacity_kbps": capacity * symbol_rate / 1e3,
    }


def run(seed: int = 0, bits: int = 200) -> dict:
    """Capacity table across operating points."""
    points = [
        _binary_point(400, 0, seed, bits),
        _binary_point(1000, 0, seed, bits),
        _binary_point(400, 4, seed, bits),
        _multibit_point(800, seed, bits),
        _multibit_point(1100, seed, bits),
    ]
    return {"points": points}


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--bits", type=int, default=200)
    args = parser.parse_args(argv)

    outcome = run(seed=args.seed, bits=args.bits)
    rows = [
        (p["label"], f"{p['accuracy'] * 100:.1f}%",
         f"{p['mutual_information']:.3f}",
         f"{p['capacity_bits']:.3f}",
         f"{p['capacity_kbps']:.0f}")
        for p in outcome["points"]
    ]
    print(ascii_table(
        ("operating point", "accuracy", "I(X;Y) bits/sym",
         "capacity bits/sym", "capacity Kbit/s"),
        rows,
        title="Channel capacity (extension experiment)",
    ))


if __name__ == "__main__":
    main()

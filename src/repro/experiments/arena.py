"""Detection-vs-evasion arena: a tournament on live traces.

The offline detection experiment (:mod:`repro.experiments.detection_roc`)
scores finished batches; a deployed monitor classifies the coherence
stream as it happens, and an adaptive adversary tunes its transmission
against whatever threshold the monitor runs.  This driver stages that
fight across every live cell of the scenario matrix:

* **Attack legs** run one covert transmission per (cell, evasion
  setting, seed) with tracing on and a
  :class:`~repro.detection.streaming.StreamingDetector` subscribed to
  the session recorder — the live-feed path, no second interposition
  layer.  Evasion settings are the adversary's ladder: rate throttling
  (``ProtocolParams.at_rate``, the paper's knob 2 — fewer flushes and
  downgrades per window at the cost of rate) and timing obfuscation
  (:func:`~repro.mitigation.hardware.attach_obfuscator` at partial or
  full band-spread width over the channel's own cores).
* **Benign legs** run the kernel-build and producer/consumer workloads
  through a tap + recorder + streaming detector, supplying the negative
  score samples.
* **collect** computes, per cell and evasion setting, the detector's
  AUC (:class:`~repro.detection.streaming.OnlineRoc` over attack vs
  benign scores) and the surviving channel capacity (the
  :func:`~repro.experiments.leaderboard.capacity_kbps` BSC bound,
  zeroed when the covert line scores at or above the monitor's
  threshold) — the per-cell **evasion frontier** — then co-evolves the
  two sides: each generation the adversary best-responds with the
  setting that maximizes surviving capacity under the current
  threshold, and the monitor best-responds with the threshold that
  maximizes Youden's J against that setting; the trajectory runs to a
  fixed point or the generation cap.

Everything downstream of the point results is pure arithmetic, so the
tournament trajectory and frontier are bit-deterministic for a fixed
seed (asserted by ``tests/test_streaming_detection.py``).
"""

from __future__ import annotations

import argparse

from repro.analysis.reporting import ascii_table
from repro.channel.scenarios import MATRIX_COLS, MATRIX_ROWS, matrix_cell
from repro.channel.session import ChannelSession, SessionConfig
from repro.detection.streaming import OnlineRoc, StreamingDetector
from repro.errors import CalibrationError, ChannelError, SyncTimeoutError
from repro.experiments.common import (
    execute_from_args,
    payload_bits,
    runner_arguments,
)
from repro.experiments.leaderboard import capacity_kbps
from repro.kernel.syscalls import Kernel
from repro.kernel.workloads import spawn_kernel_build
from repro.mem.cacheline import LINE_SIZE
from repro.mem.hierarchy import Machine, MachineConfig
from repro.mitigation.hardware import attach_obfuscator
from repro.obs import MachineTap, TraceRecorder
from repro.runner import ExperimentSpec, Point, execute
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams

NAME = "arena"
SUMMARY = "extension: detection-vs-evasion arena on live traces"
POINT_FN = "repro.experiments.arena:point"

#: The adversary's evasion ladder: (name, rate scale, obfuscation
#: width).  Rate throttling stretches the slot (fewer events per
#: detector window, lower rate); obfuscation randomizes the channel's
#: own load latencies across the band spread (width 1.0 = the full
#: defender-grade range).  ``none`` is the unmodified channel.
EVASIONS = (
    {"name": "none", "rate_scale": 1.0, "obf_width": 0.0},
    {"name": "half-rate", "rate_scale": 0.5, "obf_width": 0.0},
    {"name": "quarter-rate", "rate_scale": 0.25, "obf_width": 0.0},
    {"name": "obfuscate", "rate_scale": 1.0, "obf_width": 1.0},
)

#: The monitor's threshold ladder (combined-score flag threshold).
THRESHOLDS = (0.25, 0.5, 0.75, 1.0, 1.5, 2.0)

#: The monitor's opening threshold (the ChannelDetector default).
DEFAULT_THRESHOLD = 1.0

#: Benign workloads supplying the negative score samples.
BENIGN_WORKLOADS = ("kernel-build", "producer-consumer")

#: Interim-scan cadence for detection latency (cycles).
SCAN_INTERVAL = 100_000.0

#: Seed offset separating benign RNG streams from attack streams.
_BENIGN_SEED_BASE = 9700


def live_cells() -> list[str]:
    """Matrix cells where the channel can exist at all.

    Excludes undefined cells (directory x lru) and the deterministically
    dead ones (mesi/mesif x ostate: no O state, calibration refuses the
    overlapping bands — see the leaderboard driver).  A tournament
    against a channel that cannot transmit is not a result.
    """
    cells = []
    for row in MATRIX_ROWS:
        for channel in MATRIX_COLS:
            spec = matrix_cell(row, channel)
            if spec is None:
                continue
            if spec.channel == "ostate" and spec.protocol in ("mesi", "mesif"):
                continue
            cells.append(spec.name)
    return cells


def point(
    *,
    workload: str,
    seed: int,
    bits: int = 32,
    rate_scale: float = 1.0,
    obf_width: float = 0.0,
) -> dict:
    """Run one monitored workload; returns its score/capacity row."""
    kind, _, detail = workload.partition(":")
    if kind == "attack":
        return _attack_point(detail, seed, bits, rate_scale, obf_width)
    if kind == "benign" and detail in BENIGN_WORKLOADS:
        return _benign_point(detail, seed)
    raise ValueError(f"unknown workload {workload!r}")


def _attack_point(
    cell: str, seed: int, bits: int, rate_scale: float, obf_width: float
) -> dict:
    config = SessionConfig(spec=cell, seed=seed, trace=True)
    if rate_scale != 1.0:
        config.params = config.params.at_rate(
            config.params.nominal_rate_kbps * rate_scale
        )
    row = {
        "kind": "attack",
        "cell": cell,
        "seed": seed,
        "rate_scale": rate_scale,
        "obf_width": obf_width,
    }
    try:
        session = ChannelSession(config)
    except CalibrationError as exc:
        row.update(status="dead", detail=str(exc), max_score=0.0,
                   covert_score=0.0, accuracy=0.0, rate_kbps=0.0,
                   capacity_kbps=0.0, first_alarm=None)
        return row
    detector = StreamingDetector(scan_interval=SCAN_INTERVAL)
    session.recorder.subscribe(detector)
    if obf_width > 0.0:
        _attach_partial_obfuscator(session, obf_width)
    status, result = "ok", None
    try:
        result = session.transmit(payload_bits(bits))
    except SyncTimeoutError:
        status = "no-sync"
    except ChannelError:
        status = "error"
    finally:
        session.recorder.unsubscribe(detector)
    now = session.sim.global_clock
    scores = detector.score_all(now)
    covert_line = (
        session.spy_proc.translate(session.spy_va) & ~(LINE_SIZE - 1)
    )
    accuracy = result.accuracy if result is not None else 0.0
    rate = result.achieved_rate_kbps if result is not None else 0.0
    row.update(
        status=status,
        accuracy=accuracy,
        rate_kbps=rate,
        capacity_kbps=capacity_kbps(accuracy, rate),
        covert_score=scores.get(covert_line, (0.0,))[0],
        max_score=max((s for s, _r in scores.values()), default=0.0),
        first_alarm=detector.first_alarm(covert_line),
        events=detector.events,
        peak_tracked=detector.peak_tracked,
    )
    return row


def _attach_partial_obfuscator(session: ChannelSession, width: float) -> None:
    """Obfuscate the channel's own cores at *width* of the full spread.

    The adversary's gamble: randomized load latencies make its traffic
    look less band-structured, at the price of the spy decoding through
    the same noise.  Width interpolates between no obfuscation (0) and
    the full defender range (1) around the band midpoint.
    """
    profile = session.machine.config.latency
    lo_full = profile.local_shared - 10.0
    hi_full = profile.remote_excl + 20.0
    mid = (lo_full + hi_full) / 2.0
    attach_obfuscator(
        session.machine,
        set(session.reserved_cores()),
        lo=mid - width * (mid - lo_full),
        hi=mid + width * (hi_full - mid),
    )


def _benign_point(workload: str, seed: int) -> dict:
    rng = RngStreams(seed)
    machine = Machine(MachineConfig(), rng)
    sim = Simulator(machine.stats)
    recorder = TraceRecorder()
    tap = MachineTap(machine, recorder)
    tap.attach()
    detector = StreamingDetector(scan_interval=SCAN_INTERVAL)
    recorder.subscribe(detector)
    kernel = Kernel(machine, sim, rng)
    if workload == "kernel-build":
        spawn_kernel_build(kernel, 6, avoid_cores={0})
        process = kernel.create_process("w")

        def waiter(cpu):
            yield from cpu.delay(800_000)

        kernel.spawn(process, "w", waiter, core_id=0)
    else:
        app = kernel.create_process("app")
        buf = app.mmap(1)

        def producer(cpu):
            for i in range(400):
                yield from cpu.store(buf, i)
                yield from cpu.delay(700)

        def consumer(cpu):
            for _ in range(400):
                yield from cpu.load(buf)
                yield from cpu.delay(700)

        kernel.spawn(app, "prod", producer, core_id=1)
        kernel.spawn(app, "cons", consumer, core_id=2)
    sim.run()
    scores = detector.score_all(sim.global_clock)
    return {
        "kind": "benign",
        "workload": workload,
        "seed": seed,
        "status": "ok",
        "max_score": max((s for s, _r in scores.values()), default=0.0),
        "lines": len(scores),
        "events": detector.events,
        "peak_tracked": detector.peak_tracked,
    }


def build_spec(
    seed: int = 0,
    bits: int = 32,
    cells: list[str] | None = None,
    attack_seeds: int = 2,
    benign_seeds: int = 3,
    generations: int = 6,
) -> ExperimentSpec:
    """Attack points per (cell, evasion, seed) plus the benign pool."""
    cells = list(cells) if cells is not None else live_cells()
    points = []
    for cell in cells:
        for evasion in EVASIONS:
            for offset in range(attack_seeds):
                points.append(Point(
                    fn=POINT_FN,
                    params={
                        "workload": f"attack:{cell}",
                        "seed": seed + offset,
                        "bits": bits,
                        "rate_scale": evasion["rate_scale"],
                        "obf_width": evasion["obf_width"],
                    },
                    label=f"{cell}/{evasion['name']}/s{offset}",
                ))
    for workload in BENIGN_WORKLOADS:
        for offset in range(benign_seeds):
            points.append(Point(
                fn=POINT_FN,
                params={
                    "workload": f"benign:{workload}",
                    "seed": seed + _BENIGN_SEED_BASE + offset,
                },
                label=f"benign:{workload}/s{offset}",
            ))
    return ExperimentSpec(
        experiment=NAME,
        points=tuple(points),
        meta={
            "cells": cells,
            "evasions": [dict(e) for e in EVASIONS],
            "attack_seeds": attack_seeds,
            "benign_seeds": benign_seeds,
            "bits": bits,
            "generations": generations,
        },
    )


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _surviving_kbps(rows: list[dict], threshold: float) -> float:
    """Mean capacity across seeds, zeroing runs the monitor flags."""
    return _mean([
        row["capacity_kbps"] if row["max_score"] < threshold else 0.0
        for row in rows
    ])


def _rates(scores: list[float], threshold: float) -> float:
    """Fraction of samples at or above *threshold*."""
    if not scores:
        return 0.0
    return sum(1 for s in scores if s >= threshold) / len(scores)


def _tournament(
    by_evasion: dict[str, list[dict]],
    benign_scores: list[float],
    evasions: list[dict],
    generations: int,
) -> list[dict]:
    """Alternating best responses; deterministic, first-wins ties."""
    threshold = DEFAULT_THRESHOLD
    history: list[dict] = []
    for generation in range(generations):
        best = None
        best_surviving = -1.0
        for evasion in evasions:
            surviving = _surviving_kbps(by_evasion[evasion["name"]], threshold)
            if surviving > best_surviving:
                best, best_surviving = evasion, surviving
        attack_scores = [r["max_score"] for r in by_evasion[best["name"]]]
        best_threshold = threshold
        best_j = None
        for candidate in THRESHOLDS:
            j = (_rates(attack_scores, candidate)
                 - _rates(benign_scores, candidate))
            if best_j is None or j > best_j:
                best_threshold, best_j = candidate, j
        entry = {
            "generation": generation,
            "evasion": best["name"],
            "surviving_kbps": best_surviving,
            "threshold": best_threshold,
            "tpr": _rates(attack_scores, best_threshold),
            "fpr": _rates(benign_scores, best_threshold),
        }
        history.append(entry)
        converged = (
            len(history) >= 2
            and history[-2]["evasion"] == entry["evasion"]
            and history[-2]["threshold"] == entry["threshold"]
        )
        threshold = best_threshold
        if converged:
            break
    return history


def collect(spec: ExperimentSpec, values: list) -> dict:
    meta = spec.meta
    benign = [row for row in values if row["kind"] == "benign"]
    attacks = [row for row in values if row["kind"] == "attack"]
    benign_scores = [row["max_score"] for row in benign]
    evasions = meta["evasions"]
    cells: dict[str, dict] = {}
    for cell in meta["cells"]:
        by_evasion: dict[str, list[dict]] = {
            e["name"]: [] for e in evasions
        }
        for row in attacks:
            if row["cell"] != cell:
                continue
            for evasion in evasions:
                if (row["rate_scale"] == evasion["rate_scale"]
                        and row["obf_width"] == evasion["obf_width"]):
                    by_evasion[evasion["name"]].append(row)
                    break
        frontier = []
        for evasion in evasions:
            rows = by_evasion[evasion["name"]]
            attack_scores = [r["max_score"] for r in rows]
            roc = OnlineRoc.from_samples(
                [(s, True) for s in attack_scores]
                + [(s, False) for s in benign_scores]
            )
            alarms = [r["first_alarm"] for r in rows
                      if r.get("first_alarm") is not None]
            frontier.append({
                "evasion": evasion["name"],
                "rate_scale": evasion["rate_scale"],
                "obf_width": evasion["obf_width"],
                "status": rows[0]["status"] if rows else "missing",
                "auc": roc.auc(),
                "capacity_kbps": _mean([r["capacity_kbps"] for r in rows]),
                "mean_score": _mean(attack_scores),
                "surviving_kbps": _surviving_kbps(rows, DEFAULT_THRESHOLD),
                "mean_alarm_cycles": _mean(alarms) if alarms else None,
            })
        tournament = _tournament(
            by_evasion, benign_scores, evasions, meta["generations"]
        )
        final = tournament[-1]
        equilibrium = {
            "evasion": final["evasion"],
            "threshold": final["threshold"],
            "surviving_kbps": _surviving_kbps(
                by_evasion[final["evasion"]], final["threshold"]
            ),
            "converged": len(tournament) < meta["generations"],
        }
        cells[cell] = {
            "frontier": frontier,
            "tournament": tournament,
            "equilibrium": equilibrium,
        }
    return {
        "cells": cells,
        "benign_scores": benign_scores,
        "thresholds": list(THRESHOLDS),
        "bits": meta["bits"],
        "generations": meta["generations"],
    }


def run(spec: ExperimentSpec | None = None, **kwargs) -> dict:
    """Run the full arena; returns per-cell frontier + tournament."""
    if not isinstance(spec, ExperimentSpec):
        spec = build_spec(**kwargs)
    return collect(spec, execute(spec))


def render(result: dict) -> str:
    summary_rows = []
    for cell, data in result["cells"].items():
        eq = data["equilibrium"]
        none_row = data["frontier"][0]
        summary_rows.append((
            cell,
            f"{none_row['capacity_kbps']:.0f}K",
            f"{none_row['auc']:.2f}",
            eq["evasion"],
            f"{eq['threshold']:.2f}",
            f"{eq['surviving_kbps']:.0f}K",
            "yes" if eq["converged"] else "no",
        ))
    parts = [ascii_table(
        ("cell", "open capacity", "AUC", "equilibrium evasion",
         "threshold", "surviving", "converged"),
        summary_rows,
        title=(f"Detection-vs-evasion arena "
               f"({result['bits']}-bit payloads, "
               f"{len(result['benign_scores'])} benign samples)"),
    )]
    frontier_rows = []
    for cell, data in result["cells"].items():
        for row in data["frontier"]:
            alarm = row["mean_alarm_cycles"]
            frontier_rows.append((
                cell,
                row["evasion"],
                row["status"],
                f"{row['auc']:.2f}",
                f"{row['mean_score']:.2f}",
                f"{row['capacity_kbps']:.0f}",
                f"{row['surviving_kbps']:.0f}",
                "-" if alarm is None else f"{alarm / 1e6:.2f}M",
            ))
    parts.append("")
    parts.append(ascii_table(
        ("cell", "evasion", "status", "AUC", "score",
         "capacity (Kbps)", "surviving (Kbps)", "first alarm"),
        frontier_rows,
        title="Per-cell evasion frontier (detector AUC vs surviving capacity)",
    ))
    parts.append("")
    parts.append(
        "surviving = BSC capacity zeroed when the monitor flags the run "
        f"(threshold {DEFAULT_THRESHOLD}); equilibrium = fixed point of "
        "alternating best responses"
    )
    return "\n".join(parts)


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--bits", type=int, default=32)
    parser.add_argument(
        "--cells", nargs="*", default=None,
        help="restrict to these matrix cells (default: every live cell)",
    )
    parser.add_argument("--attack-seeds", type=int, default=2)
    parser.add_argument("--benign-seeds", type=int, default=3)
    parser.add_argument("--generations", type=int, default=6)
    parser.add_argument(
        "--smoke", action="store_true",
        help="fast CI mode: 12-bit payloads, one seed per leg",
    )


def spec_from_args(args: argparse.Namespace) -> ExperimentSpec:
    if args.smoke:
        return build_spec(
            seed=args.seed, bits=12, cells=args.cells,
            attack_seeds=1, benign_seeds=1,
            generations=args.generations,
        )
    return build_spec(
        seed=args.seed, bits=args.bits, cells=args.cells,
        attack_seeds=args.attack_seeds, benign_seeds=args.benign_seeds,
        generations=args.generations,
    )


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    add_arguments(parser)
    runner_arguments(parser)
    args = parser.parse_args(argv)

    spec = spec_from_args(args)
    values = execute_from_args(spec, args)
    print(render(collect(spec, values)))


if __name__ == "__main__":
    main()
